// Quickstart: run an IEEE-754 FP32 GEMM on the M3XU engine and see the
// paper's central numerical claim - the two-step split reproduces exact
// FP32 products where TF32 Tensor Cores lose mantissa bits.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"

using namespace m3xu;

int main() {
  const core::M3xuEngine engine;  // multi-mode MXU, 48-bit accumulators
  Rng rng(7);

  // A small FP32 GEMM: D = A * B.
  const int m = 64, n = 48, k = 128;
  gemm::Matrix<float> a(m, k), b(k, n), d(m, n);
  fill_random(a, rng);
  fill_random(b, rng);

  // Exact reference (correctly rounded double), for error measurement.
  gemm::Matrix<double> exact(m, n);
  exact.fill(0.0);
  gemm::exact_gemm(a, b, exact);

  std::printf("FP32 GEMM %dx%dx%d on the multi-mode MXU\n\n", m, n, k);
  std::printf("%-28s %-14s %s\n", "kernel", "max rel err", "comment");
  for (const auto kernel :
       {gemm::SgemmKernel::kSimt, gemm::SgemmKernel::kM3xu,
        gemm::SgemmKernel::kTensorOp3xTf32, gemm::SgemmKernel::kEehc3xBf16}) {
    d.fill(0.0f);
    gemm::run_sgemm(kernel, engine, a, b, d);
    const gemm::ErrorStats e = gemm::compare(d, exact);
    const char* comment = "";
    switch (kernel) {
      case gemm::SgemmKernel::kSimt:
        comment = "CUDA-core FP32 FMA (baseline)";
        break;
      case gemm::SgemmKernel::kM3xu:
        comment = "M3XU 2-step mode: exact products";
        break;
      case gemm::SgemmKernel::kTensorOp3xTf32:
        comment = "3xTF32 emulation: drops lo*lo";
        break;
      case gemm::SgemmKernel::kEehc3xBf16:
        comment = "3xBF16 emulation: coarser still";
        break;
      default:
        break;
    }
    std::printf("%-28s %-14.3e %s\n", gemm::kernel_name(kernel), e.max_rel,
                comment);
  }

  // The single-product view: M3XU returns the correctly rounded FP32
  // product bit-for-bit; TF32 does not.
  const float x = 1.0f + 0x1p-12f;  // needs >11 mantissa bits
  const float y = 3.0f;
  const float xv[] = {x};
  const float yv[] = {y};
  std::printf("\nsingle product (1 + 2^-12) * 3:\n");
  std::printf("  exact FP32     : %.9g\n",
              static_cast<float>(static_cast<double>(x) * y));
  std::printf("  m3xu FP32 mode : %.9g   (bit-exact)\n",
              engine.mma_dot_fp32(xv, yv, 0.0f));
  std::printf("  TF32 tensorop  : %.9g   (input rounded to 11 bits)\n",
              engine.mma_dot_passthrough(xv, yv, 0.0f, fp::kTf32));
  return 0;
}
