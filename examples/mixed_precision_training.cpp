// Mixed-precision MLP training with an M3XU backward pass (the Fig 7
// scenario executed functionally): forward GEMMs run on FP16 Tensor
// Cores, backward GEMMs in the M3XU FP32 mode - numerically equivalent
// to a full-FP32 backward, which this example demonstrates by training
// the same network both ways and comparing loss trajectories.
//
//   $ ./examples/mixed_precision_training
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"

using namespace m3xu;
using Mat = gemm::Matrix<float>;

namespace {

constexpr int kIn = 8, kHidden = 32, kSamples = 256;

Mat transpose(const Mat& m) {
  Mat t(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

/// C = A*B via the chosen kernel (C zeroed first).
void matmul(gemm::SgemmKernel kernel, const core::M3xuEngine& engine,
            const Mat& a, const Mat& b, Mat& c) {
  c.fill(0.0f);
  gemm::run_sgemm(kernel, engine, a, b, c);
}

void matmul_fp16(const core::M3xuEngine& engine, const Mat& a, const Mat& b,
                 Mat& c) {
  c.fill(0.0f);
  gemm::tensorop_hgemm(engine, a, b, c);
}

struct Model {
  Mat w1{kIn, kHidden};
  Mat w2{kHidden, 1};
};

struct TrainResult {
  std::vector<double> losses;
};

/// Trains on (x, targets); fwd_fp16 picks the mixed-precision forward;
/// bwd_kernel is the backward GEMM implementation.
TrainResult train(const Mat& x, const std::vector<float>& targets,
                  bool fwd_fp16, gemm::SgemmKernel bwd_kernel,
                  const core::M3xuEngine& engine, int epochs) {
  Rng rng(5);  // same init for every variant
  Model m;
  for (int i = 0; i < kIn; ++i) {
    for (int j = 0; j < kHidden; ++j) m.w1(i, j) = rng.uniform(-0.4f, 0.4f);
  }
  for (int j = 0; j < kHidden; ++j) m.w2(j, 0) = rng.uniform(-0.4f, 0.4f);

  TrainResult result;
  const float lr = 0.3f;
  Mat h(kSamples, kHidden), a(kSamples, kHidden), y(kSamples, 1);
  Mat dy(kSamples, 1), dw2(kHidden, 1), da(kSamples, kHidden),
      dh(kSamples, kHidden), dw1(kIn, kHidden);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Forward.
    if (fwd_fp16) {
      matmul_fp16(engine, x, m.w1, h);
    } else {
      matmul(gemm::SgemmKernel::kSimt, engine, x, m.w1, h);
    }
    for (int i = 0; i < kSamples; ++i) {
      for (int j = 0; j < kHidden; ++j) {
        a(i, j) = std::max(0.0f, h(i, j));  // ReLU
      }
    }
    if (fwd_fp16) {
      matmul_fp16(engine, a, m.w2, y);
    } else {
      matmul(gemm::SgemmKernel::kSimt, engine, a, m.w2, y);
    }
    // MSE loss + gradient.
    double loss = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const float err = y(i, 0) - targets[static_cast<std::size_t>(i)];
      loss += 0.5 * err * err;
      dy(i, 0) = err / kSamples;
    }
    result.losses.push_back(loss / kSamples);
    // Backward (the M3XU-accelerated part in mixed precision).
    matmul(bwd_kernel, engine, transpose(a), dy, dw2);
    matmul(bwd_kernel, engine, dy, transpose(m.w2), da);
    for (int i = 0; i < kSamples; ++i) {
      for (int j = 0; j < kHidden; ++j) {
        dh(i, j) = h(i, j) > 0.0f ? da(i, j) : 0.0f;
      }
    }
    matmul(bwd_kernel, engine, transpose(x), dh, dw1);
    // SGD.
    for (int i = 0; i < kIn; ++i) {
      for (int j = 0; j < kHidden; ++j) m.w1(i, j) -= lr * dw1(i, j);
    }
    for (int j = 0; j < kHidden; ++j) m.w2(j, 0) -= lr * dw2(j, 0);
  }
  return result;
}

}  // namespace

int main() {
  // Synthetic regression: y = tanh of a random linear map + bumps.
  Rng rng(6);
  Mat x(kSamples, kIn);
  std::vector<float> targets(kSamples);
  std::vector<float> w_true(kIn);
  for (auto& w : w_true) w = rng.uniform(-1.0f, 1.0f);
  for (int i = 0; i < kSamples; ++i) {
    float dot = 0.0f;
    for (int d = 0; d < kIn; ++d) {
      x(i, d) = rng.uniform(-1.0f, 1.0f);
      dot += w_true[static_cast<std::size_t>(d)] * x(i, d);
    }
    targets[static_cast<std::size_t>(i)] = std::tanh(2.0f * dot);
  }

  const core::M3xuEngine engine;
  const int epochs = 150;
  const TrainResult fp32 =
      train(x, targets, false, gemm::SgemmKernel::kSimt, engine, epochs);
  const TrainResult mixed =
      train(x, targets, true, gemm::SgemmKernel::kM3xu, engine, epochs);

  std::printf("MLP %d-%d-1, %d samples, %d epochs\n", kIn, kHidden, kSamples,
              epochs);
  std::printf("%-8s %-14s %s\n", "epoch", "FP32 loss", "fp16-fwd/m3xu-bwd");
  for (int e = 0; e < epochs; e += 30) {
    std::printf("%-8d %-14.6f %.6f\n", e, fp32.losses[e], mixed.losses[e]);
  }
  const double final_fp32 = fp32.losses.back();
  const double final_mixed = mixed.losses.back();
  std::printf("final    %-14.6f %.6f\n", final_fp32, final_mixed);
  const bool converged = final_mixed < 0.25 * mixed.losses.front();
  const bool parity = final_mixed < final_fp32 * 1.5 + 1e-4;
  std::printf("%s\n", converged && parity
                          ? "mixed-precision training matches FP32: OK"
                          : "FAILED");
  return converged && parity ? 0 : 1;
}
