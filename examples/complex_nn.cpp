// A complex-valued neural network on the M3XU FP32C engine - the
// workload class the paper's introduction motivates ("recent studies
// also show neural networks using complex number matrix multiplications
// are advantageous").
//
// Task: classify the dominant phase rotation of a short complex signal
// (a proxy for modulation classification). The network is a one-layer
// complex-linear model with |.|-readout, trained by gradient descent
// with all matrix products on m3xu_cgemm.
//
//   $ ./examples/complex_nn
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

using namespace m3xu;
using C = std::complex<float>;
using CMat = gemm::Matrix<C>;

namespace {

constexpr int kLen = 16;      // signal length
constexpr int kClasses = 4;   // phase step classes
constexpr int kTrain = 512;
constexpr int kTest = 256;

/// A unit-power tone with per-sample phase step 2*pi*cls/8 plus noise.
void sample(Rng& rng, int cls, C* out) {
  const double step = 2.0 * M_PI * cls / 8.0;
  const double phase0 = rng.next_double() * 2.0 * M_PI;
  for (int t = 0; t < kLen; ++t) {
    const double ang = phase0 + step * t;
    out[t] = C(static_cast<float>(std::cos(ang) + 0.1 * rng.normal()),
               static_cast<float>(std::sin(ang) + 0.1 * rng.normal()));
  }
}

/// Scores = |X * W|^2 per class: one m3xu_cgemm then a magnitude
/// readout (matched-filter bank, the complex-NN building block).
gemm::Matrix<float> forward(const core::M3xuEngine& engine, const CMat& x,
                            const CMat& w) {
  CMat z(x.rows(), w.cols());
  z.fill({});
  gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine, x, w, z);
  gemm::Matrix<float> scores(x.rows(), w.cols());
  for (int i = 0; i < z.rows(); ++i) {
    for (int j = 0; j < z.cols(); ++j) scores(i, j) = std::norm(z(i, j));
  }
  return scores;
}

}  // namespace

int main() {
  Rng rng(55);
  const core::M3xuEngine engine;
  CMat train(kTrain, kLen), test(kTest, kLen);
  std::vector<int> train_y(kTrain), test_y(kTest);
  for (int i = 0; i < kTrain; ++i) {
    train_y[i] = static_cast<int>(rng.next_below(kClasses));
    sample(rng, train_y[i], train.data() + i * kLen);
  }
  for (int i = 0; i < kTest; ++i) {
    test_y[i] = static_cast<int>(rng.next_below(kClasses));
    sample(rng, test_y[i], test.data() + i * kLen);
  }

  // Learn one complex filter per class: w_c <- mean of its class's
  // signals (a closed-form "training epoch" that is itself a CGEMM:
  // W = X^H * Y with Y the one-hot label matrix).
  CMat xh(kLen, kTrain);
  for (int i = 0; i < kTrain; ++i) {
    for (int t = 0; t < kLen; ++t) xh(t, i) = std::conj(train(i, t));
  }
  CMat onehot(kTrain, kClasses);
  onehot.fill({});
  std::vector<int> counts(kClasses, 0);
  for (int i = 0; i < kTrain; ++i) {
    onehot(i, train_y[i]) = {1.0f, 0.0f};
    ++counts[train_y[i]];
  }
  CMat w(kLen, kClasses);
  w.fill({});
  gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine, xh, onehot, w);
  for (int t = 0; t < kLen; ++t) {
    for (int c = 0; c < kClasses; ++c) {
      w(t, c) /= static_cast<float>(counts[c]);
    }
  }

  const gemm::Matrix<float> scores = forward(engine, test, w);
  int correct = 0;
  for (int i = 0; i < kTest; ++i) {
    int best = 0;
    for (int c = 1; c < kClasses; ++c) {
      if (scores(i, c) > scores(i, best)) best = c;
    }
    correct += best == test_y[i];
  }
  const double acc = 100.0 * correct / kTest;
  std::printf("complex-valued matched-filter network, %d classes, all "
              "products on m3xu_cgemm\n",
              kClasses);
  std::printf("test accuracy: %.1f%% (chance %.1f%%)\n", acc,
              100.0 / kClasses);
  const bool ok = acc > 90.0;
  std::printf("%s\n", ok ? "complex NN OK" : "FAILED");
  return ok ? 0 : 1;
}
