// Frequency-domain image sharpening with the 2-D M3XU FFT: build a
// synthetic blurred "image", amplify its high-frequency band in the
// Fourier domain, and verify edge contrast recovers - the
// signal/image-processing workload class the paper's introduction
// motivates for FP32C hardware.
//
//   $ ./examples/image_sharpen
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "core/mxu.hpp"
#include "fft/gemm_fft.hpp"

using namespace m3xu;

namespace {

constexpr int kSize = 64;

double edge_contrast(const std::vector<std::complex<float>>& img) {
  // Mean absolute horizontal gradient.
  double acc = 0.0;
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c + 1 < kSize; ++c) {
      acc += std::fabs(img[r * kSize + c + 1].real() -
                       img[r * kSize + c].real());
    }
  }
  return acc / (kSize * (kSize - 1));
}

}  // namespace

int main() {
  // A crisp checkerboard, blurred with a separable 5-tap box filter.
  std::vector<float> crisp(kSize * kSize);
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      crisp[r * kSize + c] = ((r / 8 + c / 8) % 2) ? 1.0f : 0.0f;
    }
  }
  std::vector<std::complex<float>> img(kSize * kSize);
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      float acc = 0.0f;
      int taps = 0;
      for (int d = -2; d <= 2; ++d) {
        const int cc = c + d;
        if (cc >= 0 && cc < kSize) {
          acc += crisp[r * kSize + cc];
          ++taps;
        }
      }
      img[r * kSize + c] = {acc / taps, 0.0f};
    }
  }
  const double before = edge_contrast(img);

  // Sharpen: boost frequencies above 1/8 Nyquist by 2.2x.
  const core::M3xuEngine engine;
  fft::GemmFft2d fft(kSize, kSize, 16, &engine);
  fft.forward(img.data());
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      const int fr = r <= kSize / 2 ? r : kSize - r;
      const int fc = c <= kSize / 2 ? c : kSize - c;
      if (fr + fc > kSize / 8) img[r * kSize + c] *= 2.2f;
    }
  }
  fft.inverse(img.data());
  const double after = edge_contrast(img);

  std::printf("2-D spectral sharpening (%dx%d, M3XU FP32C FFT)\n", kSize,
              kSize);
  std::printf("  edge contrast: %.4f -> %.4f (%.2fx)\n", before, after,
              after / before);
  const bool ok = after > before * 1.5;
  std::printf("%s\n", ok ? "sharpening OK" : "FAILED");
  return ok ? 0 : 1;
}
