// Quantum-circuit simulation on the M3XU FP32C engine (one of the
// workloads the paper's introduction motivates: qubit states and gates
// are complex matrices).
//
// Builds a 5-qubit GHZ circuit and a 5-qubit QFT by composing full
// 32x32 gate unitaries with complex GEMMs on the engine, then applies
// them to basis states and checks the expected amplitude structure.
//
//   $ ./examples/quantum_sim
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"

using namespace m3xu;
using C = std::complex<float>;
using CMat = gemm::Matrix<C>;

namespace {

constexpr int kQubits = 5;
constexpr int kDim = 1 << kQubits;

CMat identity() {
  CMat m(kDim, kDim);
  m.fill({});
  for (int i = 0; i < kDim; ++i) m(i, i) = {1.0f, 0.0f};
  return m;
}

/// Lifts a 2x2 gate on `target` to the full register.
CMat one_qubit_gate(const C g[2][2], int target) {
  CMat m(kDim, kDim);
  m.fill({});
  const int bit = 1 << target;
  for (int col = 0; col < kDim; ++col) {
    const int b = (col & bit) ? 1 : 0;
    for (int a = 0; a < 2; ++a) {
      const int row = (col & ~bit) | (a ? bit : 0);
      m(row, col) = g[a][b];
    }
  }
  return m;
}

/// Controlled-phase gate between `control` and `target`.
CMat controlled_phase(int control, int target, double angle) {
  CMat m = identity();
  const int cb = 1 << control, tb = 1 << target;
  for (int i = 0; i < kDim; ++i) {
    if ((i & cb) && (i & tb)) {
      m(i, i) = {static_cast<float>(std::cos(angle)),
                 static_cast<float>(std::sin(angle))};
    }
  }
  return m;
}

CMat cnot(int control, int target) {
  CMat m(kDim, kDim);
  m.fill({});
  const int cb = 1 << control, tb = 1 << target;
  for (int col = 0; col < kDim; ++col) {
    const int row = (col & cb) ? (col ^ tb) : col;
    m(row, col) = {1.0f, 0.0f};
  }
  return m;
}

CMat hadamard(int target) {
  const float s = static_cast<float>(1.0 / std::sqrt(2.0));
  const C h[2][2] = {{{s, 0}, {s, 0}}, {{s, 0}, {-s, 0}}};
  return one_qubit_gate(h, target);
}

/// U = G * U via the M3XU complex GEMM.
void apply(const core::M3xuEngine& engine, const CMat& gate, CMat& u) {
  CMat out(kDim, kDim);
  out.fill({});
  engine.gemm_fp32c(kDim, kDim, kDim, gate.data(), kDim, u.data(), kDim,
                    out.data(), kDim);
  u = out;
}

std::vector<double> run(const core::M3xuEngine& engine, const CMat& u,
                        int basis_state) {
  std::vector<double> probs(kDim);
  for (int i = 0; i < kDim; ++i) {
    probs[static_cast<std::size_t>(i)] = std::norm(
        std::complex<double>(u(i, basis_state)));
  }
  return probs;
}

}  // namespace

int main() {
  const core::M3xuEngine engine;

  // GHZ: H(0) then CNOT chain.
  CMat ghz = identity();
  apply(engine, hadamard(0), ghz);
  for (int q = 0; q + 1 < kQubits; ++q) apply(engine, cnot(q, q + 1), ghz);
  const auto ghz_probs = run(engine, ghz, 0);
  std::printf("GHZ(|00000>): P(|0...0>) = %.6f, P(|1...1>) = %.6f\n",
              ghz_probs[0], ghz_probs[kDim - 1]);
  double ghz_other = 0.0;
  for (int i = 1; i < kDim - 1; ++i) ghz_other += ghz_probs[i];
  std::printf("             leakage to other states = %.2e\n", ghz_other);

  // QFT: Hadamards + controlled phases.
  CMat qft = identity();
  for (int q = kQubits - 1; q >= 0; --q) {
    apply(engine, hadamard(q), qft);
    for (int c = q - 1; c >= 0; --c) {
      apply(engine, controlled_phase(c, q, M_PI / (1 << (q - c))), qft);
    }
  }
  const auto qft_probs = run(engine, qft, 5);  // arbitrary basis input
  double min_p = 1.0, max_p = 0.0;
  for (double p : qft_probs) {
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  std::printf("QFT(|00101>): amplitudes uniform, P in [%.6f, %.6f] "
              "(ideal %.6f)\n",
              min_p, max_p, 1.0 / kDim);

  const bool ok = std::fabs(ghz_probs[0] - 0.5) < 1e-4 &&
                  std::fabs(ghz_probs[kDim - 1] - 0.5) < 1e-4 &&
                  ghz_other < 1e-8 && max_p - min_p < 1e-4;
  std::printf("%s\n", ok ? "quantum simulation OK" : "FAILED");
  return ok ? 0 : 1;
}
