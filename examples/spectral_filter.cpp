// Spectral filtering with the M3XU GEMM-based FFT (FP32C mode): build a
// noisy two-tone signal, transform it, zero everything outside the
// pass band, transform back, and report how much of each tone and of
// the noise survived.
//
//   $ ./examples/spectral_filter
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "fft/gemm_fft.hpp"

using namespace m3xu;

namespace {

// Inverse FFT via the conjugation identity ifft(x) = conj(fft(conj(x)))/n.
void inverse(const fft::GemmFft& f, std::complex<float>* data, int n) {
  for (int i = 0; i < n; ++i) data[i] = std::conj(data[i]);
  f.forward(data);
  for (int i = 0; i < n; ++i) {
    data[i] = std::conj(data[i]) / static_cast<float>(n);
  }
}

double tone_power(const std::vector<std::complex<float>>& x, int bin) {
  // Project onto the tone's complex exponential.
  const int n = static_cast<int>(x.size());
  std::complex<double> acc{};
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * bin * i / n;
    acc += std::complex<double>(x[i]) *
           std::exp(std::complex<double>(0.0, -ang));
  }
  return std::norm(acc / static_cast<double>(n));
}

}  // namespace

int main() {
  const int n = 4096;
  const int tone_keep = 200;  // inside the pass band
  const int tone_cut = 1400;  // outside
  const core::M3xuEngine engine;
  const fft::GemmFft f(n, 16, &engine);

  Rng rng(21);
  std::vector<std::complex<float>> x(n);
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * M_PI * i / n;
    const double v = std::sin(tone_keep * t) + 0.8 * std::sin(tone_cut * t) +
                     0.3 * rng.normal();
    x[i] = {static_cast<float>(v), 0.0f};
  }
  const double keep_before = tone_power(x, tone_keep);
  const double cut_before = tone_power(x, tone_cut);

  // Band-pass 100..400 cycles (and the mirrored negative frequencies).
  f.forward(x.data());
  for (int kk = 0; kk < n; ++kk) {
    const int freq = kk <= n / 2 ? kk : n - kk;
    if (freq < 100 || freq > 400) x[kk] = {0.0f, 0.0f};
  }
  inverse(f, x.data(), n);

  const double keep_after = tone_power(x, tone_keep);
  const double cut_after = tone_power(x, tone_cut);
  std::printf("band-pass 100..400 on a %d-sample signal (M3XU FP32C FFT)\n",
              n);
  std::printf("  tone %4d (in band):  power %.4f -> %.4f (kept %.1f%%)\n",
              tone_keep, keep_before, keep_after,
              100.0 * keep_after / keep_before);
  std::printf("  tone %4d (out band): power %.4f -> %.4f (kept %.3f%%)\n",
              tone_cut, cut_before, cut_after,
              100.0 * cut_after / cut_before);
  const bool ok = keep_after / keep_before > 0.99 &&
                  cut_after / cut_before < 1e-4;
  std::printf("%s\n", ok ? "filtering OK" : "filtering FAILED");
  return ok ? 0 : 1;
}
