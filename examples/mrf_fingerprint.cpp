// MRF fingerprinting end to end: generate a (T1,T2) dictionary,
// compress it with the M3XU complex GEMM, acquire noisy signals from
// unknown tissues, and recover their relaxation parameters by
// dictionary matching - the SnapMRF workflow of the paper's SVI-C3
// case study, run functionally.
//
//   $ ./examples/mrf_fingerprint
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "mrf/dictionary.hpp"

using namespace m3xu;
using namespace m3xu::mrf;

int main() {
  const MrfConfig cfg = MrfConfig::small_grid();
  const core::M3xuEngine engine;

  const Dictionary dict = generate_dictionary(cfg);
  const auto basis = compression_basis(96, cfg.timepoints);
  const auto compressed =
      compress(dict, basis, gemm::CgemmKernel::kM3xu, engine);
  std::printf("dictionary: %d atoms x %d timepoints, compressed to rank "
              "%d via m3xu_cgemm\n\n",
              dict.atoms(), dict.timepoints(), basis.rows());

  // "Acquire" three tissues (white matter / gray matter / CSF-like)
  // with additive measurement noise, then match.
  struct Tissue {
    const char* name;
    double t1;
    double t2;
  };
  const Tissue tissues[] = {
      {"white-matter-like", 800.0, 70.0},
      {"gray-matter-like", 1300.0, 110.0},
      {"fluid-like", 2000.0, 250.0},
  };
  Rng rng(11);
  std::printf("%-20s %-16s %-16s %s\n", "tissue", "true (T1,T2) ms",
              "matched (T1,T2)", "grid error");
  bool ok = true;
  for (const Tissue& tissue : tissues) {
    auto sig = simulate_signal(tissue.t1, tissue.t2, cfg);
    for (auto& v : sig) {
      v += std::complex<double>(rng.normal(), rng.normal()) * 0.002;
    }
    const int atom =
        match(compressed, basis, sig, gemm::CgemmKernel::kM3xu, engine);
    const auto [t1, t2] = dict.params[static_cast<std::size_t>(atom)];
    const double err = std::max(std::fabs(std::log(t1 / tissue.t1)),
                                std::fabs(std::log(t2 / tissue.t2)));
    // The grid is 1.35x-spaced: within one step is a correct match.
    const bool hit = err < std::log(1.36);
    ok = ok && hit;
    char truth[32], found[32];
    std::snprintf(truth, sizeof(truth), "(%.0f, %.0f)", tissue.t1,
                  tissue.t2);
    std::snprintf(found, sizeof(found), "(%.0f, %.0f)", t1, t2);
    std::printf("%-20s %-16s %-16s %s\n", tissue.name, truth, found,
                hit ? "within 1 step" : "MISS");
  }
  std::printf("\n%s\n", ok ? "fingerprint matching OK" : "FAILED");
  return ok ? 0 : 1;
}
