// GEMM-based k-nearest-neighbor classification on a synthetic Gaussian
// mixture, with the distance SGEMM running in the M3XU FP32 mode (the
// paper's statistical-learning case study: KNN is GEMM-intensive but
// precision-sensitive).
//
//   $ ./examples/knn_classify
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "knn/knn.hpp"

using namespace m3xu;

namespace {

constexpr int kClasses = 4;
constexpr int kDims = 16;

void sample(Rng& rng, int cls, float* out) {
  // Class centers on coordinate axes, sigma 0.35.
  for (int d = 0; d < kDims; ++d) {
    out[d] = static_cast<float>(rng.normal()) * 0.35f +
             (d == cls * 3 ? 1.0f : 0.0f);
  }
}

}  // namespace

int main() {
  Rng rng(33);
  const int train_n = 800, test_n = 200, k = 9;
  gemm::Matrix<float> train(train_n, kDims), test(test_n, kDims);
  std::vector<int> train_labels(train_n), test_labels(test_n);
  for (int i = 0; i < train_n; ++i) {
    train_labels[i] = static_cast<int>(rng.next_below(kClasses));
    sample(rng, train_labels[i], train.data() + i * kDims);
  }
  for (int i = 0; i < test_n; ++i) {
    test_labels[i] = static_cast<int>(rng.next_below(kClasses));
    sample(rng, test_labels[i], test.data() + i * kDims);
  }

  const core::M3xuEngine engine;
  const knn::KnnResult res =
      knn::knn_search(test, train, k, gemm::SgemmKernel::kM3xu, engine);

  int correct = 0;
  for (int i = 0; i < test_n; ++i) {
    int votes[kClasses] = {0};
    for (int j = 0; j < k; ++j) ++votes[train_labels[res.indices[i][j]]];
    int best = 0;
    for (int c = 1; c < kClasses; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    correct += best == test_labels[i];
  }
  const double acc = 100.0 * correct / test_n;
  std::printf("k-NN (k=%d) on %d train / %d test points, %d classes, "
              "distance SGEMM on m3xu_sgemm\n",
              k, train_n, test_n, kClasses);
  std::printf("accuracy: %.1f%%\n", acc);
  std::printf("%s\n", acc > 85.0 ? "classification OK" : "FAILED");
  return acc > 85.0 ? 0 : 1;
}
