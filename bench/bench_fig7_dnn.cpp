// Reproduces Fig. 7: end-to-end single-iteration training latency of
// AlexNet / VGG-16 / ResNet-18 under conventional mixed-precision
// training (fwd FP16 TC, bwd SIMT FP32) vs M3XU-accelerated backward.
//
// Paper targets: M3XU 1.65x average end-to-end; backward accounts for
// 39.6 / 39.1 / 46.5% of baseline runtime (VGG / ResNet / AlexNet);
// backward speedup 3.6x.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dnn/training_time.hpp"

using namespace m3xu;
using namespace m3xu::dnn;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int batch = static_cast<int>(cli.get_int("batch", 32));
  const sim::GpuSim gpu(sim::GpuConfig::a100());

  std::printf("== Fig 7: single-iteration training latency (batch %d) ==\n",
              batch);
  Table t({"network", "baseline ms", "m3xu ms", "e2e speedup",
           "bwd share (baseline)", "bwd share (paper)", "bwd speedup"});
  std::vector<double> speedups;
  std::vector<double> bwd_speedups;
  std::vector<Network> nets = {alexnet(batch), vgg16(batch),
                               resnet18(batch)};
  if (cli.get_bool("resnet50", false)) nets.push_back(resnet50(batch));
  for (const Network& net : nets) {
    // ResNet-50 is not in the paper's figure; reuse ResNet-18's share.
    const double share = net.name == "ResNet-50"
                             ? paper_backward_share("ResNet-18")
                             : paper_backward_share(net.name);
    const IterationTime base =
        time_iteration(gpu, net, TrainingMode::kMixedPrecision, share);
    const IterationTime m3 =
        time_iteration(gpu, net, TrainingMode::kM3xu, share);
    const double e2e = base.total() / m3.total();
    const double bwd = base.backward_seconds / m3.backward_seconds;
    speedups.push_back(e2e);
    bwd_speedups.push_back(bwd);
    t.add_row({net.name, Table::num(base.total() * 1e3, 2),
               Table::num(m3.total() * 1e3, 2), Table::speedup(e2e),
               Table::pct(base.backward_share()),
               net.name == "ResNet-50" ? std::string("n/a")
                                       : Table::pct(share),
               Table::speedup(bwd)});
  }
  t.print();
  std::printf("\naverage e2e speedup: %.2fx (paper: 1.65x); average "
              "backward speedup: %.2fx (paper: 3.6x)\n",
              summarize(speedups).mean, summarize(bwd_speedups).mean);
  std::printf("(Framework overhead is calibrated so the baseline backward "
              "share matches the paper's measured breakdown; the speedups "
              "are model outputs. See EXPERIMENTS.md.)\n");
  return 0;
}
