// Memory-bandwidth ablation (SII-B's core system argument): a naive
// full-rate FP32-MXU is starved by the memory system that feeds an
// FP16 MXU, while M3XU is sized so FP32 GEMM hits its compute target
// under the *existing* bandwidth. Sweeping DRAM bandwidth shows where
// each design's roofline sits.
#include <cstdio>

#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main() {
  std::printf("== SII-B ablation: achieved FP32 GEMM TFLOPS vs DRAM "
              "bandwidth (8K^3) ==\n");
  Table t({"DRAM (TB/s)", "m3xu_sgemm TF", "% of 78 TF target",
           "fp32_mxu TF", "% of 312 TF target", "fp16 hgemm TF"});
  const long s = 8192;
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    GpuConfig cfg = GpuConfig::a100();
    cfg.dram_bandwidth_gbs *= scale;
    // The front-end L2 path scales with the same interface width.
    cfg.l2_bandwidth_bytes_per_sm_cycle *= scale;
    const GpuSim gpu(cfg);
    const GemmTime m3 = time_sgemm(gpu, SgemmVariant::kM3xu, s, s, s);
    const GemmTime fm = time_sgemm(gpu, SgemmVariant::kFp32Mxu, s, s, s);
    const GemmTime hg = time_hgemm(gpu, s, s, s);
    t.add_row({Table::num(cfg.dram_bandwidth_gbs / 1000.0, 2),
               Table::num(m3.achieved_flops / 1e12, 1),
               Table::pct(m3.achieved_flops / 78e12),
               Table::num(fm.achieved_flops / 1e12, 1),
               Table::pct(fm.achieved_flops / 312e12),
               Table::num(hg.achieved_flops / 1e12, 1)});
  }
  t.print();
  std::printf("\nAt the A100's real 1.56 TB/s (row 3), M3XU already runs "
              "at ~100%% of its 78 TFLOPS target. The 3.55x-area, 8x-power "
              "FP32-MXU only approaches its 312 TFLOPS with a ~2x richer "
              "memory system (row 4) - on an interface sized for FP16 "
              "streams (row 2, half bandwidth) it delivers ~41%% of peak, "
              "matching the paper's 'only 50%% of their peak' estimate "
              "(SII-B). L2 tile reuse softens the starvation at nominal "
              "bandwidth, but the area/power bill remains; hence "
              "contribution 3: M3XU is the most efficient design for "
              "memory-bandwidth-limited systems.\n");
  return 0;
}
