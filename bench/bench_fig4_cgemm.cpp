// Reproduces Fig. 4(b): complex GEMM (FP32C) speedup over SIMT CUDA
// cores for problem sizes 1K^3 .. 16K^3.
//
// Paper targets: M3XU avg 3.51x, up to 3.82x; 3xTF32 complex emulation
// up to 2.1x; non-pipelined M3XU avg 3.51x (text) / 3.35x for FP32.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const long max_size = cli.get_int("max-size", 16384);

  const GpuSim gpu(GpuConfig::a100());
  std::printf("== Fig 4(b): CGEMM speedup over cutlass_simt_cgemm ==\n");
  Table table({"size", "simt TFLOPS", "3xTF32 complex",
               "m3xu (non-pipelined)", "m3xu (pipelined)"});
  std::vector<double> m3xu_speedups;
  double m3xu_max = 0.0;
  for (long size = 1024; size <= max_size; size *= 2) {
    const GemmTime simt =
        time_cgemm(gpu, CgemmVariant::kSimt, size, size, size);
    const GemmTime tf32 =
        time_cgemm(gpu, CgemmVariant::kTensorOp3xTf32, size, size, size);
    const GemmTime np =
        time_cgemm(gpu, CgemmVariant::kM3xuNonPipelined, size, size, size);
    const GemmTime m3 = time_cgemm(gpu, CgemmVariant::kM3xu, size, size,
                                   size);
    m3xu_speedups.push_back(simt.seconds / m3.seconds);
    m3xu_max = std::max(m3xu_max, simt.seconds / m3.seconds);
    table.add_row({std::to_string(size),
                   Table::num(simt.achieved_flops / 1e12, 2),
                   Table::speedup(simt.seconds / tf32.seconds),
                   Table::speedup(simt.seconds / np.seconds),
                   Table::speedup(simt.seconds / m3.seconds)});
  }
  table.print();

  const Summary s = summarize(m3xu_speedups);
  std::printf("\nm3xu_cgemm speedup: avg %.2fx (paper: 3.51x), "
              "max %.2fx (paper: 3.82x)\n",
              s.mean, m3xu_max);
  return 0;
}
