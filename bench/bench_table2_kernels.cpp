// Reproduces Tables II and IV: the kernel inventory of the evaluation,
// with each kernel's live characteristics measured from this library -
// functional precision (ULP profile on a 64x64x512 well-conditioned
// GEMM) and simulated throughput at 8K^3.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"
#include "gemm/ulp.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;

namespace {

std::string precision_of(gemm::SgemmKernel kernel) {
  const core::M3xuEngine engine;
  Rng rng(42);
  const int m = 64, n = 64, k = 512;
  gemm::Matrix<float> a(m, k), b(k, n), c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.uniform(0.25f, 1.0f);
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(0.25f, 1.0f);
  }
  c.fill(0.0f);
  gemm::Matrix<double> exact(m, n);
  exact.fill(0.0);
  gemm::exact_gemm(a, b, exact);
  gemm::run_sgemm(kernel, engine, a, b, c);
  gemm::UlpHistogram h;
  h.add_matrix(c, exact);
  return h.summary();
}

}  // namespace

int main() {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const long s = 8192;

  std::printf("== Table IV: FP32 kernel inventory ==\n");
  Table t({"name", "compute type", "precision behavior (ULP vs exact)",
           "sim TFLOPS (8K^3)"});
  struct Row {
    gemm::SgemmKernel functional;
    sim::SgemmVariant timed;
    const char* type;
  };
  const Row rows[] = {
      {gemm::SgemmKernel::kSimt, sim::SgemmVariant::kSimt, "SIMT"},
      {gemm::SgemmKernel::kTensorOp3xTf32, sim::SgemmVariant::kTensorOp3xTf32,
       "TensorOp (3xTF32)"},
      {gemm::SgemmKernel::kEehc3xBf16, sim::SgemmVariant::kEehc3xBf16,
       "TensorOp (3xBF16)"},
      {gemm::SgemmKernel::kM3xu, sim::SgemmVariant::kM3xu,
       "M3XU FP32 mode"},
  };
  for (const Row& r : rows) {
    const sim::GemmTime time = sim::time_sgemm(gpu, r.timed, s, s, s);
    t.add_row({gemm::kernel_name(r.functional), r.type,
               precision_of(r.functional),
               Table::num(time.achieved_flops / 1e12, 1)});
  }
  t.print();

  std::printf("\n== Table II: M3XU emulation-framework kernels "
              "(SV-B contracts realized by the simulator) ==\n");
  Table t2({"name", "contract", "sim check"});
  const sim::GemmTime fp16 = sim::time_hgemm(gpu, s, s, s);
  const sim::GemmTime m3 = sim::time_sgemm(gpu, sim::SgemmVariant::kM3xu, s,
                                           s, s);
  const sim::GemmTime m3np = sim::time_sgemm(
      gpu, sim::SgemmVariant::kM3xuNonPipelined, s, s, s);
  const sim::GemmTime cm3 = sim::time_cgemm(gpu, sim::CgemmVariant::kM3xu, s,
                                            s, s);
  t2.add_row({"M3XU_sgemm_pipelined", "2x MMA count, 2x latency vs FP16",
              Table::num(static_cast<double>(m3.detail.mma_instructions) /
                             fp16.detail.mma_instructions,
                         2) +
                  "x instructions"});
  t2.add_row({"M3XU_sgemm", "as above at 1/1.21 clock",
              Table::speedup(m3np.seconds / m3.seconds) + " slower"});
  t2.add_row({"M3XU_cgemm_pipelined", "4x MMA count, 4x latency vs FP16",
              Table::num(static_cast<double>(cm3.detail.mma_instructions) /
                             fp16.detail.mma_instructions,
                         2) +
                  "x instructions"});
  t2.add_row({"M3XU_cgemm", "as above at 1/1.21 clock", "(same scaling)"});
  t2.print();
  return 0;
}
