// Reproduces Fig. 9: KNN speedup heatmap over the cublas_sgemm-based
// kNN-CUDA baseline - reference/query points 2048..65536, dimensions
// 512..4096, K = 16.
//
// Paper target: speedup grows with input size/dimension (the GEMM share
// grows) and tops at ~1.8x.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "knn/knn_timing.hpp"

using namespace m3xu;
using namespace m3xu::knn;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 16));
  const sim::GpuSim gpu(sim::GpuConfig::a100());

  std::printf("== Fig 9: KNN speedup heatmap (K=%d) ==\n", k);
  const std::vector<long> sizes = {2048, 8192, 16384, 65536};
  const std::vector<long> dims = {512, 1024, 2048, 4096};
  Table t({"points \\ dims", "512", "1024", "2048", "4096"});
  double top = 0.0;
  for (long size : sizes) {
    std::vector<std::string> row = {std::to_string(size)};
    for (long d : dims) {
      const KnnTime base = time_knn(gpu, size, size, d, k, false);
      const KnnTime m3 = time_knn(gpu, size, size, d, k, true);
      const double sp = base.seconds / m3.seconds;
      top = std::max(top, sp);
      row.push_back(Table::speedup(sp));
    }
    t.add_row(row);
  }
  t.print();

  std::printf("\nGEMM share of baseline runtime (drives the gradient):\n");
  Table t2({"points \\ dims", "512", "1024", "2048", "4096"});
  for (long size : sizes) {
    std::vector<std::string> row = {std::to_string(size)};
    for (long d : dims) {
      row.push_back(
          Table::pct(time_knn(gpu, size, size, d, k, false).gemm_fraction()));
    }
    t2.add_row(row);
  }
  t2.print();
  std::printf("\ntop speedup %.2fx (paper: tops at 1.8x)\n", top);
  return 0;
}
