// Reproduces Fig. 5(c)/(d): achieved throughput relative to the
// theoretical performance target (SGEMM target = 25% of FP16 TC TOPS;
// CGEMM target = 6.25%).
//
// Paper: M3XU kernels reach >94% of the target; software solutions top
// out at 63%.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const long size = cli.get_int("size", 8192);
  const GpuSim gpu(GpuConfig::a100());
  const GpuConfig& cfg = gpu.config();

  std::printf("== Fig 5(c): SGEMM %% of theoretical target (25%% of FP16 "
              "TC = %.1f TFLOPS), size %ld^3 ==\n",
              cfg.m3xu_fp32_peak() / 1e12, size);
  Table ta({"kernel", "achieved TFLOPS", "% of target"});
  const std::vector<SgemmVariant> sv = {
      SgemmVariant::kTensorOp3xTf32, SgemmVariant::kEehc3xBf16,
      SgemmVariant::kM3xuNonPipelined, SgemmVariant::kM3xu};
  for (SgemmVariant v : sv) {
    const GemmTime t = time_sgemm(gpu, v, size, size, size);
    ta.add_row({variant_name(v), Table::num(t.achieved_flops / 1e12, 1),
                Table::pct(t.achieved_flops / cfg.m3xu_fp32_peak())});
  }
  ta.print();

  std::printf("\n== Fig 5(d): CGEMM %% of theoretical target (6.25%% of "
              "FP16 TC complex-op rate = %.1f TFLOPS) ==\n",
              cfg.m3xu_fp32c_peak() / 1e12);
  Table tb({"kernel", "achieved TFLOPS", "% of target"});
  const std::vector<CgemmVariant> cv = {CgemmVariant::kTensorOp3xTf32,
                                        CgemmVariant::kM3xuNonPipelined,
                                        CgemmVariant::kM3xu};
  for (CgemmVariant v : cv) {
    const GemmTime t = time_cgemm(gpu, v, size, size, size);
    tb.add_row({variant_name(v), Table::num(t.achieved_flops / 1e12, 1),
                Table::pct(t.achieved_flops / cfg.m3xu_fp32c_peak())});
  }
  tb.print();
  std::printf("\nPaper: M3XU kernels >94%% of target; software <=63%%. The "
              "non-pipelined M3XU runs at a 1/1.21 clock, so its %% is "
              "measured against the full-clock target, as in the paper.\n");
  return 0;
}
