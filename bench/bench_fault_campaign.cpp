// Fault-injection campaign over the ABFT-guarded tiled SGEMM: sweeps
// single-bit flip rates across the four datapath sites and emits a
// JSON SDC-coverage table (detected / corrected / escaped counts per
// cell). The headline check: at per-opportunity rates >= 1e-4 the
// guard detects >= 99% of guaranteed-detectable corruptions and the
// detect/recompute protocol restores the fault-free result bitwise.
//
// Flags: --m/--n/--k geometry (must fit one tile), --trials per cell,
// --seed, --rates=comma,separated, --tolerance-scale, --max-recompute,
// --json-only to suppress the human-readable summary.
//
// Exit status: nonzero when any campaign cell escaped an SDC, so CI
// can gate on coverage directly.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "fault/campaign.hpp"

using namespace m3xu;

namespace {

std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    try {
      std::size_t used = 0;
      const double rate = std::stod(item, &used);
      if (used != item.size() || rate < 0.0 || rate > 1.0) throw 0;
      rates.push_back(rate);
    } catch (...) {
      std::fprintf(stderr,
                   "bench_fault_campaign: bad --rates entry '%s' (want "
                   "comma-separated probabilities in [0,1])\n",
                   item.c_str());
      std::exit(2);
    }
    pos = comma + 1;
  }
  if (rates.empty()) {
    std::fprintf(stderr, "bench_fault_campaign: --rates must be non-empty\n");
    std::exit(2);
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  fault::CampaignConfig config;
  config.m = static_cast<int>(cli.get_int("m", config.m));
  config.n = static_cast<int>(cli.get_int("n", config.n));
  config.k = static_cast<int>(cli.get_int("k", config.k));
  config.trials = static_cast<int>(cli.get_int("trials", config.trials));
  config.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.rates = parse_rates(cli.get("rates", "1e-5,1e-4,1e-3"));
  config.abft.tolerance_scale =
      cli.get_double("tolerance-scale", config.abft.tolerance_scale);
  config.abft.max_recompute = static_cast<int>(
      cli.get_int("max-recompute", config.abft.max_recompute));
  // Grow the tile with the geometry so the campaign stays single-tile.
  config.tile.block_m = ((config.m + 15) / 16) * 16;
  config.tile.block_n = ((config.n + 15) / 16) * 16;

  const fault::CampaignResult result = fault::run_campaign(config);

  if (!cli.get_bool("json-only", false)) {
    std::printf("== Fault campaign: ABFT-guarded tiled SGEMM (%dx%dx%d, "
                "%d trials/cell) ==\n",
                config.m, config.n, config.k, config.trials);
    std::printf("%-16s %-9s %8s %9s %10s %9s %9s %8s\n", "site", "rate",
                "faults", "corrupt", "detected", "corrected", "escaped",
                "det%");
    for (const fault::CampaignCell& cell : result.cells) {
      std::printf("%-16s %-9.1e %8ld %9d %10d %9d %9d %7.1f%%\n",
                  fault::site_name(cell.site), cell.rate,
                  cell.faults_injected, cell.corrupting, cell.detected,
                  cell.corrected, cell.escaped_sdc,
                  100.0 * cell.detection_rate());
    }
    std::printf("\noverall: %ld faults, %d corrupting trials, %d escaped "
                "(detection %.2f%%)\n\n",
                result.total_faults(), result.total_corrupting(),
                result.total_escaped_sdc(),
                100.0 * result.overall_detection_rate());
  }
  std::printf("%s", fault::to_json(result).c_str());
  // CI gate: any silent-data-corruption escape fails the run.
  return result.total_escaped_sdc() > 0 ? 1 : 0;
}
