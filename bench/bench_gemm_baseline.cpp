// GEMM throughput baseline across the three M3XU routes: per-dot
// (re-running the data-assignment split inside the (i, j, k-chunk)
// loop), packed (split once per panel, stream lane operands, one
// output element at a time), and the register-blocked microkernel
// (packed panels + 4x4 output blocks with pack-time exponent prescan).
// Emits BENCH_gemm.json so later PRs have a perf trajectory to regress
// against; also verifies all routes produce bit-identical C before
// reporting.
//
// Flags: --m/--n/--k sgemm geometry (default 512^3), --cm/--cn/--ck
// cgemm geometry (default 192^3, per-dot complex is ~4x the scalar
// cost), --reps timed repetitions per case (median reported),
// --warmup untimed repetitions per case, --seed, --out=path (default
// BENCH_gemm.json), --json-only to suppress the human-readable table.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/microkernel.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

using namespace m3xu;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The pre-packed-path kM3xu kernel route: fixed 32-row blocks on the
/// global pool, each calling the per-dot engine GEMM.
template <typename T, typename GemmFn>
void per_dot_row_blocks(int m, const GemmFn& gemm) {
  constexpr int kBlock = 32;
  const int blocks = (m + kBlock - 1) / kBlock;
  parallel_for(static_cast<std::size_t>(blocks), [&](std::size_t b) {
    const int r0 = static_cast<int>(b) * kBlock;
    gemm(r0, std::min(kBlock, m - r0));
  });
}

struct Case {
  std::string name;
  int m, n, k;
  double seconds;  // median of reps
  double gflops;
};

template <typename Fn>
Case time_case(const std::string& name, int m, int n, int k,
               double flops_per_mnk, int reps, int warmup, const Fn& fn) {
  for (int r = 0; r < warmup; ++r) fn();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    times.push_back(now_seconds() - t0);
  }
  std::sort(times.begin(), times.end());
  // Median: middle sample, or mean of the middle two for even reps.
  const std::size_t h = times.size() / 2;
  const double med = times.size() % 2 != 0
                         ? times[h]
                         : 0.5 * (times[h - 1] + times[h]);
  const double flops = flops_per_mnk * static_cast<double>(m) * n * k;
  return {name, m, n, k, med, flops / med / 1e9};
}

/// Short git revision of the working tree, or "unknown" outside a
/// checkout (the bench usually runs from the build directory, still
/// inside the repository).
std::string git_revision() {
  std::string rev = "unknown";
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) rev = s;
    }
    ::pclose(p);
  }
  return rev;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int m = static_cast<int>(cli.get_int("m", 512));
  const int n = static_cast<int>(cli.get_int("n", 512));
  const int k = static_cast<int>(cli.get_int("k", 512));
  const int cm = static_cast<int>(cli.get_int("cm", 192));
  const int cn = static_cast<int>(cli.get_int("cn", 192));
  const int ck = static_cast<int>(cli.get_int("ck", 192));
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  const int warmup = static_cast<int>(cli.get_int("warmup", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 12345));
  const std::string out = cli.get("out", "BENCH_gemm.json");

  Rng rng(seed);
  // Per-dot and microkernel routes share the default engine (the
  // per-dot entry points never reach the microkernel); the packed case
  // pins the one-element-at-a-time packed path for comparison.
  const core::M3xuEngine engine;
  core::M3xuConfig packed_cfg;
  packed_cfg.enable_microkernel = false;
  const core::M3xuEngine engine_packed(packed_cfg);
  std::vector<Case> cases;
  bool bit_identical = true;

  {
    gemm::Matrix<float> a(m, k), b(k, n);
    gemm::Matrix<float> c_perdot(m, n), c_packed(m, n), c_micro(m, n);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    cases.push_back(time_case(
        "m3xu_sgemm_perdot", m, n, k, 2.0, reps, warmup, [&] {
          c_perdot.fill(0.0f);
          per_dot_row_blocks<float>(m, [&](int r0, int rc) {
            engine.gemm_fp32(rc, n, k,
                             a.data() + static_cast<std::size_t>(r0) * a.ld(),
                             a.ld(), b.data(), b.ld(),
                             c_perdot.data() +
                                 static_cast<std::size_t>(r0) * c_perdot.ld(),
                             c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_sgemm_packed", m, n, k, 2.0, reps, warmup, [&] {
          c_packed.fill(0.0f);
          gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine_packed, a, b,
                          c_packed);
        }));
    cases.push_back(time_case(
        "m3xu_sgemm_microkernel", m, n, k, 2.0, reps, warmup, [&] {
          c_micro.fill(0.0f);
          gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine, a, b, c_micro);
        }));
    bit_identical = bit_identical &&
                    std::memcmp(c_perdot.data(), c_packed.data(),
                                c_perdot.size() * sizeof(float)) == 0 &&
                    std::memcmp(c_perdot.data(), c_micro.data(),
                                c_perdot.size() * sizeof(float)) == 0;
  }

  {
    gemm::Matrix<std::complex<float>> a(cm, ck), b(ck, cn);
    gemm::Matrix<std::complex<float>> c_perdot(cm, cn), c_packed(cm, cn);
    gemm::Matrix<std::complex<float>> c_micro(cm, cn);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    // 8 real flops per complex multiply-add.
    cases.push_back(time_case(
        "m3xu_cgemm_perdot", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_perdot.fill({});
          per_dot_row_blocks<std::complex<float>>(cm, [&](int r0, int rc) {
            engine.gemm_fp32c(
                rc, cn, ck, a.data() + static_cast<std::size_t>(r0) * a.ld(),
                a.ld(), b.data(), b.ld(),
                c_perdot.data() + static_cast<std::size_t>(r0) * c_perdot.ld(),
                c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_cgemm_packed", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_packed.fill({});
          gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine_packed, a, b,
                          c_packed);
        }));
    cases.push_back(time_case(
        "m3xu_cgemm_microkernel", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_micro.fill({});
          gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine, a, b, c_micro);
        }));
    bit_identical =
        bit_identical &&
        std::memcmp(c_perdot.data(), c_packed.data(),
                    c_perdot.size() * sizeof(std::complex<float>)) == 0 &&
        std::memcmp(c_perdot.data(), c_micro.data(),
                    c_perdot.size() * sizeof(std::complex<float>)) == 0;
  }

  const double sgemm_speedup = cases[0].seconds / cases[1].seconds;
  const double sgemm_micro_speedup = cases[1].seconds / cases[2].seconds;
  const double cgemm_speedup = cases[3].seconds / cases[4].seconds;
  const double cgemm_micro_speedup = cases[4].seconds / cases[5].seconds;

  const std::string rev = git_revision();
  const std::size_t threads = ThreadPool::global().thread_count();
  const bool simd = core::microkernel_simd_active();

  if (!cli.get_bool("json-only", false)) {
    std::printf("== GEMM baseline: per-dot vs packed vs microkernel ==\n");
    std::printf("%-24s %6s %6s %6s %10s %10s\n", "case", "m", "n", "k",
                "seconds", "GFLOP/s");
    for (const Case& c : cases) {
      std::printf("%-24s %6d %6d %6d %10.3f %10.3f\n", c.name.c_str(), c.m,
                  c.n, c.k, c.seconds, c.gflops);
    }
    std::printf("\nsgemm: packed %.2fx over per-dot, microkernel %.2fx over "
                "packed\ncgemm: packed %.2fx over per-dot, microkernel %.2fx "
                "over packed\nbit-identical: %s   simd: %s   threads: %zu\n\n",
                sgemm_speedup, sgemm_micro_speedup, cgemm_speedup,
                cgemm_micro_speedup, bit_identical ? "yes" : "NO",
                simd ? "avx2" : "scalar", threads);
  }

  std::string json = "{\n  \"benchmark\": \"gemm_baseline\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"warmup\": " + std::to_string(warmup) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"timing\": \"median_of_reps\",\n";
  json += "  \"environment\": {\n";
  json += "    \"threads\": " + std::to_string(threads) + ",\n";
  json += "    \"compiler\": \"" + json_escape(__VERSION__) + "\",\n";
  json += "    \"git_rev\": \"" + json_escape(rev) + "\",\n";
  json += std::string("    \"microkernel_simd\": ") +
          (simd ? "true" : "false") + "\n  },\n";
  json += "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"m\": %d, \"n\": %d, \"k\": %d, "
                  "\"seconds\": %.6f, \"gflops\": %.6f}%s\n",
                  cases[i].name.c_str(), cases[i].m, cases[i].n, cases[i].k,
                  cases[i].seconds, cases[i].gflops,
                  i + 1 < cases.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"sgemm_speedup_packed_vs_perdot\": %.3f,\n"
                "  \"sgemm_speedup_microkernel_vs_packed\": %.3f,\n"
                "  \"cgemm_speedup_packed_vs_perdot\": %.3f,\n"
                "  \"cgemm_speedup_microkernel_vs_packed\": %.3f,\n"
                "  \"bit_identical\": %s\n}\n",
                sgemm_speedup, sgemm_micro_speedup, cgemm_speedup,
                cgemm_micro_speedup, bit_identical ? "true" : "false");
  json += buf;

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_gemm_baseline: cannot write %s\n",
                 out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  return bit_identical ? 0 : 1;
}
