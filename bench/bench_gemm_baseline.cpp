// GEMM throughput baseline across the three M3XU routes: per-dot
// (re-running the data-assignment split inside the (i, j, k-chunk)
// loop), packed (split once per panel, stream lane operands, one
// output element at a time), and the register-blocked microkernel
// (packed panels + 4x4 output blocks with pack-time exponent prescan).
// Emits BENCH_gemm.json so later PRs have a perf trajectory to regress
// against; also verifies all routes produce bit-identical C before
// reporting. Timing, JSON emission, and route attribution all go
// through src/telemetry: each case brackets its timed reps with
// registry snapshots, and the counter deltas become the
// "route_hit_rates" section of the report (all-zero rates in
// M3XU_TELEMETRY=OFF builds).
//
// Flags: --m/--n/--k sgemm geometry (default 512^3), --cm/--cn/--ck
// cgemm geometry (default 192^3, per-dot complex is ~4x the scalar
// cost), --reps timed repetitions per case (median reported),
// --warmup untimed repetitions per case, --seed, --out=path (default
// BENCH_gemm.json), --trace=path for a Chrome trace_event JSON of the
// run, --metrics=path for the standalone telemetry metrics export,
// --json-only to suppress the human-readable table, --threads=N to
// size the global pool (must win the race to the first pool use, so it
// is applied straight from flag parsing), --thread-sweep=1,2,4 to
// additionally run every route through the threaded tiled driver on a
// dedicated pool per listed size - each point is gated bitwise against
// the single-threaded per-dot reference and recorded as a
// "thread_scaling" curve (seconds / GFLOP/s / speedup vs the
// single-thread point) labeled with the microkernel variant that
// actually ran, --plan to
// additionally benchmark the compile-then-execute GemmPlan layer:
// compile+prepack cost, first-execute cost, repeat-execute median,
// whether repeat executes amortize compilation, and a bit-identity
// check of the plan result against the per-dot reference (folded into
// the exit gate).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/microkernel.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

using namespace m3xu;

namespace {

/// The pre-packed-path kM3xu kernel route: fixed 32-row blocks on the
/// global pool, each calling the per-dot engine GEMM.
template <typename T, typename GemmFn>
void per_dot_row_blocks(int m, const GemmFn& gemm) {
  constexpr int kBlock = 32;
  const int blocks = (m + kBlock - 1) / kBlock;
  parallel_for(static_cast<std::size_t>(blocks), [&](std::size_t b) {
    const int r0 = static_cast<int>(b) * kBlock;
    gemm(r0, std::min(kBlock, m - r0));
  });
}

struct Case {
  std::string name;
  int m, n, k;
  double seconds;  // median of reps
  double gflops;
  // Registry snapshots bracketing the timed reps; the delta attributes
  // engine routes (fused vs fallback chunks, microkernel blocks vs
  // edge elements) to this case.
  telemetry::Snapshot before, after;
};

template <typename Fn>
Case time_case(const std::string& name, int m, int n, int k,
               double flops_per_mnk, int reps, int warmup, const Fn& fn) {
  for (int r = 0; r < warmup; ++r) fn();
  Case out;
  out.before = telemetry::snapshot();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const telemetry::Stopwatch sw;
    fn();
    times.push_back(sw.seconds());
  }
  out.after = telemetry::snapshot();
  std::sort(times.begin(), times.end());
  // Median: middle sample, or mean of the middle two for even reps.
  const std::size_t h = times.size() / 2;
  const double med = times.size() % 2 != 0
                         ? times[h]
                         : 0.5 * (times[h - 1] + times[h]);
  const double flops = flops_per_mnk * static_cast<double>(m) * n * k;
  out.name = name;
  out.m = m;
  out.n = n;
  out.k = k;
  out.seconds = med;
  out.gflops = flops / med / 1e9;
  return out;
}

std::uint64_t delta(const Case& c, std::string_view counter) {
  return c.after.counter_delta(c.before, counter);
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// One dtype's GemmPlan measurements (--plan mode).
struct PlanReport {
  double compile_seconds = 0.0;        // GemmPlan::compile + prepack_b
  double first_execute_seconds = 0.0;  // first execute (panels prepacked)
  double repeat_execute_seconds = 0.0; // median of the timed reps
  bool amortized = false;  // repeat execute < compile + first execute
  bool bit_identical = true;  // plan result == per-dot reference
};

void write_plan_report(telemetry::JsonWriter& w, const PlanReport& rep) {
  w.begin_object();
  w.key("compile_seconds").value(rep.compile_seconds, 6);
  w.key("first_execute_seconds").value(rep.first_execute_seconds, 6);
  w.key("repeat_execute_seconds").value(rep.repeat_execute_seconds, 6);
  w.key("compile_plus_first_execute_seconds")
      .value(rep.compile_seconds + rep.first_execute_seconds, 6);
  w.kv("amortized", rep.amortized);
  w.kv("bit_identical", rep.bit_identical);
  w.end_object();
}

/// Compiles a default-config plan for (m, n, k), prepacks B, and
/// measures compile / first-execute / repeat-execute, gating the plan
/// result bitwise against the per-dot reference `c_ref`.
template <typename T>
PlanReport run_plan_case(const std::string& name, int m, int n, int k,
                         bool cplx, double flops_per_mnk, int reps,
                         int warmup, const gemm::Matrix<T>& a,
                         const gemm::Matrix<T>& b,
                         const gemm::Matrix<T>& c_ref,
                         std::vector<Case>& cases) {
  PlanReport rep;
  const telemetry::Stopwatch compile_sw;
  gemm::GemmPlan plan =
      gemm::GemmPlan::compile(core::M3xuConfig{}, {m, n, k, cplx});
  plan.prepack_b(b);
  rep.compile_seconds = compile_sw.seconds();

  gemm::Matrix<T> c_plan(m, n);
  c_plan.fill(T{});
  const telemetry::Stopwatch first_sw;
  plan.execute(a, b, c_plan);
  rep.first_execute_seconds = first_sw.seconds();
  rep.bit_identical =
      std::memcmp(c_plan.data(), c_ref.data(), c_plan.size() * sizeof(T)) ==
      0;

  cases.push_back(time_case(name, m, n, k, flops_per_mnk, reps, warmup, [&] {
    c_plan.fill(T{});
    plan.execute(a, b, c_plan);
  }));
  rep.repeat_execute_seconds = cases.back().seconds;
  rep.bit_identical =
      rep.bit_identical &&
      std::memcmp(c_plan.data(), c_ref.data(), c_plan.size() * sizeof(T)) ==
          0;
  rep.amortized = rep.repeat_execute_seconds <
                  rep.compile_seconds + rep.first_execute_seconds;
  return rep;
}

/// Route attribution for one precision family ("fp32" or "fp32c"):
/// the packed case classifies chunks (fused exact-rounding fast path
/// vs per-term fallback vs generic), the microkernel case splits
/// output elements between 4x4 register blocks and the scalar edge
/// path and reports how often a block pair degraded to the fallback.
void write_route_rates(telemetry::JsonWriter& w, const std::string& family,
                       const std::string& json_prefix, const Case& packed,
                       const Case& micro) {
  const std::uint64_t fused = delta(packed, "mxu." + family + ".chunks.fused");
  const std::uint64_t fallb =
      delta(packed, "mxu." + family + ".chunks.fallback");
  const std::uint64_t generic =
      delta(packed, "mxu." + family + ".chunks.generic");
  // Counted directly (mr*nr per register block) because the block
  // shape is now a per-engine config, not the compile-time constant.
  const std::uint64_t block_elems =
      delta(micro, "mxu." + family + ".microkernel.block_elements");
  const std::uint64_t edge = delta(micro, "mxu." + family + ".elements.edge");
  const std::uint64_t pairs =
      delta(micro, "mxu." + family + ".microkernel.pair_chunks");
  const std::uint64_t pair_falls =
      delta(micro, "mxu." + family + ".microkernel.pair_fallbacks");
  w.key(json_prefix + "_packed_fused_chunk_rate")
      .value(ratio(fused, fused + fallb + generic), 6);
  w.key(json_prefix + "_microkernel_block_element_rate")
      .value(ratio(block_elems, block_elems + edge), 6);
  w.key(json_prefix + "_microkernel_pair_fallback_rate")
      .value(ratio(pair_falls, pairs), 6);
  // Which SIMD variant the microkernel case actually dispatched to:
  // argmax of the per-variant block counters ("none" when telemetry is
  // off or no register block ran).
  const char* variant = "none";
  std::uint64_t variant_blocks = 0;
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    const std::uint64_t v =
        delta(micro, std::string("mk.variant.") + name + ".blocks");
    if (v > variant_blocks) {
      variant_blocks = v;
      variant = name;
    }
  }
  w.kv(json_prefix + "_microkernel_variant", variant);
}

/// One measured point of a thread-scaling curve.
struct SweepPoint {
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup = 0.0;  // vs the curve's single-thread point
};

struct SweepCurve {
  std::string name;  // e.g. "sgemm_microkernel"
  std::vector<SweepPoint> points;
};

std::vector<int> parse_counts(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const int v = std::atoi(tok.c_str());
    if (v > 0) out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Thread-scaling sweep for one dtype: each route's plan runs through
/// the threaded tiled driver on a dedicated pool per listed size
/// (ExecRails.pool), and every point is gated bitwise against the
/// single-threaded per-dot reference - the scaling curve is a perf
/// report, never a results fork.
template <typename T>
void run_thread_sweep(const std::string& prefix, int m, int n, int k,
                      bool cplx, double flops_per_mnk,
                      const std::vector<int>& counts, int reps, int warmup,
                      const gemm::Matrix<T>& a, const gemm::Matrix<T>& b,
                      const gemm::Matrix<T>& c_ref,
                      std::vector<SweepCurve>& curves, bool& bit_identical) {
  struct RouteCfg {
    const char* route;
    core::M3xuConfig cfg;
  };
  core::M3xuConfig packed_cfg;
  packed_cfg.enable_microkernel = false;
  core::M3xuConfig perdot_cfg;
  perdot_cfg.force_generic = true;
  const RouteCfg routes[] = {{"microkernel", core::M3xuConfig{}},
                             {"packed", packed_cfg},
                             {"perdot", perdot_cfg}};
  const double flops = flops_per_mnk * static_cast<double>(m) * n * k;
  for (const RouteCfg& r : routes) {
    const gemm::GemmPlan plan = gemm::GemmPlan::compile(r.cfg, {m, n, k, cplx});
    SweepCurve curve;
    curve.name = prefix + "_" + r.route;
    gemm::Matrix<T> c(m, n);
    for (const int t : counts) {
      ThreadPool pool(static_cast<std::size_t>(t));
      gemm::ExecRails rails;
      rails.pool = &pool;
      const auto run = [&] {
        c.fill(T{});
        plan.execute(a, b, c, rails);
      };
      for (int wu = 0; wu < warmup; ++wu) run();
      std::vector<double> times;
      for (int rep = 0; rep < std::max(1, reps); ++rep) {
        const telemetry::Stopwatch sw;
        run();
        times.push_back(sw.seconds());
      }
      std::sort(times.begin(), times.end());
      const std::size_t h = times.size() / 2;
      const double med = times.size() % 2 != 0
                             ? times[h]
                             : 0.5 * (times[h - 1] + times[h]);
      bit_identical =
          bit_identical &&
          std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(T)) == 0;
      SweepPoint pt;
      pt.threads = t;
      pt.seconds = med;
      pt.gflops = flops / med / 1e9;
      curve.points.push_back(pt);
    }
    // Speedup relative to the curve's own threads == 1 point (first
    // point when the sweep list omits 1).
    double base = curve.points.front().seconds;
    for (const SweepPoint& pt : curve.points) {
      if (pt.threads == 1) base = pt.seconds;
    }
    for (SweepPoint& pt : curve.points) pt.speedup = base / pt.seconds;
    curves.push_back(std::move(curve));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int m = static_cast<int>(cli.get_int("m", 512));
  const int n = static_cast<int>(cli.get_int("n", 512));
  const int k = static_cast<int>(cli.get_int("k", 512));
  const int cm = static_cast<int>(cli.get_int("cm", 192));
  const int cn = static_cast<int>(cli.get_int("cn", 192));
  const int ck = static_cast<int>(cli.get_int("ck", 192));
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  const int warmup = static_cast<int>(cli.get_int("warmup", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 12345));
  const std::string out = cli.get("out", "BENCH_gemm.json");
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  const bool plan_mode = cli.get_bool("plan", false);
  const int threads_flag = static_cast<int>(cli.get_int("threads", 0));
  const std::vector<int> sweep_counts = parse_counts(cli.get("thread-sweep", ""));

  // Must precede the first ThreadPool::global() use anywhere in the
  // process; configure_global is a no-op once the pool exists.
  if (threads_flag > 0) {
    ThreadPool::configure_global(static_cast<std::size_t>(threads_flag));
  }

  const telemetry::Snapshot run_before = telemetry::snapshot();
  Rng rng(seed);
  // Per-dot and microkernel routes share the default engine (the
  // per-dot entry points never reach the microkernel); the packed case
  // pins the one-element-at-a-time packed path for comparison.
  const core::M3xuEngine engine;
  core::M3xuConfig packed_cfg;
  packed_cfg.enable_microkernel = false;
  const core::M3xuEngine engine_packed(packed_cfg);
  std::vector<Case> cases;
  std::vector<SweepCurve> curves;
  bool bit_identical = true;
  std::optional<PlanReport> plan_sgemm, plan_cgemm;

  {
    gemm::Matrix<float> a(m, k), b(k, n);
    gemm::Matrix<float> c_perdot(m, n), c_packed(m, n), c_micro(m, n);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    cases.push_back(time_case(
        "m3xu_sgemm_perdot", m, n, k, 2.0, reps, warmup, [&] {
          c_perdot.fill(0.0f);
          per_dot_row_blocks<float>(m, [&](int r0, int rc) {
            engine.gemm_fp32(rc, n, k,
                             a.data() + static_cast<std::size_t>(r0) * a.ld(),
                             a.ld(), b.data(), b.ld(),
                             c_perdot.data() +
                                 static_cast<std::size_t>(r0) * c_perdot.ld(),
                             c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_sgemm_packed", m, n, k, 2.0, reps, warmup, [&] {
          c_packed.fill(0.0f);
          gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine_packed, a, b,
                          c_packed);
        }));
    cases.push_back(time_case(
        "m3xu_sgemm_microkernel", m, n, k, 2.0, reps, warmup, [&] {
          c_micro.fill(0.0f);
          gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine, a, b, c_micro);
        }));
    bit_identical = bit_identical &&
                    std::memcmp(c_perdot.data(), c_packed.data(),
                                c_perdot.size() * sizeof(float)) == 0 &&
                    std::memcmp(c_perdot.data(), c_micro.data(),
                                c_perdot.size() * sizeof(float)) == 0;
    if (plan_mode) {
      plan_sgemm = run_plan_case<float>("m3xu_sgemm_plan", m, n, k, false,
                                        2.0, reps, warmup, a, b, c_perdot,
                                        cases);
      bit_identical = bit_identical && plan_sgemm->bit_identical;
    }
    if (!sweep_counts.empty()) {
      run_thread_sweep<float>("sgemm", m, n, k, false, 2.0, sweep_counts,
                              reps, warmup, a, b, c_perdot, curves,
                              bit_identical);
    }
  }

  {
    gemm::Matrix<std::complex<float>> a(cm, ck), b(ck, cn);
    gemm::Matrix<std::complex<float>> c_perdot(cm, cn), c_packed(cm, cn);
    gemm::Matrix<std::complex<float>> c_micro(cm, cn);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    // 8 real flops per complex multiply-add.
    cases.push_back(time_case(
        "m3xu_cgemm_perdot", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_perdot.fill({});
          per_dot_row_blocks<std::complex<float>>(cm, [&](int r0, int rc) {
            engine.gemm_fp32c(
                rc, cn, ck, a.data() + static_cast<std::size_t>(r0) * a.ld(),
                a.ld(), b.data(), b.ld(),
                c_perdot.data() + static_cast<std::size_t>(r0) * c_perdot.ld(),
                c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_cgemm_packed", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_packed.fill({});
          gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine_packed, a, b,
                          c_packed);
        }));
    cases.push_back(time_case(
        "m3xu_cgemm_microkernel", cm, cn, ck, 8.0, reps, warmup, [&] {
          c_micro.fill({});
          gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine, a, b, c_micro);
        }));
    bit_identical =
        bit_identical &&
        std::memcmp(c_perdot.data(), c_packed.data(),
                    c_perdot.size() * sizeof(std::complex<float>)) == 0 &&
        std::memcmp(c_perdot.data(), c_micro.data(),
                    c_perdot.size() * sizeof(std::complex<float>)) == 0;
    if (plan_mode) {
      plan_cgemm = run_plan_case<std::complex<float>>(
          "m3xu_cgemm_plan", cm, cn, ck, true, 8.0, reps, warmup, a, b,
          c_perdot, cases);
      bit_identical = bit_identical && plan_cgemm->bit_identical;
    }
    if (!sweep_counts.empty()) {
      // 8 real flops per complex multiply-add, same convention as the
      // cgemm cases above.
      run_thread_sweep<std::complex<float>>("cgemm", cm, cn, ck, true, 8.0,
                                            sweep_counts, reps, warmup, a, b,
                                            c_perdot, curves, bit_identical);
    }
  }

  // Look route cases up by name: with --plan the vector also carries
  // the plan cases, so fixed indices would misattribute.
  const auto find_case = [&cases](const char* name) -> const Case& {
    for (const Case& c : cases) {
      if (c.name == name) return c;
    }
    std::fprintf(stderr, "missing case %s\n", name);
    std::abort();
  };
  const Case& sgemm_perdot = find_case("m3xu_sgemm_perdot");
  const Case& sgemm_packed = find_case("m3xu_sgemm_packed");
  const Case& sgemm_micro = find_case("m3xu_sgemm_microkernel");
  const Case& cgemm_perdot = find_case("m3xu_cgemm_perdot");
  const Case& cgemm_packed = find_case("m3xu_cgemm_packed");
  const Case& cgemm_micro = find_case("m3xu_cgemm_microkernel");
  const double sgemm_speedup = sgemm_perdot.seconds / sgemm_packed.seconds;
  const double sgemm_micro_speedup = sgemm_packed.seconds / sgemm_micro.seconds;
  const double cgemm_speedup = cgemm_perdot.seconds / cgemm_packed.seconds;
  const double cgemm_micro_speedup = cgemm_packed.seconds / cgemm_micro.seconds;

  const telemetry::Environment env = telemetry::collect_environment();
  const telemetry::Snapshot run_after = telemetry::snapshot();
  const std::size_t threads = ThreadPool::global().thread_count();
  const bool simd = core::microkernel_simd_active();
  const char* variant_name =
      core::mk_variant_name(core::mk_variant_resolve(core::MkVariant::kAuto));
  // Whole-run pool utilization: busy worker-nanoseconds over wall
  // nanoseconds summed across every parallel_for (any pool), scaled by
  // the global pool width. > 1 is possible when dedicated sweep pools
  // are wider than the global pool; 0 with telemetry off.
  const double pool_util =
      ratio(run_after.counter_delta(run_before, "threadpool.worker_busy_ns"),
            run_after.counter_delta(run_before, "threadpool.wall_ns") *
                static_cast<std::uint64_t>(threads));

  if (!cli.get_bool("json-only", false)) {
    std::printf("== GEMM baseline: per-dot vs packed vs microkernel ==\n");
    std::printf("%-24s %6s %6s %6s %10s %10s\n", "case", "m", "n", "k",
                "seconds", "GFLOP/s");
    for (const Case& c : cases) {
      std::printf("%-24s %6d %6d %6d %10.3f %10.3f\n", c.name.c_str(), c.m,
                  c.n, c.k, c.seconds, c.gflops);
    }
    std::printf("\nsgemm: packed %.2fx over per-dot, microkernel %.2fx over "
                "packed\ncgemm: packed %.2fx over per-dot, microkernel %.2fx "
                "over packed\nbit-identical: %s   simd: %s   threads: %zu\n\n",
                sgemm_speedup, sgemm_micro_speedup, cgemm_speedup,
                cgemm_micro_speedup, bit_identical ? "yes" : "NO",
                variant_name, threads);
    for (const SweepCurve& curve : curves) {
      std::printf("scaling %-20s", curve.name.c_str());
      for (const SweepPoint& pt : curve.points) {
        std::printf("  t=%d %.3fs (%.2fx)", pt.threads, pt.seconds,
                    pt.speedup);
      }
      std::printf("\n");
    }
    if (!curves.empty()) std::printf("\n");
    if (plan_sgemm.has_value() && plan_cgemm.has_value()) {
      std::printf("plan: sgemm compile %.3fs + first %.3fs, repeat %.3fs "
                  "(%samortized)\nplan: cgemm compile %.3fs + first %.3fs, "
                  "repeat %.3fs (%samortized)\n\n",
                  plan_sgemm->compile_seconds,
                  plan_sgemm->first_execute_seconds,
                  plan_sgemm->repeat_execute_seconds,
                  plan_sgemm->amortized ? "" : "NOT ",
                  plan_cgemm->compile_seconds,
                  plan_cgemm->first_execute_seconds,
                  plan_cgemm->repeat_execute_seconds,
                  plan_cgemm->amortized ? "" : "NOT ");
    }
  }

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "gemm_baseline");
  w.kv("reps", reps);
  w.kv("warmup", warmup);
  w.kv("seed", seed);
  w.kv("timing", "median_of_reps");
  w.key("environment").begin_object();
  w.kv("threads", static_cast<std::uint64_t>(threads));
  w.kv("compiler", env.compiler);
  w.kv("git_rev", env.git_rev);
  w.kv("microkernel_simd", simd);
  w.kv("microkernel_variant", variant_name);
  w.kv("telemetry_enabled", static_cast<bool>(M3XU_TELEMETRY_ENABLED));
  w.end_object();
  w.key("cases").begin_array();
  for (const Case& c : cases) {
    w.begin_object();
    w.kv("name", c.name);
    w.kv("m", c.m);
    w.kv("n", c.n);
    w.kv("k", c.k);
    w.key("seconds").value(c.seconds, 6);
    w.key("gflops").value(c.gflops, 6);
    w.end_object();
  }
  w.end_array();
  w.key("sgemm_speedup_packed_vs_perdot").value(sgemm_speedup, 4);
  w.key("sgemm_speedup_microkernel_vs_packed").value(sgemm_micro_speedup, 4);
  w.key("cgemm_speedup_packed_vs_perdot").value(cgemm_speedup, 4);
  w.key("cgemm_speedup_microkernel_vs_packed").value(cgemm_micro_speedup, 4);
  w.key("route_hit_rates").begin_object();
  write_route_rates(w, "fp32", "sgemm", sgemm_packed, sgemm_micro);
  write_route_rates(w, "fp32c", "cgemm", cgemm_packed, cgemm_micro);
  w.key("threadpool_utilization").value(pool_util, 6);
  w.end_object();
  if (!curves.empty()) {
    w.key("thread_scaling").begin_object();
    w.kv("microkernel_variant", variant_name);
    w.key("curves").begin_array();
    for (const SweepCurve& curve : curves) {
      w.begin_object();
      w.kv("case", curve.name);
      w.key("points").begin_array();
      for (const SweepPoint& pt : curve.points) {
        w.begin_object();
        w.kv("threads", pt.threads);
        w.key("seconds").value(pt.seconds, 6);
        w.key("gflops").value(pt.gflops, 6);
        w.key("speedup_vs_single_thread").value(pt.speedup, 4);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (plan_sgemm.has_value() && plan_cgemm.has_value()) {
    w.key("plan").begin_object();
    w.key("sgemm");
    write_plan_report(w, *plan_sgemm);
    w.key("cgemm");
    write_plan_report(w, *plan_cgemm);
    w.end_object();
  }
  w.kv("bit_identical", bit_identical);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_gemm_baseline: cannot write %s\n",
                 out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());

  if (!trace_path.empty() && !telemetry::write_trace_json(trace_path)) {
    std::fprintf(stderr, "bench_gemm_baseline: cannot write %s\n",
                 trace_path.c_str());
    return 2;
  }
  if (!metrics_path.empty() && !telemetry::export_json(metrics_path)) {
    std::fprintf(stderr, "bench_gemm_baseline: cannot write %s\n",
                 metrics_path.c_str());
    return 2;
  }
  return bit_identical ? 0 : 1;
}
