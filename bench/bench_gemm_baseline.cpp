// GEMM throughput baseline: the per-dot M3XU route (re-running the
// data-assignment split inside the (i, j, k-chunk) loop, as the kM3xu
// kernels did before the packed-operand fast path) vs the packed route
// (split once per panel, stream lane operands). Emits BENCH_gemm.json
// so later PRs have a perf trajectory to regress against; also verifies
// the two routes produce bit-identical C before reporting.
//
// Flags: --m/--n/--k sgemm geometry (default 512^3), --cm/--cn/--ck
// cgemm geometry (default 192^3, per-dot complex is ~4x the scalar
// cost), --reps per timed case, --seed, --out=path (default
// BENCH_gemm.json), --json-only to suppress the human-readable table.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

using namespace m3xu;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The pre-packed-path kM3xu kernel route: fixed 32-row blocks on the
/// global pool, each calling the per-dot engine GEMM.
template <typename T, typename GemmFn>
void per_dot_row_blocks(int m, const GemmFn& gemm) {
  constexpr int kBlock = 32;
  const int blocks = (m + kBlock - 1) / kBlock;
  parallel_for(static_cast<std::size_t>(blocks), [&](std::size_t b) {
    const int r0 = static_cast<int>(b) * kBlock;
    gemm(r0, std::min(kBlock, m - r0));
  });
}

struct Case {
  std::string name;
  int m, n, k;
  double seconds;
  double gflops;
};

template <typename Fn>
Case time_case(const std::string& name, int m, int n, int k,
               double flops_per_mnk, int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double dt = now_seconds() - t0;
    if (r == 0 || dt < best) best = dt;
  }
  const double flops =
      flops_per_mnk * static_cast<double>(m) * n * k;
  return {name, m, n, k, best, flops / best / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int m = static_cast<int>(cli.get_int("m", 512));
  const int n = static_cast<int>(cli.get_int("n", 512));
  const int k = static_cast<int>(cli.get_int("k", 512));
  const int cm = static_cast<int>(cli.get_int("cm", 192));
  const int cn = static_cast<int>(cli.get_int("cn", 192));
  const int ck = static_cast<int>(cli.get_int("ck", 192));
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 12345));
  const std::string out = cli.get("out", "BENCH_gemm.json");

  Rng rng(seed);
  const core::M3xuEngine engine;
  std::vector<Case> cases;
  bool bit_identical = true;

  {
    gemm::Matrix<float> a(m, k), b(k, n), c_perdot(m, n), c_packed(m, n);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    c_perdot.fill(0.0f);
    c_packed.fill(0.0f);
    cases.push_back(time_case(
        "m3xu_sgemm_perdot", m, n, k, 2.0, reps, [&] {
          c_perdot.fill(0.0f);
          per_dot_row_blocks<float>(m, [&](int r0, int rc) {
            engine.gemm_fp32(rc, n, k,
                             a.data() + static_cast<std::size_t>(r0) * a.ld(),
                             a.ld(), b.data(), b.ld(),
                             c_perdot.data() +
                                 static_cast<std::size_t>(r0) * c_perdot.ld(),
                             c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_sgemm_packed", m, n, k, 2.0, reps, [&] {
          c_packed.fill(0.0f);
          gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine, a, b, c_packed);
        }));
    bit_identical = bit_identical &&
                    std::memcmp(c_perdot.data(), c_packed.data(),
                                c_perdot.size() * sizeof(float)) == 0;
  }

  {
    gemm::Matrix<std::complex<float>> a(cm, ck), b(ck, cn);
    gemm::Matrix<std::complex<float>> c_perdot(cm, cn), c_packed(cm, cn);
    gemm::fill_random(a, rng);
    gemm::fill_random(b, rng);
    // 8 real flops per complex multiply-add.
    cases.push_back(time_case(
        "m3xu_cgemm_perdot", cm, cn, ck, 8.0, reps, [&] {
          c_perdot.fill({});
          per_dot_row_blocks<std::complex<float>>(cm, [&](int r0, int rc) {
            engine.gemm_fp32c(
                rc, cn, ck, a.data() + static_cast<std::size_t>(r0) * a.ld(),
                a.ld(), b.data(), b.ld(),
                c_perdot.data() + static_cast<std::size_t>(r0) * c_perdot.ld(),
                c_perdot.ld());
          });
        }));
    cases.push_back(time_case(
        "m3xu_cgemm_packed", cm, cn, ck, 8.0, reps, [&] {
          c_packed.fill({});
          gemm::run_cgemm(gemm::CgemmKernel::kM3xu, engine, a, b, c_packed);
        }));
    bit_identical =
        bit_identical &&
        std::memcmp(c_perdot.data(), c_packed.data(),
                    c_perdot.size() * sizeof(std::complex<float>)) == 0;
  }

  const double sgemm_speedup = cases[0].seconds / cases[1].seconds;
  const double cgemm_speedup = cases[2].seconds / cases[3].seconds;

  if (!cli.get_bool("json-only", false)) {
    std::printf("== GEMM baseline: per-dot vs packed M3XU route ==\n");
    std::printf("%-20s %6s %6s %6s %10s %10s\n", "case", "m", "n", "k",
                "seconds", "GFLOP/s");
    for (const Case& c : cases) {
      std::printf("%-20s %6d %6d %6d %10.3f %10.3f\n", c.name.c_str(), c.m,
                  c.n, c.k, c.seconds, c.gflops);
    }
    std::printf("\nsgemm packed speedup: %.2fx   cgemm packed speedup: %.2fx"
                "   bit-identical: %s\n\n",
                sgemm_speedup, cgemm_speedup, bit_identical ? "yes" : "NO");
  }

  std::string json = "{\n  \"benchmark\": \"gemm_baseline\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"m\": %d, \"n\": %d, \"k\": %d, "
                  "\"seconds\": %.6f, \"gflops\": %.6f}%s\n",
                  cases[i].name.c_str(), cases[i].m, cases[i].n, cases[i].k,
                  cases[i].seconds, cases[i].gflops,
                  i + 1 < cases.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"sgemm_speedup_packed_vs_perdot\": %.3f,\n"
                "  \"cgemm_speedup_packed_vs_perdot\": %.3f,\n"
                "  \"bit_identical\": %s\n}\n",
                sgemm_speedup, cgemm_speedup, bit_identical ? "true" : "false");
  json += buf;

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_gemm_baseline: cannot write %s\n",
                 out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  return bit_identical ? 0 : 1;
}
