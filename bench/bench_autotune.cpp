// Autotuner benchmark: searches the TileConfig candidate space for the
// sgemm and cgemm problem shapes, reports tuned-vs-default speedup,
// and exercises the persistent tuned-config cache end to end - the
// search result is stored to --cache, reloaded through a fresh
// TuneCache, and the reloaded config is verified to reproduce the
// default-config result bitwise. Exits nonzero when any candidate (or
// the reloaded config) breaks bit-identity: tile shapes are a
// performance knob, never a results knob.
//
// Flags: --m/--n/--k sgemm shape (default 256^3), --cm/--cn/--ck cgemm
// shape (default 128^3), --reps timed executes per candidate (median),
// --quick trimmed candidate set + 96^3/48^3 shapes (CI smoke),
// --seed operand seed, --cache=path tuned-config cache file (default
// TUNE_gemm.json), --out=path report JSON (default BENCH_autotune.json),
// --json-only to suppress the table.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "gemm/autotune.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/stopwatch.hpp"

using namespace m3xu;

namespace {

struct TunedCase {
  gemm::PlanKey key;
  gemm::AutotuneResult result;
  double speedup = 0.0;     // default_seconds / best_seconds (>= 1 means win)
  bool reloaded_ok = false; // cache round-trip returned the same config
  bool reloaded_bits_ok = false;  // reloaded config reproduces the bits
};

/// Executes `tuned` (tile + register-block shape + optional dedicated
/// pool) and the default config on identical deterministic operands and
/// compares the results bitwise.
template <typename T>
bool reproduces_default_bits(const gemm::PlanKey& key,
                             const gemm::TunedConfig& tuned,
                             std::uint64_t seed) {
  gemm::Matrix<T> a(key.m, key.k), b(key.k, key.n), c0(key.m, key.n);
  Rng rng(seed);
  gemm::fill_random(a, rng);
  gemm::fill_random(b, rng);
  gemm::fill_random(c0, rng);

  const gemm::GemmPlan ref_plan =
      gemm::GemmPlan::compile(core::M3xuConfig{}, key);
  gemm::Matrix<T> c_ref = c0;
  ref_plan.execute(a, b, c_ref);

  core::M3xuConfig tuned_cfg;
  tuned_cfg.mk_mr = tuned.mk_mr;
  tuned_cfg.mk_nr = tuned.mk_nr;
  gemm::PlanOptions tuned_opts;
  tuned_opts.tile = tuned.tile;
  const gemm::GemmPlan tuned_plan =
      gemm::GemmPlan::compile(tuned_cfg, key, tuned_opts);
  gemm::Matrix<T> c_tuned = c0;
  std::optional<ThreadPool> pool;
  gemm::ExecRails rails;
  if (tuned.threads > 0) {
    pool.emplace(static_cast<std::size_t>(tuned.threads));
    rails.pool = &*pool;
  }
  tuned_plan.execute(a, b, c_tuned, rails);

  return std::memcmp(c_ref.data(), c_tuned.data(),
                     c_ref.size() * sizeof(T)) == 0;
}

TunedCase tune_one(const gemm::PlanKey& key, const gemm::AutotuneOptions& opts,
                   const std::string& cache_path) {
  TunedCase out;
  out.key = key;

  gemm::TuneCache cache(cache_path);
  cache.load();
  out.result = gemm::autotune(core::M3xuConfig{}, key, opts, &cache);
  out.speedup = out.result.best_seconds > 0.0
                    ? out.result.default_seconds / out.result.best_seconds
                    : 0.0;

  // Cache round trip: a fresh TuneCache over the same file must serve
  // the stored config (from_cache), and that config must reproduce the
  // default config's result bitwise.
  gemm::TuneCache reloaded(cache_path);
  reloaded.load();
  const gemm::AutotuneResult again =
      gemm::autotune(core::M3xuConfig{}, key, opts, &reloaded);
  out.reloaded_ok =
      again.from_cache && gemm::same_tuned(again.best, out.result.best);
  out.reloaded_bits_ok =
      key.cplx ? reproduces_default_bits<std::complex<float>>(key, again.best,
                                                              opts.seed)
               : reproduces_default_bits<float>(key, again.best, opts.seed);
  return out;
}

void write_case(telemetry::JsonWriter& w, const TunedCase& c) {
  w.begin_object();
  w.kv("key", gemm::plan_key_label(c.key));
  w.key("tile").begin_object();
  w.kv("block_m", c.result.best.tile.block_m);
  w.kv("block_n", c.result.best.tile.block_n);
  w.kv("block_k", c.result.best.tile.block_k);
  w.kv("warp_m", c.result.best.tile.warp_m);
  w.kv("warp_n", c.result.best.tile.warp_n);
  w.end_object();
  w.kv("mk_mr", c.result.best.mk_mr);
  w.kv("mk_nr", c.result.best.mk_nr);
  w.kv("threads", c.result.best.threads);
  w.key("best_seconds").value(c.result.best_seconds, 6);
  w.key("default_seconds").value(c.result.default_seconds, 6);
  w.key("tuned_vs_default_speedup").value(c.speedup, 4);
  w.kv("candidates_tried", c.result.candidates_tried);
  w.kv("candidates_invalid", c.result.candidates_invalid);
  w.kv("bit_mismatches", c.result.bit_mismatches);
  w.kv("from_cache", c.result.from_cache);
  w.kv("cache_reload_ok", c.reloaded_ok);
  w.kv("cache_reload_bit_identical", c.reloaded_bits_ok);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int m = static_cast<int>(cli.get_int("m", quick ? 96 : 256));
  const int n = static_cast<int>(cli.get_int("n", quick ? 96 : 256));
  const int k = static_cast<int>(cli.get_int("k", quick ? 96 : 256));
  const int cm = static_cast<int>(cli.get_int("cm", quick ? 48 : 128));
  const int cn = static_cast<int>(cli.get_int("cn", quick ? 48 : 128));
  const int ck = static_cast<int>(cli.get_int("ck", quick ? 48 : 128));
  const std::string cache_path = cli.get("cache", "TUNE_gemm.json");
  const std::string out = cli.get("out", "BENCH_autotune.json");

  gemm::AutotuneOptions opts;
  opts.quick = quick;
  opts.reps = static_cast<int>(cli.get_int("reps", quick ? 1 : 3));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345));

  const telemetry::Stopwatch total_sw;
  const std::vector<TunedCase> tuned = {
      tune_one(gemm::PlanKey{m, n, k, false}, opts, cache_path),
      tune_one(gemm::PlanKey{cm, cn, ck, true}, opts, cache_path),
  };
  const double total_seconds = total_sw.seconds();

  bool ok = true;
  for (const TunedCase& c : tuned) {
    ok = ok && c.result.bit_mismatches == 0 && c.reloaded_ok &&
         c.reloaded_bits_ok;
  }

  if (!cli.get_bool("json-only", false)) {
    std::printf("== GemmPlan autotune (%s candidates) ==\n",
                quick ? "quick" : "full");
    std::printf("%-18s %-22s %9s %9s %8s %6s %6s\n", "key", "tile",
                "default_s", "tuned_s", "speedup", "cache", "bits");
    for (const TunedCase& c : tuned) {
      char tile[64];
      std::snprintf(tile, sizeof(tile), "%dx%dx%d/%dx%d",
                    c.result.best.tile.block_m, c.result.best.tile.block_n,
                    c.result.best.tile.block_k, c.result.best.tile.warp_m,
                    c.result.best.tile.warp_n);
      std::printf("%-18s %-22s %9.4f %9.4f %7.2fx %6s %6s\n",
                  gemm::plan_key_label(c.key).c_str(), tile,
                  c.result.default_seconds, c.result.best_seconds, c.speedup,
                  c.reloaded_ok ? "ok" : "FAIL",
                  c.reloaded_bits_ok && c.result.bit_mismatches == 0
                      ? "ok"
                      : "FAIL");
    }
    std::printf("\ncache: %s   total: %.2fs   %s\n\n", cache_path.c_str(),
                total_seconds, ok ? "all checks passed" : "CHECKS FAILED");
  }

  const telemetry::Environment env = telemetry::collect_environment();
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("benchmark", "gemm_autotune");
  w.kv("quick", quick);
  w.kv("reps", opts.reps);
  w.kv("seed", opts.seed);
  w.kv("cache_file", cache_path);
  w.kv("cpu_signature", gemm::cpu_signature());
  w.key("environment").begin_object();
  w.kv("compiler", env.compiler);
  w.kv("git_rev", env.git_rev);
  w.end_object();
  w.key("cases").begin_array();
  for (const TunedCase& c : tuned) write_case(w, c);
  w.end_array();
  w.key("total_seconds").value(total_seconds, 4);
  w.kv("ok", ok);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_autotune: cannot write %s\n", out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  return ok ? 0 : 1;
}
