// Chaos soak over the resilient tiled GEMM driver: a randomized stream
// of guarded GEMMs with seeded multi-domain fault injection, verifying
// after every trial that recovery restored a trustworthy result. One
// domain per fault class:
//
//   datapath (operand_a/b, partial_product, accumulator) and
//   staged_panel - single-tile geometry so every corruption is
//     classifiable against the ABFT tolerance; the guarded run must
//     detect every guaranteed-detectable corruption and leave no
//     supra-tolerance deviation in its output (zero SDC escapes);
//   alloc_failure - multi-tile SGEMM/CGEMM with injected packed-panel
//     allocation failures; the per-dot fallback must be bit-exact;
//   worker_stall  - injected worker sleeps; the GEMM must complete
//     bit-exactly (no watchdog armed, so the stall only costs time);
//   cancellation  - a timer thread latches a CancellationToken mid
//     GEMM; the call either completes bit-exactly or throws
//     CancelledError - nothing else;
//   watchdog      - stalls injected at rate 1 under a tight deadline /
//     stall window; the call must abort with DeadlineExceeded;
//   clean_guarded - fully guarded clean runs (token + generous
//     deadline + stall window): bit-exact, zero ABFT detections, and
//     zero watchdog/cancellation counter deltas (no false positives).
//
// Flags: --quick (CI-sized trial counts), --seed, --trials (per-site
// override), --json=path (coverage table; default stdout).
//
// Exit status: nonzero on any escape, non-bit-exact clean-domain
// result, unrecovered detection, missing expected abort, or watchdog
// false positive.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/cancellation.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiled_driver.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

using namespace m3xu;

namespace {

bool bitwise_equal(const gemm::Matrix<float>& x, const gemm::Matrix<float>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (std::bit_cast<std::uint32_t>(x(i, j)) !=
          std::bit_cast<std::uint32_t>(y(i, j))) {
        return false;
      }
    }
  }
  return true;
}

bool bitwise_equal(const gemm::Matrix<std::complex<float>>& x,
                   const gemm::Matrix<std::complex<float>>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (std::bit_cast<std::uint64_t>(x(i, j)) !=
          std::bit_cast<std::uint64_t>(y(i, j))) {
        return false;
      }
    }
  }
  return true;
}

template <typename T>
void fill(Rng& rng, gemm::Matrix<T>& mat) {
  for (int i = 0; i < mat.rows(); ++i) {
    for (int j = 0; j < mat.cols(); ++j) {
      if constexpr (std::is_same_v<T, float>) {
        mat(i, j) = rng.scaled_float();
      } else {
        mat(i, j) = {rng.scaled_float(), rng.scaled_float()};
      }
    }
  }
}

/// Per-domain soak tally, serialized into the JSON coverage table.
struct DomainStats {
  std::string name;
  long trials = 0;
  long faults = 0;            // injector flips/events across trials
  long corrupting = 0;        // trials with a guaranteed-detectable dev
  long detected = 0;          // trials where the ABFT guard tripped
  long recovered_bitexact = 0;  // detected trials restored bit-exactly
  long escapes = 0;           // corrupting && !detected (SDC)
  long unrecovered = 0;       // supra-tolerance deviation in the output
  long bitexact_failures = 0;   // clean-semantics domains only
  long alloc_fallbacks = 0;
  long retries = 0;
  long demotions = 0;
  long cancelled = 0;         // CancelledError outcomes
  long deadline_aborts = 0;   // DeadlineExceeded outcomes
  long missing_aborts = 0;    // watchdog domain trials that finished
  long false_positives = 0;   // guard counters bumped on clean runs
  // Trace timeline (TraceContext JSON) of the first detected trial,
  // embedded in the coverage table so one soak artifact shows the
  // detection -> ladder -> recovery causality end to end.
  std::string timeline_json;
  bool failed() const {
    return escapes > 0 || unrecovered > 0 || bitexact_failures > 0 ||
           missing_aborts > 0 || false_positives > 0;
  }
};

/// Soak trial geometry: the detect-capable domains stay single-tile so
/// abft_column_tolerance classifies whole-matrix columns; the system
/// domains use a multi-tile grid to exercise the pool.
struct Geometry {
  int m, n, k;
  gemm::TileConfig tile;
};

Geometry single_tile() {
  Geometry g{48, 48, 96, {}};
  g.tile.block_m = 48;
  g.tile.block_n = 48;
  g.tile.block_k = 32;
  g.tile.warp_m = 16;
  g.tile.warp_n = 16;
  return g;
}

Geometry multi_tile() {
  Geometry g{96, 96, 64, {}};
  g.tile.block_m = 32;
  g.tile.block_n = 32;
  g.tile.block_k = 32;
  g.tile.warp_m = 16;
  g.tile.warp_n = 16;
  return g;
}

gemm::AbftConfig soak_abft() {
  gemm::AbftConfig abft;
  abft.enable = true;
  return abft;
}

/// Detect-capable domains (datapath sites + staged panels): classify
/// the raw damage unguarded, then require the guarded resilient run to
/// detect every guaranteed-detectable corruption and emit an output
/// with no supra-tolerance deviation left.
void soak_detect_domain(DomainStats& d, fault::Site site, double rate,
                        int trials, const Rng& root) {
  const Geometry g = single_tile();
  const gemm::AbftConfig abft = soak_abft();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
    fill(rng, a);
    fill(rng, b);
    fill(rng, c0);
    gemm::Matrix<float> ref = c0;
    gemm::tiled_sgemm(clean, g.tile, a, b, ref);

    const fault::SiteRates rates = fault::SiteRates::only(site, rate);
    const std::uint64_t inj_seed = rng.seed() ^ 0xc4a05c4a05ull;

    // Unguarded pass classifies the raw damage against the guard's
    // published tolerance (same protocol as the fault campaign).
    const fault::FaultInjector raw_inj(inj_seed, rates);
    core::M3xuConfig raw_cfg;
    raw_cfg.injector = &raw_inj;
    const core::M3xuEngine raw_eng(raw_cfg);
    gemm::Matrix<float> raw = c0;
    gemm::tiled_sgemm(raw_eng, g.tile, a, b, raw);
    d.faults += static_cast<long>(raw_inj.total_injected());
    std::vector<double> limit(static_cast<std::size_t>(g.n), 0.0);
    bool corrupting = false;
    for (int j = 0; j < g.n; ++j) {
      limit[j] = 2.0 * gemm::abft_column_tolerance(clean, g.tile, abft, a, b,
                                                   c0, 0, g.m, j);
      for (int i = 0; i < g.m && !corrupting; ++i) {
        const double dev = std::fabs(static_cast<double>(raw(i, j)) -
                                     static_cast<double>(ref(i, j)));
        if (!(dev <= limit[j])) corrupting = true;
      }
    }
    d.corrupting += corrupting ? 1 : 0;

    // Guarded resilient pass: fresh injector, same seed, same flips.
    const fault::FaultInjector inj(inj_seed, rates);
    core::M3xuConfig cfg;
    cfg.injector = &inj;
    const core::M3xuEngine eng(cfg);
    const gemm::RecoveryPolicy policy;  // full ladder, throw terminal
    gemm::Matrix<float> fixed = c0;
    telemetry::TraceContext trace("soak", d.name);
    gemm::ExecConfig exec;
    exec.trace = &trace;
    const gemm::TiledGemmStats stats =
        gemm::tiled_sgemm(eng, g.tile, abft, policy, exec, a, b, fixed);
    const bool detected = stats.abft_detected > 0;
    if (detected && d.timeline_json.empty()) {
      d.timeline_json = trace.to_json();
    }
    d.detected += detected ? 1 : 0;
    d.retries += stats.recovery.retries;
    d.demotions += stats.recovery.demotions;
    if (corrupting && !detected) ++d.escapes;
    if (detected && bitwise_equal(fixed, ref)) ++d.recovered_bitexact;
    // Regardless of the detect outcome the delivered result must not
    // carry a guaranteed-detectable deviation.
    for (int j = 0; j < g.n; ++j) {
      bool bad = false;
      for (int i = 0; i < g.m; ++i) {
        const double dev = std::fabs(static_cast<double>(fixed(i, j)) -
                                     static_cast<double>(ref(i, j)));
        if (!(dev <= limit[j])) {
          bad = true;
          break;
        }
      }
      if (bad) {
        ++d.unrecovered;
        break;
      }
    }
    ++d.trials;
  }
}

/// Allocation-failure domain: every injected panel loss must fall back
/// to the per-dot route bit-exactly, on both element types.
void soak_alloc_domain(DomainStats& d, int trials, const Rng& root) {
  const Geometry g = multi_tile();
  const gemm::AbftConfig abft = soak_abft();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    const fault::SiteRates rates =
        fault::SiteRates::only(fault::Site::kAllocFailure, 0.25);
    const fault::FaultInjector inj(rng.seed() ^ 0xa110cull, rates);
    core::M3xuConfig cfg;
    cfg.injector = &inj;
    const core::M3xuEngine eng(cfg);
    const gemm::RecoveryPolicy policy;
    if (trial % 2 == 0) {
      gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
      fill(rng, a);
      fill(rng, b);
      fill(rng, c0);
      gemm::Matrix<float> ref = c0;
      gemm::tiled_sgemm(clean, g.tile, a, b, ref);
      gemm::Matrix<float> out = c0;
      const gemm::TiledGemmStats stats = gemm::tiled_sgemm(
          eng, g.tile, abft, policy, gemm::ExecConfig{}, a, b, out);
      d.alloc_fallbacks += stats.recovery.alloc_fallbacks;
      if (!bitwise_equal(out, ref)) ++d.bitexact_failures;
    } else {
      using C = std::complex<float>;
      gemm::Matrix<C> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
      fill(rng, a);
      fill(rng, b);
      fill(rng, c0);
      gemm::Matrix<C> ref = c0;
      gemm::tiled_cgemm(clean, g.tile, a, b, ref);
      gemm::Matrix<C> out = c0;
      const gemm::TiledGemmStats stats = gemm::tiled_cgemm(
          eng, g.tile, abft, policy, gemm::ExecConfig{}, a, b, out);
      d.alloc_fallbacks += stats.recovery.alloc_fallbacks;
      if (!bitwise_equal(out, ref)) ++d.bitexact_failures;
    }
    d.faults += static_cast<long>(inj.total_injected());
    ++d.trials;
  }
}

/// Worker-stall domain without a watchdog: injected sleeps must only
/// cost time, never bits.
void soak_stall_domain(DomainStats& d, int trials, const Rng& root) {
  const Geometry g = multi_tile();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
    fill(rng, a);
    fill(rng, b);
    fill(rng, c0);
    gemm::Matrix<float> ref = c0;
    gemm::tiled_sgemm(clean, g.tile, a, b, ref);
    fault::FaultInjector inj(rng.seed() ^ 0x57a11ull,
                             fault::SiteRates::only(fault::Site::kWorkerStall,
                                                    0.2));
    inj.stall_duration_ms = 2;
    core::M3xuConfig cfg;
    cfg.injector = &inj;
    const core::M3xuEngine eng(cfg);
    gemm::Matrix<float> out = c0;
    gemm::tiled_sgemm(eng, g.tile, soak_abft(), gemm::RecoveryPolicy{},
                      gemm::ExecConfig{}, a, b, out);
    d.faults += static_cast<long>(inj.total_injected());
    if (!bitwise_equal(out, ref)) ++d.bitexact_failures;
    ++d.trials;
  }
}

/// Cancellation domain: a timer thread latches the token mid-GEMM. The
/// only acceptable outcomes are CancelledError or a bit-exact result.
void soak_cancel_domain(DomainStats& d, int trials, const Rng& root) {
  const Geometry g = multi_tile();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
    fill(rng, a);
    fill(rng, b);
    fill(rng, c0);
    gemm::Matrix<float> ref = c0;
    gemm::tiled_sgemm(clean, g.tile, a, b, ref);
    CancellationToken token;
    const auto delay =
        std::chrono::microseconds(200 + 300 * (trial % 5));
    std::thread canceller([&] {
      std::this_thread::sleep_for(delay);
      token.request_cancel("chaos soak cancel");
    });
    gemm::ExecConfig exec;
    exec.token = &token;
    gemm::Matrix<float> out = c0;
    try {
      gemm::tiled_sgemm(clean, g.tile, soak_abft(), gemm::RecoveryPolicy{},
                        exec, a, b, out);
      if (!bitwise_equal(out, ref)) ++d.bitexact_failures;
    } catch (const CancelledError&) {
      ++d.cancelled;
    }
    canceller.join();
    ++d.trials;
  }
}

/// Watchdog domain: stalls injected at rate 1 under a tight stall
/// window and deadline - the call must abort with DeadlineExceeded.
void soak_watchdog_domain(DomainStats& d, int trials, const Rng& root) {
  const Geometry g = multi_tile();
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
    fill(rng, a);
    fill(rng, b);
    fill(rng, c0);
    fault::FaultInjector inj(rng.seed() ^ 0xdead11ull,
                             fault::SiteRates::only(fault::Site::kWorkerStall,
                                                    1.0));
    inj.stall_duration_ms = 50;
    core::M3xuConfig cfg;
    cfg.injector = &inj;
    const core::M3xuEngine eng(cfg);
    gemm::ExecConfig exec;
    exec.stall_ms = 20;
    exec.deadline_ms = 150;
    gemm::Matrix<float> out = c0;
    try {
      gemm::tiled_sgemm(eng, g.tile, soak_abft(), gemm::RecoveryPolicy{},
                        exec, a, b, out);
      ++d.missing_aborts;
    } catch (const DeadlineExceeded&) {
      ++d.deadline_aborts;
    }
    ++d.trials;
  }
}

/// Clean guarded domain: with no faults and generous limits, a guarded
/// run must be bit-exact and must not bump a single cancellation or
/// watchdog-abort counter (zero false positives).
void soak_clean_domain(DomainStats& d, int trials, const Rng& root) {
  const Geometry g = multi_tile();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng = root.split(static_cast<std::uint64_t>(trial));
    gemm::Matrix<float> a(g.m, g.k), b(g.k, g.n), c0(g.m, g.n);
    fill(rng, a);
    fill(rng, b);
    fill(rng, c0);
    gemm::Matrix<float> ref = c0;
    gemm::tiled_sgemm(clean, g.tile, a, b, ref);
    CancellationToken token;  // never cancelled
    gemm::ExecConfig exec;
    exec.token = &token;
    exec.deadline_ms = 60'000;
    exec.stall_ms = 60'000;
    const telemetry::Snapshot before = telemetry::snapshot();
    gemm::Matrix<float> out = c0;
    const gemm::TiledGemmStats stats = gemm::tiled_sgemm(
        clean, g.tile, soak_abft(), gemm::RecoveryPolicy{}, exec, a, b, out);
    const telemetry::Snapshot after = telemetry::snapshot();
    if (!bitwise_equal(out, ref)) ++d.bitexact_failures;
    if (stats.abft_detected > 0) ++d.false_positives;
    d.false_positives += static_cast<long>(
        after.counter_delta(before, "threadpool.cancellations") +
        after.counter_delta(before, "threadpool.watchdog.deadline_fired") +
        after.counter_delta(before, "threadpool.watchdog.stalls_detected"));
    ++d.trials;
  }
}

std::string coverage_json(const std::vector<DomainStats>& domains,
                          std::uint64_t seed, bool quick,
                          const telemetry::Snapshot& before,
                          const telemetry::Snapshot& after) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("seed", seed).kv("quick", quick);
  w.key("domains").begin_array();
  for (const DomainStats& d : domains) {
    w.begin_object()
        .kv("name", d.name)
        .kv("trials", d.trials)
        .kv("faults", d.faults)
        .kv("corrupting", d.corrupting)
        .kv("detected", d.detected)
        .kv("recovered_bitexact", d.recovered_bitexact)
        .kv("escapes", d.escapes)
        .kv("unrecovered", d.unrecovered)
        .kv("bitexact_failures", d.bitexact_failures)
        .kv("alloc_fallbacks", d.alloc_fallbacks)
        .kv("retries", d.retries)
        .kv("demotions", d.demotions)
        .kv("cancelled", d.cancelled)
        .kv("deadline_aborts", d.deadline_aborts)
        .kv("missing_aborts", d.missing_aborts)
        .kv("false_positives", d.false_positives)
        .kv("pass", !d.failed());
    if (!d.timeline_json.empty()) {
      w.key("timeline_sample").raw(d.timeline_json);
    }
    w.end_object();
  }
  w.end_array();
  // Process-wide recovery/guard counter deltas across the whole soak,
  // so the JSON doubles as a telemetry integration check.
  w.key("telemetry").begin_object();
  for (const char* name :
       {"recovery.retries", "recovery.demotions", "recovery.recovered",
        "recovery.alloc_fallbacks", "recovery.quarantined",
        "recovery.degraded_tiles", "recovery.poisoned_tiles",
        "abft.detected", "abft.recovered", "abft.false_alarms",
        "threadpool.cancellations", "threadpool.watchdog.watches",
        "threadpool.watchdog.deadline_fired",
        "threadpool.watchdog.stalls_detected"}) {
    w.kv(name, after.counter_delta(before, name));
  }
  w.end_object();
  bool pass = true;
  for (const DomainStats& d : domains) pass = pass && !d.failed();
  w.kv("pass", pass);
  w.end_object();
  return w.str() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 0x50a4c4a05ll));
  const int detect_trials =
      static_cast<int>(cli.get_int("trials", quick ? 6 : 16));
  const int sys_trials = quick ? 4 : 10;
  const Rng root{seed};

  const telemetry::Snapshot before = telemetry::snapshot();
  std::vector<DomainStats> domains;
  std::uint64_t stream = 0;
  const auto domain_rng = [&] { return root.split(stream++); };

  const struct {
    fault::Site site;
    double rate;
  } detect_sites[] = {
      {fault::Site::kOperandA, 1e-3},      {fault::Site::kOperandB, 1e-3},
      {fault::Site::kPartialProduct, 1e-3}, {fault::Site::kAccumulator, 1e-3},
      {fault::Site::kStagedPanel, 1e-4},
  };
  for (const auto& ds : detect_sites) {
    DomainStats d;
    d.name = fault::site_name(ds.site);
    soak_detect_domain(d, ds.site, ds.rate, detect_trials, domain_rng());
    domains.push_back(d);
  }
  {
    DomainStats d;
    d.name = "alloc_failure";
    soak_alloc_domain(d, sys_trials, domain_rng());
    domains.push_back(d);
  }
  {
    DomainStats d;
    d.name = "worker_stall";
    soak_stall_domain(d, sys_trials, domain_rng());
    domains.push_back(d);
  }
  {
    DomainStats d;
    d.name = "cancellation";
    soak_cancel_domain(d, sys_trials, domain_rng());
    domains.push_back(d);
  }
  {
    DomainStats d;
    d.name = "watchdog";
    soak_watchdog_domain(d, quick ? 2 : 3, domain_rng());
    domains.push_back(d);
  }
  {
    DomainStats d;
    d.name = "clean_guarded";
    soak_clean_domain(d, quick ? 2 : 5, domain_rng());
    domains.push_back(d);
  }
  const telemetry::Snapshot after = telemetry::snapshot();

  std::printf("== Chaos soak: resilient tiled GEMM (seed=0x%llx%s) ==\n",
              static_cast<unsigned long long>(seed), quick ? ", quick" : "");
  std::printf("%-16s %7s %7s %9s %9s %9s %8s %7s %6s\n", "domain", "trials",
              "faults", "corrupt", "detected", "recovered", "escapes",
              "retries", "pass");
  bool pass = true;
  for (const DomainStats& d : domains) {
    std::printf("%-16s %7ld %7ld %9ld %9ld %9ld %8ld %7ld %6s\n",
                d.name.c_str(), d.trials, d.faults, d.corrupting, d.detected,
                d.recovered_bitexact, d.escapes, d.retries,
                d.failed() ? "FAIL" : "ok");
    pass = pass && !d.failed();
  }

  const std::string json = coverage_json(domains, seed, quick, before, after);
  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_chaos_soak: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::printf("\nchaos soak: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
