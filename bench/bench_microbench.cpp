// google-benchmark microbenchmarks of the functional model's hot
// paths: the hardware split, dot-product steps in each mode, the exact
// accumulator, and the GEMM-based FFT. These measure the *simulation*
// library itself (host throughput of the bit-exact model), useful when
// sizing functional experiments.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "core/fp128_mode.hpp"
#include "core/int_mode.hpp"
#include "core/multi_part.hpp"
#include "core/outer_product.hpp"
#include "core/mxu.hpp"
#include "fft/gemm_fft.hpp"
#include "gemm/tiled_driver.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/split.hpp"

using namespace m3xu;

namespace {

void BM_SplitFp32Hw(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.scaled_float();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::split_fp32_hw(values[i++ & 4095]));
  }
}
BENCHMARK(BM_SplitFp32Hw);

void BM_ExactAccumulatorProduct(benchmark::State& state) {
  Rng rng(2);
  const fp::Unpacked a = fp::unpack(rng.scaled_float());
  const fp::Unpacked b = fp::unpack(rng.scaled_float());
  fp::ExactAccumulator acc;
  for (auto _ : state) {
    acc.add_product(a, b);
  }
  benchmark::DoNotOptimize(acc.to_double());
}
BENCHMARK(BM_ExactAccumulatorProduct);

void BM_ExactAccumulatorRound(benchmark::State& state) {
  Rng rng(3);
  fp::ExactAccumulator acc;
  for (int i = 0; i < 64; ++i) acc.add_double(rng.scaled_float());
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.round_to_precision(48));
  }
}
BENCHMARK(BM_ExactAccumulatorRound);

void BM_MmaDotFp32(benchmark::State& state) {
  const core::M3xuEngine engine;
  Rng rng(4);
  std::vector<float> a(8), b(8);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  float acc = 0.0f;
  for (auto _ : state) {
    acc = engine.mma_dot_fp32({a.data(), a.size()}, {b.data(), b.size()},
                              acc);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MmaDotFp32);

void BM_MmaDotFp32c(benchmark::State& state) {
  const core::M3xuEngine engine;
  Rng rng(5);
  std::vector<std::complex<float>> a(4), b(4);
  for (auto& v : a) v = {rng.scaled_float(), rng.scaled_float()};
  for (auto& v : b) v = {rng.scaled_float(), rng.scaled_float()};
  std::complex<float> acc{};
  for (auto _ : state) {
    acc = engine.mma_dot_fp32c({a.data(), a.size()}, {b.data(), b.size()},
                               acc);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_MmaDotFp32c);

void BM_MmaDotPassthroughFp16(benchmark::State& state) {
  const core::M3xuEngine engine;
  Rng rng(6);
  std::vector<float> a(16), b(16);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  float acc = 0.0f;
  for (auto _ : state) {
    acc = engine.mma_dot_passthrough({a.data(), a.size()},
                                     {b.data(), b.size()}, acc, fp::kFp16);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_MmaDotPassthroughFp16);

void BM_MultiPartFp64Dot(benchmark::State& state) {
  core::MultiPartConfig cfg;
  cfg.format = fp::kFp64;
  cfg.part_bits = static_cast<int>(state.range(0));
  cfg.accum_prec = 53;
  const core::MultiPartEngine engine(cfg);
  Rng rng(7);
  std::vector<double> a(4), b(4);
  for (auto& v : a) v = rng.next_double();
  for (auto& v : b) v = rng.next_double();
  double acc = 0.0;
  for (auto _ : state) {
    acc = engine.dot({a.data(), a.size()}, {b.data(), b.size()}, acc);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_MultiPartFp64Dot)->Arg(12)->Arg(27);

void BM_GemmFftForward(benchmark::State& state) {
  const core::M3xuEngine engine;
  const int n = static_cast<int>(state.range(0));
  const fft::GemmFft plan(n, 16, &engine);
  Rng rng(8);
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
  for (auto _ : state) {
    plan.forward(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GemmFftForward)->Arg(256)->Arg(1024);

void BM_GemmFp32Engine64(benchmark::State& state) {
  const core::M3xuEngine engine;
  Rng rng(9);
  const int n = 32;
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  for (auto _ : state) {
    engine.gemm_fp32(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmFp32Engine64);

void BM_Int32MultistepDot(benchmark::State& state) {
  Rng rng(10);
  std::vector<std::int32_t> a(8), b(8);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.next_u32() >> 4);
  for (auto& v : b) v = static_cast<std::int32_t>(rng.next_u32() >> 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IntEngine::dot_s32_multistep(
        {a.data(), a.size()}, {b.data(), b.size()}));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Int32MultistepDot);

void BM_Fp128Dot(benchmark::State& state) {
  const core::Fp128Engine engine(static_cast<int>(state.range(0)));
  Rng rng(11);
  std::vector<__float128> a(4), b(4);
  for (auto& v : a) v = static_cast<__float128>(rng.next_double());
  for (auto& v : b) v = static_cast<__float128>(rng.next_double());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.dot({a.data(), a.size()}, {b.data(), b.size()}, 0));
  }
}
BENCHMARK(BM_Fp128Dot)->Arg(8)->Arg(28);

void BM_OuterProductTile(benchmark::State& state) {
  const core::OuterProductEngine engine;
  Rng rng(12);
  const int m = 16, n = 8, k = 8;
  std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f), d(m * n);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  for (auto _ : state) {
    engine.mma_fp32(m, n, k, a.data(), k, b.data(), n, c.data(), n,
                    d.data(), n);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_OuterProductTile);

void BM_TiledSgemm(benchmark::State& state) {
  const core::M3xuEngine engine;
  Rng rng(13);
  const int n = 64;
  gemm::Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_random(a, rng);
  fill_random(b, rng);
  c.fill(0.0f);
  const gemm::TileConfig cfg{32, 32, 16, 16, 16};
  for (auto _ : state) {
    gemm::tiled_sgemm(engine, cfg, a, b, c);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TiledSgemm);

}  // namespace

BENCHMARK_MAIN();
