// Reproduces Fig. 8: MRF dictionary-generation speedup over the
// cublas_cgemm-based SnapMRF baseline, sweeping dictionary sizes.
//
// Paper targets: up to 1.26x end-to-end; CGEMM is ~22% of the baseline
// dictionary-generation runtime.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "mrf/mrf_timing.hpp"

using namespace m3xu;
using namespace m3xu::mrf;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int timepoints = static_cast<int>(cli.get_int("timepoints", 512));
  const int rank = static_cast<int>(cli.get_int("rank", 64));
  const sim::GpuSim gpu(sim::GpuConfig::a100());

  std::printf("== Fig 8: MRF dictionary generation speedup over "
              "cublas_cgemm baseline ==\n");
  Table t({"atoms", "baseline ms", "m3xu ms", "speedup",
           "cgemm share (baseline)"});
  double max_speedup = 0.0;
  for (long atoms : {10'000L, 30'000L, 100'000L, 300'000L, 1'000'000L}) {
    const DictGenTime base =
        time_dictionary_generation(gpu, atoms, timepoints, rank, false);
    const DictGenTime m3 =
        time_dictionary_generation(gpu, atoms, timepoints, rank, true);
    const double sp = base.seconds / m3.seconds;
    max_speedup = std::max(max_speedup, sp);
    t.add_row({std::to_string(atoms), Table::num(base.seconds * 1e3, 2),
               Table::num(m3.seconds * 1e3, 2), Table::speedup(sp),
               Table::pct(base.cgemm_fraction())});
  }
  t.print();
  std::printf("\nmax speedup %.2fx (paper: up to 1.26x); paper CGEMM share "
              "~22%%\n",
              max_speedup);
  return 0;
}
