// Reproduces Table III: relative area / cycle time / power of the five
// MXU designs from the analytical hardware cost model, side by side
// with the paper's synthesized (FreePDK45) numbers, plus the SM-level
// area roll-ups quoted in SV-A/SVI-A.
#include <cstdio>

#include "common/table.hpp"
#include "hwmodel/cost_model.hpp"

using namespace m3xu;
using namespace m3xu::hw;

int main() {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const auto paper = table3_paper_rows();

  std::printf("== Table III: relative MXU implementation overheads ==\n");
  Table t({"design", "area (model)", "area (paper)", "cycle (model)",
           "cycle (paper)", "power (model)", "power (paper)"});
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const CostResult r = evaluate(designs[i], tech);
    t.add_row({designs[i].name, Table::num(r.area, 2),
               Table::num(paper[i].area, 2), Table::num(r.cycle_time, 2),
               Table::num(paper[i].cycle_time, 2), Table::num(r.power, 2),
               Table::num(paper[i].power, 2)});
  }
  t.print();

  {
    const CostResult r = evaluate(m3xu_fp64_design(), tech);
    std::printf("\nModel prediction for the SIV-C FP64-capable M3XU "
                "(27-bit sub-multipliers, 56-bit registers, not "
                "synthesized in the paper): area %.2f, cycle %.2f, "
                "power %.2f\n",
                r.area, r.cycle_time, r.power);
  }
  std::printf("\nCalibrated constants: mult area share (from the two "
              "synthesized areas), assign-stage delay 0.21, multiplier "
              "power exponent 3.23 (from the FP32-MXU power). All other "
              "entries are model predictions.\n");

  std::printf("\n== SM-level area roll-up ==\n");
  Table t2({"design", "total MXU area", "SM area increase (model)",
            "paper quote"});
  const double fp32_area = evaluate(designs[1], tech).area;
  const double m3xu_piped = evaluate(designs[4], tech).area;
  // Half the number of FP32-MXUs: total MXU area = 3.55 / 2.
  t2.add_row({"fp32_mxu at half count", Table::speedup(fp32_area / 2.0),
              Table::pct(sm_area_increase(fp32_area / 2.0)),
              "+6% (SII-B)"});
  t2.add_row({"m3xu_pipelined", Table::speedup(m3xu_piped),
              Table::pct(sm_area_increase(m3xu_piped)), "+4% (SVI-A)"});
  t2.print();
  std::printf("(The paper's '+11%% SM area' quote for the full-count "
              "FP32-MXU implies a smaller MXU share of the SM than its "
              "other two quotes; we calibrate the share to the latter.)\n");

  std::printf("\nM3XU w/o FP32C area overhead decomposition (SVI-A: 37%% "
              "total, 56%% of it from the extra-mantissa-bit arithmetic; "
              "16%% would remain on a 12-bit-mantissa baseline):\n");
  const MxuDesign& no_c = designs[2];
  const double total_overhead = evaluate(no_c, tech).area - 1.0;
  MxuDesign mult_only = no_c;
  mult_only.accum_bits = 24;
  mult_only.assign_steps = 0;
  mult_only.has_mux = false;
  const double mult_delta = evaluate(mult_only, tech).area - 1.0;
  const double accum_delta =
      tech.accum_area_weight * (48.0 / 24.0 - 1.0);
  std::printf("  model: total %.0f%%; multiplier widening %.0f%% of "
              "overhead, 48-bit accumulation %.0f%%, assignment stage "
              "%.0f%%\n",
              total_overhead * 100.0, mult_delta / total_overhead * 100.0,
              accum_delta / total_overhead * 100.0,
              (total_overhead - mult_delta - accum_delta) /
                  total_overhead * 100.0);
  std::printf("  (our model books the 48-bit adder-tree/register widening "
              "separately; the paper folds part of it into 'arithmetic', "
              "so the split differs while the totals agree.)\n");
  return 0;
}
