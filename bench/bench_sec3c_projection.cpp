// Reproduces the SIII-C performance-expectation analysis: the M3XU
// advantage projected onto Ampere, Hopper, and AMD CDNA2 - both the
// closed-form peaks and what the cycle simulator achieves on an 8K^3
// GEMM for each device.
//
// Paper claims: M3XU FP32 = 78 TFLOPS on Ampere / 248 TFLOPS on Hopper
// (4x over FP32 CUDA cores); on AMD MI100/MI250 Matrix Cores (8x the
// SIMT rate), M3XU retains a 2x advantage; FP32C keeps 4x over SIMT
// CGEMM everywhere the TC:SIMT ratio is 16x.
#include <cstdio>

#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

namespace {

void row(Table& t, const char* name, const GpuConfig& cfg) {
  const GpuSim gpu(cfg);
  const long s = 8192;
  const GemmTime simt = time_sgemm(gpu, SgemmVariant::kSimt, s, s, s);
  const GemmTime m3 = time_sgemm(gpu, SgemmVariant::kM3xu, s, s, s);
  t.add_row({name, Table::num(cfg.fp32_simt_peak() / 1e12, 1),
             Table::num(cfg.fp16_tc_peak() / 1e12, 0),
             Table::num(cfg.m3xu_fp32_peak() / 1e12, 1),
             Table::speedup(cfg.m3xu_fp32_peak() / cfg.fp32_simt_peak()),
             Table::num(m3.achieved_flops / 1e12, 1),
             Table::speedup(simt.seconds / m3.seconds)});
}

}  // namespace

int main() {
  std::printf("== SIII-C: M3XU FP32 advantage across architectures ==\n");
  Table t({"device", "FP32 SIMT TF", "FP16 TC TF", "M3XU FP32 target TF",
           "peak advantage", "achieved TF (sim, 8K^3)", "sim speedup"});
  row(t, "A100 (Ampere)", GpuConfig::a100());
  row(t, "H100 (Hopper)", GpuConfig::h100());
  row(t, "MI250 GCD (CDNA2)", GpuConfig::mi250_gcd());
  t.print();
  std::printf("\nPaper: 78 TFLOPS on Ampere, 248 TFLOPS on Hopper (4x over "
              "CUDA cores); 2x advantage on AMD Matrix Cores (8x SIMT).\n");
  return 0;
}
