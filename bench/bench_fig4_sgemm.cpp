// Reproduces Fig. 4(a): SGEMM speedup over CUDA/SIMT cores for problem
// sizes 1K^3 .. 16K^3, for every Table IV FP32 kernel plus the
// non-pipelined M3XU variant.
//
// Paper targets: M3XU up to 3.89x / avg 3.64x, saturating above 8K;
// software alternatives up to 2.67x (3.10x excluding ~14% decoupling);
// non-pipelined M3XU 3.35x on average.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const long max_size = cli.get_int("max-size", 16384);

  const GpuSim gpu(GpuConfig::a100());
  const std::vector<SgemmVariant> variants = {
      SgemmVariant::kTensorOp3xTf32, SgemmVariant::kEehc3xBf16,
      SgemmVariant::kM3xuNonPipelined, SgemmVariant::kM3xu};

  std::printf("== Fig 4(a): SGEMM speedup over cutlass_simt_sgemm ==\n");
  Table table({"size", "simt TFLOPS", "3xTF32", "EEHC 3xBF16",
               "m3xu (non-pipelined)", "m3xu (pipelined)",
               "decouple%% (3xTF32)", "decouple%% (EEHC)"});
  std::vector<double> m3xu_speedups;
  double m3xu_max = 0.0;
  for (long size = 1024; size <= max_size; size *= 2) {
    const GemmTime simt = time_sgemm(gpu, SgemmVariant::kSimt, size, size,
                                     size);
    std::vector<double> speedups;
    std::vector<double> decouple;
    for (SgemmVariant v : variants) {
      const GemmTime t = time_sgemm(gpu, v, size, size, size);
      speedups.push_back(simt.seconds / t.seconds);
      decouple.push_back(t.decouple_seconds / t.seconds);
    }
    m3xu_speedups.push_back(speedups[3]);
    m3xu_max = std::max(m3xu_max, speedups[3]);
    table.add_row({std::to_string(size),
                   Table::num(simt.achieved_flops / 1e12, 2),
                   Table::speedup(speedups[0]), Table::speedup(speedups[1]),
                   Table::speedup(speedups[2]), Table::speedup(speedups[3]),
                   Table::pct(decouple[0]), Table::pct(decouple[1])});
  }
  table.print();

  const Summary s = summarize(m3xu_speedups);
  std::printf("\nm3xu_sgemm speedup: avg %.2fx (paper: 3.64x), "
              "max %.2fx (paper: 3.89x)\n",
              s.mean, m3xu_max);
  return 0;
}
