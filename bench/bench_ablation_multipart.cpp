// Design-space ablation (SIV-C): composing FP32/FP64 arithmetic from
// different base multiplier widths. For each width the multi-part
// engine gives the step count (throughput = 1/steps of the one-step
// rate), and the hardware model gives the relative multiplier area -
// exposing the area x delay trade-off the paper says "broadens the
// design exploration space". Every row's numerics are verified to be
// correctly rounded (exact products) before printing.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/multi_part.hpp"
#include "hwmodel/cost_model.hpp"

using namespace m3xu;

namespace {

bool verify_exact_products(const core::MultiPartEngine& engine,
                           bool fp64_mode) {
  Rng rng(123);
  for (int i = 0; i < 20'000; ++i) {
    if (fp64_mode) {
      const double a = rng.next_double() * 2.0 - 1.0;
      const double b = rng.next_double() * 2.0 - 1.0;
      const double av[] = {a};
      const double bv[] = {b};
      if (engine.dot(av, bv, 0.0) != a * b) return false;
    } else {
      const float a = rng.scaled_float();
      const float b = rng.scaled_float();
      const double av[] = {a};
      const double bv[] = {b};
      const float expected =
          static_cast<float>(static_cast<double>(a) * b);
      if (engine.dot(av, bv, 0.0) != static_cast<double>(expected)) {
        return false;
      }
    }
  }
  return true;
}

void sweep(const fp::FloatFormat& fmt, const char* label,
           const std::vector<int>& widths) {
  std::printf("\n== %s composed from w-bit multipliers ==\n", label);
  Table t({"mult width", "parts", "steps", "design area (hwmodel)",
           "area x steps", "products exact"});
  const hw::TechnologyConstants tech;
  for (int w : widths) {
    core::MultiPartConfig cfg;
    cfg.format = fmt;
    cfg.part_bits = w;
    cfg.accum_prec = fmt == fp::kFp64 ? 53 : 48;
    cfg.per_step_rounding = false;
    const core::MultiPartEngine engine(cfg);
    // Whole-design area from the synthesis model (multiplier array,
    // wider accumulation, per-step assignment buffers, pipelining).
    const hw::MxuDesign design =
        hw::composed_design(w, fmt.sig_bits(), cfg.accum_prec);
    const double area = hw::evaluate(design, tech).area;
    const bool exact = verify_exact_products(engine, fmt == fp::kFp64);
    t.add_row({std::to_string(w), std::to_string(engine.parts()),
               std::to_string(engine.steps()), Table::num(area, 2),
               Table::num(area * engine.steps(), 2),
               exact ? "yes" : "NO"});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("== SIV-C design-space ablation ==\n");
  std::printf("(M3XU's shipped point: FP32 on 12-bit multipliers = 2 "
              "parts / 4 product classes in 2 steps via the B-swap "
              "pairing; the generalized engine runs one product class "
              "per step.)\n");
  sweep(fp::kFp32, "FP32", {4, 6, 8, 12, 16, 24});
  sweep(fp::kFp64, "FP64", {9, 11, 14, 18, 27, 28});
  std::printf("\nEvery width yields bit-exact products (the split is "
              "exact). Among the multi-step options, 12 bits minimizes "
              "area x steps for FP32 - exactly one extra mantissa bit "
              "over the FP16 baseline, the paper's design point. The "
              "monolithic 24-bit row is the 3.55x-area FP32-MXU that "
              "SII-B's bandwidth argument rules out; 27-bit parts are "
              "the corresponding FP64 sweet spot.\n");
  return 0;
}
