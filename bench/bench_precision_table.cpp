// Precision report: ULP-level comparison of every FP32 GEMM kernel
// against the correctly rounded exact result, for K = 1 (pure product
// precision) through K = 4096 (accumulation effects) - quantifying the
// paper's SV-B claims: M3XU introduces no additional error vs FP32
// ALUs, while the software emulations lose 1+ bits per product.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"
#include "gemm/ulp.hpp"

using namespace m3xu;
using namespace m3xu::gemm;

namespace {

UlpHistogram kernel_ulps(SgemmKernel kernel, int k, std::uint64_t seed) {
  const core::M3xuEngine engine;
  Rng rng(seed);
  const int m = 64, n = 64;
  Matrix<float> a(m, k), b(k, n), c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.uniform(0.25f, 1.0f);
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(0.25f, 1.0f);
  }
  c.fill(0.0f);
  Matrix<double> exact(m, n);
  exact.fill(0.0);
  exact_gemm(a, b, exact);
  run_sgemm(kernel, engine, a, b, c);
  UlpHistogram h;
  h.add_matrix(c, exact);
  return h;
}

}  // namespace

int main() {
  std::printf("== FP32 GEMM precision vs correctly rounded exact result "
              "(64x64xK, well-conditioned) ==\n\n");
  const std::vector<SgemmKernel> kernels = {
      SgemmKernel::kSimt, SgemmKernel::kM3xu, SgemmKernel::kTensorOp3xTf32,
      SgemmKernel::kTensorOp4xTf32, SgemmKernel::kEehc3xBf16};
  for (int k : {1, 64, 512, 4096}) {
    std::printf("K = %d\n", k);
    Table t({"kernel", "ULP profile"});
    for (SgemmKernel kk : kernels) {
      t.add_row({kernel_name(kk), kernel_ulps(kk, k, 900 + k).summary()});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("Reading: at K=1 (pure products) cutlass_simt (FMA) and "
              "m3xu are 100%% correctly rounded, while the TF32 emulation "
              "drops bits and the BF16 one drops ~8 (max 242 ULPs) - the "
              "paper's bit-exactness claim in ULP form. At larger K, "
              "per-element accumulation rounding dominates and every "
              "chunk-exact tensor kernel (m3xu and the fused emulations "
              "alike) overtakes the FP32 FMA chain; only m3xu does so "
              "*while also* keeping every product exact, which is what "
              "matters for the cancellation-prone inputs of SVI-C4.\n");
  return 0;
}
