// Reproduces Table I: peak throughput of the modeled A100 per data
// type, from the GPU configuration, plus the M3XU mode targets
// (SIII-C), and cross-checks them against what the cycle simulator
// actually achieves on large compute-bound GEMMs.
#include <cstdio>

#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main() {
  const GpuConfig cfg = GpuConfig::a100();
  const GpuSim gpu(cfg);

  std::printf("== Table I: A100 peak throughput (config-derived) ==\n");
  Table t({"data type", "bit format", "model peak", "paper"});
  t.add_row({"FP32", "(1,8,23)",
             Table::num(cfg.fp32_simt_peak() / 1e12, 1) + " TFLOPS",
             "19.5 TFLOPS"});
  t.add_row({"FP16", "(1,5,10)",
             Table::num(cfg.fp16_simd_peak() / 1e12, 1) + " TFLOPS",
             "78 TFLOPS"});
  t.add_row({"BF16", "(1,8,7)",
             Table::num(cfg.bf16_simd_peak() / 1e12, 1) + " TFLOPS",
             "39 TFLOPS"});
  t.add_row({"TF32 Tensor Core", "(1,8,10)",
             Table::num(cfg.tf32_tc_peak() / 1e12, 1) + " TFLOPS",
             "156 TFLOPS"});
  t.add_row({"FP16 Tensor Core", "(1,5,10)",
             Table::num(cfg.fp16_tc_peak() / 1e12, 1) + " TFLOPS",
             "312 TFLOPS"});
  t.add_row({"BF16 Tensor Core", "(1,8,7)",
             Table::num(cfg.bf16_tc_peak() / 1e12, 1) + " TFLOPS",
             "312 TFLOPS"});
  t.print();

  std::printf("\n== M3XU mode targets (SIII-C) ==\n");
  Table t2({"mode", "target", "paper"});
  t2.add_row({"M3XU FP32 (2-step)",
              Table::num(cfg.m3xu_fp32_peak() / 1e12, 1) + " TFLOPS",
              "78 TFLOPS (1/4 of FP16 TC)"});
  t2.add_row({"M3XU FP32C (4-step)",
              Table::num(cfg.m3xu_fp32c_peak() / 1e12, 1) + " TFLOPS",
              "4x over SIMT CGEMM"});
  t2.add_row({"M3XU FP64",
              Table::num(cfg.m3xu_fp64_peak() / 1e12, 1) + " TFLOPS", "-"});
  t2.print();

  std::printf("\n== Achieved throughput on 8K^3 compute-bound GEMMs "
              "(cycle simulator) ==\n");
  Table t3({"kernel", "achieved TFLOPS", "% of mode peak"});
  const long s = 8192;
  const GemmTime hg = time_hgemm(gpu, s, s, s);
  t3.add_row({"fp16 tensorop hgemm", Table::num(hg.achieved_flops / 1e12, 1),
              Table::pct(hg.achieved_flops / cfg.fp16_tc_peak())});
  const GemmTime mg = time_sgemm(gpu, SgemmVariant::kM3xu, s, s, s);
  t3.add_row({"m3xu_sgemm", Table::num(mg.achieved_flops / 1e12, 1),
              Table::pct(mg.achieved_flops / cfg.m3xu_fp32_peak())});
  const GemmTime cg = time_cgemm(gpu, CgemmVariant::kM3xu, s, s, s);
  t3.add_row({"m3xu_cgemm", Table::num(cg.achieved_flops / 1e12, 1),
              Table::pct(cg.achieved_flops / cfg.m3xu_fp32c_peak())});
  const GemmTime sg = time_sgemm(gpu, SgemmVariant::kSimt, s, s, s);
  t3.add_row({"cutlass_simt_sgemm", Table::num(sg.achieved_flops / 1e12, 1),
              Table::pct(sg.achieved_flops / cfg.fp32_simt_peak())});
  const GemmTime dg = time_dgemm(gpu, DgemmVariant::kM3xu, s, s, s);
  t3.add_row({"m3xu_dgemm", Table::num(dg.achieved_flops / 1e12, 1),
              Table::pct(dg.achieved_flops / cfg.m3xu_fp64_peak())});
  t3.print();
  return 0;
}
