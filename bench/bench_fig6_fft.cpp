// Reproduces Fig. 6: batched 1-D FFT speedup over cuFFT for sizes
// 2^12 .. 2^24 (batch sized to keep ~2^26 total elements in flight).
//
// Paper targets: M3XU up to 1.99x / avg 1.52x over cuFFT; tcFFT
// (extended to TF32) does not improve over cuFFT.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fft/fft_timing.hpp"

using namespace m3xu;
using namespace m3xu::fft;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int max_log2 = static_cast<int>(cli.get_int("max-log2", 24));

  const sim::GpuSim gpu(sim::GpuConfig::a100());
  std::printf("== Fig 6: FFT speedup over cuFFT ==\n");
  Table t({"size", "batch", "cuFFT ms", "tcFFT-TF32 vs cuFFT",
           "m3xu vs cuFFT"});
  std::vector<double> m3xu_speedups;
  double m3xu_max = 0.0;
  for (int l = 12; l <= max_log2; l += 2) {
    const long n = 1L << l;
    const long batch = std::max<long>(1, (1L << 26) / n);
    const FftTime cufft = time_fft(gpu, FftImpl::kCuFft, n, batch);
    const FftTime tc = time_fft(gpu, FftImpl::kTcFftTf32, n, batch);
    const FftTime m3 = time_fft(gpu, FftImpl::kM3xu, n, batch);
    const double sp = cufft.seconds / m3.seconds;
    m3xu_speedups.push_back(sp);
    m3xu_max = std::max(m3xu_max, sp);
    t.add_row({"2^" + std::to_string(l), std::to_string(batch),
               Table::num(cufft.seconds * 1e3, 3),
               Table::speedup(cufft.seconds / tc.seconds),
               Table::speedup(sp)});
  }
  t.print();
  const Summary s = summarize(m3xu_speedups);
  std::printf("\nm3xu FFT speedup over cuFFT: avg %.2fx (paper: 1.52x), "
              "max %.2fx (paper: 1.99x)\n",
              s.mean, m3xu_max);
  return 0;
}
