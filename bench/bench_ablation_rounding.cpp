// Numerical ablation of the accumulation-register design (DESIGN.md S5):
// per-step vs per-instruction rounding, and the register significand
// width (the paper picks 48 bits; stock Tensor Cores accumulate at 24).
// Measures FP32 GEMM error against the exact oracle for each design
// point, alongside the FP32 SIMT FMA chain.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/mxu.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"

using namespace m3xu;

namespace {

gemm::ErrorStats engine_error(const core::M3xuConfig& cfg,
                              const gemm::Matrix<float>& a,
                              const gemm::Matrix<float>& b,
                              const gemm::Matrix<double>& exact) {
  const core::M3xuEngine engine(cfg);
  gemm::Matrix<float> c(a.rows(), b.cols());
  c.fill(0.0f);
  gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine, a, b, c);
  return gemm::compare(c, exact);
}

}  // namespace

int main() {
  Rng rng(77);
  const int m = 96, n = 96, k = 1024;
  gemm::Matrix<float> a(m, k), b(k, n);
  // Well-conditioned positive data so relative errors are meaningful.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a(i, j) = rng.uniform(0.25f, 1.0f);
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(0.25f, 1.0f);
  }
  gemm::Matrix<double> exact(m, n);
  exact.fill(0.0);
  gemm::exact_gemm(a, b, exact);

  std::printf("== Accumulation-register ablation: FP32 GEMM %dx%dx%d, "
              "mean relative error vs exact ==\n",
              m, n, k);
  Table t({"design", "mean rel err", "max rel err"});
  {
    const core::M3xuEngine simt_unused;  // SIMT path needs no engine
    gemm::Matrix<float> c(m, n);
    c.fill(0.0f);
    gemm::run_sgemm(gemm::SgemmKernel::kSimt, simt_unused, a, b, c);
    const gemm::ErrorStats e = gemm::compare(c, exact);
    t.add_row({"FP32 SIMT FMA chain", Table::num(e.mean_rel * 1e9, 3) + "e-9",
               Table::num(e.max_rel * 1e9, 3) + "e-9"});
  }
  for (int prec : {24, 32, 40, 48, 56}) {
    for (bool per_step : {true, false}) {
      core::M3xuConfig cfg;
      cfg.accum_prec = prec;
      cfg.per_step_rounding = per_step;
      const gemm::ErrorStats e = engine_error(cfg, a, b, exact);
      char name[80];
      std::snprintf(name, sizeof(name), "m3xu %2d-bit regs, per-%s", prec,
                    per_step ? "step" : "instruction");
      t.add_row({name, Table::num(e.mean_rel * 1e9, 3) + "e-9",
                 Table::num(e.max_rel * 1e9, 3) + "e-9"});
    }
  }
  t.print();
  std::printf("\nThe shipped design (48-bit registers, per-step rounding) "
              "matches the idealized per-instruction rounding to well "
              "below FP32 resolution and beats the FP32 FMA chain - the "
              "basis of the paper's 'no additional error' claim. 24-bit "
              "registers (stock Tensor-Core accumulation) already suffice "
              "for parity with SIMT on well-conditioned data; the 48-bit "
              "extension buys margin for long reductions.\n");
  return 0;
}
