// Serving benchmark + chaos gate for the multi-tenant GemmServer.
//
// Clean mode drives an open-loop Poisson arrival stream followed by
// bursty closed-loop rounds against a fault-free server and reports
// p50/p99/p999 latency (exact, from per-request samples, with the
// telemetry histogram's order-of-magnitude readout alongside), goodput,
// shed rate, and pack-cache effectiveness. Gate: every request ends
// kOk with a bit-identical result.
//
// Chaos mode soaks the server across ten fault domains:
//
//   operand_a, operand_b, partial_product, accumulator, staged_panel -
//     datapath injection through the server's engine; kOk results must
//     carry no supra-tolerance deviation vs the golden result (the
//     ABFT detectability bar; undetectable sub-tolerance residue is
//     benign by construction), kDegraded must be policy-authorized,
//     kFailed must carry a structured error;
//   alloc_failure - injected packed-panel allocation failures; kOk
//     results must be bit-identical (the per-dot fallback is exact);
//   worker_stall  - injected worker sleeps with no deadline; requests
//     must still complete kOk bit-identical (stalls cost time, not
//     bits);
//   user_cancel   - tenants cancel in-flight requests; outcomes are
//     exactly {kOk bit-identical, kCancelled};
//   deadline      - tight per-request deadlines over a stalling engine;
//     outcomes are {kDeadlineExceeded, kFailed structured, kOk};
//   shed          - an overload burst against a tiny queue under the
//     evict-lowest-priority policy, with periodic shared-pack-cache
//     corruption; outcomes are {kOk bit-identical, kShed}, at least
//     one request must shed, and corrupted panels must be repacked
//     (never served).
//
// Every submission must end in exactly one terminal status from its
// domain's allowed set - anything else (wrong bits, missing error,
// non-terminal handle, unexpected status) is a violation and the
// process exits nonzero.
//
// Both modes also run a closed-loop tracing-overhead A/B (identical
// serving bursts against two long-lived servers differing only in
// ServerConfig::trace_requests, paired back-to-back per round, the
// median per-round process-CPU ratio compared against the <= 2%
// telemetry budget) and, in chaos
// mode, attach per-request timelines: degraded/failed requests embed
// their TraceContext event log in the JSON artifact.
//
// Flags: --mode=clean|chaos|both (default both), --quick (CI sizes),
// --seed, --json=path (schema-versioned metrics artifact; default
// stdout), --metrics-dump=prefix (write <prefix>.prom + <prefix>.json
// expositions at exit and self-lint the Prometheus text; exits
// nonzero if the lint fails).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiled_driver.hpp"
#include "serve/server.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

using namespace m3xu;
using serve::RequestHandle;
using serve::RequestStatus;

namespace {

constexpr int kStatusCount = 8;

bool bitwise_equal(const gemm::Matrix<float>& x, const gemm::Matrix<float>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (std::bit_cast<std::uint32_t>(x(i, j)) !=
          std::bit_cast<std::uint32_t>(y(i, j))) {
        return false;
      }
    }
  }
  return true;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process CPU time (all threads), in milliseconds. The tracing
/// overhead A/B uses this instead of wall time: on a shared/1-core
/// host, container preemption adds several percent of wall-clock
/// noise per burst but no CPU time, and every serving thread blocks
/// on condition variables (no spinning), so CPU time isolates the
/// cost actually added by instrumentation.
double cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

/// One tenant's fixed workload: operands, the clean-engine golden
/// result, and (single-tile geometries only) the per-column ABFT
/// tolerance bar used to judge datapath-domain outputs.
struct Tenant {
  std::string name;
  gemm::Matrix<float> a{1, 1}, b{1, 1}, c0{1, 1}, golden{1, 1};
  std::uint64_t b_key = 0;
  std::vector<double> limit;
};

struct Geometry {
  int m, n, k;
  gemm::TileConfig tile;
};

Geometry single_tile() { return {48, 48, 96, {48, 48, 32, 16, 16}}; }
Geometry multi_tile() { return {96, 96, 64, {32, 32, 32, 16, 16}}; }

std::vector<Tenant> make_tenants(int count, const Geometry& g,
                                 std::uint64_t seed, bool with_limits) {
  const core::M3xuEngine clean{core::M3xuConfig{}};
  gemm::AbftConfig abft;
  abft.enable = true;
  std::vector<Tenant> tenants;
  const Rng root{seed};
  for (int t = 0; t < count; ++t) {
    Rng rng = root.split(static_cast<std::uint64_t>(t));
    Tenant tn;
    tn.name = "tenant-" + std::to_string(t);
    tn.b_key = 0x7e000 + static_cast<std::uint64_t>(t) + (seed << 20);
    tn.a = gemm::Matrix<float>(g.m, g.k);
    tn.b = gemm::Matrix<float>(g.k, g.n);
    tn.c0 = gemm::Matrix<float>(g.m, g.n);
    fill_random(tn.a, rng);
    fill_random(tn.b, rng);
    fill_random(tn.c0, rng);
    tn.golden = tn.c0;
    gemm::tiled_sgemm(clean, g.tile, tn.a, tn.b, tn.golden);
    if (with_limits) {
      tn.limit.resize(static_cast<std::size_t>(g.n));
      for (int j = 0; j < g.n; ++j) {
        tn.limit[static_cast<std::size_t>(j)] =
            2.0 * gemm::abft_column_tolerance(clean, g.tile, abft, tn.a, tn.b,
                                              tn.c0, 0, g.m, j);
      }
    }
    tenants.push_back(std::move(tn));
  }
  return tenants;
}

enum class BitGate { kExact, kTolerance };

/// Per-mode/domain outcome tally plus the violation ledger.
struct Tally {
  long counts[kStatusCount] = {};
  long violations = 0;
  std::vector<std::string> notes;  // first few violation descriptions
  // A few degraded/failed/deadline requests kept alive so their
  // per-request trace timelines can be embedded in the JSON artifact.
  std::vector<RequestHandle> trace_samples;

  void violate(const std::string& what) {
    ++violations;
    if (notes.size() < 8) notes.push_back(what);
  }
  long total() const {
    long t = 0;
    for (long c : counts) t += c;
    return t;
  }
  long ok() const { return counts[static_cast<int>(RequestStatus::kOk)]; }
  long of(RequestStatus s) const { return counts[static_cast<int>(s)]; }
};

/// Expected outcome set for one domain. `allow` is indexed by status.
struct Expect {
  bool allow[kStatusCount] = {};
  BitGate gate = BitGate::kExact;

  static Expect of(std::initializer_list<RequestStatus> statuses,
                   BitGate gate = BitGate::kExact) {
    Expect e;
    e.gate = gate;
    for (RequestStatus s : statuses) e.allow[static_cast<int>(s)] = true;
    return e;
  }
};

/// Waits the request out and enforces the serving contract: a terminal
/// status from the allowed set, bit-correct kOk output, policy-backed
/// kDegraded, structured kFailed.
void settle(const RequestHandle& req, const Tenant& tenant, const Expect& e,
            Tally& tally) {
  req->wait();
  const RequestStatus s = req->status();
  ++tally.counts[static_cast<int>(s) % kStatusCount];
  if ((s == RequestStatus::kDegraded || s == RequestStatus::kFailed ||
       s == RequestStatus::kDeadlineExceeded) &&
      req->trace() != nullptr && tally.trace_samples.size() < 2) {
    tally.trace_samples.push_back(req);
  }
  if (!serve::is_terminal(s)) {
    tally.violate(tenant.name + ": non-terminal status after wait()");
    return;
  }
  if (!e.allow[static_cast<int>(s)]) {
    tally.violate(tenant.name + ": unexpected terminal status " +
                  serve::request_status_name(s) + " (" + req->error() + ")");
    return;
  }
  switch (s) {
    case RequestStatus::kOk: {
      const gemm::Matrix<float>& out = req->result_f32();
      if (e.gate == BitGate::kExact) {
        if (!bitwise_equal(out, tenant.golden)) {
          tally.violate(tenant.name + ": kOk result not bit-identical");
        }
      } else {
        for (int j = 0; j < out.cols(); ++j) {
          const double limit = tenant.limit[static_cast<std::size_t>(j)];
          for (int i = 0; i < out.rows(); ++i) {
            const double dev =
                std::fabs(static_cast<double>(out(i, j)) -
                          static_cast<double>(tenant.golden(i, j)));
            if (!(dev <= limit)) {
              tally.violate(tenant.name +
                            ": kOk result has supra-tolerance deviation");
              return;
            }
          }
        }
      }
      break;
    }
    case RequestStatus::kDegraded:
      if (req->stats().recovery.degraded_tiles +
              req->stats().recovery.poisoned_tiles ==
          0) {
        tally.violate(tenant.name + ": kDegraded without degraded tiles");
      }
      break;
    case RequestStatus::kFailed:
      if (req->error().empty()) {
        tally.violate(tenant.name + ": kFailed without a structured error");
      }
      break;
    default:
      break;  // kDeadlineExceeded / kShed / kCancelled carry their reason
  }
}

// ---------------------------------------------------------------------------
// Clean mode
// ---------------------------------------------------------------------------

struct CleanResult {
  Tally tally;
  std::vector<double> latency_ms;
  double wall_s = 0;
  double goodput_rps = 0;
  double shed_rate = 0;
  long poisson_requests = 0;
  long burst_requests = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[idx - 1];
}

CleanResult run_clean(bool quick, std::uint64_t seed) {
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(3, g, seed ^ 0xc1ea7ull, false);

  serve::ServerConfig cfg;
  cfg.executors = 3;
  cfg.queue_capacity = 512;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  serve::GemmServer server(cfg);

  // Calibrate the Poisson rate off one measured service time so the
  // open-loop stream runs near (but under) saturation on any machine.
  const double t0 = now_ms();
  {
    const core::M3xuEngine clean{core::M3xuConfig{}};
    gemm::Matrix<float> warm = tenants[0].c0;
    gemm::tiled_sgemm(clean, g.tile, tenants[0].a, tenants[0].b, warm);
  }
  const double service_ms = std::max(0.5, now_ms() - t0);
  const double mean_gap_ms = service_ms / static_cast<double>(cfg.executors);

  CleanResult result;
  struct Pending {
    RequestHandle req;
    const Tenant* tenant;
    double submit_ms;
    bool observed = false;
  };
  std::vector<Pending> pending;
  const Expect expect = Expect::of({RequestStatus::kOk});
  const auto poll = [&] {
    for (Pending& p : pending) {
      if (!p.observed && p.req->done()) {
        p.observed = true;
        result.latency_ms.push_back(now_ms() - p.submit_ms);
      }
    }
  };

  Rng arrivals{seed ^ 0xa441ull};
  const double wall_start = now_ms();

  // Phase 1: open-loop Poisson arrivals (exponential gaps).
  const int poisson_n = quick ? 24 : 120;
  for (int i = 0; i < poisson_n; ++i) {
    const double u = std::max(1e-12, 1.0 - arrivals.next_double());
    const double gap_ms = std::min(50.0, -mean_gap_ms * std::log(u));
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(gap_ms));
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    opts.b_key = t.b_key;
    pending.push_back({server.submit_sgemm(t.a, t.b, t.c0, opts), &t,
                       now_ms()});
    ++result.poisson_requests;
    poll();
  }

  // Phase 2: bursty closed-loop rounds - submit a burst, drain it.
  const int bursts = quick ? 2 : 6;
  const int burst_size = 10;
  for (int round = 0; round < bursts; ++round) {
    std::vector<std::size_t> burst;
    for (int i = 0; i < burst_size; ++i) {
      const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
      serve::RequestOptions opts;
      opts.tenant = t.name;
      opts.b_key = t.b_key;
      pending.push_back({server.submit_sgemm(t.a, t.b, t.c0, opts), &t,
                         now_ms()});
      burst.push_back(pending.size() - 1);
      ++result.burst_requests;
    }
    for (std::size_t idx : burst) {
      pending[idx].req->wait();
      poll();
    }
  }

  // Drain everything and enforce the clean gate.
  for (Pending& p : pending) {
    settle(p.req, *p.tenant, expect, result.tally);
    if (!p.observed) {
      p.observed = true;
      result.latency_ms.push_back(now_ms() - p.submit_ms);
    }
  }
  result.wall_s = (now_ms() - wall_start) / 1e3;
  const long good =
      result.tally.ok() + result.tally.of(RequestStatus::kDegraded);
  result.goodput_rps =
      result.wall_s > 0 ? static_cast<double>(good) / result.wall_s : 0.0;
  result.shed_rate =
      result.tally.total() > 0
          ? static_cast<double>(result.tally.of(RequestStatus::kShed)) /
                static_cast<double>(result.tally.total())
          : 0.0;
  result.cache_hits = server.pack_cache().hits();
  result.cache_misses = server.pack_cache().misses();
  std::sort(result.latency_ms.begin(), result.latency_ms.end());
  server.shutdown();
  return result;
}

// ---------------------------------------------------------------------------
// Tracing overhead
// ---------------------------------------------------------------------------

struct OverheadResult {
  double traced_ms = 0;    // trimmed total CPU ms across kept rounds, tracing on
  double untraced_ms = 0;  // trimmed total CPU ms across kept rounds, tracing off
  double ratio = 1.0;      // traced / untraced
  long requests = 0;
};

/// Closed-loop A/B: two long-lived servers, identical except for
/// trace_requests, measured in process CPU time (see cpu_ms).
///
/// Each round runs one tiny burst against each arm back-to-back
/// (order alternating by round parity). Adjacency is the point: the
/// dominant noise on a shared host is multiplicative - CPU frequency
/// drift makes the *same* work cost more or fewer CPU-seconds from
/// one moment to the next - and two samples taken milliseconds apart
/// see the same frequency, so each round's on/off ratio is clean even
/// when its absolute times are not. The gate is the MEDIAN of the
/// per-round ratios: a preempted or cache-cold round corrupts only
/// its own ratio, and the median discards any minority of corrupted
/// rounds no matter how large their individual errors - unlike summed
/// totals, which a few badly inflated samples in one arm can tilt.
/// The reported CPU totals exclude rounds where either arm's sample
/// sits far above its arm's median (dropped as a pair, keeping the
/// arms balanced). The telemetry budget for full request tracing is
/// <= 2% on this scenario.
OverheadResult run_overhead(bool quick, std::uint64_t seed) {
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed ^ 0x0abull, false);
  const int rounds = quick ? 48 : 96;
  const int per_round = 2;  // one request per tenant, both executors busy

  OverheadResult r;
  const auto make_server = [&](bool traced) {
    serve::ServerConfig cfg;
    cfg.executors = 2;
    cfg.queue_capacity = 256;
    cfg.tile = g.tile;
    cfg.abft.enable = true;
    cfg.trace_requests = traced;
    return std::make_unique<serve::GemmServer>(cfg);
  };
  const std::unique_ptr<serve::GemmServer> server_off = make_server(false);
  const std::unique_ptr<serve::GemmServer> server_on = make_server(true);
  const auto burst = [&](serve::GemmServer& server) {
    const double t0 = cpu_ms();
    std::vector<RequestHandle> handles;
    handles.reserve(static_cast<std::size_t>(per_round));
    for (int i = 0; i < per_round; ++i) {
      const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
      serve::RequestOptions opts;
      opts.tenant = t.name;
      opts.b_key = t.b_key;
      handles.push_back(server.submit_sgemm(t.a, t.b, t.c0, opts));
    }
    for (const RequestHandle& h : handles) h->wait();
    r.requests += per_round;
    return cpu_ms() - t0;
  };

  burst(*server_off);  // warm-up both arms: allocator, pack cache path
  burst(*server_on);
  std::vector<double> on, off;
  on.reserve(static_cast<std::size_t>(rounds));
  off.reserve(static_cast<std::size_t>(rounds));
  for (int p = 0; p < rounds; ++p) {
    double t_on, t_off;
    if (p % 2 == 0) {
      t_off = burst(*server_off);
      t_on = burst(*server_on);
    } else {
      t_on = burst(*server_on);
      t_off = burst(*server_off);
    }
    on.push_back(t_on);
    off.push_back(t_off);
  }
  const auto median_of = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double med_on = median_of(on);
  const double med_off = median_of(off);
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(rounds));
  double total_on = 0;
  double total_off = 0;
  for (int p = 0; p < rounds; ++p) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (off[i] > 0) ratios.push_back(on[i] / off[i]);
    // A preempted round resumes with cold caches and burns extra CPU
    // time; it shows up as a sample far above its arm's median. Keep
    // the reported totals paired and like-for-like by dropping the
    // whole round.
    if (on[i] > 1.25 * med_on || off[i] > 1.25 * med_off) continue;
    total_on += on[i];
    total_off += off[i];
  }
  r.traced_ms = total_on;
  r.untraced_ms = total_off;
  r.ratio = ratios.empty() ? 1.0 : median_of(ratios);
  server_off->shutdown();
  server_on->shutdown();
  return r;
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

struct DomainResult {
  std::string name;
  Tally tally;
  bool required_seen = true;  // domain-specific must-happen outcome
};

/// Datapath domains: the server's engine injects faults at `site`; the
/// resilience stack must keep every delivered result inside the ABFT
/// detectability bar.
DomainResult chaos_datapath(fault::Site site, double rate, int requests,
                            std::uint64_t seed) {
  DomainResult d;
  d.name = fault::site_name(site);
  const Geometry g = single_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, true);

  const fault::FaultInjector inj(seed ^ 0xda7aull,
                                 fault::SiteRates::only(site, rate));
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  cfg.engine.injector = &inj;
  cfg.retry_backoff_ms = 0;
  serve::GemmServer server(cfg);

  const Expect expect =
      Expect::of({RequestStatus::kOk, RequestStatus::kDegraded,
                  RequestStatus::kFailed},
                 BitGate::kTolerance);
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    handles.emplace_back(server.submit_sgemm(t.a, t.b, t.c0, opts), &t);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  server.shutdown();
  return d;
}

/// Alloc-failure domain: lost packed panels must fall back bit-exactly.
DomainResult chaos_alloc(int requests, std::uint64_t seed) {
  DomainResult d;
  d.name = "alloc_failure";
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, false);
  const fault::FaultInjector inj(
      seed ^ 0xa110cull,
      fault::SiteRates::only(fault::Site::kAllocFailure, 0.25));
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  cfg.engine.injector = &inj;
  serve::GemmServer server(cfg);

  const Expect expect = Expect::of({RequestStatus::kOk});
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    handles.emplace_back(server.submit_sgemm(t.a, t.b, t.c0, opts), &t);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  server.shutdown();
  return d;
}

/// Worker-stall domain (no deadline): stalls cost time, never bits.
DomainResult chaos_stall(int requests, std::uint64_t seed) {
  DomainResult d;
  d.name = "worker_stall";
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, false);
  fault::FaultInjector inj(
      seed ^ 0x57a11ull,
      fault::SiteRates::only(fault::Site::kWorkerStall, 0.2));
  inj.stall_duration_ms = 2;
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  cfg.engine.injector = &inj;
  serve::GemmServer server(cfg);

  const Expect expect = Expect::of({RequestStatus::kOk});
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    handles.emplace_back(server.submit_sgemm(t.a, t.b, t.c0, opts), &t);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  server.shutdown();
  return d;
}

/// User-cancel domain: outcomes are exactly {kOk bit-identical,
/// kCancelled} - a cancelled request must never deliver wrong bits.
DomainResult chaos_cancel(int requests, std::uint64_t seed) {
  DomainResult d;
  d.name = "user_cancel";
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, false);
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  serve::GemmServer server(cfg);

  Rng rng{seed ^ 0xca9ce1ull};
  const Expect expect =
      Expect::of({RequestStatus::kOk, RequestStatus::kCancelled});
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    RequestHandle req = server.submit_sgemm(t.a, t.b, t.c0, opts);
    if (rng.next_below(100) < 60) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.next_below(2000)));
      req->cancel("chaos tenant cancel");
    }
    handles.emplace_back(std::move(req), &t);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  d.required_seen = d.tally.of(RequestStatus::kCancelled) > 0;
  server.shutdown();
  return d;
}

/// Deadline domain: a stalling engine under tight wall deadlines. A
/// request either beats the deadline (kOk), exceeds it, or exhausts
/// its stall retries (kFailed, structured).
DomainResult chaos_deadline(int requests, std::uint64_t seed) {
  DomainResult d;
  d.name = "deadline";
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, false);
  fault::FaultInjector inj(
      seed ^ 0xdead11ull,
      fault::SiteRates::only(fault::Site::kWorkerStall, 1.0));
  inj.stall_duration_ms = 30;
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  cfg.engine.injector = &inj;
  cfg.stall_ms = 10;
  cfg.max_attempts = 2;
  cfg.retry_backoff_ms = 0;
  serve::GemmServer server(cfg);

  const Expect expect =
      Expect::of({RequestStatus::kOk, RequestStatus::kDeadlineExceeded,
                  RequestStatus::kFailed});
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    opts.deadline_ms = 60;
    handles.emplace_back(server.submit_sgemm(t.a, t.b, t.c0, opts), &t);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  d.required_seen = d.tally.of(RequestStatus::kDeadlineExceeded) +
                        d.tally.of(RequestStatus::kFailed) >
                    0;
  server.shutdown();
  return d;
}

/// Shed domain: an overload burst against a tiny queue, plus periodic
/// shared-pack-cache corruption. Losers shed explicitly; winners must
/// still produce bit-identical results even when their cached panels
/// were corrupted underneath them.
DomainResult chaos_shed(int requests, std::uint64_t seed) {
  DomainResult d;
  d.name = "shed";
  const Geometry g = multi_tile();
  std::vector<Tenant> tenants = make_tenants(2, g, seed, false);
  serve::ServerConfig cfg;
  cfg.executors = 1;
  cfg.queue_capacity = 4;
  cfg.admission = serve::AdmissionPolicy::kEvictLowestPriority;
  cfg.tile = g.tile;
  cfg.abft.enable = true;
  serve::GemmServer server(cfg);

  Rng rng{seed ^ 0x5eedull};
  const Expect expect = Expect::of({RequestStatus::kOk, RequestStatus::kShed});
  std::vector<std::pair<RequestHandle, const Tenant*>> handles;
  for (int i = 0; i < requests; ++i) {
    const Tenant& t = tenants[static_cast<std::size_t>(i) % tenants.size()];
    serve::RequestOptions opts;
    opts.tenant = t.name;
    opts.b_key = t.b_key;
    opts.priority = static_cast<int>(rng.next_below(10));
    handles.emplace_back(server.submit_sgemm(t.a, t.b, t.c0, opts), &t);
    if (i % 7 == 3) server.pack_cache().corrupt_one(t.b_key);
  }
  for (auto& [req, tenant] : handles) settle(req, *tenant, expect, d.tally);
  d.required_seen = d.tally.of(RequestStatus::kShed) > 0;
  server.shutdown();
  return d;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void json_tally(telemetry::JsonWriter& w, const Tally& t) {
  w.key("counts").begin_object();
  for (int s = 0; s < kStatusCount; ++s) {
    if (t.counts[s] > 0) {
      w.kv(serve::request_status_name(static_cast<RequestStatus>(s)),
           t.counts[s]);
    }
  }
  w.end_object();
  w.kv("violations", t.violations);
  if (!t.notes.empty()) {
    w.key("violation_notes").begin_array();
    for (const std::string& n : t.notes) w.value(n);
    w.end_array();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 0x5e41ll));
  const std::string mode = cli.get("mode", "both");
  const bool run_clean_mode = mode == "both" || mode == "clean";
  const bool run_chaos_mode = mode == "both" || mode == "chaos";

  const telemetry::Snapshot before = telemetry::snapshot();
  bool pass = true;

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "serving").kv("schema_version", 1);
  w.kv("seed", seed).kv("quick", quick).kv("mode", mode);

  std::printf("== GemmServer serving bench (seed=0x%llx%s) ==\n",
              static_cast<unsigned long long>(seed), quick ? ", quick" : "");

  if (run_clean_mode) {
    CleanResult clean = run_clean(quick, seed);
    const double p50 = percentile(clean.latency_ms, 50.0);
    const double p99 = percentile(clean.latency_ms, 99.0);
    const double p999 = percentile(clean.latency_ms, 99.9);
    pass = pass && clean.tally.violations == 0;
    std::printf(
        "clean: %ld requests (%ld poisson + %ld burst) in %.2fs | "
        "p50 %.2fms p99 %.2fms p999 %.2fms | goodput %.1f req/s | "
        "shed %.1f%% | cache %llu hits / %llu misses | violations %ld\n",
        clean.tally.total(), clean.poisson_requests, clean.burst_requests,
        clean.wall_s, p50, p99, p999, clean.goodput_rps,
        100.0 * clean.shed_rate,
        static_cast<unsigned long long>(clean.cache_hits),
        static_cast<unsigned long long>(clean.cache_misses),
        clean.tally.violations);

    w.key("clean").begin_object();
    w.kv("poisson_requests", clean.poisson_requests)
        .kv("burst_requests", clean.burst_requests)
        .kv("wall_s", clean.wall_s)
        .kv("latency_ms_p50", p50)
        .kv("latency_ms_p99", p99)
        .kv("latency_ms_p999", p999)
        .kv("goodput_rps", clean.goodput_rps)
        .kv("shed_rate", clean.shed_rate)
        .kv("pack_cache_hits", clean.cache_hits)
        .kv("pack_cache_misses", clean.cache_misses);
    json_tally(w, clean.tally);
    // The telemetry histogram's order-of-magnitude percentile readout,
    // for cross-checking exporter pipelines against exact samples.
    const telemetry::Snapshot snap = telemetry::snapshot();
    if (const auto* h = snap.histogram("serve.request_latency_ns")) {
      w.kv("telemetry_latency_ns_p50", h->percentile(50.0))
          .kv("telemetry_latency_ns_p99", h->percentile(99.0))
          .kv("telemetry_latency_ns_p999", h->percentile(99.9));
    }
    w.kv("pass", clean.tally.violations == 0);
    w.end_object();
  }

  {
    const OverheadResult o = run_overhead(quick, seed);
    std::printf(
        "tracing overhead: traced %.2f vs untraced %.2f CPU ms (trimmed "
        "paired totals) | ratio %.4f (median of per-round ratios, budget "
        "1.02)\n",
        o.traced_ms, o.untraced_ms, o.ratio);
    w.key("tracing_overhead").begin_object();
    w.kv("requests", o.requests)
        .kv("traced_cpu_ms", o.traced_ms)
        .kv("untraced_cpu_ms", o.untraced_ms)
        .kv("overhead_ratio", o.ratio)
        .kv("budget_ratio", 1.02)
        .kv("within_budget", o.ratio <= 1.02);
    w.end_object();
  }

  if (run_chaos_mode) {
    const int dp = quick ? 3 : 10;   // datapath requests per domain
    const int sys = quick ? 6 : 20;  // system-domain requests
    std::vector<DomainResult> domains;
    std::uint64_t stream = 0;
    const Rng root{seed};
    const auto s = [&] { return root.split(stream++).seed(); };
    domains.push_back(
        chaos_datapath(fault::Site::kOperandA, 1e-3, dp, s()));
    domains.push_back(
        chaos_datapath(fault::Site::kOperandB, 1e-3, dp, s()));
    domains.push_back(
        chaos_datapath(fault::Site::kPartialProduct, 1e-3, dp, s()));
    domains.push_back(
        chaos_datapath(fault::Site::kAccumulator, 1e-3, dp, s()));
    domains.push_back(
        chaos_datapath(fault::Site::kStagedPanel, 1e-4, dp, s()));
    domains.push_back(chaos_alloc(sys, s()));
    domains.push_back(chaos_stall(quick ? 4 : 10, s()));
    domains.push_back(chaos_cancel(sys, s()));
    domains.push_back(chaos_deadline(quick ? 4 : 10, s()));
    domains.push_back(chaos_shed(quick ? 16 : 40, s()));

    std::printf("%-16s %9s %5s %9s %6s %7s %6s %6s %11s %5s\n", "domain",
                "requests", "ok", "degraded", "shed", "cancel", "ddl",
                "fail", "violations", "pass");
    w.key("chaos").begin_object();
    w.key("domains").begin_array();
    for (const DomainResult& d : domains) {
      const bool dpass = d.tally.violations == 0 && d.required_seen;
      pass = pass && dpass;
      std::printf("%-16s %9ld %5ld %9ld %6ld %7ld %6ld %6ld %11ld %5s\n",
                  d.name.c_str(), d.tally.total(), d.tally.ok(),
                  d.tally.of(RequestStatus::kDegraded),
                  d.tally.of(RequestStatus::kShed),
                  d.tally.of(RequestStatus::kCancelled),
                  d.tally.of(RequestStatus::kDeadlineExceeded),
                  d.tally.of(RequestStatus::kFailed), d.tally.violations,
                  dpass ? "ok" : "FAIL");
      w.begin_object().kv("name", d.name).kv("requests", d.tally.total());
      json_tally(w, d.tally);
      w.kv("required_outcome_seen", d.required_seen).kv("pass", dpass);
      if (!d.tally.trace_samples.empty()) {
        // Per-request timelines of degraded/failed/expired requests:
        // admission -> ABFT detections -> ladder walk -> terminal.
        w.key("timeline_samples").begin_array();
        for (const RequestHandle& r : d.tally.trace_samples) {
          r->trace()->write_json(w);
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  // Serving-counter deltas across the whole run: the JSON artifact
  // doubles as a telemetry integration check.
  const telemetry::Snapshot after = telemetry::snapshot();
  w.key("telemetry").begin_object();
  for (const char* name :
       {"serve.requests.submitted", "serve.requests.ok",
        "serve.requests.degraded", "serve.requests.deadline_exceeded",
        "serve.requests.shed", "serve.requests.cancelled",
        "serve.requests.failed", "serve.requests.retries",
        "serve.shed.rejected", "serve.shed.evicted", "serve.pack_cache.hits",
        "serve.pack_cache.misses", "serve.pack_cache.corrupt_dropped",
        "recovery.quarantine_evictions", "threadpool.submissions_queued",
        "cancel.user", "cancel.deadline", "cancel.shed", "cancel.stall"}) {
    w.kv(name, after.counter_delta(before, name));
  }
  w.end_object();
  w.kv("pass", pass);
  w.end_object();

  const std::string json = w.str() + "\n";
  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_serving: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  // Optional live-metrics exposition dump + self-lint (the CI
  // metrics-smoke step): whatever this process exposes must parse as
  // Prometheus text format.
  const std::string metrics_prefix = cli.get("metrics-dump", "");
  if (!metrics_prefix.empty()) {
    const std::string prom_path = metrics_prefix + ".prom";
    const std::string snap_path = metrics_prefix + ".json";
    if (!telemetry::write_prometheus(prom_path) ||
        !telemetry::write_snapshot_json(snap_path)) {
      std::fprintf(stderr, "bench_serving: cannot write metrics dump %s\n",
                   metrics_prefix.c_str());
      return 2;
    }
    std::string lint_error;
    if (!telemetry::prometheus_lint(telemetry::prometheus_text(),
                                    &lint_error)) {
      std::fprintf(stderr, "bench_serving: prometheus lint FAILED: %s\n",
                   lint_error.c_str());
      return 2;
    }
    std::printf("metrics dump: %s + %s (prometheus lint ok)\n",
                prom_path.c_str(), snap_path.c_str());
  }

  std::printf("\nserving bench: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
