// Reproduces Fig. 5(a)/(b): relative energy of SGEMM and CGEMM kernels
// against the naive full-width FP32-MXU baseline (baseline_MXU_*gemm).
//
// Paper targets (SVI-B):
//   SGEMM: M3XU 61% below FP32-MXU, 27% below the best software;
//          non-pipelined M3XU 71% / 45% below.
//   CGEMM: M3XU 57% / 36%; non-pipelined 68% / 52% below.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/eval_kernels.hpp"

using namespace m3xu;
using namespace m3xu::sim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const long size = cli.get_int("size", 8192);
  const GpuSim gpu(GpuConfig::a100());

  std::printf("== Fig 5(a): SGEMM energy relative to baseline_MXU_sgemm "
              "(size %ld^3) ==\n",
              size);
  const double ref_s =
      time_sgemm(gpu, SgemmVariant::kFp32Mxu, size, size, size).energy;
  Table ta({"kernel", "relative energy"});
  const std::vector<SgemmVariant> sv = {
      SgemmVariant::kSimt, SgemmVariant::kTensorOp3xTf32,
      SgemmVariant::kEehc3xBf16, SgemmVariant::kM3xu,
      SgemmVariant::kM3xuNonPipelined};
  double best_sw_s = 1e300;
  double m3xu_s = 0.0, m3xu_np_s = 0.0;
  for (SgemmVariant v : sv) {
    const double e =
        time_sgemm(gpu, v, size, size, size).energy / ref_s;
    ta.add_row({variant_name(v), Table::num(e, 3)});
    if (v == SgemmVariant::kTensorOp3xTf32 || v == SgemmVariant::kEehc3xBf16) {
      best_sw_s = std::min(best_sw_s, e);
    }
    if (v == SgemmVariant::kM3xu) m3xu_s = e;
    if (v == SgemmVariant::kM3xuNonPipelined) m3xu_np_s = e;
  }
  ta.add_row({"baseline_MXU_sgemm", "1.000"});
  ta.print();
  std::printf("m3xu_sgemm_pipelined: %.0f%% below FP32-MXU (paper: 61%%), "
              "%.0f%% below best software (paper: 27%%)\n",
              (1.0 - m3xu_s) * 100.0, (1.0 - m3xu_s / best_sw_s) * 100.0);
  std::printf("m3xu_sgemm (non-pipelined): %.0f%% below FP32-MXU (paper: "
              "71%%), %.0f%% below best software (paper: 45%%)\n",
              (1.0 - m3xu_np_s) * 100.0,
              (1.0 - m3xu_np_s / best_sw_s) * 100.0);

  std::printf("\n== Fig 5(b): CGEMM energy relative to baseline_MXU_cgemm "
              "==\n");
  const double ref_c =
      time_cgemm(gpu, CgemmVariant::kFp32Mxu, size, size, size).energy;
  Table tb({"kernel", "relative energy"});
  const std::vector<CgemmVariant> cv = {CgemmVariant::kSimt,
                                        CgemmVariant::kTensorOp3xTf32,
                                        CgemmVariant::kM3xu,
                                        CgemmVariant::kM3xuNonPipelined};
  double sw_c = 0.0, m3xu_c = 0.0, m3xu_np_c = 0.0;
  for (CgemmVariant v : cv) {
    const double e =
        time_cgemm(gpu, v, size, size, size).energy / ref_c;
    tb.add_row({variant_name(v), Table::num(e, 3)});
    if (v == CgemmVariant::kTensorOp3xTf32) sw_c = e;
    if (v == CgemmVariant::kM3xu) m3xu_c = e;
    if (v == CgemmVariant::kM3xuNonPipelined) m3xu_np_c = e;
  }
  tb.add_row({"baseline_MXU_cgemm", "1.000"});
  tb.print();
  std::printf("m3xu_cgemm_pipelined: %.0f%% below FP32-MXU (paper: 57%%), "
              "%.0f%% below software (paper: 36%%)\n",
              (1.0 - m3xu_c) * 100.0, (1.0 - m3xu_c / sw_c) * 100.0);
  std::printf("m3xu_cgemm (non-pipelined): %.0f%% below FP32-MXU (paper: "
              "68%%), %.0f%% below software (paper: 52%%)\n",
              (1.0 - m3xu_np_c) * 100.0, (1.0 - m3xu_np_c / sw_c) * 100.0);
  return 0;
}
