// LRU prepacked-B panel cache with checksummed entries - the concrete
// gemm::PanelCache the GemmServer shares across tenants.
//
// Serving traffic is many GEMMs against few B matrices (weights), so
// the driver's per-(K-block, column-block) B packs coalesce: the first
// request packs, everyone after hits. Because the cache is shared
// mutable state on the result path, every entry carries a checksum
// computed at insertion and re-verified on every hit: a corrupted
// cached panel (bench chaos mode flips bits via corrupt_one(), and any
// real memory fault looks the same) is detected, dropped, and counted
// in serve.pack_cache.corrupt_dropped - the caller repacks from source
// bytes instead of serving the corruption to every request that shares
// the panel.
//
// The checksum hashes the panels field-wise (LaneOperand has padding
// bytes whose values copy-assignment does not pin down, so a raw byte
// hash of the structs would self-trip). See docs/SERVING.md.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/packed_panel.hpp"
#include "gemm/panel_cache.hpp"

namespace m3xu::serve {

class PackCache final : public gemm::PanelCache {
 public:
  /// `capacity` = max cached panels (LRU eviction past it). `verify`
  /// re-checksums entries on every get; disabling trades the integrity
  /// guarantee for lookup speed (tests and the chaos bench keep it on).
  explicit PackCache(std::size_t capacity, bool verify = true);

  bool get_fp32(const gemm::PanelKey& key,
                core::PackedPanelFp32B* out) override;
  bool get_fp32c(const gemm::PanelKey& key,
                 core::PackedPanelFp32cB* out) override;
  void put_fp32(const gemm::PanelKey& key,
                const core::PackedPanelFp32B& panel) override;
  void put_fp32c(const gemm::PanelKey& key,
                 const core::PackedPanelFp32cB& panel) override;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  // Lifetime totals (also mirrored into serve.pack_cache.* telemetry).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t corrupt_dropped() const;

  /// Fault hook for tests and the chaos bench: flips one significand
  /// bit inside some cached panel of `b_key` without updating its
  /// checksum, modeling a memory fault in the shared cache. Returns
  /// false when no corruptible entry exists.
  bool corrupt_one(std::uint64_t b_key);

  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const gemm::PanelKey& k) const;
  };
  struct Entry {
    // Exactly one panel is populated, selected by key.cplx.
    core::PackedPanelFp32B f32;
    core::PackedPanelFp32cB f32c;
    std::uint64_t checksum = 0;
    std::list<gemm::PanelKey>::iterator lru_it;
  };

  template <typename Panel, Panel Entry::*Member>
  bool get_impl(const gemm::PanelKey& key, Panel* out);
  template <typename Panel, Panel Entry::*Member>
  void put_impl(const gemm::PanelKey& key, const Panel& panel);

  const std::size_t capacity_;
  const bool verify_;
  mutable std::mutex mu_;
  std::list<gemm::PanelKey> lru_;  // front = most recently used
  std::unordered_map<gemm::PanelKey, Entry, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
};

}  // namespace m3xu::serve
