// GemmServer: an in-process, fault-tolerant, multi-tenant GEMM serving
// layer over the resilient tiled driver.
//
// Tenants submit asynchronous sgemm/cgemm requests; a bounded priority
// queue applies admission control (reject-new or evict-lowest-priority
// - either way the loser terminates as kShed, never a silent drop);
// executor threads pop requests and run them on the shared ThreadPool
// through tiled_sgemm/tiled_cgemm with the full resilience stack:
//
//   - per-request deadline propagated end-to-end: a CancelTimer latches
//     the request's CancellationToken (reason kDeadline) and the pool
//     watchdog bounds each parallel_for, so a request expires whether
//     it is queued, staging, or mid-mainloop;
//   - retry-with-backoff for transient failures (watchdog stalls,
//     allocation failures, exhausted ABFT ladders) up to max_attempts,
//     restoring the original C operand before each attempt;
//   - per-tenant tile quarantine: repeat offenders start demoted on
//     later requests of the *same* tenant and grid only - one tenant's
//     faults never demote a neighbor's route;
//   - a shared checksummed LRU prepacked-B cache (PackCache) so
//     same-weights requests coalesce their pack work, with corruption
//     detected and repacked rather than served.
//
// Isolation contract: requests share only the thread pool, the
// checksummed pack cache, and the engine configuration. Matrices are
// owned per-request (moved in at submission), so no request can
// observe another tenant's operands or results. See docs/SERVING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/mxu.hpp"
#include "gemm/plan.hpp"
#include "gemm/recovery.hpp"
#include "gemm/tiled_driver.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/pack_cache.hpp"
#include "serve/request.hpp"
#include "serve/slo.hpp"

namespace m3xu::serve {

struct ServerConfig {
  /// Executor threads popping the submission queue. Each runs one
  /// request at a time; their parallel_for calls queue on the shared
  /// pool (see common/thread_pool.hpp).
  int executors = 2;
  /// Bounded submission queue: at most this many queued requests.
  std::size_t queue_capacity = 64;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  /// Default wall deadline per request, ms from submission (0 = none).
  /// RequestOptions::deadline_ms overrides per request.
  std::int64_t default_deadline_ms = 0;
  /// Watchdog no-progress window per parallel_for, ms. Applied only to
  /// requests that have an effective deadline (the driver requires the
  /// deadline backstop).
  std::int64_t stall_ms = 0;
  /// Execution attempts per request: 1 initial + (max_attempts - 1)
  /// retries for transient failures (stall, bad_alloc, exhausted ABFT
  /// ladder with Terminal::kThrow).
  int max_attempts = 3;
  /// Base retry backoff, ms; doubles per retry. 0 retries immediately.
  std::int64_t retry_backoff_ms = 1;
  gemm::TileConfig tile;
  /// ABFT guard for every request (serving typically enables it).
  gemm::AbftConfig abft;
  /// Recovery ladder template. The quarantine field is ignored: the
  /// server substitutes the per-tenant quarantine for each request.
  gemm::RecoveryPolicy recovery;
  /// LRU capacity of each tenant's per-grid TileQuarantine.
  std::size_t quarantine_tiles_per_tenant =
      gemm::TileQuarantine::kDefaultCapacity;
  /// Shared prepacked-B cache: max cached panels, and whether hits
  /// re-verify the entry checksum.
  std::size_t pack_cache_entries = 256;
  bool pack_cache_verify = true;
  /// Engine configuration for the primary datapath. May carry a fault
  /// injector (chaos benches do); ABFT recomputes and the terminal
  /// scalar rung always run a fault-free clone.
  core::M3xuConfig engine;
  /// Create a request-scoped TraceContext per submission and thread it
  /// through admission, execution, recovery, and route dispatch (see
  /// telemetry/trace_context.hpp; Request::trace() exposes it). Costs
  /// one allocation plus microsecond-scale event logging per request;
  /// compiles out entirely with M3XU_TELEMETRY=OFF.
  bool trace_requests = true;
  /// Rolling-window SLO monitor fed by every terminal resolution. The
  /// default thresholds never breach; see serve/slo.hpp.
  SloConfig slo;
};

class GemmServer {
 public:
  explicit GemmServer(const ServerConfig& config);
  ~GemmServer();  // shutdown(): sheds queued requests, joins executors

  GemmServer(const GemmServer&) = delete;
  GemmServer& operator=(const GemmServer&) = delete;

  /// Submits C <- A*B + C on the FP32 mode. Matrices are moved into
  /// the request (per-request ownership is the isolation boundary).
  /// Returns a handle that is possibly already terminal: kShed when
  /// admission rejected it, kFailed when the shapes are invalid.
  RequestHandle submit_sgemm(gemm::Matrix<float> a, gemm::Matrix<float> b,
                             gemm::Matrix<float> c,
                             RequestOptions options = {});
  /// FP32-complex variant.
  RequestHandle submit_cgemm(gemm::Matrix<std::complex<float>> a,
                             gemm::Matrix<std::complex<float>> b,
                             gemm::Matrix<std::complex<float>> c,
                             RequestOptions options = {});

  /// Stops admission, sheds every queued request (kShed), lets running
  /// requests finish, joins executors. Idempotent.
  void shutdown();

  std::size_t queued() const { return queue_.size(); }
  PackCache& pack_cache() { return cache_; }
  const ServerConfig& config() const { return config_; }

  /// The SLO monitor every terminal resolution feeds. Non-const so
  /// external verifiers (chaos benches checking results against a
  /// reference) can report SDC escapes into it.
  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo() const { return slo_; }

  /// The quarantined-tile count for one tenant's grid (tests/benches;
  /// 0 when that tenant never demoted on that grid).
  std::size_t tenant_quarantine_size(const std::string& tenant, long grid_m,
                                     long grid_n) const;

  /// Compiled GemmPlans held for reuse across requests (tests/benches;
  /// one per distinct (tenant, shape, dtype) the server has executed).
  std::size_t plan_count() const;

 private:
  /// Stamps the submission time and (when trace_requests is on)
  /// creates the request's TraceContext with its "request.submit"
  /// event. Runs before shape validation so even rejected submissions
  /// carry a timeline.
  void begin_request(const RequestHandle& req, const gemm::PlanKey& key);
  RequestHandle admit(RequestHandle req);
  void executor_loop();
  void run_request(const RequestHandle& req);
  template <typename T>
  void run_attempts(const RequestHandle& req, gemm::Matrix<T>& a,
                    gemm::Matrix<T>& b, gemm::Matrix<T>& c);
  gemm::TileQuarantine& tenant_quarantine(const std::string& tenant,
                                          long grid_m, long grid_n);
  /// The compiled plan for one (tenant, shape, dtype), compiling and
  /// memoizing on first use. Compilation freezes everything
  /// request-invariant (validated configs, engine clones); per-request
  /// state rides in ExecRails at execute time.
  const gemm::GemmPlan& tenant_plan(const std::string& tenant,
                                    const gemm::PlanKey& key);
  /// The request's effective wall deadline in ms (per-request
  /// override, else the server default; negative opts out -> 0). The
  /// single derivation both the queued-expiry check and the execution
  /// path use.
  std::int64_t effective_deadline_ms(const RequestHandle& req) const;
  void resolve_and_count(const RequestHandle& req, RequestStatus s,
                         const std::string& error);

  const ServerConfig config_;
  PackCache cache_;
  SloMonitor slo_;
  BoundedQueue<RequestHandle> queue_;
  mutable std::mutex quarantine_mu_;
  std::map<std::tuple<std::string, long, long>,
           std::unique_ptr<gemm::TileQuarantine>>
      quarantines_;
  mutable std::mutex plans_mu_;
  std::map<std::tuple<std::string, int, int, int, bool>,
           std::unique_ptr<gemm::GemmPlan>>
      plans_;
  std::vector<std::thread> executors_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace m3xu::serve
