#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::serve {

namespace {

// Serving outcome counters and latency histograms (no-ops when
// M3XU_TELEMETRY=OFF). Every submission bumps submitted and exactly
// one terminal counter, so their sums reconcile.
telemetry::Counter srv_submitted("serve.requests.submitted");
telemetry::Counter srv_ok("serve.requests.ok");
telemetry::Counter srv_degraded("serve.requests.degraded");
telemetry::Counter srv_deadline("serve.requests.deadline_exceeded");
telemetry::Counter srv_shed("serve.requests.shed");
telemetry::Counter srv_cancelled("serve.requests.cancelled");
telemetry::Counter srv_failed("serve.requests.failed");
telemetry::Counter srv_retries("serve.requests.retries");
telemetry::Counter srv_shed_rejected("serve.shed.rejected");
telemetry::Counter srv_shed_evicted("serve.shed.evicted");
telemetry::Counter srv_plan_compiled("serve.plan.compiled");
telemetry::Counter srv_plan_reused("serve.plan.reused");
telemetry::Histogram srv_queue_wait("serve.queue_wait_ns");
telemetry::Histogram srv_latency("serve.request_latency_ns");

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void count_terminal(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      srv_ok.increment();
      break;
    case RequestStatus::kDegraded:
      srv_degraded.increment();
      break;
    case RequestStatus::kDeadlineExceeded:
      srv_deadline.increment();
      break;
    case RequestStatus::kShed:
      srv_shed.increment();
      break;
    case RequestStatus::kCancelled:
      srv_cancelled.increment();
      break;
    case RequestStatus::kFailed:
      srv_failed.increment();
      break;
    default:
      break;
  }
}

/// Terminal status for a request whose token latched before or during
/// execution, from the latch's reason tag.
RequestStatus status_for_cancel(CancelReason reason) {
  switch (reason) {
    case CancelReason::kDeadline:
      return RequestStatus::kDeadlineExceeded;
    case CancelReason::kShed:
      return RequestStatus::kShed;
    default:
      return RequestStatus::kCancelled;
  }
}

}  // namespace

GemmServer::GemmServer(const ServerConfig& config)
    : config_(config),
      cache_(config.pack_cache_entries, config.pack_cache_verify),
      slo_(config.slo),
      queue_(config.queue_capacity, config.admission) {
  M3XU_CHECK_MSG(config_.executors >= 1,
                 "ServerConfig.executors must be >= 1");
  M3XU_CHECK_MSG(config_.queue_capacity >= 1,
                 "ServerConfig.queue_capacity must be >= 1");
  M3XU_CHECK_MSG(config_.max_attempts >= 1,
                 "ServerConfig.max_attempts must be >= 1");
  M3XU_CHECK_MSG(config_.retry_backoff_ms >= 0,
                 "ServerConfig.retry_backoff_ms must be >= 0");
  M3XU_CHECK_MSG(config_.default_deadline_ms >= 0,
                 "ServerConfig.default_deadline_ms must be >= 0 (use "
                 "RequestOptions.deadline_ms < 0 for per-request opt-out)");
  M3XU_CHECK_MSG(config_.stall_ms >= 0, "ServerConfig.stall_ms must be >= 0");
  M3XU_CHECK_MSG(config_.quarantine_tiles_per_tenant >= 1,
                 "ServerConfig.quarantine_tiles_per_tenant must be >= 1");
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

GemmServer::~GemmServer() { shutdown(); }

void GemmServer::shutdown() {
  if (shut_down_.exchange(true)) {
    // Second caller (or the destructor after an explicit shutdown):
    // executors are already joined or being joined by the first.
    for (auto& t : executors_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  // Stop admission and shed everything still queued - explicitly, so
  // no request ever just disappears.
  for (const RequestHandle& req : queue_.close()) {
    req->token_.request_cancel("server shutdown", CancelReason::kShed);
    resolve_and_count(req, RequestStatus::kShed, "shed: server shutdown");
  }
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
}

RequestHandle GemmServer::submit_sgemm(gemm::Matrix<float> a,
                                       gemm::Matrix<float> b,
                                       gemm::Matrix<float> c,
                                       RequestOptions options) {
  RequestHandle req(new Request());
  req->options_ = std::move(options);
  req->complex_ = false;
  req->a_ = std::move(a);
  req->b_ = std::move(b);
  req->c_ = std::move(c);
  begin_request(req, gemm::PlanKey{req->a_.rows(), req->b_.cols(),
                                   req->a_.cols(), false});
  if (req->a_.cols() != req->b_.rows() || req->a_.rows() != req->c_.rows() ||
      req->b_.cols() != req->c_.cols()) {
    srv_submitted.increment();
    resolve_and_count(req, RequestStatus::kFailed,
                      "invalid shapes: need A(m,k) B(k,n) C(m,n)");
    return req;
  }
  return admit(std::move(req));
}

RequestHandle GemmServer::submit_cgemm(gemm::Matrix<std::complex<float>> a,
                                       gemm::Matrix<std::complex<float>> b,
                                       gemm::Matrix<std::complex<float>> c,
                                       RequestOptions options) {
  RequestHandle req(new Request());
  req->options_ = std::move(options);
  req->complex_ = true;
  req->ca_ = std::move(a);
  req->cb_ = std::move(b);
  req->cc_ = std::move(c);
  begin_request(req, gemm::PlanKey{req->ca_.rows(), req->cb_.cols(),
                                   req->ca_.cols(), true});
  if (req->ca_.cols() != req->cb_.rows() ||
      req->ca_.rows() != req->cc_.rows() ||
      req->cb_.cols() != req->cc_.cols()) {
    srv_submitted.increment();
    resolve_and_count(req, RequestStatus::kFailed,
                      "invalid shapes: need A(m,k) B(k,n) C(m,n)");
    return req;
  }
  return admit(std::move(req));
}

void GemmServer::begin_request(const RequestHandle& req,
                               const gemm::PlanKey& key) {
  req->submit_ns_ = now_ns();
  if (!config_.trace_requests) return;
  req->trace_ = std::make_unique<telemetry::TraceContext>(
      req->options_.tenant, gemm::plan_key_label(key));
  req->trace_->event("request.submit", req->options_.priority,
                     static_cast<long>(effective_deadline_ms(req)));
}

RequestHandle GemmServer::admit(RequestHandle req) {
  srv_submitted.increment();
  if (shut_down_.load(std::memory_order_acquire)) {
    req->token_.request_cancel("server shut down", CancelReason::kShed);
    resolve_and_count(req, RequestStatus::kShed, "shed: server shut down");
    return req;
  }
  const int priority = req->options_.priority;
  // Logged BEFORE the push: the push hands the request to an executor,
  // which may dequeue and start logging immediately - an admit event
  // written after the handoff could land mid-execution or after the
  // terminal event. A push the queue then rejects resolves to kShed
  // below, whose terminal event carries the reason.
  if (req->trace_ != nullptr) {
    req->trace_->event("request.admit", static_cast<long>(queue_.size()));
  }
  BoundedQueue<RequestHandle>::Admit admit = queue_.push(req, priority);
  if (!admit.admitted) {
    srv_shed_rejected.increment();
    req->token_.request_cancel("queue full", CancelReason::kShed);
    resolve_and_count(req, RequestStatus::kShed,
                      "shed: submission queue full");
    return req;
  }
  if (admit.evicted.has_value()) {
    const RequestHandle& victim = *admit.evicted;
    srv_shed_evicted.increment();
    if (victim->trace_ != nullptr) {
      victim->trace_->event("request.evicted", req->options_.priority);
    }
    victim->token_.request_cancel("evicted by higher-priority request",
                                  CancelReason::kShed);
    resolve_and_count(victim, RequestStatus::kShed,
                      "shed: evicted by higher-priority request");
  }
  return req;
}

void GemmServer::executor_loop() {
  for (;;) {
    std::optional<RequestHandle> item = queue_.pop();
    if (!item.has_value()) return;  // queue closed and drained
    run_request(*item);
  }
}

void GemmServer::resolve_and_count(const RequestHandle& req, RequestStatus s,
                                   const std::string& error) {
  if (!req->claim_terminal()) return;
  count_terminal(s);
  if (req->trace_ != nullptr) {
    req->trace_->event("request.done", static_cast<long>(s), req->attempts(),
                       request_status_name(s));
  }
  const std::uint64_t latency_ns = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, now_ns() - req->submit_ns_));
  slo_.record(s, latency_ns,
              static_cast<std::uint64_t>(req->stats_.recovery.demotions),
              static_cast<std::uint64_t>(req->stats_.abft_detected));
  req->publish_resolution(s, error);
}

gemm::TileQuarantine& GemmServer::tenant_quarantine(const std::string& tenant,
                                                    long grid_m,
                                                    long grid_n) {
  const std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto& slot = quarantines_[std::make_tuple(tenant, grid_m, grid_n)];
  if (slot == nullptr) {
    slot = std::make_unique<gemm::TileQuarantine>(
        config_.quarantine_tiles_per_tenant);
  }
  return *slot;
}

std::size_t GemmServer::tenant_quarantine_size(const std::string& tenant,
                                               long grid_m,
                                               long grid_n) const {
  const std::lock_guard<std::mutex> lock(quarantine_mu_);
  const auto it = quarantines_.find(std::make_tuple(tenant, grid_m, grid_n));
  return it == quarantines_.end() ? 0 : it->second->size();
}

const gemm::GemmPlan& GemmServer::tenant_plan(const std::string& tenant,
                                              const gemm::PlanKey& key) {
  const std::lock_guard<std::mutex> lock(plans_mu_);
  auto& slot = plans_[std::make_tuple(tenant, key.m, key.n, key.k, key.cplx)];
  if (slot == nullptr) {
    gemm::PlanOptions options;
    options.tile = config_.tile;
    options.abft = config_.abft;
    options.policy = config_.recovery;
    // B varies per request here; cross-request panel sharing is the
    // checksummed PackCache's job (ExecRails.b_cache), not the plan's
    // private store.
    options.reuse_b_panels = false;
    slot = std::make_unique<gemm::GemmPlan>(
        gemm::GemmPlan::compile(config_.engine, key, options));
    srv_plan_compiled.increment();
  } else {
    srv_plan_reused.increment();
  }
  return *slot;
}

std::size_t GemmServer::plan_count() const {
  const std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_.size();
}

std::int64_t GemmServer::effective_deadline_ms(const RequestHandle& req) const {
  std::int64_t deadline_ms = req->options_.deadline_ms;
  if (deadline_ms == 0) deadline_ms = config_.default_deadline_ms;
  return deadline_ms < 0 ? 0 : deadline_ms;
}

void GemmServer::run_request(const RequestHandle& req) {
  const std::int64_t wait_ns =
      std::max<std::int64_t>(0, now_ns() - req->submit_ns_);
  srv_queue_wait.record(static_cast<std::uint64_t>(wait_ns));
  if (req->trace_ != nullptr) {
    req->trace_->event("request.dequeue", static_cast<long>(wait_ns / 1000));
  }
  // Requests that died while queued (user cancel, deadline timer at a
  // higher layer) resolve without touching the pool.
  if (req->token_.cancelled()) {
    resolve_and_count(req, status_for_cancel(req->token_.reason_tag()),
                      "aborted while queued: " + req->token_.reason());
    return;
  }
  const std::int64_t deadline_ms = effective_deadline_ms(req);
  if (deadline_ms > 0) {
    const std::int64_t elapsed_ms =
        (now_ns() - req->submit_ns_) / 1'000'000;
    if (elapsed_ms >= deadline_ms) {
      resolve_and_count(req, RequestStatus::kDeadlineExceeded,
                        "deadline exceeded while queued");
      srv_latency.record(
          static_cast<std::uint64_t>(now_ns() - req->submit_ns_));
      return;
    }
  }
  req->set_running();
  if (req->complex_) {
    run_attempts<std::complex<float>>(req, req->ca_, req->cb_, req->cc_);
  } else {
    run_attempts<float>(req, req->a_, req->b_, req->c_);
  }
  srv_latency.record(
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, now_ns() - req->submit_ns_)));
}

template <typename T>
void GemmServer::run_attempts(const RequestHandle& req, gemm::Matrix<T>& a,
                              gemm::Matrix<T>& b, gemm::Matrix<T>& c) {
  // Remaining wall budget; the CancelTimer latches the request token
  // when it runs out, covering queue-of-pool waits and everything the
  // per-call watchdog cannot see. Both fire as "deadline".
  const std::int64_t deadline_ms = effective_deadline_ms(req);
  std::int64_t remaining_ms = 0;
  std::optional<CancelTimer> timer;
  if (deadline_ms > 0) {
    remaining_ms = deadline_ms - (now_ns() - req->submit_ns_) / 1'000'000;
    if (remaining_ms <= 0) {
      // Lost the race between the queued-expiry check and execution
      // entry (executor descheduled in between). Resolve as the
      // deadline outcome it is; arming a clamped floor-1ms timer here
      // would start real work just to cancel it moments later.
      resolve_and_count(req, RequestStatus::kDeadlineExceeded,
                        "deadline exceeded before execution start");
      return;
    }
    timer.emplace(req->token_, remaining_ms, CancelReason::kDeadline,
                  "request deadline exceeded");
  }

  const gemm::PlanKey plan_key{a.rows(), b.cols(), a.cols(),
                               std::is_same_v<T, std::complex<float>>};
  const gemm::GemmPlan& plan = tenant_plan(req->options_.tenant, plan_key);

  gemm::ExecRails rails;
  rails.token = &req->token_;
  rails.deadline_ms = remaining_ms;
  // The driver requires a deadline backstop for stall detection, so a
  // no-deadline request runs without it.
  rails.stall_ms = remaining_ms > 0 ? config_.stall_ms : 0;
  const long grid_m =
      (a.rows() + config_.tile.block_m - 1) / config_.tile.block_m;
  const long grid_n =
      (b.cols() + config_.tile.block_n - 1) / config_.tile.block_n;
  if (config_.recovery.demote) {
    rails.quarantine =
        &tenant_quarantine(req->options_.tenant, grid_m, grid_n);
  }
  if (req->options_.b_key != 0) {
    rails.b_cache = &cache_;
    rails.b_key = req->options_.b_key;
  }
  rails.trace = req->trace_.get();

  // The original C operand, restored before every retry (the driver
  // accumulates into C in place).
  const gemm::Matrix<T> c0 = c;
  for (int attempt = 1;; ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(req->mu_);
      req->attempts_ = attempt;
    }
    if (req->trace_ != nullptr) {
      req->trace_->event("request.attempt", attempt);
    }
    const char* transient = nullptr;
    std::string detail;
    try {
      if (attempt > 1) c = c0;
      req->stats_ = plan.execute(a, b, c, rails);
      const bool degraded = req->stats_.recovery.degraded_tiles +
                                req->stats_.recovery.poisoned_tiles >
                            0;
      resolve_and_count(
          req, degraded ? RequestStatus::kDegraded : RequestStatus::kOk,
          degraded ? "degraded per policy: suspect tiles accepted" : "");
      return;
    } catch (const DeadlineExceeded& e) {
      if (e.reason() == CancelReason::kStall) {
        // A watchdog stall is transient (a slow worker, an injected
        // delay): worth another attempt if budget remains.
        transient = "watchdog stall";
        detail = e.what();
      } else {
        resolve_and_count(req, RequestStatus::kDeadlineExceeded, e.what());
        return;
      }
    } catch (const CancelledError& e) {
      resolve_and_count(req, status_for_cancel(e.reason()), e.what());
      return;
    } catch (const gemm::AbftFailure& e) {
      // The ladder bottomed out under Terminal::kThrow. A fresh
      // attempt re-runs the full ladder (new retry streams).
      transient = "unrecovered ABFT failure";
      detail = e.what();
    } catch (const std::bad_alloc&) {
      transient = "allocation failure";
      detail = "std::bad_alloc";
    } catch (const CheckError& e) {
      resolve_and_count(req, RequestStatus::kFailed, e.what());
      return;
    } catch (const std::exception& e) {
      resolve_and_count(req, RequestStatus::kFailed, e.what());
      return;
    }
    if (attempt >= config_.max_attempts) {
      resolve_and_count(
          req, RequestStatus::kFailed,
          std::string(transient) + " after " +
              std::to_string(attempt) + " attempts: " + detail);
      return;
    }
    srv_retries.increment();
    // Exponential backoff, polling the token AND the shutdown flag so
    // a cancel, the deadline timer, or server stop cuts the wait
    // short - an executor sleeping out a long backoff must not stall
    // shutdown's join.
    std::int64_t backoff_ms = config_.retry_backoff_ms
                              << std::min(attempt - 1, 20);
    if (req->trace_ != nullptr) {
      req->trace_->event("request.retry_backoff", attempt,
                         static_cast<long>(backoff_ms), transient);
    }
    while (backoff_ms > 0 && !req->token_.cancelled() &&
           !shut_down_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --backoff_ms;
    }
    if (req->token_.cancelled()) {
      resolve_and_count(req, status_for_cancel(req->token_.reason_tag()),
                        "aborted during retry backoff: " +
                            req->token_.reason());
      return;
    }
    if (shut_down_.load(std::memory_order_acquire)) {
      req->token_.request_cancel("server shutdown during retry backoff",
                                 CancelReason::kShed);
      resolve_and_count(req, RequestStatus::kShed,
                        "shed: server shutdown during retry backoff");
      return;
    }
  }
}

template void GemmServer::run_attempts<float>(const RequestHandle&,
                                              gemm::Matrix<float>&,
                                              gemm::Matrix<float>&,
                                              gemm::Matrix<float>&);
template void GemmServer::run_attempts<std::complex<float>>(
    const RequestHandle&, gemm::Matrix<std::complex<float>>&,
    gemm::Matrix<std::complex<float>>&, gemm::Matrix<std::complex<float>>&);

}  // namespace m3xu::serve
