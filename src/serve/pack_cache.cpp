#include "serve/pack_cache.hpp"

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::serve {

namespace {

telemetry::Counter cache_hits_ctr("serve.pack_cache.hits");
telemetry::Counter cache_misses_ctr("serve.pack_cache.misses");
telemetry::Counter cache_evictions_ctr("serve.pack_cache.evictions");
telemetry::Counter cache_corrupt_ctr("serve.pack_cache.corrupt_dropped");

/// FNV-1a-style rolling hash over 64-bit words. Integrity-grade, not
/// cryptographic: it reliably catches the bit-level corruption the
/// cache guards against.
struct WordHash {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

void hash_lanes(WordHash& w, const std::vector<core::LaneOperand>& lanes) {
  w.mix(lanes.size());
  for (const core::LaneOperand& l : lanes) {
    // Field-wise: LaneOperand has padding whose bytes are unspecified
    // after copies, so hashing the raw struct bytes would false-trip.
    w.mix(static_cast<std::uint64_t>(l.cls));
    w.mix(static_cast<std::uint64_t>(l.sign));
    w.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.exp2)));
    w.mix(l.sig);
  }
}

void hash_bytes(WordHash& w, const std::vector<std::uint8_t>& bytes) {
  w.mix(bytes.size());
  for (std::uint8_t b : bytes) w.mix(b);
}

void hash_meta(WordHash& w, const std::vector<core::PanelChunkMeta>& meta) {
  w.mix(meta.size());
  for (const core::PanelChunkMeta& m : meta) {
    w.mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(m.min_exp)));
    w.mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(m.max_exp)));
    w.mix(m.flags);
  }
}

std::uint64_t checksum_panel(const core::PackedPanelFp32B& p) {
  WordHash w;
  w.mix(static_cast<std::uint64_t>(p.k));
  w.mix(static_cast<std::uint64_t>(p.cols));
  w.mix(static_cast<std::uint64_t>(p.has_special));
  hash_lanes(w, p.like);
  hash_lanes(w, p.swapped);
  hash_lanes(w, p.cls);
  hash_bytes(w, p.special);
  hash_meta(w, p.meta);
  return w.h;
}

std::uint64_t checksum_panel(const core::PackedPanelFp32cB& p) {
  WordHash w;
  w.mix(static_cast<std::uint64_t>(p.k));
  w.mix(static_cast<std::uint64_t>(p.cols));
  w.mix(static_cast<std::uint64_t>(p.has_special));
  hash_lanes(w, p.real_like);
  hash_lanes(w, p.real_swap);
  hash_lanes(w, p.imag_like);
  hash_lanes(w, p.imag_swap);
  hash_lanes(w, p.cls);
  hash_bytes(w, p.special);
  hash_meta(w, p.meta);
  return w.h;
}

}  // namespace

std::size_t PackCache::KeyHash::operator()(const gemm::PanelKey& k) const {
  WordHash w;
  w.mix(k.b_key);
  w.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.k0)));
  w.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.col0)));
  w.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.kc)));
  w.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.cols)));
  w.mix(static_cast<std::uint64_t>(k.cplx));
  return static_cast<std::size_t>(w.h);
}

PackCache::PackCache(std::size_t capacity, bool verify)
    : capacity_(capacity), verify_(verify) {
  M3XU_CHECK_MSG(capacity_ > 0, "PackCache capacity must be positive");
}

template <typename Panel, Panel PackCache::Entry::*Member>
bool PackCache::get_impl(const gemm::PanelKey& key, Panel* out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    cache_misses_ctr.increment();
    return false;
  }
  Entry& entry = it->second;
  if (verify_ && checksum_panel(entry.*Member) != entry.checksum) {
    // A corrupted panel must never be served: drop the entry so the
    // caller's repack replaces it, and make the event visible.
    lru_.erase(entry.lru_it);
    entries_.erase(it);
    ++corrupt_dropped_;
    cache_corrupt_ctr.increment();
    ++misses_;
    cache_misses_ctr.increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  *out = entry.*Member;
  ++hits_;
  cache_hits_ctr.increment();
  return true;
}

template <typename Panel, Panel PackCache::Entry::*Member>
void PackCache::put_impl(const gemm::PanelKey& key, const Panel& panel) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replacement (e.g. repack after a corruption drop raced another
    // packer): refresh in place.
    it->second.*Member = panel;
    it->second.checksum = checksum_panel(panel);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    cache_evictions_ctr.increment();
  }
  lru_.push_front(key);
  Entry entry;
  entry.*Member = panel;
  entry.checksum = checksum_panel(panel);
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
}

bool PackCache::get_fp32(const gemm::PanelKey& key,
                         core::PackedPanelFp32B* out) {
  return get_impl<core::PackedPanelFp32B, &Entry::f32>(key, out);
}

bool PackCache::get_fp32c(const gemm::PanelKey& key,
                          core::PackedPanelFp32cB* out) {
  return get_impl<core::PackedPanelFp32cB, &Entry::f32c>(key, out);
}

void PackCache::put_fp32(const gemm::PanelKey& key,
                         const core::PackedPanelFp32B& panel) {
  put_impl<core::PackedPanelFp32B, &Entry::f32>(key, panel);
}

void PackCache::put_fp32c(const gemm::PanelKey& key,
                          const core::PackedPanelFp32cB& panel) {
  put_impl<core::PackedPanelFp32cB, &Entry::f32c>(key, panel);
}

std::size_t PackCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t PackCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::uint64_t PackCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::uint64_t PackCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
std::uint64_t PackCache::corrupt_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return corrupt_dropped_;
}

bool PackCache::corrupt_one(std::uint64_t b_key) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (key.b_key != b_key) continue;
    std::vector<core::LaneOperand>* lanes =
        key.cplx ? &entry.f32c.real_like : &entry.f32.like;
    if (lanes->empty()) continue;
    (*lanes)[0].sig ^= 1ull << 7;
    return true;
  }
  return false;
}

void PackCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace m3xu::serve
