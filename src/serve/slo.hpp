// SLO monitoring for the serving stack: a rolling window of terminal
// request outcomes evaluated against configurable thresholds.
//
// The monitor tracks, over the last `window` terminal requests:
//   - p50/p99 latency (exact nearest-rank over the window, computed
//     over executed requests - shed requests never ran and would only
//     dilute the percentiles)
//   - shed rate (kShed / window)
//   - route-demotion rate (executed requests whose recovery ladder
//     demoted at least one tile)
//   - ABFT-recovery rate (executed requests whose ABFT guard detected
//     and engaged recovery)
//   - SDC-escape count (cumulative; reported by an external checker
//     via record_sdc_escape(), e.g. the chaos harness's bit-identity
//     gate - the server cannot observe its own silent corruption)
//
// record() is called once per terminal request by GemmServer (a mutex
// push into a ring buffer - the serving control path, not the GEMM hot
// path) and auto-evaluates every `evaluate_every` records. Breaches
// are edge-triggered into a bounded structured log: one SloBreach when
// a metric crosses from ok to breached, re-armed when it recovers.
// evaluate() renders a full report on demand; everything exports as
// JSON via write_json.
//
// Works identically in M3XU_TELEMETRY=OFF builds (the monitor is its
// own state, not registry-backed); only the slo.* counters vanish.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace m3xu::telemetry {
class JsonWriter;
}  // namespace m3xu::telemetry

namespace m3xu::serve {

/// Evaluation thresholds. A threshold at its "disabled" sentinel is
/// not checked.
struct SloThresholds {
  double p50_ms = 0;                   // 0 disables
  double p99_ms = 0;                   // 0 disables
  double max_shed_rate = -1;           // fraction in [0,1]; <0 disables
  double max_demotion_rate = -1;       // fraction in [0,1]; <0 disables
  double max_abft_recovery_rate = -1;  // fraction in [0,1]; <0 disables
  /// Breach when cumulative SDC escapes exceed this. Escapes are
  /// always checked: the only acceptable default is zero.
  std::int64_t max_sdc_escapes = 0;
};

struct SloConfig {
  SloThresholds thresholds;
  /// Terminal requests retained in the rolling window.
  std::size_t window = 1024;
  /// Rate/percentile thresholds are not evaluated below this many
  /// windowed requests (one early shed is not a 100% shed rate).
  std::size_t min_requests = 16;
  /// Auto-evaluation cadence in record() calls; 0 disables (then only
  /// explicit evaluate() calls observe breaches).
  std::size_t evaluate_every = 32;
};

/// One threshold crossing. `metric` is a static name ("latency_p99_ms",
/// "shed_rate", ...); observed/threshold are in the metric's unit.
struct SloBreach {
  const char* metric = "";
  double observed = 0;
  double threshold = 0;
  std::uint64_t at_ns = 0;  // now_ns() stamp of the evaluation
  std::uint64_t window_requests = 0;
};

/// Snapshot of the windowed metrics plus the breaches active at this
/// evaluation.
struct SloReport {
  std::uint64_t window_requests = 0;
  std::uint64_t executed_requests = 0;  // window minus shed
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_rate = 0;
  double demotion_rate = 0;
  double abft_recovery_rate = 0;
  std::uint64_t sdc_escapes = 0;
  std::vector<SloBreach> breaches;
  bool ok() const { return breaches.empty(); }
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = {});

  /// One terminal request. `latency_ns` is submission-to-resolution;
  /// `demotions`/`abft_detected` come from the winning attempt's
  /// driver stats (0 when the request never executed).
  void record(RequestStatus status, std::uint64_t latency_ns,
              std::uint64_t demotions = 0, std::uint64_t abft_detected = 0);

  /// Cumulative silent-data-corruption escapes observed by an external
  /// bit-identity checker.
  void record_sdc_escape();

  /// Evaluates the current window against the thresholds.
  SloReport evaluate() const;

  /// Edge-triggered breach events from auto-evaluation, oldest first
  /// (bounded; overflow drops the oldest).
  std::vector<SloBreach> breach_log() const;

  std::uint64_t evaluations() const;
  std::uint64_t recorded() const;
  const SloConfig& config() const { return config_; }

  /// Writes the report as the writer's next value.
  static void write_json(telemetry::JsonWriter& w, const SloReport& report);

 private:
  struct Sample {
    RequestStatus status;
    std::uint64_t latency_ns;
    bool demoted;
    bool abft_detected;
  };

  SloReport evaluate_locked() const;
  void note_breaches_locked(const SloReport& report);

  const SloConfig config_;

  mutable std::mutex mu_;
  std::vector<Sample> window_;  // ring buffer
  std::size_t next_ = 0;        // ring insertion point
  std::uint64_t recorded_ = 0;
  std::uint64_t sdc_escapes_ = 0;
  mutable std::uint64_t evaluations_ = 0;
  std::vector<SloBreach> breach_log_;
  // Edge-trigger state: one latch per thresholded metric.
  bool active_p50_ = false;
  bool active_p99_ = false;
  bool active_shed_ = false;
  bool active_demotion_ = false;
  bool active_abft_ = false;
  bool active_sdc_ = false;
};

}  // namespace m3xu::serve
