// Request/response types for the multi-tenant GemmServer.
//
// A submission returns a RequestHandle - a shared handle onto the
// request's state. The caller keeps the handle to wait on completion,
// cancel, and read the result; the server keeps one to execute it.
// Every request terminates in exactly one terminal status:
//
//   kOk                bit-identical result (clean run, or every fault
//                      recovered by the ladder)
//   kDegraded          the recovery policy's terminal accepted suspect
//                      or poisoned tiles (Terminal::kDegrade/kPoison);
//                      stats().recovery says which and how many
//   kDeadlineExceeded  the request's deadline elapsed (queued or
//                      mid-run)
//   kShed              admission control rejected or evicted it
//   kCancelled         the caller's explicit cancel()
//   kFailed            a structured error (exhausted retries, invalid
//                      config, ...); error() carries the message
//
// There is no silent-drop path: shutdown and eviction both resolve
// pending requests to kShed. See docs/SERVING.md.
#pragma once

#include <chrono>
#include <complex>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancellation.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiled_driver.hpp"
#include "telemetry/trace_context.hpp"

namespace m3xu::serve {

enum class RequestStatus : int {
  kQueued = 0,
  kRunning = 1,
  kOk = 2,
  kDegraded = 3,
  kDeadlineExceeded = 4,
  kShed = 5,
  kCancelled = 6,
  kFailed = 7,
};

inline const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kDegraded:
      return "degraded";
    case RequestStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "?";
}

inline bool is_terminal(RequestStatus s) {
  return s != RequestStatus::kQueued && s != RequestStatus::kRunning;
}

/// Per-request knobs a tenant sets at submission.
struct RequestOptions {
  /// Tenant identity: scopes the quarantine (one tenant's repeat
  /// offenders never demote a neighbor's route) and the per-tenant
  /// serving counters.
  std::string tenant = "default";
  /// Admission priority: higher wins. Under the evict-lowest-priority
  /// policy a full queue evicts the lowest-priority (then youngest)
  /// queued request to admit a strictly higher-priority one.
  int priority = 0;
  /// Wall deadline from submission, in ms. 0 uses the server default;
  /// < 0 means no deadline even if the server has a default.
  std::int64_t deadline_ms = 0;
  /// Identity of the B matrix contents for prepacked-panel caching.
  /// 0 = no caching. Callers must guarantee two submissions share a
  /// b_key only when their B matrices are bytewise identical.
  std::uint64_t b_key = 0;
};

/// One in-flight GEMM request. Thread-safe shared state between the
/// submitting tenant and the executor; obtained only via
/// GemmServer::submit_* (the server fills in the matrices and token).
class Request {
 public:
  RequestStatus status() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }
  bool done() const { return is_terminal(status()); }

  /// Blocks until the request reaches a terminal status.
  void wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return is_terminal(status_); });
  }
  /// As wait(), bounded; returns false on timeout.
  bool wait_for(std::int64_t timeout_ms) const {
    std::unique_lock<std::mutex> lock(mu_);
    return done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [&] { return is_terminal(status_); });
  }

  /// Cooperative cancel. Queued requests resolve to kCancelled when
  /// the executor picks them up; running ones abort at the next
  /// checkpoint. No-op once terminal.
  void cancel(const std::string& reason = "cancelled by caller") {
    token_.request_cancel(reason, CancelReason::kUser);
  }

  /// Result matrix; valid only in kOk / kDegraded.
  const gemm::Matrix<float>& result_f32() const { return c_; }
  const gemm::Matrix<std::complex<float>>& result_c64() const { return cc_; }

  /// Driver stats of the successful attempt (kOk / kDegraded only).
  const gemm::TiledGemmStats& stats() const { return stats_; }
  /// Structured error message (kFailed; also set for kShed /
  /// kDeadlineExceeded / kCancelled with the abort reason).
  std::string error() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }
  /// Executor attempts consumed (0 when never started).
  int attempts() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return attempts_;
  }

  const RequestOptions& options() const { return options_; }
  bool complex_mode() const { return complex_; }

  /// Request-scoped trace the server threaded through execution, or
  /// null when ServerConfig::trace_requests is off. Valid for the
  /// handle's lifetime; export with trace()->to_json() once terminal.
  telemetry::TraceContext* trace() const { return trace_.get(); }

 private:
  friend class GemmServer;

  Request() = default;

  /// Executor-side: publish a terminal status exactly once. Later
  /// calls are ignored, so racing resolutions (e.g. a cancel landing
  /// while the executor finishes) keep the first outcome.
  // Resolution is two-phase so terminal side effects (the trace's
  // "request.done" event, the SLO sample) complete BEFORE any waiter
  // wakes: claim_terminal() wins the idempotence race without
  // publishing; publish_resolution() then stores the outcome and
  // notifies. A wait() that returns therefore always observes the
  // finished timeline and a monitor that already counted the request.
  bool claim_terminal() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (claimed_ || is_terminal(status_)) return false;
    claimed_ = true;
    return true;
  }
  void publish_resolution(RequestStatus s, const std::string& error) {
    std::unique_lock<std::mutex> lock(mu_);
    status_ = s;
    error_ = error;
    lock.unlock();
    done_cv_.notify_all();
  }
  void set_running() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!claimed_ && !is_terminal(status_)) status_ = RequestStatus::kRunning;
  }

  RequestOptions options_;
  bool complex_ = false;
  gemm::Matrix<float> a_, b_, c_;
  gemm::Matrix<std::complex<float>> ca_, cb_, cc_;
  CancellationToken token_;
  gemm::TiledGemmStats stats_;
  std::unique_ptr<telemetry::TraceContext> trace_;
  std::int64_t submit_ns_ = 0;  // steady-clock stamp at submission
  int attempts_ = 0;

  mutable std::mutex mu_;
  mutable std::condition_variable done_cv_;
  RequestStatus status_ = RequestStatus::kQueued;
  bool claimed_ = false;  // terminal resolution claimed, not yet published
  std::string error_;
};

using RequestHandle = std::shared_ptr<Request>;

}  // namespace m3xu::serve
