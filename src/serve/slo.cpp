#include "serve/slo.hpp"

#include <algorithm>
#include <string_view>

#include "telemetry/json.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::serve {

namespace {

telemetry::Counter c_evaluations("slo.evaluations");
telemetry::Counter c_breaches("slo.breaches");

/// Bounded edge-triggered breach history.
constexpr std::size_t kMaxBreachLog = 256;

/// Exact nearest-rank percentile over a sorted sample set.
double percentile_ms(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]) * 1e-6;
}

}  // namespace

SloMonitor::SloMonitor(SloConfig config) : config_(config) {
  window_.reserve(std::min<std::size_t>(config_.window, 4096));
}

void SloMonitor::record(RequestStatus status, std::uint64_t latency_ns,
                        std::uint64_t demotions,
                        std::uint64_t abft_detected) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Sample sample{status, latency_ns, demotions > 0, abft_detected > 0};
  if (config_.window == 0) return;
  if (window_.size() < config_.window) {
    window_.push_back(sample);
  } else {
    window_[next_] = sample;
  }
  next_ = (next_ + 1) % config_.window;
  ++recorded_;
  if (config_.evaluate_every != 0 &&
      recorded_ % config_.evaluate_every == 0) {
    note_breaches_locked(evaluate_locked());
  }
}

void SloMonitor::record_sdc_escape() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++sdc_escapes_;
  // An escape is the one SLO violation that must never wait for the
  // next cadence tick.
  note_breaches_locked(evaluate_locked());
}

SloReport SloMonitor::evaluate() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  c_evaluations.increment();
  return evaluate_locked();
}

SloReport SloMonitor::evaluate_locked() const {
  SloReport report;
  report.window_requests = window_.size();
  report.sdc_escapes = sdc_escapes_;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(window_.size());
  std::uint64_t shed = 0, demoted = 0, abft = 0;
  for (const Sample& s : window_) {
    if (s.status == RequestStatus::kShed) {
      ++shed;
      continue;
    }
    latencies.push_back(s.latency_ns);
    if (s.demoted) ++demoted;
    if (s.abft_detected) ++abft;
  }
  report.executed_requests = latencies.size();
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = percentile_ms(latencies, 50);
  report.p99_ms = percentile_ms(latencies, 99);
  if (!window_.empty()) {
    report.shed_rate =
        static_cast<double>(shed) / static_cast<double>(window_.size());
  }
  if (!latencies.empty()) {
    const double executed = static_cast<double>(latencies.size());
    report.demotion_rate = static_cast<double>(demoted) / executed;
    report.abft_recovery_rate = static_cast<double>(abft) / executed;
  }

  const SloThresholds& t = config_.thresholds;
  const std::uint64_t now = telemetry::now_ns();
  const auto breach = [&](const char* metric, double observed,
                          double threshold) {
    report.breaches.push_back(
        SloBreach{metric, observed, threshold, now, report.window_requests});
  };
  const bool enough = window_.size() >= config_.min_requests;
  if (enough && t.p50_ms > 0 && report.p50_ms > t.p50_ms) {
    breach("latency_p50_ms", report.p50_ms, t.p50_ms);
  }
  if (enough && t.p99_ms > 0 && report.p99_ms > t.p99_ms) {
    breach("latency_p99_ms", report.p99_ms, t.p99_ms);
  }
  if (enough && t.max_shed_rate >= 0 &&
      report.shed_rate > t.max_shed_rate) {
    breach("shed_rate", report.shed_rate, t.max_shed_rate);
  }
  if (enough && t.max_demotion_rate >= 0 &&
      report.demotion_rate > t.max_demotion_rate) {
    breach("demotion_rate", report.demotion_rate, t.max_demotion_rate);
  }
  if (enough && t.max_abft_recovery_rate >= 0 &&
      report.abft_recovery_rate > t.max_abft_recovery_rate) {
    breach("abft_recovery_rate", report.abft_recovery_rate,
           t.max_abft_recovery_rate);
  }
  if (static_cast<std::int64_t>(sdc_escapes_) > t.max_sdc_escapes) {
    breach("sdc_escapes", static_cast<double>(sdc_escapes_),
           static_cast<double>(t.max_sdc_escapes));
  }
  return report;
}

void SloMonitor::note_breaches_locked(const SloReport& report) {
  ++evaluations_;
  c_evaluations.increment();
  const auto latch = [&](const char* metric, bool* active) {
    const SloBreach* found = nullptr;
    for (const SloBreach& b : report.breaches) {
      if (b.metric == metric ||
          std::string_view(b.metric) == metric) {
        found = &b;
        break;
      }
    }
    if (found == nullptr) {
      *active = false;  // re-arm once the metric recovers
      return;
    }
    if (*active) return;  // still in the same breach episode
    *active = true;
    c_breaches.increment();
    if (breach_log_.size() >= kMaxBreachLog) {
      breach_log_.erase(breach_log_.begin());
    }
    breach_log_.push_back(*found);
  };
  latch("latency_p50_ms", &active_p50_);
  latch("latency_p99_ms", &active_p99_);
  latch("shed_rate", &active_shed_);
  latch("demotion_rate", &active_demotion_);
  latch("abft_recovery_rate", &active_abft_);
  latch("sdc_escapes", &active_sdc_);
}

std::vector<SloBreach> SloMonitor::breach_log() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return breach_log_;
}

std::uint64_t SloMonitor::evaluations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::uint64_t SloMonitor::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void SloMonitor::write_json(telemetry::JsonWriter& w,
                            const SloReport& report) {
  w.begin_object();
  w.kv("window_requests", report.window_requests);
  w.kv("executed_requests", report.executed_requests);
  w.key("p50_ms").value(report.p50_ms, 6);
  w.key("p99_ms").value(report.p99_ms, 6);
  w.key("shed_rate").value(report.shed_rate, 6);
  w.key("demotion_rate").value(report.demotion_rate, 6);
  w.key("abft_recovery_rate").value(report.abft_recovery_rate, 6);
  w.kv("sdc_escapes", report.sdc_escapes);
  w.kv("ok", report.ok());
  w.key("breaches").begin_array();
  for (const SloBreach& b : report.breaches) {
    w.begin_object();
    w.kv("metric", b.metric);
    w.key("observed").value(b.observed, 9);
    w.key("threshold").value(b.threshold, 9);
    w.kv("at_ns", b.at_ns);
    w.kv("window_requests", b.window_requests);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace m3xu::serve
