// Bounded priority submission queue with explicit admission control.
//
// The server's load-shedding contract lives here: a full queue either
// rejects the incoming item (kRejectNew) or evicts the lowest-priority
// queued item to admit a strictly higher-priority one
// (kEvictLowestPriority). Both outcomes are explicit in the push()
// result - the caller resolves the loser to a Shed terminal status,
// never a silent drop. Ordering is priority-major (higher first),
// FIFO within a priority.
//
// close() wakes all poppers and hands back every still-queued item so
// shutdown can shed them explicitly too.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace m3xu::serve {

enum class AdmissionPolicy {
  kRejectNew,            // full queue: the incoming item is shed
  kEvictLowestPriority,  // full queue: shed the lowest-priority queued
                         // item if the incoming one outranks it,
                         // otherwise shed the incoming item
};

template <typename T>
class BoundedQueue {
 public:
  struct Admit {
    bool admitted = false;
    /// The queued item displaced to make room (kEvictLowestPriority
    /// only); the caller must resolve it as shed.
    std::optional<T> evicted;
  };

  BoundedQueue(std::size_t capacity, AdmissionPolicy policy)
      : capacity_(capacity), policy_(policy) {}

  /// Attempts to enqueue. Never blocks.
  Admit push(T item, int priority) {
    Admit result;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return result;  // not admitted
      if (items_.size() >= capacity_) {
        if (policy_ == AdmissionPolicy::kRejectNew) return result;
        // Victim: lowest priority, youngest within it (map order puts
        // it last). Evict only for a strictly higher-priority arrival,
        // so equal-priority storms shed the newcomers (FIFO fairness).
        auto victim = std::prev(items_.end());
        if (-victim->first.neg_priority >= priority) return result;
        result.evicted = std::move(victim->second);
        items_.erase(victim);
      }
      items_.emplace(Key{-priority, next_seq_++}, std::move(item));
      result.admitted = true;
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only after close() with nothing left.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    auto first = items_.begin();
    T item = std::move(first->second);
    items_.erase(first);
    return item;
  }

  /// Closes the queue and returns everything still pending (in pop
  /// order) for the caller to shed.
  std::vector<T> close() {
    std::vector<T> pending;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      pending.reserve(items_.size());
      for (auto& [key, item] : items_) pending.push_back(std::move(item));
      items_.clear();
    }
    cv_.notify_all();
    return pending;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Key {
    int neg_priority;    // negated so map order is highest-first
    std::uint64_t seq;   // FIFO within a priority
    bool operator<(const Key& o) const {
      if (neg_priority != o.neg_priority) {
        return neg_priority < o.neg_priority;
      }
      return seq < o.seq;
    }
  };

  const std::size_t capacity_;
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, T> items_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace m3xu::serve
