// Extended-precision accumulator-register model. M3XU accumulates
// partial sums in 48-bit-significand registers (paper SIV-A); the stock
// Tensor-Core baseline accumulates in FP32 (24-bit significand). Both
// are instances of ExtFloat with a configurable significand precision
// and an unbounded exponent (the register's exponent field is wide
// enough that it never saturates in practice).
#pragma once

#include "fp/exact_accumulator.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {

class ExtFloat {
 public:
  /// Significand precisions used by the hardware models.
  static constexpr int kM3xuAccumPrec = 48;
  static constexpr int kFp32AccumPrec = 24;

  /// Zero with the given precision.
  explicit ExtFloat(int prec);

  /// Rounds `u` to `prec` significand bits (RNE).
  static ExtFloat from_unpacked(const Unpacked& u, int prec);
  static ExtFloat from_float(float f, int prec);
  static ExtFloat from_double(double d, int prec);

  /// acc' = RNE_prec(acc + v), computed exactly then rounded once.
  ExtFloat plus(const Unpacked& v) const;

  /// acc' = RNE_prec(acc + sum), where `sum` is an exact accumulator
  /// holding e.g. one dot-product step's aligned partial products.
  /// This models the register update at the end of a step.
  ExtFloat plus_exact(const ExactAccumulator& sum) const;

  int prec() const { return prec_; }
  const Unpacked& value() const { return value_; }
  float to_float() const { return pack_to_float(value_); }
  double to_double() const { return pack_to_double(value_); }

 private:
  ExtFloat(Unpacked v, int prec) : value_(v), prec_(prec) {}

  Unpacked value_;
  int prec_;
};

/// Rounds an unpacked value's significand to `prec` bits (RNE),
/// renormalizing on carry-out. Specials and zero pass through.
Unpacked round_unpacked_to_precision(const Unpacked& u, int prec);

}  // namespace m3xu::fp
