// Storage value types for the narrow formats (the host has no native
// FP16/BF16/TF32). Conversions round-to-nearest-even via the soft-float
// layer. These are deliberately minimal: the MXU consumes them through
// the data-assignment stage, not through host arithmetic.
#pragma once

#include <cstdint>

#include "fp/format.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {

struct Half {
  std::uint16_t bits = 0;

  static Half from_float(float f) {
    return Half{static_cast<std::uint16_t>(pack(unpack(f), kFp16))};
  }
  float to_float() const { return pack_to_float(unpack(bits, kFp16)); }
};

struct Bf16 {
  std::uint16_t bits = 0;

  static Bf16 from_float(float f) {
    return Bf16{static_cast<std::uint16_t>(pack(unpack(f), kBf16))};
  }
  float to_float() const { return pack_to_float(unpack(bits, kBf16)); }
};

/// TF32 is stored in a 32-bit container (as on real Tensor Cores, which
/// read TF32 fragments from FP32 registers with the low 13 mantissa
/// bits ignored). `bits` holds the 19-bit payload in the low bits.
struct Tf32 {
  std::uint32_t bits = 0;

  static Tf32 from_float(float f) {
    return Tf32{static_cast<std::uint32_t>(pack(unpack(f), kTf32))};
  }
  float to_float() const { return pack_to_float(unpack(bits, kTf32)); }
};

}  // namespace m3xu::fp
