// Unpacked (sign, exponent, significand) representation with exact
// decode from and round-to-nearest-even encode to any FloatFormat.
// This is the reference arithmetic layer the MXU functional model and
// all format conversions are built on.
#pragma once

#include <cstdint>

#include "fp/format.hpp"

namespace m3xu::fp {

enum class FpClass : std::uint8_t { kZero, kNormal, kInf, kNaN };

/// A decoded floating-point value. For kNormal the significand `sig`
/// is normalized with its most significant bit at position kSigTop, and
/// value == (-1)^sign * sig * 2^(exp - kSigTop); i.e. `exp` is the
/// unbiased exponent of the leading bit. Subnormal encodings decode to
/// kNormal with a correspondingly smaller `exp`.
struct Unpacked {
  static constexpr int kSigTop = 62;

  FpClass cls = FpClass::kZero;
  bool sign = false;
  std::int32_t exp = 0;
  std::uint64_t sig = 0;

  bool is_zero() const { return cls == FpClass::kZero; }
  bool is_nan() const { return cls == FpClass::kNaN; }
  bool is_inf() const { return cls == FpClass::kInf; }
  bool is_finite() const {
    return cls == FpClass::kZero || cls == FpClass::kNormal;
  }
};

/// Decodes `payload` (low total_bits() bits used) per `fmt`. Exact.
Unpacked unpack(std::uint64_t payload, const FloatFormat& fmt);

/// Encodes to `fmt` with round-to-nearest-even, gradual underflow to
/// subnormals, and overflow to Inf. NaNs become the canonical quiet NaN
/// of `fmt` (sign preserved).
std::uint64_t pack(const Unpacked& value, const FloatFormat& fmt);

/// Shifts `sig` right by `r` bits with round-to-nearest-even (r may be
/// <= 0 for a left shift, which must not overflow). Shared by pack()
/// and the extended-float accumulator.
std::uint64_t rne_shift_right(std::uint64_t sig, int r);

// Host-type conveniences.
Unpacked unpack(float f);
Unpacked unpack(double d);
float pack_to_float(const Unpacked& value);
double pack_to_double(const Unpacked& value);

/// Round-trips a float through `fmt` (decode host FP32/FP64 -> RNE to
/// fmt -> back to host). This is the reference "convert to TF32/BF16/
/// FP16" operation used by the software-emulation baselines.
float round_to_format(float f, const FloatFormat& fmt);

}  // namespace m3xu::fp
