#include "fp/unpacked.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::fp {

std::uint64_t rne_shift_right(std::uint64_t sig, int r) {
  if (r <= 0) {
    M3XU_DCHECK(r > -64);
    M3XU_DCHECK(r == 0 || (sig >> (64 + r)) == 0);  // no overflow on <<
    return sig << -r;
  }
  if (r > 64) return 0;
  std::uint64_t floor_val, guard, sticky;
  if (r == 64) {
    floor_val = 0;
    guard = sig >> 63;
    sticky = (sig & low_mask(63)) != 0;
  } else {
    floor_val = sig >> r;
    guard = (sig >> (r - 1)) & 1;
    sticky = (sig & low_mask(r - 1)) != 0;
  }
  if (guard && (sticky || (floor_val & 1))) ++floor_val;
  return floor_val;
}

Unpacked unpack(std::uint64_t payload, const FloatFormat& fmt) {
  const int mb = fmt.mant_bits;
  Unpacked u;
  u.sign = (payload >> (fmt.exp_bits + mb)) & 1;
  const std::uint64_t biased_exp = (payload >> mb) & low_mask(fmt.exp_bits);
  const std::uint64_t mant = payload & low_mask(mb);
  if (biased_exp == static_cast<std::uint64_t>(fmt.exp_special())) {
    u.cls = mant == 0 ? FpClass::kInf : FpClass::kNaN;
    return u;
  }
  if (biased_exp == 0) {
    if (mant == 0) {
      u.cls = FpClass::kZero;
      return u;
    }
    // Subnormal: value = mant * 2^(1 - bias - mant_bits); normalize.
    const int h = highest_bit(mant);
    u.cls = FpClass::kNormal;
    u.exp = (1 - fmt.bias() - mb) + h;
    u.sig = mant << (Unpacked::kSigTop - h);
    return u;
  }
  u.cls = FpClass::kNormal;
  u.exp = static_cast<std::int32_t>(biased_exp) - fmt.bias();
  u.sig = ((std::uint64_t{1} << mb) | mant) << (Unpacked::kSigTop - mb);
  return u;
}

std::uint64_t pack(const Unpacked& value, const FloatFormat& fmt) {
  const int mb = fmt.mant_bits;
  const std::uint64_t sign_bit = std::uint64_t{value.sign}
                                 << (fmt.exp_bits + mb);
  switch (value.cls) {
    case FpClass::kZero:
      return sign_bit;
    case FpClass::kInf:
      return sign_bit |
             (static_cast<std::uint64_t>(fmt.exp_special()) << mb);
    case FpClass::kNaN:
      // Canonical quiet NaN (MSB of the mantissa set), sign preserved.
      return sign_bit |
             (static_cast<std::uint64_t>(fmt.exp_special()) << mb) |
             (std::uint64_t{1} << (mb - 1));
    case FpClass::kNormal:
      break;
  }
  M3XU_DCHECK((value.sig >> Unpacked::kSigTop) == 1);
  std::int32_t exp_val = value.exp;
  if (exp_val >= fmt.min_normal_exp()) {
    std::uint64_t rounded =
        rne_shift_right(value.sig, Unpacked::kSigTop - mb);
    if (rounded >> (mb + 1)) {  // 1.11..1 rounded up to 10.00..0
      rounded >>= 1;
      ++exp_val;
    }
    if (exp_val > fmt.max_normal_exp()) {
      return sign_bit |
             (static_cast<std::uint64_t>(fmt.exp_special()) << mb);
    }
    const std::uint64_t biased =
        static_cast<std::uint64_t>(exp_val + fmt.bias());
    return sign_bit | (biased << mb) | (rounded & low_mask(mb));
  }
  // Gradual underflow: quantize to multiples of 2^(min_normal_exp - mb).
  const int extra = fmt.min_normal_exp() - exp_val;
  std::uint64_t rounded =
      rne_shift_right(value.sig, Unpacked::kSigTop - mb + extra);
  if (rounded >> mb) {
    // Rounded all the way up to the smallest normal.
    return sign_bit | (std::uint64_t{1} << mb) | (rounded & low_mask(mb));
  }
  return sign_bit | rounded;  // subnormal (or signed zero if rounded==0)
}

Unpacked unpack(float f) { return unpack(bits_of(f), kFp32); }
Unpacked unpack(double d) { return unpack(bits_of(d), kFp64); }

float pack_to_float(const Unpacked& value) {
  return float_from_bits(static_cast<std::uint32_t>(pack(value, kFp32)));
}

double pack_to_double(const Unpacked& value) {
  return double_from_bits(pack(value, kFp64));
}

float round_to_format(float f, const FloatFormat& fmt) {
  const std::uint64_t payload = pack(unpack(f), fmt);
  return pack_to_float(unpack(payload, fmt));
}

}  // namespace m3xu::fp
