#include "fp/ext_float.hpp"

#include "common/check.hpp"

namespace m3xu::fp {

Unpacked round_unpacked_to_precision(const Unpacked& u, int prec) {
  M3XU_CHECK(prec >= 1 && prec <= 63);
  if (u.cls != FpClass::kNormal) return u;
  Unpacked out = u;
  const int r = (Unpacked::kSigTop + 1) - prec;  // bits to drop
  std::uint64_t rounded = rne_shift_right(u.sig, r);
  if (rounded >> prec) {
    rounded >>= 1;
    out.exp += 1;
  }
  out.sig = rounded << r;
  // Rounding a normalized significand can only grow it, so the MSB
  // stays at kSigTop (the carry case was renormalized above).
  M3XU_DCHECK((out.sig >> Unpacked::kSigTop) == 1);
  return out;
}

ExtFloat::ExtFloat(int prec) : value_(), prec_(prec) {
  M3XU_CHECK(prec >= 1 && prec <= 63);
}

ExtFloat ExtFloat::from_unpacked(const Unpacked& u, int prec) {
  M3XU_CHECK(prec >= 1 && prec <= 63);
  return ExtFloat(round_unpacked_to_precision(u, prec), prec);
}

ExtFloat ExtFloat::from_float(float f, int prec) {
  return from_unpacked(unpack(f), prec);
}

ExtFloat ExtFloat::from_double(double d, int prec) {
  return from_unpacked(unpack(d), prec);
}

ExtFloat ExtFloat::plus(const Unpacked& v) const {
  ExactAccumulator acc;
  acc.add_unpacked(value_);
  acc.add_unpacked(v);
  return ExtFloat(acc.round_to_precision(prec_), prec_);
}

ExtFloat ExtFloat::plus_exact(const ExactAccumulator& sum) const {
  ExactAccumulator acc = sum;
  acc.add_unpacked(value_);
  return ExtFloat(acc.round_to_precision(prec_), prec_);
}

}  // namespace m3xu::fp
