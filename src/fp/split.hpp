// Input-split operations.
//
// split_fp32_hw() is the hardware split performed by M3XU's
// data-assignment stage (paper SIV-A / Fig 3a): an FP32 number's 24-bit
// significand (hidden 1 + 23 fraction bits) is divided into a 12-bit
// high part and a 12-bit low part. Both parts share the sign and the
// 8-bit exponent; the low part's field is implicitly scaled by 2^-12,
// which the dot-product unit corrects with its shifters.
//
// split_float_sw() is the *software* split used by the emulation
// baselines (CUTLASS 3xTF32, EEHC 3xBF16): hi = round(a, fmt),
// lo = round(a - hi, fmt). Unlike the hardware split it loses bits
// (fmt has fewer than 12 mantissa bits of headroom) and costs extra
// instructions at run time — both effects the paper measures.
#pragma once

#include <cstdint>

#include "fp/format.hpp"

namespace m3xu::fp {

/// One data-assignment-stage buffer entry (Fig 3a): 1-bit sign, 8-bit
/// biased exponent, 12-bit significand field. `low_part` distinguishes
/// the semantics of the 12-bit field:
///   high: value = sig/2^11 * 2^(exp_biased - 127)        (hidden 1 in sig)
///   low:  value = sig/2^23 * 2^(exp_biased - 127)        (no hidden 1)
/// `finite` is false for Inf/NaN inputs (tracked so the arithmetic
/// model can propagate specials; real hardware wires these through the
/// exponent-all-ones detection).
struct HwPart {
  bool sign = false;
  std::int32_t exp_biased = 0;  // 8-bit field, 0..255
  std::uint16_t sig = 0;        // 12-bit field
  bool low_part = false;
  bool finite = true;
  bool nan = false;  // meaningful only when !finite
};

struct HwSplit {
  HwPart hi;
  HwPart lo;
};

/// Splits an FP32 value into high/low 12-bit parts. Subnormal inputs
/// are flushed to zero (Tensor-Core input behaviour); +-0 splits into
/// two zero parts (sig == 0, exp_biased == 0).
HwSplit split_fp32_hw(float a);

/// Reconstructs the FP32 value of a single part (exact; used by tests
/// to prove a == value(hi) + value(lo)). Returns a double because the
/// low part alone may be subnormal-range beyond FP32.
double hw_part_value(const HwPart& part);

struct SwSplit2 {
  float hi = 0.0f;
  float lo = 0.0f;
};

/// Software 2-way split in format `fmt`: hi = rne(a, fmt),
/// lo = rne(a - hi, fmt). The residual beyond lo is dropped - this is
/// the precision loss inherent to the 3-GEMM software emulations.
SwSplit2 split_float_sw(float a, const FloatFormat& fmt);

}  // namespace m3xu::fp
