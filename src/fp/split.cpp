#include "fp/split.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {

HwSplit split_fp32_hw(float a) {
  const std::uint32_t b = bits_of(a);
  const bool sign = (b >> 31) != 0;
  const std::uint32_t exp_biased = (b >> 23) & 0xff;
  const std::uint32_t frac = b & low_mask(23);

  HwSplit s;
  s.hi.sign = sign;
  s.lo.sign = sign;
  s.lo.low_part = true;
  if (exp_biased == 0xff) {  // Inf / NaN
    s.hi.finite = false;
    s.hi.nan = frac != 0;
    s.hi.exp_biased = 0xff;
    s.lo.finite = true;  // low lane contributes nothing
    return s;
  }
  if (exp_biased == 0) {
    // Zero or subnormal: the data-assignment stage flushes subnormal
    // inputs to zero (sig fields stay 0).
    return s;
  }
  // Normal: 24-bit significand M = 2^23 + frac, split 12 | 12.
  const std::uint32_t m = (std::uint32_t{1} << 23) | frac;
  s.hi.exp_biased = static_cast<std::int32_t>(exp_biased);
  s.hi.sig = static_cast<std::uint16_t>(m >> 12);   // hidden 1 + top 11 bits
  s.lo.exp_biased = static_cast<std::int32_t>(exp_biased);
  s.lo.sig = static_cast<std::uint16_t>(m & 0xfff);  // bottom 12 bits
  return s;
}

double hw_part_value(const HwPart& part) {
  if (!part.finite) return part.nan ? std::nan("") : HUGE_VAL;
  if (part.sig == 0) return part.sign ? -0.0 : 0.0;
  const int scale = part.low_part ? 23 : 11;
  const double mag =
      std::ldexp(static_cast<double>(part.sig), part.exp_biased - 127 - scale);
  return part.sign ? -mag : mag;
}

SwSplit2 split_float_sw(float a, const FloatFormat& fmt) {
  SwSplit2 s;
  s.hi = round_to_format(a, fmt);
  // The residual is computed in FP32 on the SIMT path before the GEMMs
  // launch; for |a| >> ulp it is exact by Sterbenz-style cancellation.
  s.lo = round_to_format(a - s.hi, fmt);
  return s;
}

}  // namespace m3xu::fp
