// Exact fixed-point ("Kulisch-style") accumulator covering the full
// FP32-product exponent range. The MXU dot-product unit model uses it
// as the idealized adder tree that sums one step's aligned partial
// products without loss; tests use it as an exact dot-product oracle.
//
// Window: bit 0 of word 0 has weight 2^kLsbExponent; 72 x 64-bit words
// in two's complement cover [2^-2304, 2^2303]: any FP32 or FP64 value,
// any FP32 x FP32 or FP64 x FP64 product (FP64 subnormal products
// bottom out at 2^-2148), and sums thereof for any realistic reduction
// length. Out-of-window magnitudes are rejected by a check.
#pragma once

#include <array>
#include <cstdint>

#include "fp/unpacked.hpp"

namespace m3xu::fp {

class ExactAccumulator {
 public:
  static constexpr int kWords = 72;
  static constexpr int kLsbExponent = -2304;
  static constexpr int kMsbExponent = kLsbExponent + kWords * 64 - 1;

  ExactAccumulator() { words_.fill(0); }

  /// Adds (-1)^sign * sig * 2^exp exactly. `exp` is the weight of the
  /// significand's least significant bit. Checks the window.
  void add_scaled(bool sign, std::uint64_t sig, int exp);

  /// Adds a decoded value exactly (specials set sticky NaN/Inf flags).
  void add_unpacked(const Unpacked& value);

  /// Adds a host double exactly.
  void add_double(double v) { add_unpacked(unpack(v)); }

  /// Adds the exact product a*b of two decoded finite values; specials
  /// follow IEEE semantics (Inf*0 -> NaN, NaN propagates, ...).
  void add_product(const Unpacked& a, const Unpacked& b);

  /// Marks the sum as NaN (sticky).
  void set_nan() { has_nan_ = true; }

  bool has_nan() const { return has_nan_; }
  bool has_pos_inf() const { return has_pos_inf_; }
  bool has_neg_inf() const { return has_neg_inf_; }

  bool is_zero() const;
  bool is_negative() const;  // two's-complement sign of the finite sum

  /// Rounds the accumulated sum to an Unpacked value with a
  /// `prec`-bit significand (RNE). Inf/NaN flags resolve first:
  /// NaN, or +Inf and -Inf together, yield NaN; a single Inf wins.
  Unpacked round_to_precision(int prec) const;

  /// Rounds the sum directly to a format payload with a single RNE
  /// rounding (correct even for subnormal/overflowing results, where
  /// round_to_precision + pack would double-round).
  std::uint64_t round_to_payload(const FloatFormat& fmt) const;

  /// Correctly rounded conversions.
  double to_double() const;
  float to_float() const;

 private:
  void add_magnitude(std::uint64_t sig, int bit_pos);
  void sub_magnitude(std::uint64_t sig, int bit_pos);

  /// Extracts the magnitude's top 64 bits (leading 1 at bit 63), the
  /// exponent of the leading bit, and a sticky for everything below.
  /// Returns false when the finite sum is exactly zero.
  bool extract_top64(bool* negative, std::uint64_t* top64, int* lead_exp,
                     bool* sticky) const;

  std::array<std::uint64_t, kWords> words_;  // two's complement
  bool has_nan_ = false;
  bool has_pos_inf_ = false;
  bool has_neg_inf_ = false;
};

}  // namespace m3xu::fp
