#include "fp/exact_accumulator.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::fp {

void ExactAccumulator::add_magnitude(std::uint64_t sig, int bit_pos) {
  M3XU_CHECK(bit_pos >= 0);
  const int word = bit_pos / 64;
  const int shift = bit_pos % 64;
  const std::uint64_t lo = sig << shift;
  const std::uint64_t hi = shift ? (sig >> (64 - shift)) : 0;
  M3XU_CHECK(word + (hi ? 1 : 0) < kWords - 1);  // top word reserved for sign
  std::uint64_t carry = 0;
  std::uint64_t old = words_[word];
  words_[word] += lo;
  carry = words_[word] < old ? 1 : 0;
  int w = word + 1;
  std::uint64_t add = hi + carry;  // hi < 2^64-1 when carry==1? hi<=2^63
  while (add != 0 && w < kWords) {
    old = words_[w];
    words_[w] += add;
    add = words_[w] < old ? 1 : 0;
    ++w;
  }
}

void ExactAccumulator::sub_magnitude(std::uint64_t sig, int bit_pos) {
  M3XU_CHECK(bit_pos >= 0);
  const int word = bit_pos / 64;
  const int shift = bit_pos % 64;
  const std::uint64_t lo = sig << shift;
  const std::uint64_t hi = shift ? (sig >> (64 - shift)) : 0;
  M3XU_CHECK(word + (hi ? 1 : 0) < kWords - 1);
  std::uint64_t old = words_[word];
  words_[word] -= lo;
  std::uint64_t borrow = words_[word] > old ? 1 : 0;
  int w = word + 1;
  std::uint64_t sub = hi + borrow;
  while (sub != 0 && w < kWords) {
    old = words_[w];
    words_[w] -= sub;
    sub = words_[w] > old ? 1 : 0;
    ++w;
  }
}

void ExactAccumulator::add_scaled(bool sign, std::uint64_t sig, int exp) {
  if (sig == 0) return;
  const int bit_pos = exp - kLsbExponent;
  if (sign) {
    sub_magnitude(sig, bit_pos);
  } else {
    add_magnitude(sig, bit_pos);
  }
}

void ExactAccumulator::add_unpacked(const Unpacked& value) {
  switch (value.cls) {
    case FpClass::kZero:
      return;
    case FpClass::kNaN:
      has_nan_ = true;
      return;
    case FpClass::kInf:
      (value.sign ? has_neg_inf_ : has_pos_inf_) = true;
      return;
    case FpClass::kNormal:
      add_scaled(value.sign, value.sig, value.exp - Unpacked::kSigTop);
      return;
  }
}

void ExactAccumulator::add_product(const Unpacked& a, const Unpacked& b) {
  if (a.is_nan() || b.is_nan()) {
    has_nan_ = true;
    return;
  }
  if (a.is_inf() || b.is_inf()) {
    if (a.is_zero() || b.is_zero()) {
      has_nan_ = true;  // Inf * 0
    } else {
      ((a.sign ^ b.sign) ? has_neg_inf_ : has_pos_inf_) = true;
    }
    return;
  }
  if (a.is_zero() || b.is_zero()) return;
  const bool sign = a.sign ^ b.sign;
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a.sig) * b.sig;
  // value = prod * 2^(a.exp + b.exp - 2*kSigTop)
  const int exp0 = a.exp + b.exp - 2 * Unpacked::kSigTop;
  add_scaled(sign, static_cast<std::uint64_t>(prod), exp0);
  add_scaled(sign, static_cast<std::uint64_t>(prod >> 64), exp0 + 64);
}

bool ExactAccumulator::is_zero() const {
  if (has_nan_ || has_pos_inf_ || has_neg_inf_) return false;
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool ExactAccumulator::is_negative() const {
  return (words_[kWords - 1] >> 63) != 0;
}

bool ExactAccumulator::extract_top64(bool* negative, std::uint64_t* top64,
                                     int* lead_exp, bool* sticky) const {
  // Take the magnitude of the two's-complement sum.
  std::array<std::uint64_t, kWords> mag = words_;
  *negative = is_negative();
  if (*negative) {
    std::uint64_t carry = 1;
    for (auto& w : mag) {
      const std::uint64_t inv = ~w;
      w = inv + carry;
      carry = (w < inv) ? 1 : 0;
    }
  }
  int top_word = kWords - 1;
  while (top_word >= 0 && mag[top_word] == 0) --top_word;
  if (top_word < 0) return false;
  const int h = top_word * 64 + highest_bit(mag[top_word]);
  // Extract the 64 bits [h .. h-63] plus a sticky for everything below.
  std::uint64_t val = 0;
  bool st = false;
  const int lo_index = h - 63;
  if (lo_index >= 0) {
    const int w = lo_index / 64;
    const int sh = lo_index % 64;
    val = mag[w] >> sh;
    if (sh != 0 && w + 1 < kWords) val |= mag[w + 1] << (64 - sh);
    if (sh != 0) st = st || (mag[w] & low_mask(sh)) != 0;
    for (int i = 0; i < w; ++i) st = st || mag[i] != 0;
  } else {
    // Fewer than 64 significant bits total (h < 63 implies top_word==0).
    val = mag[0] << -lo_index;
  }
  *top64 = val;
  *lead_exp = kLsbExponent + h;
  *sticky = st;
  return true;
}

namespace {

// Rounds a left-aligned 64-bit window (leading 1 at bit 63, value =
// top64 * 2^(lead_exp - 63) plus sticky dust) to `keep` bits with RNE.
// keep may exceed the window only when sticky is false.
std::uint64_t round_window(std::uint64_t top64, bool sticky, int keep,
                           bool* carry_out) {
  M3XU_CHECK(keep >= 0);
  *carry_out = false;
  if (keep >= 64) {
    M3XU_CHECK(!sticky || keep == 64);
    return top64;  // exact
  }
  const int r = 64 - keep;
  std::uint64_t floor_val = keep == 0 ? 0 : (top64 >> r);
  const std::uint64_t guard = (top64 >> (r - 1)) & 1;
  const bool st = sticky || (r > 1 && (top64 & low_mask(r - 1)) != 0);
  if (guard && (st || (floor_val & 1))) ++floor_val;
  if (keep > 0 && (floor_val >> keep)) {
    floor_val >>= 1;
    *carry_out = true;
  } else if (keep == 0 && floor_val) {
    *carry_out = true;  // rounded up from nothing kept
  }
  return floor_val;
}

}  // namespace

Unpacked ExactAccumulator::round_to_precision(int prec) const {
  M3XU_CHECK(prec >= 1 && prec <= 63);
  Unpacked out;
  if (has_nan_ || (has_pos_inf_ && has_neg_inf_)) {
    out.cls = FpClass::kNaN;
    return out;
  }
  if (has_pos_inf_ || has_neg_inf_) {
    out.cls = FpClass::kInf;
    out.sign = has_neg_inf_;
    return out;
  }
  bool negative = false, sticky = false;
  std::uint64_t top64 = 0;
  int lead_exp = 0;
  if (!extract_top64(&negative, &top64, &lead_exp, &sticky)) {
    out.cls = FpClass::kZero;
    return out;
  }
  bool carry = false;
  std::uint64_t sig = round_window(top64, sticky, prec, &carry);
  if (carry) ++lead_exp;
  out.cls = FpClass::kNormal;
  out.sign = negative;
  out.exp = lead_exp;
  out.sig = sig << (Unpacked::kSigTop - (prec - 1));
  return out;
}

std::uint64_t ExactAccumulator::round_to_payload(const FloatFormat& fmt) const {
  if (has_nan_ || (has_pos_inf_ && has_neg_inf_)) {
    Unpacked nan;
    nan.cls = FpClass::kNaN;
    return pack(nan, fmt);
  }
  if (has_pos_inf_ || has_neg_inf_) {
    Unpacked inf;
    inf.cls = FpClass::kInf;
    inf.sign = has_neg_inf_;
    return pack(inf, fmt);
  }
  bool negative = false, sticky = false;
  std::uint64_t top64 = 0;
  int lead_exp = 0;
  if (!extract_top64(&negative, &top64, &lead_exp, &sticky)) {
    return 0;  // +0
  }
  const int mb = fmt.mant_bits;
  const std::uint64_t sign_bit = std::uint64_t{negative}
                                 << (fmt.exp_bits + mb);
  // Effective precision shrinks below the normal range (gradual
  // underflow); a single rounding at that precision is IEEE-correct.
  const bool subnormal_range = lead_exp < fmt.min_normal_exp();
  int keep = fmt.sig_bits();
  if (subnormal_range) keep -= fmt.min_normal_exp() - lead_exp;
  // keep < 0 means the magnitude is at most quantum/4 + dust: rounds to
  // zero (a tie at exactly quantum/2 corresponds to keep == 0 below).
  if (keep < 0) return sign_bit;
  bool carry = false;
  std::uint64_t sig = round_window(top64, sticky, keep, &carry);
  if (keep == 0) {
    // Either 0 or rounded up to the smallest subnormal.
    return sign_bit | (carry ? 1u : 0u);
  }
  if (subnormal_range) {
    if (carry) {
      // Rounded up to exactly 2^(lead_exp+1): mantissa field 2^keep.
      // When keep == mant_bits this bit pattern is precisely the
      // smallest normal (biased exponent 1, zero mantissa).
      return sign_bit | (std::uint64_t{1} << keep);
    }
    return sign_bit | sig;  // mantissa field of a subnormal
  }
  if (carry) ++lead_exp;
  if (lead_exp > fmt.max_normal_exp()) {
    Unpacked inf;
    inf.cls = FpClass::kInf;
    inf.sign = negative;
    return pack(inf, fmt);
  }
  const std::uint64_t biased =
      static_cast<std::uint64_t>(lead_exp + fmt.bias());
  return sign_bit | (biased << mb) | (sig & low_mask(mb));
}

double ExactAccumulator::to_double() const {
  return double_from_bits(round_to_payload(kFp64));
}

float ExactAccumulator::to_float() const {
  return float_from_bits(
      static_cast<std::uint32_t>(round_to_payload(kFp32)));
}

}  // namespace m3xu::fp
