// IEEE-754-style binary format descriptors for every data type the MXU
// touches: FP16, BF16, TF32, FP32, FP64. A format is (exponent bits,
// stored mantissa bits); all formats have one sign bit and a hidden
// leading 1 for normals.
#pragma once

namespace m3xu::fp {

struct FloatFormat {
  int exp_bits;
  int mant_bits;  // explicitly stored fraction bits (without hidden 1)

  constexpr int total_bits() const { return 1 + exp_bits + mant_bits; }
  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  /// Biased exponent value reserved for Inf/NaN.
  constexpr int exp_special() const { return (1 << exp_bits) - 1; }
  /// Significand width including the hidden bit.
  constexpr int sig_bits() const { return mant_bits + 1; }
  /// Smallest unbiased exponent of a normal number's leading bit.
  constexpr int min_normal_exp() const { return 1 - bias(); }
  /// Largest unbiased exponent of a normal number's leading bit.
  constexpr int max_normal_exp() const { return bias(); }

  constexpr bool operator==(const FloatFormat&) const = default;
};

inline constexpr FloatFormat kFp16{5, 10};
inline constexpr FloatFormat kBf16{8, 7};
inline constexpr FloatFormat kTf32{8, 10};
inline constexpr FloatFormat kFp32{8, 23};
inline constexpr FloatFormat kFp64{11, 52};
// FP8 variants (OCP-style, modeled with IEEE special encodings): the
// low end of the precision ladder modern MXUs also feed.
inline constexpr FloatFormat kFp8E4M3{4, 3};
inline constexpr FloatFormat kFp8E5M2{5, 2};

}  // namespace m3xu::fp
