#include "fault/campaign.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "gemm/matrix.hpp"
#include "telemetry/json.hpp"

namespace m3xu::fault {

namespace {

/// splitmix64 finalizer: decorrelates the per-trial seeds drawn from
/// the campaign seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool bitwise_equal(const gemm::Matrix<float>& x, const gemm::Matrix<float>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (std::bit_cast<std::uint32_t>(x(i, j)) !=
          std::bit_cast<std::uint32_t>(y(i, j))) {
        return false;
      }
    }
  }
  return true;
}

struct TrialOutcome {
  long faults = 0;
  bool perturbed = false;
  bool corrupting = false;
  bool detected = false;
  bool corrected = false;
  bool abft_failure = false;
};

TrialOutcome run_trial(const CampaignConfig& cfg, Site site, double rate,
                       std::uint64_t trial_seed) {
  Rng rng(trial_seed);
  gemm::Matrix<float> a(cfg.m, cfg.k), b(cfg.k, cfg.n), c0(cfg.m, cfg.n);
  for (int i = 0; i < cfg.m; ++i) {
    for (int kk = 0; kk < cfg.k; ++kk) a(i, kk) = rng.scaled_float();
  }
  for (int kk = 0; kk < cfg.k; ++kk) {
    for (int j = 0; j < cfg.n; ++j) b(kk, j) = rng.scaled_float();
  }
  for (int i = 0; i < cfg.m; ++i) {
    for (int j = 0; j < cfg.n; ++j) c0(i, j) = rng.scaled_float();
  }

  const core::M3xuEngine clean{core::M3xuConfig{}};
  const std::uint64_t inj_seed = trial_seed ^ 0xabf7abf7abf7abf7ull;
  const SiteRates rates = SiteRates::only(site, rate);

  // Fault-free reference through the same tiled path.
  gemm::Matrix<float> ref = c0;
  gemm::tiled_sgemm(clean, cfg.tile, a, b, ref);

  TrialOutcome out;

  // Unguarded injected run: classifies the raw damage.
  const FaultInjector unguarded_inj(inj_seed, rates);
  core::M3xuConfig faulty_cfg;
  faulty_cfg.injector = &unguarded_inj;
  const core::M3xuEngine faulty(faulty_cfg);
  gemm::Matrix<float> raw = c0;
  gemm::tiled_sgemm(faulty, cfg.tile, a, b, raw);
  out.faults = static_cast<long>(unguarded_inj.total_injected());
  out.perturbed = !bitwise_equal(raw, ref);
  for (int j = 0; j < cfg.n && !out.corrupting; ++j) {
    // > 2x the guard's tolerance: the residual the flip leaves in the
    // column checksum provably exceeds the tolerance, so a miss is a
    // genuine escape, not a rounding ambiguity.
    const double limit = 2.0 * gemm::abft_column_tolerance(
                                   clean, cfg.tile, cfg.abft, a, b, c0, 0,
                                   cfg.m, j);
    for (int i = 0; i < cfg.m; ++i) {
      const double dev = std::fabs(static_cast<double>(raw(i, j)) -
                                   static_cast<double>(ref(i, j)));
      if (dev > limit) {
        out.corrupting = true;
        break;
      }
    }
  }

  // Guarded run: a fresh injector with the same seed replays the exact
  // same flips, now under the ABFT checksums.
  const FaultInjector guarded_inj(inj_seed, rates);
  core::M3xuConfig guarded_cfg;
  guarded_cfg.injector = &guarded_inj;
  const core::M3xuEngine guarded(guarded_cfg);
  gemm::Matrix<float> fixed = c0;
  try {
    const gemm::TiledGemmStats stats =
        gemm::tiled_sgemm(guarded, cfg.tile, cfg.abft, a, b, fixed);
    out.detected = stats.abft_detected > 0;
    out.corrected = out.detected && bitwise_equal(fixed, ref);
  } catch (const gemm::AbftFailure&) {
    out.detected = true;  // the guard tripped; recovery budget ran out
    out.abft_failure = true;
  }
  return out;
}

}  // namespace

double CampaignCell::detection_rate() const {
  return corrupting == 0 ? 1.0
                         : 1.0 - static_cast<double>(escaped_sdc) /
                                     static_cast<double>(corrupting);
}

double CampaignCell::correction_rate() const {
  return detected == 0 ? 1.0
                       : static_cast<double>(corrected) /
                             static_cast<double>(detected);
}

long CampaignResult::total_faults() const {
  long total = 0;
  for (const CampaignCell& cell : cells) total += cell.faults_injected;
  return total;
}

int CampaignResult::total_corrupting() const {
  int total = 0;
  for (const CampaignCell& cell : cells) total += cell.corrupting;
  return total;
}

int CampaignResult::total_escaped_sdc() const {
  int total = 0;
  for (const CampaignCell& cell : cells) total += cell.escaped_sdc;
  return total;
}

double CampaignResult::overall_detection_rate() const {
  const int corrupting = total_corrupting();
  return corrupting == 0 ? 1.0
                         : 1.0 - static_cast<double>(total_escaped_sdc()) /
                                     static_cast<double>(corrupting);
}

CampaignResult run_campaign(const CampaignConfig& config) {
  M3XU_CHECK_MSG(config.m <= config.tile.block_m &&
                     config.n <= config.tile.block_n,
                 "fault campaign requires a single-tile geometry (m/n must "
                 "fit one threadblock tile) for deterministic fault replay");
  M3XU_CHECK_MSG(config.abft.enable,
                 "fault campaign measures the ABFT guard; abft.enable must "
                 "be set");
  CampaignResult result;
  result.config = config;
  std::size_t cell_index = 0;
  for (Site site : config.sites) {
    for (double rate : config.rates) {
      CampaignCell cell;
      cell.site = site;
      cell.rate = rate;
      cell.trials = config.trials;
      for (int trial = 0; trial < config.trials; ++trial) {
        const std::uint64_t trial_seed = mix(
            config.seed + cell_index * 0x10001ull * config.trials + trial);
        const TrialOutcome out = run_trial(config, site, rate, trial_seed);
        cell.faults_injected += out.faults;
        cell.faulted += out.faults > 0 ? 1 : 0;
        cell.perturbed += out.perturbed ? 1 : 0;
        cell.corrupting += out.corrupting ? 1 : 0;
        cell.detected += out.detected ? 1 : 0;
        cell.corrected += out.corrected ? 1 : 0;
        cell.escaped_sdc += (out.corrupting && !out.detected) ? 1 : 0;
        cell.abft_failures += out.abft_failure ? 1 : 0;
      }
      result.cells.push_back(cell);
      ++cell_index;
    }
  }
  return result;
}

std::string to_json(const CampaignResult& result) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("config").begin_object();
  w.kv("m", result.config.m)
      .kv("n", result.config.n)
      .kv("k", result.config.k)
      .kv("trials", result.config.trials)
      .kv("seed", result.config.seed)
      .kv("tolerance_scale", result.config.abft.tolerance_scale)
      .kv("max_recompute", result.config.abft.max_recompute)
      .end_object();
  w.key("cells").begin_array();
  for (const CampaignCell& cell : result.cells) {
    w.begin_object()
        .kv("site", site_name(cell.site))
        .kv("rate", cell.rate)
        .kv("trials", cell.trials)
        .kv("faults_injected", cell.faults_injected)
        .kv("faulted", cell.faulted)
        .kv("perturbed", cell.perturbed)
        .kv("corrupting", cell.corrupting)
        .kv("detected", cell.detected)
        .kv("corrected", cell.corrected)
        .kv("escaped_sdc", cell.escaped_sdc)
        .kv("abft_failures", cell.abft_failures)
        .kv("detection_rate", cell.detection_rate())
        .kv("correction_rate", cell.correction_rate())
        .end_object();
  }
  w.end_array();
  w.kv("total_faults", result.total_faults())
      .kv("total_corrupting", result.total_corrupting())
      .kv("total_escaped_sdc", result.total_escaped_sdc())
      .kv("overall_detection_rate", result.overall_detection_rate())
      .end_object();
  return w.str() + "\n";
}

}  // namespace m3xu::fault
