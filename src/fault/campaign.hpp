// Fault-injection campaign runner: sweeps (site, rate) cells over the
// ABFT-guarded tiled SGEMM driver and reports, per cell, how many
// trials were perturbed, how many carried a guaranteed-detectable
// corruption, how many the guard detected / corrected, and how many
// escaped as silent data corruption (SDC).
//
// Each trial runs the same fault sequence twice - the injector's
// decisions are a pure function of (seed, site, opportunity index), so
// a fresh injector with the trial seed replays identical flips:
//   1. unguarded, to classify the raw damage against a fault-free
//      reference (element deviation > 2x the ABFT column tolerance is
//      guaranteed-detectable; below it, the flip hides inside legit
//      rounding and is benign by construction);
//   2. guarded, to measure what the ABFT checksums actually catch and
//      what the detect/recompute protocol repairs.
// The campaign uses a single-tile geometry so the serial parallel_for
// path keeps the injector call order bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::fault {

struct CampaignConfig {
  // Problem geometry. Must fit one threadblock tile (m <= tile.block_m
  // and n <= tile.block_n) so fault replay is deterministic.
  int m = 48;
  int n = 48;
  int k = 96;
  gemm::TileConfig tile{48, 48, 32, 16, 16};
  /// Trials per (site, rate) cell; each trial draws fresh input data
  /// and a fresh injector seed from `seed`.
  int trials = 32;
  std::uint64_t seed = 0x5eedf00dull;
  /// Sites swept one at a time (isolates per-site coverage).
  std::vector<Site> sites = {Site::kOperandA, Site::kOperandB,
                             Site::kPartialProduct, Site::kAccumulator};
  /// Per-opportunity flip rates swept per site.
  std::vector<double> rates = {1e-5, 1e-4, 1e-3};
  gemm::AbftConfig abft{true, 1.0, 2};
};

/// Outcome counts for one (site, rate) cell of the sweep.
struct CampaignCell {
  Site site = Site::kOperandA;
  double rate = 0.0;
  int trials = 0;
  long faults_injected = 0;  // total bit flips across the cell's trials
  int faulted = 0;      // trials with >= 1 injected flip
  int perturbed = 0;    // trials whose unguarded output differs bitwise
  int corrupting = 0;   // trials with a guaranteed-detectable deviation
                        // (some element > 2x the ABFT column tolerance)
  int detected = 0;     // trials where the guard's checksum tripped
  int corrected = 0;    // detected trials whose recompute restored the
                        // fault-free reference bitwise
  int escaped_sdc = 0;  // corrupting trials the guard did not detect
  int abft_failures = 0;  // trials ending in AbftFailure (retries spent)

  /// Detected fraction of guaranteed-detectable corruptions (1.0 when
  /// the cell produced none).
  double detection_rate() const;
  /// Repaired fraction of detected trials (1.0 when none tripped).
  double correction_rate() const;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<CampaignCell> cells;

  /// Aggregates over all cells.
  long total_faults() const;
  int total_corrupting() const;
  int total_escaped_sdc() const;
  double overall_detection_rate() const;
};

/// Runs the full (site x rate) sweep.
CampaignResult run_campaign(const CampaignConfig& config);

/// Serializes the result as a JSON document (the SDC-coverage table
/// bench_fault_campaign emits).
std::string to_json(const CampaignResult& result);

}  // namespace m3xu::fault
