// Deterministic single-bit fault injection for the M3XU datapath
// model (see docs/FAULT_INJECTION.md).
//
// A FaultInjector decides, at each *opportunity* (one value passing
// one injection site), whether to flip one bit. The decision for
// opportunity n at a site is a pure function of (seed, site, n), so
// two injectors constructed with the same seed and rates replay
// identical fault sites over identical call sequences - the property
// the campaign runner and the determinism tests rely on. Counters are
// atomic, so injection is thread-safe; bit-exact replay additionally
// requires a deterministic call order (serial execution or a
// single-tile grid in the tiled driver).
//
// Sites (threaded through core/data_assignment, core/dp_unit and
// core/mxu behind null-by-default pointers; the fault-free hot path
// never sees the hooks):
//   kOperandA / kOperandB - a lane operand's significand in the
//     data-assignment buffers, after split/routing;
//   kPartialProduct       - one 2*mult_bits-wide multiplier output
//     inside the dot-product unit, before the adder tree;
//   kAccumulator          - the accumulation register's significand
//     after a step's register update.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "fp/unpacked.hpp"

namespace m3xu::fault {

enum class Site : int {
  kOperandA = 0,
  kOperandB = 1,
  kPartialProduct = 2,
  kAccumulator = 3,
};

inline constexpr int kSiteCount = 4;

const char* site_name(Site site);

/// Per-opportunity bit-flip probabilities, one per site.
struct SiteRates {
  double operand_a = 0.0;
  double operand_b = 0.0;
  double partial_product = 0.0;
  double accumulator = 0.0;

  double rate(Site site) const;
  /// All four sites at the same rate.
  static SiteRates uniform(double rate);
  /// Only `site` active, the rest zero.
  static SiteRates only(Site site, double rate);
};

/// One injected flip, for determinism tests and campaign reports.
struct FaultRecord {
  Site site;
  std::uint64_t event;  // per-site opportunity index
  int bit;              // flipped bit, LSB-relative within the field

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, const SiteRates& rates);

  /// Flips the sampled bit of `value` (a `width`-bit field); returns
  /// `value` unchanged when this opportunity does not fault.
  std::uint64_t corrupt(Site site, std::uint64_t value, int width) const;

  /// Flips a bit among the top `prec` significand bits of a normalized
  /// value (the accumulation register's architectural significand),
  /// renormalizing afterwards; a flip that clears the whole significand
  /// yields zero. Zero/Inf/NaN register contents pass through (no
  /// significand datapath to corrupt) but still consume the
  /// opportunity, keeping replay aligned.
  fp::Unpacked corrupt_unpacked(Site site, const fp::Unpacked& value,
                                int prec) const;

  std::uint64_t seed() const { return seed_; }
  const SiteRates& rates() const { return rates_; }

  /// Opportunities seen / faults injected so far, per site and total.
  std::uint64_t opportunities(Site site) const;
  std::uint64_t injected(Site site) const;
  std::uint64_t total_injected() const;

  /// The first kLogCap injected flips, in injection order.
  std::vector<FaultRecord> log() const;

  static constexpr std::size_t kLogCap = 4096;

 private:
  /// Draws the decision for the next opportunity at `site`: the bit to
  /// flip in [0, width), or -1 for no fault. `*event_out` receives the
  /// opportunity index consumed.
  int sample(Site site, int width, std::uint64_t* event_out) const;
  void record(Site site, std::uint64_t event, int bit) const;

  std::uint64_t seed_;
  SiteRates rates_;
  mutable std::array<std::atomic<std::uint64_t>, kSiteCount> opportunities_;
  mutable std::array<std::atomic<std::uint64_t>, kSiteCount> injected_;
  mutable std::mutex log_mu_;
  mutable std::vector<FaultRecord> log_;
};

}  // namespace m3xu::fault
