// Deterministic single-bit fault injection for the M3XU datapath
// model (see docs/FAULT_INJECTION.md).
//
// A FaultInjector decides, at each *opportunity* (one value passing
// one injection site), whether to flip one bit. The decision for
// opportunity n at a site is a pure function of (seed, site, n), so
// two injectors constructed with the same seed and rates replay
// identical fault sites over identical call sequences - the property
// the campaign runner and the determinism tests rely on. Counters are
// atomic, so injection is thread-safe; bit-exact replay additionally
// requires a deterministic call order (serial execution or a
// single-tile grid in the tiled driver).
//
// Sites (threaded through core/data_assignment, core/dp_unit and
// core/mxu behind null-by-default pointers; the fault-free hot path
// never sees the hooks):
//   kOperandA / kOperandB - a lane operand's significand in the
//     data-assignment buffers, after split/routing;
//   kPartialProduct       - one 2*mult_bits-wide multiplier output
//     inside the dot-product unit, before the adder tree;
//   kAccumulator          - the accumulation register's significand
//     after a step's register update.
//
// System-level domains (threaded through the tiled GEMM driver; see
// docs/RESILIENCE.md):
//   kStagedPanel  - one bit of a staged A/B panel element (the
//     shared-memory buffer model), flipped after the stage copy;
//   kAllocFailure - a boolean event: packed-panel staging "fails to
//     allocate" and the driver must take its unpacked fallback;
//   kWorkerStall  - a boolean event: the worker computing a tile
//     sleeps for stall_duration_ms (exercises the pool watchdog).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "fp/unpacked.hpp"

namespace m3xu::fault {

enum class Site : int {
  kOperandA = 0,
  kOperandB = 1,
  kPartialProduct = 2,
  kAccumulator = 3,
  kStagedPanel = 4,
  kAllocFailure = 5,
  kWorkerStall = 6,
};

inline constexpr int kSiteCount = 7;
/// The first kDatapathSiteCount sites are the engine-datapath ones;
/// sites at and beyond this index are system-level domains handled by
/// the tiled driver rather than the arithmetic model.
inline constexpr int kDatapathSiteCount = 4;

const char* site_name(Site site);

/// Per-opportunity bit-flip (or event-trigger) probabilities, one per
/// site.
struct SiteRates {
  double operand_a = 0.0;
  double operand_b = 0.0;
  double partial_product = 0.0;
  double accumulator = 0.0;
  double staged_panel = 0.0;
  double alloc_failure = 0.0;
  double worker_stall = 0.0;

  double rate(Site site) const;
  /// The four *datapath* sites at the same rate (system-level domains
  /// stay zero - existing campaigns and tests sweep the arithmetic
  /// model only; enable driver domains explicitly).
  static SiteRates uniform(double rate);
  /// Only `site` active, the rest zero.
  static SiteRates only(Site site, double rate);
};

/// One injected flip, for determinism tests and campaign reports.
struct FaultRecord {
  Site site;
  std::uint64_t event;  // per-site opportunity index
  int bit;              // flipped bit, LSB-relative within the field

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, const SiteRates& rates);

  /// Flips the sampled bit of `value` (a `width`-bit field); returns
  /// `value` unchanged when this opportunity does not fault.
  std::uint64_t corrupt(Site site, std::uint64_t value, int width) const;

  /// Flips a bit among the top `prec` significand bits of a normalized
  /// value (the accumulation register's architectural significand),
  /// renormalizing afterwards; a flip that clears the whole significand
  /// yields zero. Zero/Inf/NaN register contents pass through (no
  /// significand datapath to corrupt) but still consume the
  /// opportunity, keeping replay aligned.
  fp::Unpacked corrupt_unpacked(Site site, const fp::Unpacked& value,
                                int prec) const;

  /// Boolean event sites (kAllocFailure, kWorkerStall): consumes one
  /// opportunity and returns whether the event fires. Fired events are
  /// recorded in the log like bit flips (bit 0 of a 1-bit field), so
  /// replay determinism covers them too.
  bool trigger(Site site) const;

  /// How long an injected kWorkerStall sleeps the worker, in
  /// milliseconds. Plain field: configure before handing the injector
  /// to an engine.
  int stall_duration_ms = 25;

  std::uint64_t seed() const { return seed_; }
  const SiteRates& rates() const { return rates_; }

  /// Opportunities seen / faults injected so far, per site and total.
  std::uint64_t opportunities(Site site) const;
  std::uint64_t injected(Site site) const;
  std::uint64_t total_injected() const;

  /// The first kLogCap injected flips, in injection order.
  std::vector<FaultRecord> log() const;

  static constexpr std::size_t kLogCap = 4096;

 private:
  /// Draws the decision for the next opportunity at `site`: the bit to
  /// flip in [0, width), or -1 for no fault. `*event_out` receives the
  /// opportunity index consumed.
  int sample(Site site, int width, std::uint64_t* event_out) const;
  void record(Site site, std::uint64_t event, int bit) const;

  std::uint64_t seed_;
  SiteRates rates_;
  mutable std::array<std::atomic<std::uint64_t>, kSiteCount> opportunities_;
  mutable std::array<std::atomic<std::uint64_t>, kSiteCount> injected_;
  mutable std::mutex log_mu_;
  mutable std::vector<FaultRecord> log_;
};

}  // namespace m3xu::fault
