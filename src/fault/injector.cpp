#include "fault/injector.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::fault {

namespace {

telemetry::Counter fault_injected("fault.injected");

/// splitmix64 finalizer: the per-opportunity decision hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-site salt so the per-site decision streams are independent.
constexpr std::uint64_t kSiteSalt[kSiteCount] = {
    0xa24baed4963ee407ull, 0x9fb21c651e98df25ull, 0xd6e8feb86659fd93ull,
    0x2f2b9c1c3a9f8e15ull, 0x7b8f2d9e4c61a3f7ull, 0x1c69b3f74ae58d21ull,
    0xe3779b97f4a7c159ull};

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kOperandA:
      return "operand_a";
    case Site::kOperandB:
      return "operand_b";
    case Site::kPartialProduct:
      return "partial_product";
    case Site::kAccumulator:
      return "accumulator";
    case Site::kStagedPanel:
      return "staged_panel";
    case Site::kAllocFailure:
      return "alloc_failure";
    case Site::kWorkerStall:
      return "worker_stall";
  }
  return "?";
}

double SiteRates::rate(Site site) const {
  switch (site) {
    case Site::kOperandA:
      return operand_a;
    case Site::kOperandB:
      return operand_b;
    case Site::kPartialProduct:
      return partial_product;
    case Site::kAccumulator:
      return accumulator;
    case Site::kStagedPanel:
      return staged_panel;
    case Site::kAllocFailure:
      return alloc_failure;
    case Site::kWorkerStall:
      return worker_stall;
  }
  return 0.0;
}

SiteRates SiteRates::uniform(double rate) {
  SiteRates r;
  r.operand_a = r.operand_b = r.partial_product = r.accumulator = rate;
  return r;
}

SiteRates SiteRates::only(Site site, double rate) {
  SiteRates r;
  switch (site) {
    case Site::kOperandA:
      r.operand_a = rate;
      break;
    case Site::kOperandB:
      r.operand_b = rate;
      break;
    case Site::kPartialProduct:
      r.partial_product = rate;
      break;
    case Site::kAccumulator:
      r.accumulator = rate;
      break;
    case Site::kStagedPanel:
      r.staged_panel = rate;
      break;
    case Site::kAllocFailure:
      r.alloc_failure = rate;
      break;
    case Site::kWorkerStall:
      r.worker_stall = rate;
      break;
  }
  return r;
}

FaultInjector::FaultInjector(std::uint64_t seed, const SiteRates& rates)
    : seed_(seed), rates_(rates) {
  for (auto& c : opportunities_) c.store(0, std::memory_order_relaxed);
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
}

int FaultInjector::sample(Site site, int width,
                          std::uint64_t* event_out) const {
  const int s = static_cast<int>(site);
  const std::uint64_t n =
      opportunities_[s].fetch_add(1, std::memory_order_relaxed);
  *event_out = n;
  const double rate = rates_.rate(site);
  if (rate <= 0.0 || width <= 0) return -1;
  const std::uint64_t h = mix(mix(seed_ ^ kSiteSalt[s]) + n);
  if (static_cast<double>(h >> 11) * 0x1.0p-53 >= rate) return -1;
  return static_cast<int>(mix(h) % static_cast<std::uint64_t>(width));
}

void FaultInjector::record(Site site, std::uint64_t event, int bit) const {
  fault_injected.increment();
  injected_[static_cast<int>(site)].fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(log_mu_);
  if (log_.size() < kLogCap) log_.push_back({site, event, bit});
}

std::uint64_t FaultInjector::corrupt(Site site, std::uint64_t value,
                                     int width) const {
  std::uint64_t event = 0;
  const int bit = sample(site, width, &event);
  if (bit < 0) return value;
  record(site, event, bit);
  return value ^ (std::uint64_t{1} << bit);
}

fp::Unpacked FaultInjector::corrupt_unpacked(Site site,
                                             const fp::Unpacked& value,
                                             int prec) const {
  std::uint64_t event = 0;
  const int bit = sample(site, prec, &event);
  if (bit < 0) return value;
  if (value.cls != fp::FpClass::kNormal) return value;
  record(site, event, bit);
  // Bit 0 of the field is the window's LSB; bit prec-1 is the leading
  // (hidden-1 position) bit at Unpacked::kSigTop.
  const int pos = fp::Unpacked::kSigTop - (prec - 1) + bit;
  fp::Unpacked r = value;
  r.sig ^= std::uint64_t{1} << pos;
  if (r.sig == 0) {
    r.cls = fp::FpClass::kZero;
    r.exp = 0;
    return r;
  }
  const int lead = highest_bit(r.sig);
  if (lead != fp::Unpacked::kSigTop) {
    // Flipping the leading bit denormalizes the register; renormalize
    // (the exponent field absorbs the shift).
    r.sig <<= fp::Unpacked::kSigTop - lead;
    r.exp -= fp::Unpacked::kSigTop - lead;
  }
  return r;
}

bool FaultInjector::trigger(Site site) const {
  std::uint64_t event = 0;
  const int bit = sample(site, 1, &event);
  if (bit < 0) return false;
  record(site, event, bit);
  return true;
}

std::uint64_t FaultInjector::opportunities(Site site) const {
  return opportunities_[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(Site site) const {
  return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::vector<FaultRecord> FaultInjector::log() const {
  const std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

}  // namespace m3xu::fault
