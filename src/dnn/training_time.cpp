#include "dnn/training_time.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/eval_kernels.hpp"
#include "telemetry/model_clock.hpp"

namespace m3xu::dnn {

namespace {

struct Breakdown {
  double forward = 0.0;
  double backward_mixed = 0.0;
  double backward_m3xu = 0.0;
};

/// The three Breakdown totals are parallel timelines (the two backward
/// variants model alternative passes over the same layers), so each
/// gets its own virtual-time clock; launch overhead comes from
/// ModelClock::advance.
double gemm_seconds(telemetry::ModelClock& clock, std::string_view phase,
                    const sim::GpuSim& sim, const GemmShape& g,
                    sim::SgemmVariant v) {
  return clock.advance(phase, sim::time_sgemm(sim, v, g.m, g.n, g.k).seconds);
}

double hgemm_seconds(telemetry::ModelClock& clock, std::string_view phase,
                     const sim::GpuSim& sim, const GemmShape& g) {
  return clock.advance(phase, sim::time_hgemm(sim, g.m, g.n, g.k).seconds);
}

double elementwise_seconds(telemetry::ModelClock& clock,
                           std::string_view phase, const sim::GpuSim& sim,
                           double bytes) {
  return clock.advance(phase, sim::time_streaming(sim, bytes, bytes).seconds);
}

Breakdown compute_breakdown(const sim::GpuSim& sim, const Network& net) {
  telemetry::ModelClock fwd;
  telemetry::ModelClock bwd_mixed;
  telemetry::ModelClock bwd_m3xu;
  const auto gemm_layer = [&](const GemmShape& f, const GemmShape& d,
                              const GemmShape& w, std::string_view phase) {
    hgemm_seconds(fwd, phase, sim, f);
    gemm_seconds(bwd_mixed, phase, sim, d, sim::SgemmVariant::kSimt);
    gemm_seconds(bwd_mixed, phase, sim, w, sim::SgemmVariant::kSimt);
    gemm_seconds(bwd_m3xu, phase, sim, d, sim::SgemmVariant::kM3xu);
    gemm_seconds(bwd_m3xu, phase, sim, w, sim::SgemmVariant::kM3xu);
  };
  for (const Layer& layer : net.layers) {
    switch (layer.kind) {
      case Layer::Kind::kConv:
        gemm_layer(forward_gemm(layer.conv, net.batch),
                   dgrad_gemm(layer.conv, net.batch),
                   wgrad_gemm(layer.conv, net.batch), "conv");
        break;
      case Layer::Kind::kFc:
        gemm_layer(forward_gemm(layer.fc, net.batch),
                   dgrad_gemm(layer.fc, net.batch),
                   wgrad_gemm(layer.fc, net.batch), "fc");
        break;
      case Layer::Kind::kElementwise: {
        // FP16 activations forward; backward touches activations and
        // gradients (~1.5x the traffic).
        const double bytes = layer.elems * net.batch * 2.0;
        elementwise_seconds(fwd, "elementwise", sim, bytes);
        const double bwd =
            elementwise_seconds(bwd_mixed, "elementwise", sim, bytes * 1.5);
        bwd_m3xu.advance("elementwise", bwd, /*launches=*/0);
        break;
      }
    }
  }
  return {fwd.seconds(), bwd_mixed.seconds(), bwd_m3xu.seconds()};
}

}  // namespace

double paper_backward_share(const std::string& network_name) {
  if (network_name == "VGG-16") return 0.396;
  if (network_name == "ResNet-18") return 0.391;
  if (network_name == "AlexNet") return 0.465;
  return 0.0;
}

IterationTime time_iteration(const sim::GpuSim& sim, const Network& net,
                             TrainingMode mode,
                             double baseline_backward_share) {
  const Breakdown b = compute_breakdown(sim, net);
  IterationTime t;
  t.forward_seconds = b.forward;
  t.backward_seconds = mode == TrainingMode::kMixedPrecision
                           ? b.backward_mixed
                           : b.backward_m3xu;
  if (baseline_backward_share > 0.0) {
    M3XU_CHECK(baseline_backward_share < 1.0);
    // Calibrate the (mode-independent) framework time so the BASELINE
    // iteration's backward share matches the paper's measurement.
    const double target_total = b.backward_mixed / baseline_backward_share;
    t.framework_seconds =
        std::max(0.0, target_total - b.backward_mixed - b.forward);
  }
  return t;
}

}  // namespace m3xu::dnn
