#include "dnn/training_time.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/eval_kernels.hpp"

namespace m3xu::dnn {

namespace {

constexpr double kLaunchSeconds = 5e-6;

struct Breakdown {
  double forward = 0.0;
  double backward_mixed = 0.0;
  double backward_m3xu = 0.0;
};

double gemm_seconds(const sim::GpuSim& sim, const GemmShape& g,
                    sim::SgemmVariant v) {
  return sim::time_sgemm(sim, v, g.m, g.n, g.k).seconds + kLaunchSeconds;
}

double hgemm_seconds(const sim::GpuSim& sim, const GemmShape& g) {
  return sim::time_hgemm(sim, g.m, g.n, g.k).seconds + kLaunchSeconds;
}

double elementwise_seconds(const sim::GpuSim& sim, double bytes) {
  return sim::time_streaming(sim, bytes, bytes).seconds + kLaunchSeconds;
}

Breakdown compute_breakdown(const sim::GpuSim& sim, const Network& net) {
  Breakdown b;
  for (const Layer& layer : net.layers) {
    switch (layer.kind) {
      case Layer::Kind::kConv: {
        const GemmShape f = forward_gemm(layer.conv, net.batch);
        const GemmShape d = dgrad_gemm(layer.conv, net.batch);
        const GemmShape w = wgrad_gemm(layer.conv, net.batch);
        b.forward += hgemm_seconds(sim, f);
        b.backward_mixed += gemm_seconds(sim, d, sim::SgemmVariant::kSimt) +
                            gemm_seconds(sim, w, sim::SgemmVariant::kSimt);
        b.backward_m3xu += gemm_seconds(sim, d, sim::SgemmVariant::kM3xu) +
                           gemm_seconds(sim, w, sim::SgemmVariant::kM3xu);
        break;
      }
      case Layer::Kind::kFc: {
        const GemmShape f = forward_gemm(layer.fc, net.batch);
        const GemmShape d = dgrad_gemm(layer.fc, net.batch);
        const GemmShape w = wgrad_gemm(layer.fc, net.batch);
        b.forward += hgemm_seconds(sim, f);
        b.backward_mixed += gemm_seconds(sim, d, sim::SgemmVariant::kSimt) +
                            gemm_seconds(sim, w, sim::SgemmVariant::kSimt);
        b.backward_m3xu += gemm_seconds(sim, d, sim::SgemmVariant::kM3xu) +
                           gemm_seconds(sim, w, sim::SgemmVariant::kM3xu);
        break;
      }
      case Layer::Kind::kElementwise: {
        // FP16 activations forward; backward touches activations and
        // gradients (~1.5x the traffic).
        const double bytes = layer.elems * net.batch * 2.0;
        b.forward += elementwise_seconds(sim, bytes);
        const double bwd = elementwise_seconds(sim, bytes * 1.5);
        b.backward_mixed += bwd;
        b.backward_m3xu += bwd;
        break;
      }
    }
  }
  return b;
}

}  // namespace

double paper_backward_share(const std::string& network_name) {
  if (network_name == "VGG-16") return 0.396;
  if (network_name == "ResNet-18") return 0.391;
  if (network_name == "AlexNet") return 0.465;
  return 0.0;
}

IterationTime time_iteration(const sim::GpuSim& sim, const Network& net,
                             TrainingMode mode,
                             double baseline_backward_share) {
  const Breakdown b = compute_breakdown(sim, net);
  IterationTime t;
  t.forward_seconds = b.forward;
  t.backward_seconds = mode == TrainingMode::kMixedPrecision
                           ? b.backward_mixed
                           : b.backward_m3xu;
  if (baseline_backward_share > 0.0) {
    M3XU_CHECK(baseline_backward_share < 1.0);
    // Calibrate the (mode-independent) framework time so the BASELINE
    // iteration's backward share matches the paper's measurement.
    const double target_total = b.backward_mixed / baseline_backward_share;
    t.framework_seconds =
        std::max(0.0, target_total - b.backward_mixed - b.forward);
  }
  return t;
}

}  // namespace m3xu::dnn
