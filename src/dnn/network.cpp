#include "dnn/network.hpp"

#include "common/check.hpp"

namespace m3xu::dnn {

namespace {

Layer conv(std::string name, int c_in, int c_out, int h, int w, int k,
           int stride, int pad) {
  Layer l;
  l.kind = Layer::Kind::kConv;
  l.conv = {c_in, c_out, h, w, k, k, stride, pad};
  l.name = std::move(name);
  return l;
}

Layer fc(std::string name, int in, int out) {
  Layer l;
  l.kind = Layer::Kind::kFc;
  l.fc = {in, out};
  l.name = std::move(name);
  return l;
}

Layer elementwise(std::string name, double elems) {
  Layer l;
  l.kind = Layer::Kind::kElementwise;
  l.elems = elems;
  l.name = std::move(name);
  return l;
}

double out_elems(const ConvLayer& c) {
  return static_cast<double>(c.c_out) * c.out_h() * c.out_w();
}

}  // namespace

Network alexnet(int batch) {
  Network net;
  net.name = "AlexNet";
  net.batch = batch;
  auto add_conv = [&](const char* name, int ci, int co, int h, int w, int k,
                      int s, int p) {
    net.layers.push_back(conv(name, ci, co, h, w, k, s, p));
    net.layers.push_back(
        elementwise(std::string(name) + "_relu",
                    out_elems(net.layers.back().conv)));
  };
  add_conv("conv1", 3, 64, 224, 224, 11, 4, 2);
  add_conv("conv2", 64, 192, 27, 27, 5, 1, 2);
  add_conv("conv3", 192, 384, 13, 13, 3, 1, 1);
  add_conv("conv4", 384, 256, 13, 13, 3, 1, 1);
  add_conv("conv5", 256, 256, 13, 13, 3, 1, 1);
  net.layers.push_back(fc("fc6", 9216, 4096));
  net.layers.push_back(elementwise("fc6_relu", 4096));
  net.layers.push_back(fc("fc7", 4096, 4096));
  net.layers.push_back(elementwise("fc7_relu", 4096));
  net.layers.push_back(fc("fc8", 4096, 1000));
  return net;
}

Network vgg16(int batch) {
  Network net;
  net.name = "VGG-16";
  net.batch = batch;
  struct Block {
    int convs;
    int channels;
    int size;
  };
  const Block blocks[] = {{2, 64, 224}, {2, 128, 112}, {3, 256, 56},
                          {3, 512, 28}, {3, 512, 14}};
  int c_in = 3;
  for (const Block& b : blocks) {
    for (int i = 0; i < b.convs; ++i) {
      const std::string name =
          "conv" + std::to_string(b.size) + "_" + std::to_string(i);
      net.layers.push_back(
          conv(name, c_in, b.channels, b.size, b.size, 3, 1, 1));
      net.layers.push_back(elementwise(
          name + "_relu", out_elems(net.layers.back().conv)));
      c_in = b.channels;
    }
  }
  net.layers.push_back(fc("fc1", 25088, 4096));
  net.layers.push_back(elementwise("fc1_relu", 4096));
  net.layers.push_back(fc("fc2", 4096, 4096));
  net.layers.push_back(elementwise("fc2_relu", 4096));
  net.layers.push_back(fc("fc3", 4096, 1000));
  return net;
}

Network resnet18(int batch) {
  Network net;
  net.name = "ResNet-18";
  net.batch = batch;
  net.layers.push_back(conv("conv1", 3, 64, 224, 224, 7, 2, 3));
  net.layers.push_back(elementwise("conv1_bn_relu", 64.0 * 112 * 112));
  struct Stage {
    int channels;
    int size;       // input spatial size of the stage
    int downsample;  // stride of the first block
  };
  const Stage stages[] = {{64, 56, 1}, {128, 56, 2}, {256, 28, 2},
                          {512, 14, 2}};
  int c_in = 64;
  for (const Stage& s : stages) {
    for (int block = 0; block < 2; ++block) {
      const int stride = block == 0 ? s.downsample : 1;
      const int in_size = block == 0 ? s.size : s.size / s.downsample;
      const std::string name = "res" + std::to_string(s.channels) + "_" +
                               std::to_string(block);
      net.layers.push_back(
          conv(name + "a", c_in, s.channels, in_size, in_size, 3, stride, 1));
      net.layers.push_back(elementwise(
          name + "a_bn_relu", out_elems(net.layers.back().conv)));
      const int mid = net.layers[net.layers.size() - 2].conv.out_h();
      net.layers.push_back(
          conv(name + "b", s.channels, s.channels, mid, mid, 3, 1, 1));
      net.layers.push_back(elementwise(
          name + "b_bn_relu_add", out_elems(net.layers.back().conv) * 2.0));
      c_in = s.channels;
    }
  }
  net.layers.push_back(elementwise("avgpool", 512.0 * 7 * 7));
  net.layers.push_back(fc("fc", 512, 1000));
  return net;
}

Network resnet50(int batch) {
  Network net;
  net.name = "ResNet-50";
  net.batch = batch;
  net.layers.push_back(conv("conv1", 3, 64, 224, 224, 7, 2, 3));
  net.layers.push_back(elementwise("conv1_bn_relu", 64.0 * 112 * 112));
  struct Stage {
    int mid;      // bottleneck width
    int out;      // stage output channels
    int blocks;
    int in_size;  // spatial size entering the stage
    int stride;   // stride of the first block
  };
  const Stage stages[] = {{64, 256, 3, 56, 1},
                          {128, 512, 4, 56, 2},
                          {256, 1024, 6, 28, 2},
                          {512, 2048, 3, 14, 2}};
  int c_in = 64;
  for (const Stage& s : stages) {
    for (int block = 0; block < s.blocks; ++block) {
      const int stride = block == 0 ? s.stride : 1;
      const int in_size = block == 0 ? s.in_size : s.in_size / s.stride;
      const std::string name = "res50_" + std::to_string(s.out) + "_" +
                               std::to_string(block);
      // 1x1 reduce, 3x3, 1x1 expand.
      net.layers.push_back(
          conv(name + "a", c_in, s.mid, in_size, in_size, 1, stride, 0));
      const int mid_size = net.layers.back().conv.out_h();
      net.layers.push_back(elementwise(
          name + "a_bn_relu", out_elems(net.layers[net.layers.size() - 1]
                                            .conv)));
      net.layers.push_back(
          conv(name + "b", s.mid, s.mid, mid_size, mid_size, 3, 1, 1));
      net.layers.push_back(elementwise(
          name + "b_bn_relu", out_elems(net.layers[net.layers.size() - 1]
                                            .conv)));
      net.layers.push_back(
          conv(name + "c", s.mid, s.out, mid_size, mid_size, 1, 1, 0));
      net.layers.push_back(elementwise(
          name + "c_bn_relu_add",
          out_elems(net.layers[net.layers.size() - 1].conv) * 2.0));
      c_in = s.out;
    }
  }
  net.layers.push_back(elementwise("avgpool", 2048.0 * 7 * 7));
  net.layers.push_back(fc("fc", 2048, 1000));
  return net;
}

FlopCensus count_flops(const Network& net) {
  FlopCensus census;
  for (const Layer& l : net.layers) {
    switch (l.kind) {
      case Layer::Kind::kConv:
        census.forward += forward_gemm(l.conv, net.batch).flops();
        census.backward += dgrad_gemm(l.conv, net.batch).flops() +
                           wgrad_gemm(l.conv, net.batch).flops();
        census.parameters +=
            static_cast<long>(l.conv.c_out) * l.conv.c_in * l.conv.kh *
            l.conv.kw;
        break;
      case Layer::Kind::kFc:
        census.forward += forward_gemm(l.fc, net.batch).flops();
        census.backward += dgrad_gemm(l.fc, net.batch).flops() +
                           wgrad_gemm(l.fc, net.batch).flops();
        census.parameters += static_cast<long>(l.fc.in) * l.fc.out;
        break;
      case Layer::Kind::kElementwise:
        census.activations += l.elems * net.batch;
        break;
    }
  }
  return census;
}

GemmShape forward_gemm(const ConvLayer& c, int batch) {
  return {static_cast<long>(batch) * c.out_h() * c.out_w(), c.c_out,
          static_cast<long>(c.c_in) * c.kh * c.kw};
}

GemmShape dgrad_gemm(const ConvLayer& c, int batch) {
  return {static_cast<long>(batch) * c.h * c.w, c.c_in,
          static_cast<long>(c.c_out) * c.kh * c.kw};
}

GemmShape wgrad_gemm(const ConvLayer& c, int batch) {
  return {c.c_out, static_cast<long>(c.c_in) * c.kh * c.kw,
          static_cast<long>(batch) * c.out_h() * c.out_w()};
}

GemmShape forward_gemm(const FcLayer& f, int batch) {
  return {batch, f.out, f.in};
}

GemmShape dgrad_gemm(const FcLayer& f, int batch) {
  return {batch, f.in, f.out};
}

GemmShape wgrad_gemm(const FcLayer& f, int batch) {
  return {f.out, f.in, batch};
}

}  // namespace m3xu::dnn
