#include "dnn/conv.hpp"

#include "common/check.hpp"

namespace m3xu::dnn {

namespace {

void check_weights(const WeightMatrix& weights, const ConvLayer& conv) {
  M3XU_CHECK(weights.rows() == conv.c_out);
  M3XU_CHECK(weights.cols() == conv.c_in * conv.kh * conv.kw);
}

}  // namespace

Tensor4 conv2d_reference(const Tensor4& input, const WeightMatrix& weights,
                         const ConvLayer& conv) {
  M3XU_CHECK(input.c == conv.c_in && input.h == conv.h && input.w == conv.w);
  check_weights(weights, conv);
  const int oh = conv.out_h();
  const int ow = conv.out_w();
  Tensor4 out(input.n, conv.c_out, oh, ow);
  for (int n = 0; n < input.n; ++n) {
    for (int co = 0; co < conv.c_out; ++co) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (int ci = 0; ci < conv.c_in; ++ci) {
            for (int ky = 0; ky < conv.kh; ++ky) {
              for (int kx = 0; kx < conv.kw; ++kx) {
                const int iy = y * conv.stride + ky - conv.pad;
                const int ix = x * conv.stride + kx - conv.pad;
                if (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w) {
                  continue;  // zero padding
                }
                acc += input.at(n, ci, iy, ix) *
                       weights(co, (ci * conv.kh + ky) * conv.kw + kx);
              }
            }
          }
          out.at(n, co, y, x) = acc;
        }
      }
    }
  }
  return out;
}

gemm::Matrix<float> im2col(const Tensor4& input, const ConvLayer& conv) {
  M3XU_CHECK(input.c == conv.c_in && input.h == conv.h && input.w == conv.w);
  const int oh = conv.out_h();
  const int ow = conv.out_w();
  gemm::Matrix<float> out(input.n * oh * ow,
                          conv.c_in * conv.kh * conv.kw);
  for (int n = 0; n < input.n; ++n) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        const int row = (n * oh + y) * ow + x;
        for (int ci = 0; ci < conv.c_in; ++ci) {
          for (int ky = 0; ky < conv.kh; ++ky) {
            for (int kx = 0; kx < conv.kw; ++kx) {
              const int iy = y * conv.stride + ky - conv.pad;
              const int ix = x * conv.stride + kx - conv.pad;
              const int col = (ci * conv.kh + ky) * conv.kw + kx;
              out(row, col) =
                  (iy < 0 || iy >= input.h || ix < 0 || ix >= input.w)
                      ? 0.0f
                      : input.at(n, ci, iy, ix);
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor4 conv2d_gemm(const Tensor4& input, const WeightMatrix& weights,
                    const ConvLayer& conv, ConvMath math,
                    const core::M3xuEngine& engine) {
  check_weights(weights, conv);
  const gemm::Matrix<float> cols = im2col(input, conv);
  // GEMM: (N*P*Q x K) * (K x c_out); weights stored (c_out x K) so
  // transpose once.
  gemm::Matrix<float> wt(weights.cols(), weights.rows());
  for (int i = 0; i < weights.rows(); ++i) {
    for (int j = 0; j < weights.cols(); ++j) wt(j, i) = weights(i, j);
  }
  gemm::Matrix<float> result(cols.rows(), conv.c_out);
  result.fill(0.0f);
  switch (math) {
    case ConvMath::kSimtFp32:
      gemm::run_sgemm(gemm::SgemmKernel::kSimt, engine, cols, wt, result);
      break;
    case ConvMath::kM3xuFp32:
      gemm::run_sgemm(gemm::SgemmKernel::kM3xu, engine, cols, wt, result);
      break;
    case ConvMath::kTensorFp16:
      gemm::tensorop_hgemm(engine, cols, wt, result);
      break;
  }
  // col2im for the output layout (pure reshape: rows are (n, y, x)).
  const int oh = conv.out_h();
  const int ow = conv.out_w();
  Tensor4 out(input.n, conv.c_out, oh, ow);
  for (int n = 0; n < input.n; ++n) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        const int row = (n * oh + y) * ow + x;
        for (int co = 0; co < conv.c_out; ++co) {
          out.at(n, co, y, x) = result(row, co);
        }
      }
    }
  }
  return out;
}

}  // namespace m3xu::dnn
