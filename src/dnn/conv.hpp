// Functional convolution lowering: im2col + GEMM, the transformation
// the training-time model assumes (implicit GEMM). Validated against a
// direct convolution reference; the GEMM can run on any of the kernel
// inventory (FP16 Tensor-Core forward, M3XU FP32 backward-precision
// path, SIMT).
#pragma once

#include <vector>

#include "dnn/network.hpp"
#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::dnn {

/// NCHW activation tensor.
struct Tensor4 {
  int n = 0;
  int c = 0;
  int h = 0;
  int w = 0;
  std::vector<float> data;

  Tensor4() = default;
  Tensor4(int n_, int c_, int h_, int w_)
      : n(n_), c(c_), h(h_), w(w_),
        data(static_cast<std::size_t>(n_) * c_ * h_ * w_, 0.0f) {}

  float& at(int in, int ic, int ih, int iw) {
    return data[((static_cast<std::size_t>(in) * c + ic) * h + ih) * w + iw];
  }
  float at(int in, int ic, int ih, int iw) const {
    return data[((static_cast<std::size_t>(in) * c + ic) * h + ih) * w + iw];
  }
};

/// Weights as (c_out, c_in * kh * kw) row-major.
using WeightMatrix = gemm::Matrix<float>;

/// Direct (loop-nest) convolution reference. Output sized
/// (n, c_out, out_h, out_w); zero padding.
Tensor4 conv2d_reference(const Tensor4& input, const WeightMatrix& weights,
                         const ConvLayer& conv);

/// Lowers the padded input to the im2col matrix: rows = n*out_h*out_w,
/// cols = c_in*kh*kw (matching forward_gemm()'s M and K).
gemm::Matrix<float> im2col(const Tensor4& input, const ConvLayer& conv);

enum class ConvMath { kSimtFp32, kM3xuFp32, kTensorFp16 };

/// Convolution as im2col + GEMM on the chosen math pipe.
Tensor4 conv2d_gemm(const Tensor4& input, const WeightMatrix& weights,
                    const ConvLayer& conv, ConvMath math,
                    const core::M3xuEngine& engine);

}  // namespace m3xu::dnn
