// Network descriptions for the DNN training case study (SVI-C2, Fig 7):
// AlexNet, VGG-16, and ResNet-18 from the Nebula benchmark suite, plus
// the conv -> implicit-GEMM lowerings for forward, data-gradient, and
// weight-gradient passes.
#pragma once

#include <string>
#include <vector>

namespace m3xu::dnn {

struct ConvLayer {
  int c_in = 0;
  int c_out = 0;
  int h = 0;  // input spatial dims
  int w = 0;
  int kh = 0;
  int kw = 0;
  int stride = 1;
  int pad = 0;

  int out_h() const { return (h + 2 * pad - kh) / stride + 1; }
  int out_w() const { return (w + 2 * pad - kw) / stride + 1; }
};

struct FcLayer {
  int in = 0;
  int out = 0;
};

struct Layer {
  enum class Kind { kConv, kFc, kElementwise };
  Kind kind = Kind::kElementwise;
  ConvLayer conv{};
  FcLayer fc{};
  /// For kElementwise: activations touched (per sample).
  double elems = 0.0;
  std::string name;
};

struct Network {
  std::string name;
  int batch = 32;
  std::vector<Layer> layers;
};

Network alexnet(int batch);
Network vgg16(int batch);
Network resnet18(int batch);
Network resnet50(int batch);  // bottleneck blocks (1x1-3x3-1x1)

struct GemmShape {
  long m = 0;
  long n = 0;
  long k = 0;
  double flops() const { return 2.0 * m * n * k; }
};

/// Implicit-GEMM lowerings (row-major conventions).
GemmShape forward_gemm(const ConvLayer& c, int batch);
GemmShape dgrad_gemm(const ConvLayer& c, int batch);
GemmShape wgrad_gemm(const ConvLayer& c, int batch);
GemmShape forward_gemm(const FcLayer& f, int batch);
GemmShape dgrad_gemm(const FcLayer& f, int batch);
GemmShape wgrad_gemm(const FcLayer& f, int batch);

struct FlopCensus {
  double forward = 0.0;       // GEMM flops, forward pass
  double backward = 0.0;      // dgrad + wgrad flops
  double activations = 0.0;   // elementwise activations touched
  long parameters = 0;        // learnable parameters (conv + fc)
};

/// Per-iteration GEMM flop and parameter census of a network.
FlopCensus count_flops(const Network& net);

}  // namespace m3xu::dnn
