// Training-iteration timing (Fig 7).
//
// Forward pass: FP16 Tensor-Core GEMMs + elementwise kernels (both
// training modes, matching mixed-precision practice). Backward pass:
// dgrad + wgrad GEMMs on SIMT FP32 in the baseline (the paper: "the
// existing implementation only applies SIMT-based kernels to mixed
// precision training due to the absence of FP32 Tensor Core
// instructions") or on the M3XU FP32 mode, plus elementwise backward.
//
// The paper's measured iterations include substantial framework time
// (optimizer, loss, data movement in the Nebula harness) that a GEMM
// simulator cannot derive; `framework_seconds` is calibrated per
// network so the *baseline* backward share matches the paper's
// measurement (39.6% / 39.1% / 46.5% for VGG / ResNet / AlexNet). The
// backward and end-to-end speedups are then model outputs.
#pragma once

#include "dnn/network.hpp"
#include "sim/kernel_sim.hpp"

namespace m3xu::dnn {

enum class TrainingMode {
  kMixedPrecision,  // baseline: fwd FP16 TC, bwd SIMT FP32
  kM3xu,            // fwd FP16 TC, bwd M3XU FP32
};

struct IterationTime {
  double forward_seconds = 0.0;   // GEMM + elementwise
  double backward_seconds = 0.0;  // dgrad + wgrad + elementwise
  double framework_seconds = 0.0; // calibrated harness overhead
  double total() const {
    return forward_seconds + backward_seconds + framework_seconds;
  }
  double backward_share() const { return backward_seconds / total(); }
};

/// `baseline_backward_share`: the paper-measured backward fraction used
/// to calibrate framework overhead (pass <= 0 to disable calibration).
IterationTime time_iteration(const sim::GpuSim& sim, const Network& net,
                             TrainingMode mode,
                             double baseline_backward_share);

/// The paper's measured baseline backward share per network.
double paper_backward_share(const std::string& network_name);

}  // namespace m3xu::dnn
