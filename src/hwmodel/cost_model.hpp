// Analytical hardware cost model - the stand-in for the paper's
// Synopsys DC + FreePDK45 synthesis flow (SV-A, Table III).
//
// Each MXU design is an inventory of components with scaling laws:
//   - significand multiplier array: area ~ w^2, dynamic power ~ w^e
//     (toggle density grows superlinearly with operand width);
//   - adder tree + alignment shifters + accumulation registers: area
//     linear in the accumulation width;
//   - exponent path + control: fixed per lane;
//   - data-assignment stage: per-step buffers + multiplexers;
//   - sign-flip gates (FP32C) and pipeline registers: small adders.
//
// Power is *activity-gated* and reported for the common-mode workload
// (FP16 MMA, the paper's comparison point): M3XU's extra multiplier
// bit, the upper accumulator half, and the sign-flip logic are zero-
// padded / idle in FP16 mode and contribute only leakage; the naive
// FP32-MXU has no such gating and toggles its full 24-bit array.
// Frequency scaling follows near-linear DVFS (P_dyn ~ f^3).
//
// Calibrated constants (documented; everything else is a prediction):
//   - mult_area_weight from the two synthesized areas (3.55x, 1.37x),
//   - assign_stage_delay = 0.21 from the synthesized cycle time,
//   - mult_power_exp = 3.23 from the synthesized FP32-MXU power.
#pragma once

#include <string>
#include <vector>

namespace m3xu::hw {

struct TechnologyConstants {
  // Area weights; the baseline FP16 MXU lane sums to 1.0.
  double mult_area_weight = 0.625;  // 11-bit multiplier array
  double accum_area_weight = 0.20;  // tree + shifters + 24-bit registers
  double exp_area_weight = 0.175;   // exponent adders + control
  double buffer_area_per_step = 0.015;  // data-assignment buffers
  double mux_area = 0.020;              // data-assignment multiplexers
  double signflip_area = 0.010;         // FP32C sign-flip gates
  double pipeline_reg_area = 0.060;     // extra pipeline-stage registers

  // Un-pipelined data-assignment stage lengthens the critical path.
  double assign_stage_delay = 0.21;

  // Power.
  double mult_power_exp = 3.23;  // multiplier dynamic power ~ w^e
  double dvfs_exp = 3.0;         // P_dyn ~ f^3 (voltage tracks frequency)
  double leakage_fraction = 0.08;  // static power ~ area
};

struct MxuDesign {
  std::string name;
  int mult_bits = 11;       // significand multiplier width
  int accum_bits = 24;      // accumulation register/adder-tree width
  int assign_steps = 0;     // buffered steps in the data-assignment stage
  bool has_mux = false;     // data-assignment multiplexers present
  bool sign_flip = false;   // FP32C subtraction support
  bool pipelined_assign = false;  // extra pipeline stage for assignment
  bool input_gated = true;  // extra datapath bits are zero-gated in
                            // FP16 mode (true for M3XU; false for the
                            // naive FP32-MXU)
};

struct CostResult {
  double area = 1.0;        // relative to baseline FP16 MXU
  double cycle_time = 1.0;  // relative
  double power = 1.0;       // relative, FP16-mode workload, own clock
  double frequency = 1.0;   // relative operating frequency (1/cycle_time)
};

/// Evaluates one design against the baseline.
CostResult evaluate(const MxuDesign& design, const TechnologyConstants& tech);

/// The five Table III designs: baseline FP16 MXU, naive FP32-MXU,
/// M3XU w/o FP32C, full M3XU, pipelined M3XU.
std::vector<MxuDesign> table3_designs();

/// Paper-reported Table III values (for the model-vs-paper benches).
struct PaperRow {
  std::string name;
  double area;
  double cycle_time;
  double power;
};
std::vector<PaperRow> table3_paper_rows();

/// SM-level roll-up: MXUs occupy `mxu_sm_fraction` of an SM, so an MXU
/// overhead of (area-1) grows the SM by (area-1)*fraction.
double sm_area_increase(double mxu_relative_area,
                        double mxu_sm_fraction = 0.085);

/// Design-space point: an M3XU-style design whose multipliers are
/// `mult_bits` wide (composing the target significand from
/// ceil(sig_bits/mult_bits) parts in parts^2 steps), with the full
/// data-assignment stage, sign-flip, and pipelining. Used by the
/// SIV-C ablation.
MxuDesign composed_design(int mult_bits, int target_sig_bits,
                          int accum_bits);

/// The FP64-capable M3XU of SIV-C: 27-bit sub-multipliers, 56-bit
/// accumulation, the full assignment stage. The paper does not
/// synthesize this point; the model predicts its cost.
MxuDesign m3xu_fp64_design();

/// Relative per-cycle dynamic energy of a design while actively
/// executing in `mode_mult_bits`/`mode_accum_bits` (which parts of the
/// datapath toggle). Used by the timing simulator's energy model.
double active_energy_per_cycle(const MxuDesign& design,
                               const TechnologyConstants& tech,
                               int mode_mult_bits, int mode_accum_bits);

}  // namespace m3xu::hw
