#include "hwmodel/cost_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace m3xu::hw {

namespace {

constexpr int kBaseMultBits = 11;
constexpr int kBaseAccumBits = 24;

double area_of(const MxuDesign& d, const TechnologyConstants& t) {
  const double w = static_cast<double>(d.mult_bits) / kBaseMultBits;
  double area = t.mult_area_weight * w * w +
                t.accum_area_weight *
                    (static_cast<double>(d.accum_bits) / kBaseAccumBits) +
                t.exp_area_weight;
  area += t.buffer_area_per_step * d.assign_steps;
  if (d.has_mux) area += t.mux_area;
  if (d.sign_flip) area += t.signflip_area;
  if (d.pipelined_assign) area += t.pipeline_reg_area;
  return area;
}

double cycle_time_of(const MxuDesign& d, const TechnologyConstants& t) {
  // The data-assignment stage sits in front of the multipliers; without
  // its own pipeline stage it stretches the cycle.
  if (d.assign_steps > 0 && !d.pipelined_assign) {
    return 1.0 + t.assign_stage_delay;
  }
  return 1.0;
}

}  // namespace

double active_energy_per_cycle(const MxuDesign& design,
                               const TechnologyConstants& tech,
                               int mode_mult_bits, int mode_accum_bits) {
  // Toggled widths: gated designs only switch the bits the mode uses;
  // ungated designs switch the full datapath.
  const int mult_toggled =
      design.input_gated ? std::min(design.mult_bits, mode_mult_bits)
                         : design.mult_bits;
  const int accum_toggled =
      design.input_gated ? std::min(design.accum_bits, mode_accum_bits)
                         : design.accum_bits;
  const double wm = static_cast<double>(mult_toggled) / kBaseMultBits;
  double dyn = tech.mult_area_weight * std::pow(wm, tech.mult_power_exp) +
               tech.accum_area_weight *
                   (static_cast<double>(accum_toggled) / kBaseAccumBits) +
               tech.exp_area_weight;
  // Input-path components switch every cycle regardless of mode: the
  // active step's buffers and the multiplexers.
  if (design.assign_steps > 0) dyn += tech.buffer_area_per_step;
  if (design.has_mux) dyn += tech.mux_area;
  return dyn;
}

CostResult evaluate(const MxuDesign& design, const TechnologyConstants& tech) {
  CostResult r;
  r.area = area_of(design, tech);
  r.cycle_time = cycle_time_of(design, tech);
  r.frequency = 1.0 / r.cycle_time;
  // FP16-mode workload power at the design's own clock.
  const double dyn =
      active_energy_per_cycle(design, tech, kBaseMultBits, kBaseAccumBits);
  const double dyn_share = 1.0 - tech.leakage_fraction;
  r.power = dyn_share * dyn * std::pow(r.frequency, tech.dvfs_exp) +
            tech.leakage_fraction * r.area;
  return r;
}

std::vector<MxuDesign> table3_designs() {
  std::vector<MxuDesign> designs;
  designs.push_back({.name = "baseline_fp16_mxu"});
  designs.push_back({.name = "fp32_mxu",
                     .mult_bits = 24,
                     .accum_bits = 48,
                     .input_gated = false});
  designs.push_back({.name = "m3xu_no_fp32c",
                     .mult_bits = 12,
                     .accum_bits = 48,
                     .assign_steps = 2,
                     .has_mux = true});
  designs.push_back({.name = "m3xu",
                     .mult_bits = 12,
                     .accum_bits = 48,
                     .assign_steps = 4,
                     .has_mux = true,
                     .sign_flip = true});
  designs.push_back({.name = "m3xu_pipelined",
                     .mult_bits = 12,
                     .accum_bits = 48,
                     .assign_steps = 4,
                     .has_mux = true,
                     .sign_flip = true,
                     .pipelined_assign = true});
  return designs;
}

std::vector<PaperRow> table3_paper_rows() {
  return {
      {"baseline_fp16_mxu", 1.00, 1.00, 1.00},
      {"fp32_mxu", 3.55, 1.00, 7.97},
      {"m3xu_no_fp32c", 1.37, 1.21, 0.66},
      {"m3xu", 1.41, 1.21, 0.69},
      {"m3xu_pipelined", 1.47, 1.00, 1.07},
  };
}

double sm_area_increase(double mxu_relative_area, double mxu_sm_fraction) {
  M3XU_CHECK(mxu_relative_area >= 0.0);
  return (mxu_relative_area - 1.0) * mxu_sm_fraction;
}

MxuDesign composed_design(int mult_bits, int target_sig_bits,
                          int accum_bits) {
  M3XU_CHECK(mult_bits >= 2 && target_sig_bits >= mult_bits);
  const int parts = (target_sig_bits + mult_bits - 1) / mult_bits;
  MxuDesign d;
  d.name = "composed_w" + std::to_string(mult_bits);
  d.mult_bits = mult_bits;
  d.accum_bits = accum_bits;
  d.assign_steps = parts * parts;
  d.has_mux = true;
  d.sign_flip = true;
  d.pipelined_assign = true;
  return d;
}

MxuDesign m3xu_fp64_design() {
  MxuDesign d = composed_design(27, 53, 56);
  d.name = "m3xu_fp64";
  d.assign_steps = 4;  // HH/LL/HL/LH classes (SIV-C)
  return d;
}

}  // namespace m3xu::hw
