// Generalized multi-part engine (paper SIV-C: "the original arithmetic
// unit requirements remain flexible, accommodating options like 8-bit
// or 32-bit multipliers for composing higher bitwidth datatypes").
//
// Given a base multiplier width of `part_bits` and a target format, the
// significand splits into S = ceil(sig_bits / part_bits) parts; a dot
// product needs S^2 product-class steps. M3XU's FP32-on-12-bit mode is
// the S=2 instance; FP64-on-27-bit is S=2 with wider parts; FP64 on the
// unmodified 12-bit multipliers is S=5 (25 steps) - the design-space
// points the ablation bench explores.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dp_unit.hpp"
#include "fp/format.hpp"

namespace m3xu::core {

struct MultiPartConfig {
  fp::FloatFormat format = fp::kFp32;  // element format of inputs/outputs
  int part_bits = 12;                  // base multiplier width
  int accum_prec = 48;                 // accumulation-register width
  bool per_step_rounding = true;
};

class MultiPartEngine {
 public:
  explicit MultiPartEngine(const MultiPartConfig& config);

  /// Number of significand parts per element.
  int parts() const { return parts_; }
  /// Dot-product steps per MMA (one per product class).
  int steps() const { return parts_ * parts_; }

  /// d = round_fmt(sum_k a[k]*b[k] + c). Inputs must already be exact
  /// values of `format` (pass doubles; FP32 values widen exactly).
  /// Subnormal inputs flush to zero; specials follow IEEE semantics.
  double dot(std::span<const double> a, std::span<const double> b,
             double c) const;

  /// C <- A*B + C over row-major buffers, one rounding per `k_chunk`
  /// columns of K (the instruction boundary).
  void gemm(int m, int n, int k, int k_chunk, const double* a, int lda,
            const double* b, int ldb, double* c, int ldc) const;

  const MultiPartConfig& config() const { return config_; }

 private:
  std::vector<LaneOperand> split_element(double v) const;

  MultiPartConfig config_;
  DpUnit unit_;
  int parts_;
};

}  // namespace m3xu::core
