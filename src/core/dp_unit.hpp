// Dot-product unit model (paper Fig 1 / Fig 3b).
//
// One *step* multiplies `lanes` operand pairs in parallel - each
// multiplier takes two `mult_bits`-wide significands - and feeds the
// aligned products into an adder tree. The model idealizes the adder
// tree + shifter network as an exact fixed-point sum (ExactAccumulator)
// so that the only roundings are the architecturally visible ones at
// the accumulation-register boundary.
//
// The per-product alignment shifts (0 / 12 / 24 bits for the FP32 mode,
// paper SIV-A) are folded into the operands' exp2 fields by the
// data-assignment stage.
#pragma once

#include <span>

#include "core/lane_operand.hpp"
#include "fp/exact_accumulator.hpp"

namespace m3xu::fault {
class FaultInjector;
}  // namespace m3xu::fault

namespace m3xu::core {

struct DpUnitConfig {
  int mult_bits = 12;  // multiplier significand width (M3XU: 11+1)
  // Sum products in a local 192-bit window when their exponents are
  // close (the common case), pushing three limbs into the wide
  // accumulator instead of one entry per product. Bit-identical to the
  // direct path (verified by tests); disable to force the direct path.
  bool enable_fast_path = true;
  // When non-null, every finite partial product (2*mult_bits wide) is
  // a single-bit-flip opportunity at Site::kPartialProduct before it
  // enters the adder tree. Null keeps the hot path fault-free.
  const fault::FaultInjector* injector = nullptr;
};

class DpUnit {
 public:
  explicit DpUnit(const DpUnitConfig& config) : config_(config) {}

  /// Accumulates sum += dot(a, b) exactly. a and b must have equal
  /// size; every finite operand's significand must fit mult_bits.
  /// IEEE special semantics: NaN operands poison the sum; Inf*0 is
  /// NaN; Inf*finite contributes a signed infinity.
  void accumulate_dot(std::span<const LaneOperand> a,
                      std::span<const LaneOperand> b,
                      fp::ExactAccumulator& sum) const;

  const DpUnitConfig& config() const { return config_; }

 private:
  DpUnitConfig config_;
};

}  // namespace m3xu::core
