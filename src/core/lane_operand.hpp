// The arithmetic-level operand one dot-product-unit lane consumes after
// the data-assignment stage has decoded/split/routed the inputs.
//
// Fidelity note: the physical buffer entry is (1-bit sign, 8-bit
// exponent, 12-bit significand field) plus the low/high routing
// (fp/split.hpp::HwPart). For the arithmetic model we pre-resolve the
// field semantics into (sig, exp2) where value = (-1)^sign * sig *
// 2^exp2 - i.e. exp2 already folds in the hidden-1 position and the
// low-part 2^-12 scale that the hardware corrects with shifters.
#pragma once

#include <cstdint>

#include "fp/split.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::core {

struct LaneOperand {
  enum class Cls : std::uint8_t { kZero, kFinite, kInf, kNaN };

  Cls cls = Cls::kZero;
  bool sign = false;
  std::int32_t exp2 = 0;   // weight of sig's least significant bit
  std::uint64_t sig = 0;   // significand; width checked by the dp unit

  /// Flips the operand's sign bit (the FP32C data-assignment stage does
  /// this to turn the imaginary*imaginary accumulation into a
  /// subtraction, paper SIV-B).
  LaneOperand negated() const {
    LaneOperand r = *this;
    r.sign = !r.sign;
    return r;
  }
};

/// Converts a data-assignment buffer entry into a lane operand.
inline LaneOperand from_hw_part(const fp::HwPart& part) {
  LaneOperand op;
  op.sign = part.sign;
  if (!part.finite) {
    op.cls = part.nan ? LaneOperand::Cls::kNaN : LaneOperand::Cls::kInf;
    return op;
  }
  if (part.sig == 0) {
    op.cls = LaneOperand::Cls::kZero;
    return op;
  }
  op.cls = LaneOperand::Cls::kFinite;
  op.sig = part.sig;
  // High part: sig/2^11 * 2^(E-127); low part: additionally * 2^-12.
  op.exp2 = part.exp_biased - 127 - (part.low_part ? 23 : 11);
  return op;
}

/// Converts a decoded value (e.g. an FP16/BF16/TF32 input in the
/// passthrough modes, or a 27-bit FP64 part) into a lane operand with
/// `sig_bits` significant bits (the value must be exactly
/// representable; callers round first).
LaneOperand from_unpacked(const fp::Unpacked& u, int sig_bits);

}  // namespace m3xu::core
