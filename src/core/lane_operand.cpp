#include "core/lane_operand.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::core {

LaneOperand from_unpacked(const fp::Unpacked& u, int sig_bits) {
  M3XU_CHECK(sig_bits >= 1 && sig_bits <= 62);
  LaneOperand op;
  op.sign = u.sign;
  switch (u.cls) {
    case fp::FpClass::kZero:
      op.cls = LaneOperand::Cls::kZero;
      return op;
    case fp::FpClass::kInf:
      op.cls = LaneOperand::Cls::kInf;
      return op;
    case fp::FpClass::kNaN:
      op.cls = LaneOperand::Cls::kNaN;
      return op;
    case fp::FpClass::kNormal:
      break;
  }
  const int drop = fp::Unpacked::kSigTop - (sig_bits - 1);
  // The operand must be exactly representable in sig_bits (the caller
  // rounds to the input format first).
  M3XU_CHECK((u.sig & low_mask(drop)) == 0);
  op.cls = LaneOperand::Cls::kFinite;
  op.sig = u.sig >> drop;
  op.exp2 = u.exp - (sig_bits - 1);
  return op;
}

}  // namespace m3xu::core
