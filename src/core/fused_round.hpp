// Shared exact-window rounding primitives for the packed M3XU datapath.
//
// Both the per-element fused streaming kernel (mxu.cpp) and the
// register-blocked microkernel (microkernel.cpp) evaluate one
// architectural step as
//
//     reg' = RNE_prec(reg + sum_i (-1)^s_i * sig_i * 2^e_i)
//
// with the inner sum exact, so any exact evaluation order produces
// identical bits. These helpers implement the shared tail: extracting
// the magnitude of a local two's-complement window sum and rounding it
// to `prec` significand bits exactly like
// ExactAccumulator::round_to_precision (top-64 window + RNE with
// sticky). Keeping them in one header is what makes the two fast paths
// bit-identical to each other - and, transitively, to the generic
// ExactAccumulator route - by construction.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::core::detail {

/// Final RNE of an extracted magnitude window to `prec` bits (value =
/// top64 * 2^(lead_exp - 63), plus sticky dust below). Mirrors
/// round_window + round_to_precision's tail; prec is in [24, 63] here,
/// so round_window's keep < 64 branch always applies.
inline void finish_round(std::uint64_t top64, bool st, bool negative,
                         int lead_exp, int prec, fp::Unpacked* out) {
  const int r = 64 - prec;
  std::uint64_t sig = top64 >> r;
  const std::uint64_t guard = (top64 >> (r - 1)) & 1;
  const bool sticky = st || (r > 1 && (top64 & low_mask(r - 1)) != 0);
  if (guard && (sticky || (sig & 1))) ++sig;
  if (sig >> prec) {
    sig >>= 1;
    ++lead_exp;
  }
  out->cls = fp::FpClass::kNormal;
  out->sign = negative;
  out->exp = lead_exp;
  out->sig = sig << (fp::Unpacked::kSigTop - (prec - 1));
}

/// RNE_prec of a 128-bit two's-complement sum whose bit 0 has weight
/// 2^lo. The caller guarantees the magnitude's leading bit is at
/// position <= 126 (window span checked before accumulating). A zero
/// sum yields exact +0 - the same bits ExactAccumulator produces for an
/// exactly cancelled (or empty) sum.
inline void round_sum128(unsigned __int128 sum, int lo, int prec,
                         fp::Unpacked* out) {
  const bool negative = (static_cast<std::uint64_t>(sum >> 64) >> 63) != 0;
  if (negative) sum = -sum;
  if (sum == 0) {
    *out = {};  // exact cancellation to zero
    return;
  }
  const std::uint64_t hi64 = static_cast<std::uint64_t>(sum >> 64);
  const std::uint64_t lo64 = static_cast<std::uint64_t>(sum);
  const int h = hi64 ? 64 + highest_bit(hi64) : highest_bit(lo64);
  std::uint64_t top64 = 0;
  bool st = false;
  const int lo_index = h - 63;  // in (-64, 63]: h <= 126 by the span check
  if (lo_index > 0) {
    top64 = static_cast<std::uint64_t>(sum >> lo_index);
    st = (lo64 & low_mask(lo_index)) != 0;
  } else {
    top64 = lo64 << -lo_index;
  }
  finish_round(top64, st, negative, lo + h, prec, out);
}

}  // namespace m3xu::core::detail
