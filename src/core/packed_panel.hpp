// Pre-split operand panels for the M3XU GEMM hot path.
//
// The paper's data-assignment stage splits each FP32 operand into its
// 12-bit high/low parts *once* and holds the parts in per-step operand
// buffers (Fig 3a). The per-dot GEMM path re-runs that split for every
// (i, j, k-chunk) triple, so an A row-chunk is re-split n times and a B
// column is gathered and re-split m times. These panels do the split
// once per operand panel and lay the lane operands out so the
// dot-product units can stream a step's operand buffers directly from
// contiguous memory, with no per-element routing work left:
//
//   FP32 A row i:     [ah, al]  per element - step 0 and step 1 read
//                     the same A-side order (Eqs. 6/8);
//   FP32 B column j:  [bh, bl]  (step-0 like-part order) and
//                     [bl, bh]  (step-1 crossed order), both
//                     column-contiguous.
//
// FP32C panels additionally pre-route the four scalar product terms of
// the complex product (SIV-B), including the sign flip on the
// imaginary*imaginary lanes of the real part, so each of the four steps
// again streams from one contiguous array per side.
//
// Special (Inf/NaN) elements cannot be pre-split: the schedule emits an
// element-level bypass lane whose presence depends on the *pair* of
// operands meeting at a lane, not on either operand alone. Panels
// therefore also record per-element class operands plus a special flag,
// and the engine reassembles per-dot steps from the packed parts when a
// panel contains specials - or when a fault injector is attached, where
// the operand-buffer flip opportunities must fire in the exact per-dot
// order of DataAssignmentStage::schedule_*. Both paths are bit-identical
// to the schedule functions by construction (same lanes, same order,
// same rounding points); tests/core_packed_panel_test.cpp verifies it.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "core/lane_operand.hpp"

namespace m3xu::core {

/// K-elements per prescan chunk. These equal the instruction K of the
/// matching mode (shape_for(kFp32).k / shape_for(kFp32Complex).k - the
/// engine checks the match), so one metadata entry covers exactly one
/// MMA instruction's rounding interval.
inline constexpr int kPackChunkFp32 = 8;
inline constexpr int kPackChunkFp32c = 4;

/// Pack-time exponent prescan for one (row or column, k-chunk) pair:
/// exponent bounds over the chunk's finite lanes plus special/emptiness
/// flags. min_exp is the minimum *element anchor* - a hi lane counts as
/// exp2 - 12, the lsb weight of the element's combined 24-bit
/// significand - so min_a + min_b lower-bounds the lsb of any pair
/// product's combined 48-bit significand even when a lo part is zero.
/// max_exp is the plain maximum lane exp2 (hi lanes dominate), so
/// max_a + max_b + 23 upper-bounds any product's msb. The
/// register-blocked microkernel uses these to decide streaming
/// eligibility and the fused-round window once per panel chunk instead
/// of re-deriving them per dot product.
struct PanelChunkMeta {
  /// At least one lane in the chunk is finite (min/max_exp valid).
  static constexpr std::uint8_t kHasFinite = 1;
  /// At least one element in the chunk is Inf/NaN (lanes are bypass
  /// zeros; the chunk must take the per-element special path).
  static constexpr std::uint8_t kHasSpecial = 2;

  std::int16_t min_exp = 0;  // anchors fit int16: |exp2 - 12| <= 161
  std::int16_t max_exp = 0;
  std::uint8_t flags = 0;
};

/// Chunk count of a k-extent panel at `chunk` elements per chunk.
inline int panel_chunk_count(int k, int chunk) {
  return (k + chunk - 1) / chunk;
}

/// Packed A panel for the FP32 mode: `rows` x `k` elements, split once.
struct PackedPanelFp32A {
  int rows = 0;
  int k = 0;
  bool has_special = false;
  /// Row-contiguous lane stream, 2 lanes per element: [ah, al].
  std::vector<LaneOperand> lanes;
  /// Per-element class/sign bypass operands (row-contiguous, 1/elem).
  std::vector<LaneOperand> cls;
  /// Per-element special flag (Inf/NaN exponent field), 1/elem.
  std::vector<std::uint8_t> special;
  /// Exponent prescan, row-major [row][chunk] at kPackChunkFp32
  /// elements per chunk.
  std::vector<PanelChunkMeta> meta;
};

/// Packed B panel for the FP32 mode: `k` x `cols` elements, stored
/// column-contiguous so a dot product streams one column.
struct PackedPanelFp32B {
  int k = 0;
  int cols = 0;
  bool has_special = false;
  /// Column-contiguous, 2 lanes per element in step-0 order: [bh, bl].
  std::vector<LaneOperand> like;
  /// Same elements in step-1 crossed order: [bl, bh].
  std::vector<LaneOperand> swapped;
  std::vector<LaneOperand> cls;
  std::vector<std::uint8_t> special;
  /// Exponent prescan, [col][chunk] at kPackChunkFp32 elements per
  /// chunk (the swapped order has the same lane multiset, so one
  /// prescan covers both steps).
  std::vector<PanelChunkMeta> meta;
};

/// Packed A panel for the FP32C mode. The complex product's four scalar
/// terms are pre-routed per step pair: the real-part steps read A as
/// [arh, arl, -aih, -ail] (the stage's sign flip on the imag*imag
/// lanes, SIV-B), the imaginary-part steps as [arh, arl, aih, ail].
struct PackedPanelFp32cA {
  int rows = 0;
  int k = 0;
  bool has_special = false;
  /// Row-contiguous, 4 lanes per element, real-part order (imag lanes
  /// negated): [arh, arl, -aih, -ail].
  std::vector<LaneOperand> real_lanes;
  /// Row-contiguous, 4 lanes per element, imag-part order (plain):
  /// [arh, arl, aih, ail].
  std::vector<LaneOperand> imag_lanes;
  /// Per-component class operands, 2 per element: [cls_re, cls_im].
  std::vector<LaneOperand> cls;
  /// Per-component special flags, 2 per element: [re, im].
  std::vector<std::uint8_t> special;
  /// Exponent prescan, [row][chunk] at kPackChunkFp32c elements per
  /// chunk, over real_lanes (imag_lanes share magnitudes/exponents).
  std::vector<PanelChunkMeta> meta;
};

/// Packed B panel for the FP32C mode, column-contiguous. One array per
/// (output part, step) so every step streams contiguously:
///   real_like  = [brh, brl, bih, bil]   (real part, step 0)
///   real_swap  = [brl, brh, bil, bih]   (real part, step 1)
///   imag_like  = [bih, bil, brh, brl]   (imag part, step 0)
///   imag_swap  = [bil, bih, brl, brh]   (imag part, step 1)
struct PackedPanelFp32cB {
  int k = 0;
  int cols = 0;
  bool has_special = false;
  std::vector<LaneOperand> real_like;
  std::vector<LaneOperand> real_swap;
  std::vector<LaneOperand> imag_like;
  std::vector<LaneOperand> imag_swap;
  /// Per-component class operands, 2 per element: [cls_re, cls_im].
  std::vector<LaneOperand> cls;
  /// Per-component special flags, 2 per element: [re, im].
  std::vector<std::uint8_t> special;
  /// Exponent prescan, [col][chunk] at kPackChunkFp32c elements per
  /// chunk, over real_like (the other orders are permutations of the
  /// same lanes).
  std::vector<PanelChunkMeta> meta;
};

// Pack functions reuse the output's buffers (resize, no shrink), so a
// caller that packs per block tile in a loop allocates only on growth.

void pack_fp32_a(const float* a, int lda, int rows, int k,
                 PackedPanelFp32A& out);
void pack_fp32_b(const float* b, int ldb, int k, int cols,
                 PackedPanelFp32B& out);
void pack_fp32c_a(const std::complex<float>* a, int lda, int rows, int k,
                  PackedPanelFp32cA& out);
void pack_fp32c_b(const std::complex<float>* b, int ldb, int k, int cols,
                  PackedPanelFp32cB& out);

}  // namespace m3xu::core
