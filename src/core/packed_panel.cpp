#include "core/packed_panel.hpp"

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "core/data_assignment.hpp"
#include "fp/split.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::core {

namespace {

// Elements split into packed lanes, by panel side (no-ops when
// M3XU_TELEMETRY=OFF). staged_bytes cross-checks derive from these.
telemetry::Counter pk_fp32_a("pack.fp32.a_elements");
telemetry::Counter pk_fp32_b("pack.fp32.b_elements");
telemetry::Counter pk_fp32c_a("pack.fp32c.a_elements");
telemetry::Counter pk_fp32c_b("pack.fp32c.b_elements");

struct SplitLanes {
  LaneOperand hi;
  LaneOperand lo;
};

SplitLanes split_lanes(float v) {
  const fp::HwSplit s = fp::split_fp32_hw(v);
  return {from_hw_part(s.hi), from_hw_part(s.lo)};
}

/// Prescans one packed row/column's chunks over lanes just written:
/// min element-anchor / max lane exp2 over finite lanes + special flag
/// per chunk. The anchor of a hi lane (even lane within its [hi, lo]
/// pair) is exp2 - 12, the lsb weight of the element's combined 24-bit
/// significand; a lo lane already sits at that weight. Anchoring the
/// min this way lower-bounds the lsb of a *pair product's* combined
/// 48-bit significand by min_a + min_b even for elements whose lo part
/// is zero (see core/microkernel.cpp). `lanes`/`special` point at the
/// row's (column's) first element; `lpe`/`spe` are lanes and special
/// flags per element.
void scan_chunks(const LaneOperand* lanes, const std::uint8_t* special,
                 int lpe, int spe, int k, int chunk, PanelChunkMeta* meta) {
  for (int c0 = 0, ci = 0; c0 < k; c0 += chunk, ++ci) {
    const int ce = std::min(k, c0 + chunk);
    PanelChunkMeta m;
    int mn = INT16_MAX;
    int mx = INT16_MIN;
    for (int e = c0; e < ce; ++e) {
      for (int l = 0; l < lpe; ++l) {
        const LaneOperand& op = lanes[static_cast<std::size_t>(e) * lpe + l];
        if (op.cls != LaneOperand::Cls::kFinite) continue;
        mn = std::min(mn, op.exp2 - ((l & 1) == 0 ? 12 : 0));
        mx = std::max(mx, op.exp2);
      }
      for (int s = 0; s < spe; ++s) {
        if (special[static_cast<std::size_t>(e) * spe + s]) {
          m.flags |= PanelChunkMeta::kHasSpecial;
        }
      }
    }
    if (mn <= mx) {
      m.flags |= PanelChunkMeta::kHasFinite;
      m.min_exp = static_cast<std::int16_t>(mn);
      m.max_exp = static_cast<std::int16_t>(mx);
    }
    meta[ci] = m;
  }
}

}  // namespace

void pack_fp32_a(const float* a, int lda, int rows, int k,
                 PackedPanelFp32A& out) {
  M3XU_CHECK(rows >= 0 && k >= 0 && lda >= k);
  out.rows = rows;
  out.k = k;
  out.has_special = false;
  const std::size_t elems = static_cast<std::size_t>(rows) * k;
  pk_fp32_a.add(elems);
  out.lanes.resize(elems * 2);
  out.cls.resize(elems);
  out.special.assign(elems, 0);
  for (int r = 0; r < rows; ++r) {
    const float* row = a + static_cast<std::size_t>(r) * lda;
    for (int kk = 0; kk < k; ++kk) {
      const float v = row[kk];
      const std::size_t e = static_cast<std::size_t>(r) * k + kk;
      if (DataAssignmentStage::is_special_fp32(v)) {
        out.has_special = true;
        out.special[e] = 1;
        out.cls[e] = DataAssignmentStage::class_operand_fp32(v);
        out.lanes[2 * e] = LaneOperand{};
        out.lanes[2 * e + 1] = LaneOperand{};
        continue;
      }
      out.cls[e] = DataAssignmentStage::class_operand_fp32(v);
      const SplitLanes s = split_lanes(v);
      out.lanes[2 * e] = s.hi;
      out.lanes[2 * e + 1] = s.lo;
    }
  }
  const int chunks = panel_chunk_count(k, kPackChunkFp32);
  out.meta.resize(static_cast<std::size_t>(rows) * chunks);
  for (int r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * k;
    scan_chunks(out.lanes.data() + 2 * base, out.special.data() + base,
                /*lpe=*/2, /*spe=*/1, k, kPackChunkFp32,
                out.meta.data() + static_cast<std::size_t>(r) * chunks);
  }
}

void pack_fp32_b(const float* b, int ldb, int k, int cols,
                 PackedPanelFp32B& out) {
  M3XU_CHECK(k >= 0 && cols >= 0 && ldb >= cols);
  out.k = k;
  out.cols = cols;
  out.has_special = false;
  const std::size_t elems = static_cast<std::size_t>(cols) * k;
  pk_fp32_b.add(elems);
  out.like.resize(elems * 2);
  out.swapped.resize(elems * 2);
  out.cls.resize(elems);
  out.special.assign(elems, 0);
  for (int j = 0; j < cols; ++j) {
    for (int kk = 0; kk < k; ++kk) {
      const float v = b[static_cast<std::size_t>(kk) * ldb + j];
      const std::size_t e = static_cast<std::size_t>(j) * k + kk;
      if (DataAssignmentStage::is_special_fp32(v)) {
        out.has_special = true;
        out.special[e] = 1;
        out.cls[e] = DataAssignmentStage::class_operand_fp32(v);
        out.like[2 * e] = LaneOperand{};
        out.like[2 * e + 1] = LaneOperand{};
        out.swapped[2 * e] = LaneOperand{};
        out.swapped[2 * e + 1] = LaneOperand{};
        continue;
      }
      out.cls[e] = DataAssignmentStage::class_operand_fp32(v);
      const SplitLanes s = split_lanes(v);
      out.like[2 * e] = s.hi;
      out.like[2 * e + 1] = s.lo;
      out.swapped[2 * e] = s.lo;
      out.swapped[2 * e + 1] = s.hi;
    }
  }
  const int chunks = panel_chunk_count(k, kPackChunkFp32);
  out.meta.resize(static_cast<std::size_t>(cols) * chunks);
  for (int j = 0; j < cols; ++j) {
    const std::size_t base = static_cast<std::size_t>(j) * k;
    scan_chunks(out.like.data() + 2 * base, out.special.data() + base,
                /*lpe=*/2, /*spe=*/1, k, kPackChunkFp32,
                out.meta.data() + static_cast<std::size_t>(j) * chunks);
  }
}

void pack_fp32c_a(const std::complex<float>* a, int lda, int rows, int k,
                  PackedPanelFp32cA& out) {
  M3XU_CHECK(rows >= 0 && k >= 0 && lda >= k);
  out.rows = rows;
  out.k = k;
  out.has_special = false;
  const std::size_t elems = static_cast<std::size_t>(rows) * k;
  pk_fp32c_a.add(elems);
  out.real_lanes.assign(elems * 4, LaneOperand{});
  out.imag_lanes.assign(elems * 4, LaneOperand{});
  out.cls.resize(elems * 2);
  out.special.assign(elems * 2, 0);
  for (int r = 0; r < rows; ++r) {
    const std::complex<float>* row = a + static_cast<std::size_t>(r) * lda;
    for (int kk = 0; kk < k; ++kk) {
      const float re = row[kk].real();
      const float im = row[kk].imag();
      const std::size_t e = static_cast<std::size_t>(r) * k + kk;
      out.cls[2 * e] = DataAssignmentStage::class_operand_fp32(re);
      out.cls[2 * e + 1] = DataAssignmentStage::class_operand_fp32(im);
      if (DataAssignmentStage::is_special_fp32(re)) {
        out.has_special = true;
        out.special[2 * e] = 1;
      } else {
        const SplitLanes s = split_lanes(re);
        out.real_lanes[4 * e] = s.hi;
        out.real_lanes[4 * e + 1] = s.lo;
        out.imag_lanes[4 * e] = s.hi;
        out.imag_lanes[4 * e + 1] = s.lo;
      }
      if (DataAssignmentStage::is_special_fp32(im)) {
        out.has_special = true;
        out.special[2 * e + 1] = 1;
      } else {
        const SplitLanes s = split_lanes(im);
        out.real_lanes[4 * e + 2] = s.hi.negated();
        out.real_lanes[4 * e + 3] = s.lo.negated();
        out.imag_lanes[4 * e + 2] = s.hi;
        out.imag_lanes[4 * e + 3] = s.lo;
      }
    }
  }
  const int chunks = panel_chunk_count(k, kPackChunkFp32c);
  out.meta.resize(static_cast<std::size_t>(rows) * chunks);
  for (int r = 0; r < rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * k;
    scan_chunks(out.real_lanes.data() + 4 * base,
                out.special.data() + 2 * base, /*lpe=*/4, /*spe=*/2, k,
                kPackChunkFp32c,
                out.meta.data() + static_cast<std::size_t>(r) * chunks);
  }
}

void pack_fp32c_b(const std::complex<float>* b, int ldb, int k, int cols,
                  PackedPanelFp32cB& out) {
  M3XU_CHECK(k >= 0 && cols >= 0 && ldb >= cols);
  out.k = k;
  out.cols = cols;
  out.has_special = false;
  const std::size_t elems = static_cast<std::size_t>(cols) * k;
  pk_fp32c_b.add(elems);
  out.real_like.assign(elems * 4, LaneOperand{});
  out.real_swap.assign(elems * 4, LaneOperand{});
  out.imag_like.assign(elems * 4, LaneOperand{});
  out.imag_swap.assign(elems * 4, LaneOperand{});
  out.cls.resize(elems * 2);
  out.special.assign(elems * 2, 0);
  for (int j = 0; j < cols; ++j) {
    for (int kk = 0; kk < k; ++kk) {
      const std::complex<float> v = b[static_cast<std::size_t>(kk) * ldb + j];
      const std::size_t e = static_cast<std::size_t>(j) * k + kk;
      out.cls[2 * e] = DataAssignmentStage::class_operand_fp32(v.real());
      out.cls[2 * e + 1] = DataAssignmentStage::class_operand_fp32(v.imag());
      SplitLanes sre{};
      SplitLanes sim{};
      if (DataAssignmentStage::is_special_fp32(v.real())) {
        out.has_special = true;
        out.special[2 * e] = 1;
      } else {
        sre = split_lanes(v.real());
      }
      if (DataAssignmentStage::is_special_fp32(v.imag())) {
        out.has_special = true;
        out.special[2 * e + 1] = 1;
      } else {
        sim = split_lanes(v.imag());
      }
      // Real part reads BR then BI, imag part BI then BR; the crossed
      // step swaps hi/lo within each component pair.
      out.real_like[4 * e] = sre.hi;
      out.real_like[4 * e + 1] = sre.lo;
      out.real_like[4 * e + 2] = sim.hi;
      out.real_like[4 * e + 3] = sim.lo;
      out.real_swap[4 * e] = sre.lo;
      out.real_swap[4 * e + 1] = sre.hi;
      out.real_swap[4 * e + 2] = sim.lo;
      out.real_swap[4 * e + 3] = sim.hi;
      out.imag_like[4 * e] = sim.hi;
      out.imag_like[4 * e + 1] = sim.lo;
      out.imag_like[4 * e + 2] = sre.hi;
      out.imag_like[4 * e + 3] = sre.lo;
      out.imag_swap[4 * e] = sim.lo;
      out.imag_swap[4 * e + 1] = sim.hi;
      out.imag_swap[4 * e + 2] = sre.lo;
      out.imag_swap[4 * e + 3] = sre.hi;
    }
  }
  const int chunks = panel_chunk_count(k, kPackChunkFp32c);
  out.meta.resize(static_cast<std::size_t>(cols) * chunks);
  for (int j = 0; j < cols; ++j) {
    const std::size_t base = static_cast<std::size_t>(j) * k;
    scan_chunks(out.real_like.data() + 4 * base,
                out.special.data() + 2 * base, /*lpe=*/4, /*spe=*/2, k,
                kPackChunkFp32c,
                out.meta.data() + static_cast<std::size_t>(j) * chunks);
  }
}

}  // namespace m3xu::core
