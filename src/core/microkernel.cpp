#include "core/microkernel.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string_view>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "core/fused_round.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"
#include "fp/unpacked.hpp"
#include "telemetry/telemetry.hpp"

#ifdef M3XU_ENABLE_SIMD
#include <immintrin.h>
#endif

namespace m3xu::core {

namespace {

// Route counters (no-ops when M3XU_TELEMETRY=OFF). Increments are
// accumulated in block-local variables and flushed once per block so
// the pair loop stays free of TLS lookups. block_elements counts the
// output elements a block covered (blocks alone no longer determine
// that now that the register-block shape varies).
telemetry::Counter uk_fp32_blocks("mxu.fp32.microkernel.blocks");
telemetry::Counter uk_fp32_elems("mxu.fp32.microkernel.block_elements");
telemetry::Counter uk_fp32_pairs("mxu.fp32.microkernel.pair_chunks");
telemetry::Counter uk_fp32_falls("mxu.fp32.microkernel.pair_fallbacks");
telemetry::Counter uk_fp32c_blocks("mxu.fp32c.microkernel.blocks");
telemetry::Counter uk_fp32c_elems("mxu.fp32c.microkernel.block_elements");
telemetry::Counter uk_fp32c_pairs("mxu.fp32c.microkernel.pair_chunks");
telemetry::Counter uk_fp32c_falls("mxu.fp32c.microkernel.pair_fallbacks");

// Dispatch counters: which term-build variant actually ran, per block.
telemetry::Counter mk_var_scalar("mk.variant.scalar.blocks");
telemetry::Counter mk_var_avx2("mk.variant.avx2.blocks");
telemetry::Counter mk_var_avx512("mk.variant.avx512.blocks");

inline void count_variant_block(MkVariant v) {
  switch (v) {
    case MkVariant::kAvx512:
      mk_var_avx512.increment();
      break;
    case MkVariant::kAvx2:
      mk_var_avx2.increment();
      break;
    default:
      mk_var_scalar.increment();
      break;
  }
}

bool cpu_has_avx2() {
#ifdef M3XU_ENABLE_SIMD
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#ifdef M3XU_ENABLE_SIMD
  // The 512-bit path also uses 256-bit ops for the 8 x i32 exp/neg
  // streams, so it requires both feature bits.
  static const bool ok =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

MkVariant best_available() {
  if (cpu_has_avx512()) return MkVariant::kAvx512;
  if (cpu_has_avx2()) return MkVariant::kAvx2;
  return MkVariant::kScalar;
}

/// What kAuto resolves to: the widest available variant, capped (never
/// raised) by M3XU_MK_VARIANT. The cap only applies to kAuto so tests
/// can still force a specific variant through the config while CI pins
/// the default path to scalar.
MkVariant auto_variant() {
  static const MkVariant v = [] {
    MkVariant cap = best_available();
    if (const char* env = std::getenv("M3XU_MK_VARIANT")) {
      const std::string_view s(env);
      MkVariant req = cap;
      if (s == "scalar") {
        req = MkVariant::kScalar;
      } else if (s == "avx2") {
        req = MkVariant::kAvx2;
      } else if (s == "avx512") {
        req = MkVariant::kAvx512;
      }
      if (static_cast<int>(req) < static_cast<int>(cap)) cap = req;
    }
    return cap;
  }();
  return v;
}

}  // namespace

const char* mk_variant_name(MkVariant v) {
  switch (v) {
    case MkVariant::kAuto:
      return "auto";
    case MkVariant::kScalar:
      return "scalar";
    case MkVariant::kAvx2:
      return "avx2";
    case MkVariant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool mk_variant_available(MkVariant v) {
  switch (v) {
    case MkVariant::kAuto:
    case MkVariant::kScalar:
      return true;
    case MkVariant::kAvx2:
      return cpu_has_avx2();
    case MkVariant::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

MkVariant mk_variant_resolve(MkVariant requested) {
  if (requested == MkVariant::kAuto) return auto_variant();
  if (requested == MkVariant::kAvx512 && cpu_has_avx512()) {
    return MkVariant::kAvx512;
  }
  if (requested != MkVariant::kScalar && cpu_has_avx2()) {
    return MkVariant::kAvx2;
  }
  return MkVariant::kScalar;
}

bool microkernel_simd_active() {
  return mk_variant_resolve(MkVariant::kAuto) != MkVariant::kScalar;
}

bool mk_block_supported(int mr, int nr) {
  return (mr == 4 && nr == 4) || (mr == 6 && nr == 8) || (mr == 8 && nr == 8);
}

MkBlockShape mk_block_resolve(int mr, int nr) {
  if (mr == 0 && nr == 0) {
    // With a SIMD term build the decode amortization wins: 8x8 drops
    // the per-output decode cost to (8+8)/(8*8) = 0.25 decodes per
    // element-chunk vs 0.5 at 4x4. The scalar variant keeps the small
    // block (decode is a smaller share of its runtime, and the larger
    // live accumulator set costs it more).
    return microkernel_simd_active() ? MkBlockShape{8, 8} : MkBlockShape{4, 4};
  }
  M3XU_CHECK(mk_block_supported(mr, nr));
  return {mr, nr};
}

namespace {

// --- Element-level operand compaction ---------------------------------
//
// The two 12-bit parts of one FP32 operand share a sign and differ by
// exactly 2^12 in lsb weight (fp/split.hpp), so an element packs into
// one 64-bit word ab = hi_sig * 2^32 + lo_sig. One 64x64->128 multiply
// then yields ALL FOUR partial products of an operand pair at disjoint
// bit ranges:
//
//   ab_a * ab_b = (ah*bh) * 2^64 + (ah*bl + al*bh) * 2^32 + (al*bl)
//
// (each product is below 2^24 and the crossed sum below 2^25, so the
// fields cannot carry into each other). The like-parts step (step 0:
// ah*bh + al*bl) is the top and bottom fields recombined at 24-bit
// spacing; the crossed step (step 1: ah*bl + al*bh) is the middle
// field. Both are the exact integers the per-lane path would feed the
// ExactAccumulator, so the per-step sums - and hence the rounded
// registers - are bit-for-bit identical.

/// Operand slots per k-chunk: kPackChunkFp32 scalar elements, or
/// 2 * kPackChunkFp32c component slots (re, im) per complex element.
constexpr int kMaxSlots = 8;
static_assert(kMaxSlots == kPackChunkFp32 &&
              kMaxSlots == 2 * kPackChunkFp32c);

/// One decoded operand stream, one slot per scalar (or complex
/// component) element. Zero slots hold ab = 0 with exp = the chunk's
/// min anchor + 12, which keeps every alignment shift in-window while
/// the zero significand contributes nothing to any sum. The 64-bit
/// streams are 64-byte aligned so the AVX-512 path can use aligned
/// full-width loads/stores.
struct ElemSoA {
  alignas(64) std::uint64_t ab[kMaxSlots];  // hi_sig << 32 | lo_sig
  alignas(32) std::int32_t exp[kMaxSlots];  // hi-part exp2
  alignas(32) std::uint32_t neg[kMaxSlots];
};

/// One operand pair's partial products for both steps of a register
/// stream: slot i contributes s0[i] * 2^sh[i] to the like-parts step
/// and s1[i] * 2^(sh[i]+12) to the crossed step, both with sign
/// neg[i]. sh is the lsb weight of the pair's combined 48-bit product.
struct PairTerms {
  alignas(64) std::uint64_t s0[kMaxSlots];  // ah*bh << 24 | al*bl, < 2^48
  alignas(64) std::uint64_t s1[kMaxSlots];  // ah*bl + al*bh, < 2^25
  alignas(32) std::int32_t sh[kMaxSlots];
  alignas(32) std::uint32_t neg[kMaxSlots];
};

/// Exponent for zero/tail slots: min_exp is an element anchor (hi exp2
/// minus 12) while slots store the hi exp2, so anchor + 12 is the
/// smallest exp any finite slot in the chunk carries.
inline int fill_exp(const PanelChunkMeta& m) {
  return (m.flags & PanelChunkMeta::kHasFinite) ? m.min_exp + 12 : 0;
}

/// Decodes `ns` element slots from a packed [hi, lo] lane stream (fp32
/// panels: one slot per element; fp32c panels: the 4-lane quad is two
/// consecutive [hi, lo] pairs, so slots alternate re / im components,
/// the im slot carrying the packed order's sign - pre-negated in the
/// real-part A order). Only kFinite/kZero lane classes appear here
/// (special-free panels), and a kZero hi lane means the element is
/// zero: the lo part can't be finite without the hi hidden bit. The
/// tail up to kMaxSlots is zero-filled so the fixed-width term build
/// stays exact.
void decode_slots(const LaneOperand* src, int ns, int fill, ElemSoA& out) {
  for (int t = 0; t < ns; ++t) {
    const LaneOperand& hi = src[2 * t];
    const LaneOperand& lo = src[2 * t + 1];
    const bool fin = hi.cls == LaneOperand::Cls::kFinite;
    // The lo part shares hi's sign and sits exactly 12 below; its sig
    // is 0 whenever its lane is kZero, so reading it unconditionally
    // is exact.
    out.ab[t] = fin ? (hi.sig << 32) | lo.sig : 0;
    out.exp[t] = fin ? hi.exp2 : fill;
    out.neg[t] = fin && hi.sign ? 1u : 0u;
  }
  for (int t = ns; t < kMaxSlots; ++t) {
    out.ab[t] = 0;
    out.exp[t] = fill;
    out.neg[t] = 0;
  }
}

/// Swaps adjacent slots (re <-> im) for the imag-part pairing, where
/// a's slot t multiplies b's slot t^1.
void swap_slots(const ElemSoA& in, ElemSoA& out) {
  for (int t = 0; t < kMaxSlots; ++t) {
    out.ab[t] = in.ab[t ^ 1];
    out.exp[t] = in.exp[t ^ 1];
    out.neg[t] = in.neg[t ^ 1];
  }
}

/// Software-prefetch a packed lane run into L1. A lane is 16 bytes, so
/// one fp32 row-chunk (8 elements x 2 lanes) or fp32c row-chunk (4
/// elements x 4 lanes) is 256 bytes = 4 cache lines; the panel layout
/// makes the next chunk's offset a pure stride from PanelChunkMeta's
/// indexing (row * k + k0), no pointer chasing.
inline void prefetch_lanes(const LaneOperand* lanes, int count) {
  const char* base = reinterpret_cast<const char*>(lanes);
  const std::size_t bytes =
      static_cast<std::size_t>(count) * sizeof(LaneOperand);
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(base + off, /*rw=*/0, /*locality=*/3);
  }
}

// --- Pair term build --------------------------------------------------
//
// Always processes the full kMaxSlots slots (tail slots have zero
// significands and in-window exponents) so the SIMD paths have no
// remainder and the accumulation loops have a fixed trip count.
// `flip_odd` adds a sign flip on odd slots: the imag-part AI*BR
// entries, whose A slot carries the real-part order's -AI pre-negation
// that the imaginary part must undo.

void build_pair_scalar(const ElemSoA& a, const ElemSoA& b, bool flip_odd,
                       PairTerms& t) {
  for (int i = 0; i < kMaxSlots; ++i) {
    const unsigned __int128 p =
        static_cast<unsigned __int128>(a.ab[i]) * b.ab[i];
    t.s0[i] = (static_cast<std::uint64_t>(p >> 64) << 24) |
              (static_cast<std::uint64_t>(p) & low_mask(24));
    t.s1[i] = static_cast<std::uint64_t>(p >> 32) & low_mask(25);
    t.sh[i] = a.exp[i] + b.exp[i] - 24;
    t.neg[i] = a.neg[i] ^ b.neg[i] ^ (flip_odd ? (i & 1u) : 0u);
  }
}

#ifdef M3XU_ENABLE_SIMD
__attribute__((target("avx2"))) void build_pair_avx2(const ElemSoA& a,
                                                     const ElemSoA& b,
                                                     bool flip_odd,
                                                     PairTerms& t) {
  const __m256i m24 = _mm256_set1_epi64x(0xffffff);
  for (int i = 0; i < kMaxSlots; i += 4) {
    const __m256i av =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(a.ab + i));
    const __m256i bv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(b.ab + i));
    const __m256i ah = _mm256_srli_epi64(av, 32);
    const __m256i bh = _mm256_srli_epi64(bv, 32);
    // mul_epu32 multiplies the low 32 bits of each 64-bit lane, which
    // hold the 12-bit part sigs exactly.
    const __m256i hh = _mm256_mul_epu32(ah, bh);
    const __m256i ll = _mm256_mul_epu32(av, bv);
    const __m256i hl = _mm256_mul_epu32(ah, bv);
    const __m256i lh = _mm256_mul_epu32(av, bh);
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(t.s0 + i),
        _mm256_or_si256(_mm256_slli_epi64(hh, 24), _mm256_and_si256(ll, m24)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(t.s1 + i),
                       _mm256_add_epi64(hl, lh));
  }
  const __m256i ae = _mm256_load_si256(reinterpret_cast<const __m256i*>(a.exp));
  const __m256i be = _mm256_load_si256(reinterpret_cast<const __m256i*>(b.exp));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(t.sh),
      _mm256_sub_epi32(_mm256_add_epi32(ae, be), _mm256_set1_epi32(24)));
  const __m256i an = _mm256_load_si256(reinterpret_cast<const __m256i*>(a.neg));
  const __m256i bn = _mm256_load_si256(reinterpret_cast<const __m256i*>(b.neg));
  __m256i nn = _mm256_xor_si256(an, bn);
  if (flip_odd) {
    nn = _mm256_xor_si256(nn, _mm256_set_epi32(1, 0, 1, 0, 1, 0, 1, 0));
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(t.neg), nn);
}

/// All 8 slots' 64-bit term streams in one 512-bit pass (the AVX2 path
/// needs two): the same mul_epu32 recombination of the four 32x32
/// partial products, just at full width. The 8 x i32 exp/neg streams
/// stay on 256-bit ops - they already fit one vector there.
__attribute__((target("avx2,avx512f"))) void build_pair_avx512(
    const ElemSoA& a, const ElemSoA& b, bool flip_odd, PairTerms& t) {
  const __m512i av = _mm512_load_si512(a.ab);
  const __m512i bv = _mm512_load_si512(b.ab);
  const __m512i ah = _mm512_srli_epi64(av, 32);
  const __m512i bh = _mm512_srli_epi64(bv, 32);
  const __m512i hh = _mm512_mul_epu32(ah, bh);
  const __m512i ll = _mm512_mul_epu32(av, bv);
  const __m512i hl = _mm512_mul_epu32(ah, bv);
  const __m512i lh = _mm512_mul_epu32(av, bh);
  const __m512i m24 = _mm512_set1_epi64(0xffffff);
  _mm512_store_si512(
      t.s0,
      _mm512_or_si512(_mm512_slli_epi64(hh, 24), _mm512_and_si512(ll, m24)));
  _mm512_store_si512(t.s1, _mm512_add_epi64(hl, lh));
  const __m256i ae = _mm256_load_si256(reinterpret_cast<const __m256i*>(a.exp));
  const __m256i be = _mm256_load_si256(reinterpret_cast<const __m256i*>(b.exp));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(t.sh),
      _mm256_sub_epi32(_mm256_add_epi32(ae, be), _mm256_set1_epi32(24)));
  const __m256i an = _mm256_load_si256(reinterpret_cast<const __m256i*>(a.neg));
  const __m256i bn = _mm256_load_si256(reinterpret_cast<const __m256i*>(b.neg));
  __m256i nn = _mm256_xor_si256(an, bn);
  if (flip_odd) {
    nn = _mm256_xor_si256(nn, _mm256_set_epi32(1, 0, 1, 0, 1, 0, 1, 0));
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(t.neg), nn);
}
#endif

/// `v` must be a resolved variant (mk_variant_resolve): the SIMD cases
/// assume the CPU support check already happened, once per block, not
/// per pair.
inline void build_pair(MkVariant v, const ElemSoA& a, const ElemSoA& b,
                       bool flip_odd, PairTerms& t) {
#ifdef M3XU_ENABLE_SIMD
  if (v == MkVariant::kAvx512) {
    build_pair_avx512(a, b, flip_odd, t);
    return;
  }
  if (v == MkVariant::kAvx2) {
    build_pair_avx2(a, b, flip_odd, t);
    return;
  }
#else
  (void)v;
#endif
  build_pair_scalar(a, b, flip_odd, t);
}

// --- Fused step rounding over prescan windows -------------------------

/// RNE_prec(c + selected step fields of `t`), bit-identical to the
/// ExactAccumulator route. Mirrors mxu.cpp's fused_round with the
/// exponent window taken from the pack-time prescan instead of a
/// per-dot scan: [t_lo, t_hi] bounds every term (t_lo = the sides' min
/// anchors summed, t_hi = the max lane exponents summed + 23; a pair's
/// 48-bit product spans [sh, sh+47] with sh >= t_lo and sh+47 <= t_hi,
/// the crossed field [sh+12, sh+36]). A conservative window only
/// enlarges the shifts - round_sum128 normalizes on the actual leading
/// bit - so the rounded value is unchanged; the span check merely
/// falls back to the generic path a bit earlier than a per-dot scan
/// would. `kLike`/`kCrossed` select the fields (both together = the
/// idealized one-rounding-per-instruction sum). `c` may alias `*out`.
/// Returns false with *out untouched when the chunk needs the generic
/// ExactAccumulator route.
template <bool kLike, bool kCrossed>
bool step_round(const PairTerms& t, bool have_terms, int t_lo, int t_hi,
                const fp::Unpacked& c, int prec, fp::Unpacked* out) {
  // A NaN/Inf register short-circuits like the accumulator's sticky
  // flags (the step sum itself is finite: special-free panels).
  if (c.cls == fp::FpClass::kNaN) {
    *out = {};
    out->cls = fp::FpClass::kNaN;
    return true;
  }
  if (c.cls == fp::FpClass::kInf) {
    const bool sign = c.sign;
    *out = {};
    out->cls = fp::FpClass::kInf;
    out->sign = sign;
    return true;
  }
  int lo = 0;
  int hi = 0;
  bool any = false;
  if (have_terms) {
    lo = t_lo;
    hi = t_hi;
    any = true;
  }
  std::uint64_t rsig = 0;
  int rexp = 0;
  bool rneg = false;
  if (c.cls == fp::FpClass::kNormal) {
    // The register holds a prec-bit value (rounded to prec every step;
    // the chunk-boundary C has <= 24 <= prec significant bits).
    const int drop = fp::Unpacked::kSigTop - (prec - 1);
    if ((c.sig & low_mask(drop)) != 0) return false;
    rsig = c.sig >> drop;
    rexp = c.exp - (prec - 1);
    rneg = c.sign;
    if (!any) {
      lo = rexp;
      hi = c.exp;
      any = true;
    } else {
      lo = std::min(lo, rexp);
      hi = std::max(hi, c.exp);
    }
  }
  if (!any) {
    *out = {};  // empty sum: exact +0, as ExactAccumulator rounds it
    return true;
  }
  // Addend magnitudes: a like field is below 2^48 shifted by at most
  // hi-lo-47, a crossed field below 2^25 shifted by at most hi-lo-35,
  // the register below 2^(hi-lo+1); with <= 17 addends the sum stays
  // under 2^(hi-lo+6) <= 2^124, inside the signed 128-bit window.
  if (hi - lo > 118) return false;
  unsigned __int128 sum = 0;
  if (have_terms) {
    // Branchless sign application ((v ^ m) - m with m = 0 or ~0): the
    // signs are data-dependent, so a select beats a mispredicted
    // branch in this 8-wide fixed-trip loop.
    if (kLike) {
      for (int i = 0; i < kMaxSlots; ++i) {
        const unsigned __int128 v = static_cast<unsigned __int128>(t.s0[i])
                                    << (t.sh[i] - lo);
        const unsigned __int128 m = -static_cast<unsigned __int128>(t.neg[i]);
        sum += (v ^ m) - m;
      }
    }
    if (kCrossed) {
      for (int i = 0; i < kMaxSlots; ++i) {
        const unsigned __int128 v = static_cast<unsigned __int128>(t.s1[i])
                                    << (t.sh[i] + 12 - lo);
        const unsigned __int128 m = -static_cast<unsigned __int128>(t.neg[i]);
        sum += (v ^ m) - m;
      }
    }
  }
  if (rsig != 0) {
    const unsigned __int128 v = static_cast<unsigned __int128>(rsig)
                                << (rexp - lo);
    sum = rneg ? sum - v : sum + v;
  }
  detail::round_sum128(sum, lo, prec, out);
  return true;
}

/// Runs one register stream's chunk - the like-parts step then the
/// crossed step over one prebuilt PairTerms, or both in one window in
/// idealized mode - replicating run_steps' register semantics, with
/// the chunk-boundary pack to FP32 on success. Returns false with
/// *acc untouched when the chunk must take the generic path.
bool pair_chunk(const PairTerms& terms, bool have_terms, int t_lo, int t_hi,
                const MicrokernelParams& p, float* acc) {
  fp::Unpacked reg = fp::unpack(*acc);
  if (p.per_step_rounding) {
    if (!step_round<true, false>(terms, have_terms, t_lo, t_hi, reg,
                                 p.accum_prec, &reg) ||
        !step_round<false, true>(terms, have_terms, t_lo, t_hi, reg,
                                 p.accum_prec, &reg)) {
      return false;
    }
  } else if (!step_round<true, true>(terms, have_terms, t_lo, t_hi, reg,
                                     p.accum_prec, &reg)) {
    return false;
  }
  *acc = fp::pack_to_float(reg);
  return true;
}

// --- Generic fallback -------------------------------------------------
//
// Chunks the prescan can't prove safe re-run on the same panel slices
// through the exact replica of run_steps with a null injector (the
// engine keeps injector-attached runs off the microkernel entirely).

void run_generic2(std::span<const LaneOperand> a,
                  std::span<const LaneOperand> b_like,
                  std::span<const LaneOperand> b_swap, const DpUnit& unit,
                  const MicrokernelParams& p, float* acc) {
  const fp::Unpacked c = fp::unpack(*acc);
  if (p.per_step_rounding) {
    fp::ExtFloat reg = fp::ExtFloat::from_unpacked(c, p.accum_prec);
    for (int st = 0; st < 2; ++st) {
      fp::ExactAccumulator sum;
      unit.accumulate_dot(a, st == 0 ? b_like : b_swap, sum);
      reg = reg.plus_exact(sum);
    }
    *acc = reg.to_float();
    return;
  }
  fp::ExactAccumulator sum;
  unit.accumulate_dot(a, b_like, sum);
  unit.accumulate_dot(a, b_swap, sum);
  sum.add_unpacked(c);
  *acc = fp::pack_to_float(sum.round_to_precision(p.accum_prec));
}

void generic_fp32_chunk(const PackedPanelFp32A& a, int row,
                        const PackedPanelFp32B& b, int col, int k0, int kc,
                        const DpUnit& unit, const MicrokernelParams& p,
                        float* acc) {
  const std::size_t aoff = (static_cast<std::size_t>(row) * a.k + k0) * 2;
  const std::size_t boff = (static_cast<std::size_t>(col) * b.k + k0) * 2;
  const std::size_t len = static_cast<std::size_t>(2) * kc;
  run_generic2({a.lanes.data() + aoff, len}, {b.like.data() + boff, len},
               {b.swapped.data() + boff, len}, unit, p, acc);
}

void generic_fp32c_chunk(const PackedPanelFp32cA& a, int row,
                         const PackedPanelFp32cB& b, int col, int k0, int kc,
                         const DpUnit& unit, const MicrokernelParams& p,
                         float* re, float* im) {
  const std::size_t aoff = (static_cast<std::size_t>(row) * a.k + k0) * 4;
  const std::size_t boff = (static_cast<std::size_t>(col) * b.k + k0) * 4;
  const std::size_t len = static_cast<std::size_t>(4) * kc;
  run_generic2({a.real_lanes.data() + aoff, len},
               {b.real_like.data() + boff, len},
               {b.real_swap.data() + boff, len}, unit, p, re);
  run_generic2({a.imag_lanes.data() + aoff, len},
               {b.imag_like.data() + boff, len},
               {b.imag_swap.data() + boff, len}, unit, p, im);
}

inline bool finite_chunk(const PanelChunkMeta& m) {
  return (m.flags & PanelChunkMeta::kHasFinite) != 0;
}

// --- Register-blocked bodies ------------------------------------------
//
// Templated on the MR x NR output-block shape so each instantiation
// keeps its accumulator array and decode state at fixed size (the
// compiler fully unrolls the short row/col loops). `v` is the resolved
// term-build variant, checked once per block.

template <int MR, int NR>
void fp32_block(const PackedPanelFp32A& a, int row0, const PackedPanelFp32B& b,
                int col0, const DpUnit& unit, const MicrokernelParams& p,
                MkVariant v, float* c, int ldc) {
  M3XU_CHECK(a.k == b.k);
  M3XU_CHECK(!a.has_special && !b.has_special);
  M3XU_CHECK(row0 >= 0 && row0 + MR <= a.rows);
  M3XU_CHECK(col0 >= 0 && col0 + NR <= b.cols);
  const int k = a.k;
  const int nchunks = panel_chunk_count(k, kPackChunkFp32);
  float acc[MR][NR];
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) acc[i][j] = c[i * ldc + j];
  }
  ElemSoA arow[MR];
  ElemSoA bcol[NR];
  PairTerms terms;
  std::uint64_t fallbacks = 0;
  for (int ch = 0; ch < nchunks; ++ch) {
    const int k0 = ch * kPackChunkFp32;
    const int kc = std::min(kPackChunkFp32, k - k0);
    if (p.prefetch && ch + 1 < nchunks) {
      // Pull the next chunk's hi/lo lane runs toward L1 while this
      // chunk's decode + MR*NR pair computes hide the latency.
      const int nk0 = k0 + kPackChunkFp32;
      const int nkc = std::min(kPackChunkFp32, k - nk0);
      for (int i = 0; i < MR; ++i) {
        prefetch_lanes(
            a.lanes.data() + (static_cast<std::size_t>(row0 + i) * k + nk0) * 2,
            2 * nkc);
      }
      for (int j = 0; j < NR; ++j) {
        prefetch_lanes(
            b.like.data() + (static_cast<std::size_t>(col0 + j) * k + nk0) * 2,
            2 * nkc);
      }
    }
    const PanelChunkMeta* am[MR];
    const PanelChunkMeta* bm[NR];
    for (int i = 0; i < MR; ++i) {
      am[i] = &a.meta[static_cast<std::size_t>(row0 + i) * nchunks + ch];
      decode_slots(
          a.lanes.data() + (static_cast<std::size_t>(row0 + i) * k + k0) * 2,
          kc, fill_exp(*am[i]), arow[i]);
    }
    for (int j = 0; j < NR; ++j) {
      bm[j] = &b.meta[static_cast<std::size_t>(col0 + j) * nchunks + ch];
      decode_slots(
          b.like.data() + (static_cast<std::size_t>(col0 + j) * k + k0) * 2,
          kc, fill_exp(*bm[j]), bcol[j]);
    }
    for (int i = 0; i < MR; ++i) {
      for (int j = 0; j < NR; ++j) {
        const bool have = finite_chunk(*am[i]) && finite_chunk(*bm[j]);
        int t_lo = 0;
        int t_hi = 0;
        if (have) {
          t_lo = am[i]->min_exp + bm[j]->min_exp;
          t_hi = am[i]->max_exp + bm[j]->max_exp + 23;
          build_pair(v, arow[i], bcol[j], /*flip_odd=*/false, terms);
        }
        if (!pair_chunk(terms, have, t_lo, t_hi, p, &acc[i][j])) {
          ++fallbacks;
          generic_fp32_chunk(a, row0 + i, b, col0 + j, k0, kc, unit, p,
                             &acc[i][j]);
        }
      }
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) c[i * ldc + j] = acc[i][j];
  }
  uk_fp32_blocks.increment();
  uk_fp32_elems.add(static_cast<std::uint64_t>(MR) * NR);
  uk_fp32_pairs.add(static_cast<std::uint64_t>(nchunks) * MR * NR);
  uk_fp32_falls.add(fallbacks);
}

template <int MR, int NR>
void fp32c_block(const PackedPanelFp32cA& a, int row0,
                 const PackedPanelFp32cB& b, int col0, const DpUnit& unit,
                 const MicrokernelParams& p, MkVariant v,
                 std::complex<float>* c, int ldc) {
  M3XU_CHECK(a.k == b.k);
  M3XU_CHECK(!a.has_special && !b.has_special);
  M3XU_CHECK(row0 >= 0 && row0 + MR <= a.rows);
  M3XU_CHECK(col0 >= 0 && col0 + NR <= b.cols);
  const int k = a.k;
  const int nchunks = panel_chunk_count(k, kPackChunkFp32c);
  float acc_re[MR][NR];
  float acc_im[MR][NR];
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) {
      acc_re[i][j] = c[i * ldc + j].real();
      acc_im[i][j] = c[i * ldc + j].imag();
    }
  }
  // A rows decode from the real-part order, where the im slots carry
  // the stage's -AI pre-negation: exactly the sign the real part's
  // -AI*BI term needs, and flip_odd undoes it for the imag part's
  // AI*BR term. B columns decode once; a slot-swapped copy provides
  // the imag part's crossed component pairing (AR*BI, AI*BR).
  ElemSoA arow[MR];
  ElemSoA bcol[NR];
  ElemSoA bswp[NR];
  PairTerms terms_re;
  PairTerms terms_im;
  std::uint64_t fallbacks = 0;
  for (int ch = 0; ch < nchunks; ++ch) {
    const int k0 = ch * kPackChunkFp32c;
    const int kc = std::min(kPackChunkFp32c, k - k0);
    if (p.prefetch && ch + 1 < nchunks) {
      const int nk0 = k0 + kPackChunkFp32c;
      const int nkc = std::min(kPackChunkFp32c, k - nk0);
      for (int i = 0; i < MR; ++i) {
        prefetch_lanes(a.real_lanes.data() +
                           (static_cast<std::size_t>(row0 + i) * k + nk0) * 4,
                       4 * nkc);
      }
      for (int j = 0; j < NR; ++j) {
        prefetch_lanes(b.real_like.data() +
                           (static_cast<std::size_t>(col0 + j) * k + nk0) * 4,
                       4 * nkc);
      }
    }
    const PanelChunkMeta* am[MR];
    const PanelChunkMeta* bm[NR];
    for (int i = 0; i < MR; ++i) {
      am[i] = &a.meta[static_cast<std::size_t>(row0 + i) * nchunks + ch];
      decode_slots(a.real_lanes.data() +
                       (static_cast<std::size_t>(row0 + i) * k + k0) * 4,
                   2 * kc, fill_exp(*am[i]), arow[i]);
    }
    for (int j = 0; j < NR; ++j) {
      bm[j] = &b.meta[static_cast<std::size_t>(col0 + j) * nchunks + ch];
      decode_slots(b.real_like.data() +
                       (static_cast<std::size_t>(col0 + j) * k + k0) * 4,
                   2 * kc, fill_exp(*bm[j]), bcol[j]);
      swap_slots(bcol[j], bswp[j]);
    }
    for (int i = 0; i < MR; ++i) {
      for (int j = 0; j < NR; ++j) {
        const bool have = finite_chunk(*am[i]) && finite_chunk(*bm[j]);
        int t_lo = 0;
        int t_hi = 0;
        if (have) {
          t_lo = am[i]->min_exp + bm[j]->min_exp;
          t_hi = am[i]->max_exp + bm[j]->max_exp + 23;
          build_pair(v, arow[i], bcol[j], /*flip_odd=*/false, terms_re);
          build_pair(v, arow[i], bswp[j], /*flip_odd=*/true, terms_im);
        }
        // Both parts must stream for the chunk to stay fused; on any
        // failure the whole chunk (both registers) re-runs generically
        // from the original accumulators.
        float re = acc_re[i][j];
        float im = acc_im[i][j];
        if (pair_chunk(terms_re, have, t_lo, t_hi, p, &re) &&
            pair_chunk(terms_im, have, t_lo, t_hi, p, &im)) {
          acc_re[i][j] = re;
          acc_im[i][j] = im;
        } else {
          ++fallbacks;
          generic_fp32c_chunk(a, row0 + i, b, col0 + j, k0, kc, unit, p,
                              &acc_re[i][j], &acc_im[i][j]);
        }
      }
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) {
      c[i * ldc + j] = {acc_re[i][j], acc_im[i][j]};
    }
  }
  uk_fp32c_blocks.increment();
  uk_fp32c_elems.add(static_cast<std::uint64_t>(MR) * NR);
  uk_fp32c_pairs.add(static_cast<std::uint64_t>(nchunks) * MR * NR);
  uk_fp32c_falls.add(fallbacks);
}

}  // namespace

void microkernel_fp32_block(const PackedPanelFp32A& a, int row0,
                            const PackedPanelFp32B& b, int col0,
                            const DpUnit& unit, const MicrokernelParams& p,
                            float* c, int ldc) {
  const MkVariant v = mk_variant_resolve(p.variant);
  count_variant_block(v);
  if (p.mr == 4 && p.nr == 4) {
    fp32_block<4, 4>(a, row0, b, col0, unit, p, v, c, ldc);
  } else if (p.mr == 6 && p.nr == 8) {
    fp32_block<6, 8>(a, row0, b, col0, unit, p, v, c, ldc);
  } else if (p.mr == 8 && p.nr == 8) {
    fp32_block<8, 8>(a, row0, b, col0, unit, p, v, c, ldc);
  } else {
    M3XU_CHECK(mk_block_supported(p.mr, p.nr));
  }
}

void microkernel_fp32c_block(const PackedPanelFp32cA& a, int row0,
                             const PackedPanelFp32cB& b, int col0,
                             const DpUnit& unit, const MicrokernelParams& p,
                             std::complex<float>* c, int ldc) {
  const MkVariant v = mk_variant_resolve(p.variant);
  count_variant_block(v);
  if (p.mr == 4 && p.nr == 4) {
    fp32c_block<4, 4>(a, row0, b, col0, unit, p, v, c, ldc);
  } else if (p.mr == 6 && p.nr == 8) {
    fp32c_block<6, 8>(a, row0, b, col0, unit, p, v, c, ldc);
  } else if (p.mr == 8 && p.nr == 8) {
    fp32c_block<8, 8>(a, row0, b, col0, unit, p, v, c, ldc);
  } else {
    M3XU_CHECK(mk_block_supported(p.mr, p.nr));
  }
}

}  // namespace m3xu::core
