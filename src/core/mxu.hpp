// M3XU: the multi-mode matrix unit (the paper's contribution).
//
// One engine supports, on the *same* 12-bit multipliers:
//   - the baseline low-precision modes (FP16 / BF16 / TF32, one step),
//   - true IEEE FP32 MMA in two steps (SIV-A),
//   - FP32 complex MMA in four steps (SIV-B),
//   - FP64 MMA in four steps on 27-bit sub-multipliers (SIV-C).
//
// Arithmetic contract (see DESIGN.md S5): within one MMA instruction a
// dot-product unit's step sums its aligned partial products exactly
// (idealized adder tree); accumulation registers are ExtFloat with a
// configurable significand width (48 bits for M3XU, 24 for the stock
// Tensor-Core FP32 accumulate). Every partial product is exact, so the
// only error sources are the architecturally visible register
// roundings - the property behind the paper's "no additional error
// compared to conventional FP32 ALUs" claim, which the test suite
// verifies.
//
// GEMM-level entry points chunk K by the mode's instruction shape and
// round into the FP32 (or FP64) accumulator fragment per instruction,
// exactly like a CUTLASS mainloop issuing one mma.sync per K-chunk.
#pragma once

#include <complex>
#include <span>

#include "core/data_assignment.hpp"
#include "core/dp_unit.hpp"
#include "core/microkernel.hpp"
#include "core/packed_panel.hpp"
#include "fp/ext_float.hpp"
#include "fp/types.hpp"

namespace m3xu::core {

/// Non-owning view of one step's operand-buffer lane streams. The
/// per-dot path views the vectors a schedule_* call just built; the
/// packed path views slices of a pre-split panel - both feed the same
/// step/rounding pipeline, so they are bit-identical by construction.
struct StepView {
  std::span<const LaneOperand> a;
  std::span<const LaneOperand> b;
};

enum class MxuMode {
  kFp16,
  kBf16,
  kTf32,
  kFp32,
  kFp32Complex,
  kFp64,
  kFp64Complex,
};

/// Instruction-level MMA shape (mma.sync granularity on Ampere).
struct MmaShape {
  int m;
  int n;
  int k;
};

/// Shape of one MMA instruction in each mode. FP32 halves the K of the
/// FP16 instruction (Observation 1); FP32C/FP64 quarter it.
MmaShape shape_for(MxuMode mode);

/// Dot-product-unit steps one instruction takes (1 / 2 / 4).
int steps_for(MxuMode mode);

/// Human-readable mode name for harness output.
const char* mode_name(MxuMode mode);

struct M3xuConfig {
  /// true  = round into the accumulation register after every step
  ///         (faithful to the 48-bit register datapath);
  /// false = idealized single rounding per MMA instruction (ablation).
  bool per_step_rounding = true;
  /// Accumulation-register significand width for FP32/FP32C modes.
  int accum_prec = fp::ExtFloat::kM3xuAccumPrec;
  /// Accumulation-register width for the FP64 mode ("FP64 registers").
  int fp64_accum_prec = 53;
  /// Route special-free packed GEMMs through the register-blocked
  /// microkernel (core/microkernel.hpp). Bit-identical either way;
  /// disabling isolates the per-element packed path (benchmarks) or
  /// works around a platform issue. Injector-attached engines ignore
  /// this and stay on the per-dot path regardless.
  bool enable_microkernel = true;
  /// Force the packed entry points down the generic per-dot
  /// reassembly path: no fused streaming kernel, no microkernel, even
  /// for special-free panels. Bit-identical by construction (same step
  /// schedule and rounding points); the tiled driver's recovery ladder
  /// uses it as the demotion rung below the packed fused route. See
  /// docs/RESILIENCE.md.
  bool force_generic = false;
  /// Microkernel term-build variant (core/microkernel.hpp). kAuto
  /// resolves to the widest SIMD lane the CPU supports; every variant
  /// is bit-identical, so this is a throughput / reproduction knob.
  MkVariant mk_variant = MkVariant::kAuto;
  /// Microkernel register-block shape. (0, 0) - the default - picks
  /// the per-CPU shape (mk_block_resolve); anything else must be a
  /// supported pair (4x4 / 6x8 / 8x8), checked at engine construction.
  int mk_mr = 0;
  int mk_nr = 0;
  /// Software-prefetch the next packed K-chunk inside the microkernel.
  bool mk_prefetch = true;
  /// Optional transient-fault injector (non-owning; must outlive the
  /// engine). Null - the default - keeps every datapath fault-free and
  /// the hot path unchanged. When set, the engine threads it through
  /// the data-assignment stage (operand sites), the dot-product units
  /// (partial-product site) and the accumulation-register updates
  /// (accumulator site). See docs/FAULT_INJECTION.md.
  const fault::FaultInjector* injector = nullptr;
};

class M3xuEngine {
 public:
  explicit M3xuEngine(const M3xuConfig& config = {});

  const M3xuConfig& config() const { return config_; }

  // --- Instruction-level dot products (one output element) -----------
  // k must not exceed shape_for(mode).k; tests drive these directly.

  /// FP32 mode: d = round_fp32(sum_k a[k]*b[k] + c) with exact products.
  float mma_dot_fp32(std::span<const float> a, std::span<const float> b,
                     float c) const;

  /// Passthrough modes (FP16/BF16/TF32 inputs as floats, FP32 accum).
  float mma_dot_passthrough(std::span<const float> a,
                            std::span<const float> b, float c,
                            const fp::FloatFormat& fmt) const;

  /// FP32C mode.
  std::complex<float> mma_dot_fp32c(std::span<const std::complex<float>> a,
                                    std::span<const std::complex<float>> b,
                                    std::complex<float> c) const;

  /// FP64 mode.
  double mma_dot_fp64(std::span<const double> a, std::span<const double> b,
                      double c) const;

  /// FP64 complex mode (8 steps).
  std::complex<double> mma_dot_fp64c(std::span<const std::complex<double>> a,
                                     std::span<const std::complex<double>> b,
                                     std::complex<double> c) const;

  // --- GEMM-level entry points: C <- A*B + C --------------------------
  // Row-major with leading dimensions; K is chunked by the mode's
  // instruction shape (each chunk is one MMA's rounding boundary).

  void gemm_fp32(int m, int n, int k, const float* a, int lda,
                 const float* b, int ldb, float* c, int ldc) const;
  void gemm_fp16(int m, int n, int k, const fp::Half* a, int lda,
                 const fp::Half* b, int ldb, float* c, int ldc) const;
  void gemm_bf16(int m, int n, int k, const fp::Bf16* a, int lda,
                 const fp::Bf16* b, int ldb, float* c, int ldc) const;
  void gemm_tf32(int m, int n, int k, const float* a, int lda,
                 const float* b, int ldb, float* c, int ldc) const;
  void gemm_fp32c(int m, int n, int k, const std::complex<float>* a, int lda,
                  const std::complex<float>* b, int ldb,
                  std::complex<float>* c, int ldc) const;
  void gemm_fp64(int m, int n, int k, const double* a, int lda,
                 const double* b, int ldb, double* c, int ldc) const;
  void gemm_fp64c(int m, int n, int k, const std::complex<double>* a,
                  int lda, const std::complex<double>* b, int ldb,
                  std::complex<double>* c, int ldc) const;

  // --- Packed-operand fast path (core/packed_panel.hpp) ---------------
  // Bit-identical to gemm_fp32 / gemm_fp32c - same step schedule, same
  // rounding points, same fault-opportunity order - but the hi/lo split
  // runs once per operand panel instead of once per output dot, and the
  // inner loop streams lanes with no per-call allocation or gather.

  void gemm_fp32_packed(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc) const;
  void gemm_fp32c_packed(int m, int n, int k, const std::complex<float>* a,
                         int lda, const std::complex<float>* b, int ldb,
                         std::complex<float>* c, int ldc) const;

  /// GEMM over panels packed by the caller (the tiled driver packs at
  /// stage time). Computes the [row0, row0+m) x [col0, col0+n) block of
  /// A*B over the panels' full shared K, accumulating into C.
  void gemm_fp32_prepacked(const PackedPanelFp32A& a, int row0,
                           const PackedPanelFp32B& b, int col0, int m, int n,
                           float* c, int ldc) const;
  void gemm_fp32c_prepacked(const PackedPanelFp32cA& a, int row0,
                            const PackedPanelFp32cB& b, int col0, int m,
                            int n, std::complex<float>* c, int ldc) const;

 private:
  template <int kSteps>
  fp::Unpacked run_steps(const std::array<StepView, kSteps>& steps,
                         const fp::Unpacked& c, const DpUnit& unit,
                         int prec) const;

  M3xuConfig config_;
  DpUnit dp12_;  // 12-bit multipliers (FP16..FP32C modes)
  DpUnit dp27_;  // 27-bit sub-multipliers (FP64 mode)
};

}  // namespace m3xu::core
