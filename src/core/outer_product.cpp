#include "core/outer_product.hpp"

#include <vector>

#include "common/check.hpp"
#include "core/data_assignment.hpp"
#include "core/dp_unit.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"

namespace m3xu::core {

OuterProductEngine::OuterProductEngine(const M3xuConfig& config)
    : config_(config) {
  M3XU_CHECK(config_.accum_prec >= 24 && config_.accum_prec <= 63);
}

void OuterProductEngine::mma_fp32(int m, int n, int k, const float* a,
                                  int lda, const float* b, int ldb,
                                  const float* c, int ldc, float* d,
                                  int ldd) const {
  M3XU_CHECK(k >= 0 && k <= shape_for(MxuMode::kFp32).k);
  const DpUnit unit(DpUnitConfig{12});
  if (config_.per_step_rounding) {
    // Natural outer-product register behavior: one rounding per rank-1
    // update (each K element's two split steps applied exactly, then
    // rounded into the 48-bit register).
    std::vector<fp::ExtFloat> regs(
        static_cast<std::size_t>(m) * n, fp::ExtFloat(config_.accum_prec));
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        regs[static_cast<std::size_t>(i) * n + j] =
            fp::ExtFloat::from_float(c[i * ldc + j], config_.accum_prec);
      }
    }
    for (int kk = 0; kk < k; ++kk) {
      for (int i = 0; i < m; ++i) {
        const float av = a[i * lda + kk];
        for (int j = 0; j < n; ++j) {
          const float bv = b[kk * ldb + j];
          const auto steps = DataAssignmentStage::schedule_fp32(
              std::span<const float>(&av, 1), std::span<const float>(&bv, 1));
          fp::ExactAccumulator sum;
          unit.accumulate_dot(steps[0].a, steps[0].b, sum);
          unit.accumulate_dot(steps[1].a, steps[1].b, sum);
          auto& reg = regs[static_cast<std::size_t>(i) * n + j];
          reg = reg.plus_exact(sum);
        }
      }
    }
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        d[i * ldd + j] = regs[static_cast<std::size_t>(i) * n + j].to_float();
      }
    }
    return;
  }
  // Per-instruction rounding: exact accumulation over all rank-1
  // updates - commutative, hence bit-identical to the dot-product
  // dataflow.
  std::vector<fp::ExactAccumulator> accs(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      accs[static_cast<std::size_t>(i) * n + j].add_unpacked(
          fp::unpack(c[i * ldc + j]));
    }
  }
  for (int kk = 0; kk < k; ++kk) {
    for (int i = 0; i < m; ++i) {
      const float av = a[i * lda + kk];
      for (int j = 0; j < n; ++j) {
        const float bv = b[kk * ldb + j];
        const auto steps = DataAssignmentStage::schedule_fp32(
            std::span<const float>(&av, 1), std::span<const float>(&bv, 1));
        auto& acc = accs[static_cast<std::size_t>(i) * n + j];
        unit.accumulate_dot(steps[0].a, steps[0].b, acc);
        unit.accumulate_dot(steps[1].a, steps[1].b, acc);
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      d[i * ldd + j] = fp::pack_to_float(
          accs[static_cast<std::size_t>(i) * n + j].round_to_precision(
              config_.accum_prec));
    }
  }
}

}  // namespace m3xu::core
