#include "core/mxu.hpp"

#include <array>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "core/fused_round.hpp"
#include "core/microkernel.hpp"
#include "fault/injector.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace m3xu::core {

namespace {

// Route counters for the FP32/FP32c datapaths (no-ops when
// M3XU_TELEMETRY=OFF). "chunks" are kc_max-element dot fragments:
// fused = streaming fast path, fallback = streaming chunk the fused
// kernel rejected (wide exponent span / term overflow), generic =
// per-dot reassembly because the panel holds specials or an injector
// is attached. "elements" attribute whole C outputs to the route that
// produced them. Counts are accumulated in function-local variables
// and flushed once per call.
telemetry::Counter rt_fp32_fused("mxu.fp32.chunks.fused");
telemetry::Counter rt_fp32_fallback("mxu.fp32.chunks.fallback");
telemetry::Counter rt_fp32_generic("mxu.fp32.chunks.generic");
telemetry::Counter rt_fp32_edge("mxu.fp32.elements.edge");
telemetry::Counter rt_fp32_special("mxu.fp32.elements.bypass_special");
telemetry::Counter rt_fp32_inject("mxu.fp32.elements.bypass_injector");
telemetry::Counter rt_fp32_perdot("mxu.fp32.elements.perdot");
telemetry::Counter rt_fp32c_fused("mxu.fp32c.chunks.fused");
telemetry::Counter rt_fp32c_fallback("mxu.fp32c.chunks.fallback");
telemetry::Counter rt_fp32c_generic("mxu.fp32c.chunks.generic");
telemetry::Counter rt_fp32c_edge("mxu.fp32c.elements.edge");
telemetry::Counter rt_fp32c_special("mxu.fp32c.elements.bypass_special");
telemetry::Counter rt_fp32c_inject("mxu.fp32c.elements.bypass_injector");
telemetry::Counter rt_fp32c_perdot("mxu.fp32c.elements.perdot");

inline std::uint64_t area(int rows, int cols) {
  return static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
}

// Attributes non-fast-path route decisions to the active request
// trace, if one is installed on this thread (the tiled driver installs
// it around each tile). event_once keeps the per-request log bounded
// no matter how many panel calls the request issues.
inline void trace_route_decisions(const char* fallback_name,
                                  const char* generic_name,
                                  std::uint64_t n_fallback,
                                  std::uint64_t n_generic) {
  if (n_fallback == 0 && n_generic == 0) return;
  telemetry::TraceContext* const t = telemetry::current_trace_context();
  if (t == nullptr) return;
  if (n_fallback != 0) t->event_once(fallback_name);
  if (n_generic != 0) t->event_once(generic_name);
}

}  // namespace

MmaShape shape_for(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
    case MxuMode::kBf16:
      return {16, 8, 16};
    case MxuMode::kTf32:
      return {16, 8, 8};
    case MxuMode::kFp32:
      return {16, 8, 8};  // half the FP16 K (Observation 1)
    case MxuMode::kFp32Complex:
      return {16, 8, 4};  // complex elements; quarter throughput
    case MxuMode::kFp64:
      return {16, 8, 4};
    case MxuMode::kFp64Complex:
      return {16, 8, 2};  // complex elements; 1/32 of the FP16 rate
  }
  return {0, 0, 0};
}

int steps_for(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
    case MxuMode::kBf16:
    case MxuMode::kTf32:
      return 1;
    case MxuMode::kFp32:
      return 2;
    case MxuMode::kFp32Complex:
    case MxuMode::kFp64:
      return 4;
    case MxuMode::kFp64Complex:
      return 8;
  }
  return 0;
}

const char* mode_name(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
      return "fp16";
    case MxuMode::kBf16:
      return "bf16";
    case MxuMode::kTf32:
      return "tf32";
    case MxuMode::kFp32:
      return "fp32";
    case MxuMode::kFp32Complex:
      return "fp32c";
    case MxuMode::kFp64:
      return "fp64";
    case MxuMode::kFp64Complex:
      return "fp64c";
  }
  return "?";
}

M3xuEngine::M3xuEngine(const M3xuConfig& config)
    : config_(config),
      dp12_(DpUnitConfig{/*mult_bits=*/12, /*enable_fast_path=*/true,
                         config.injector}),
      dp27_(DpUnitConfig{DataAssignmentStage::kFp64PartBits,
                         /*enable_fast_path=*/true, config.injector}) {
  M3XU_CHECK(config_.accum_prec >= 24 && config_.accum_prec <= 63);
  M3XU_CHECK(config_.fp64_accum_prec >= 53 && config_.fp64_accum_prec <= 63);
  M3XU_CHECK((config_.mk_mr == 0 && config_.mk_nr == 0) ||
             mk_block_supported(config_.mk_mr, config_.mk_nr));
}

namespace {

/// Views one scheduled step's owning buffers (per-dot path).
inline StepView view_of(const StepOperands& step) { return {step.a, step.b}; }

template <std::size_t kSteps>
std::array<StepView, kSteps> views_of(
    const std::array<StepOperands, kSteps>& steps) {
  std::array<StepView, kSteps> v;
  for (std::size_t i = 0; i < kSteps; ++i) v[i] = view_of(steps[i]);
  return v;
}

}  // namespace

template <int kSteps>
fp::Unpacked M3xuEngine::run_steps(const std::array<StepView, kSteps>& steps,
                                   const fp::Unpacked& c, const DpUnit& unit,
                                   int prec) const {
  if (config_.per_step_rounding) {
    // The accumulation register is initialized with C (exact: C is
    // FP32/FP64, narrower than the register) and rounded once per step.
    fp::ExtFloat reg = fp::ExtFloat::from_unpacked(c, prec);
    for (const StepView& step : steps) {
      fp::ExactAccumulator sum;
      unit.accumulate_dot(step.a, step.b, sum);
      reg = reg.plus_exact(sum);
      if (config_.injector != nullptr) {
        // Each step's register write-back is one flip opportunity on
        // the architectural `prec`-bit significand.
        reg = fp::ExtFloat::from_unpacked(
            config_.injector->corrupt_unpacked(fault::Site::kAccumulator,
                                               reg.value(), prec),
            prec);
      }
    }
    return reg.value();
  }
  // Idealized: one rounding per instruction.
  fp::ExactAccumulator sum;
  for (const StepView& step : steps) {
    unit.accumulate_dot(step.a, step.b, sum);
  }
  sum.add_unpacked(c);
  fp::Unpacked r = sum.round_to_precision(prec);
  if (config_.injector != nullptr) {
    r = config_.injector->corrupt_unpacked(fault::Site::kAccumulator, r,
                                           prec);
  }
  return r;
}

float M3xuEngine::mma_dot_fp32(std::span<const float> a,
                               std::span<const float> b, float c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp32).k);
  const auto steps = DataAssignmentStage::schedule_fp32(a, b, config_.injector);
  const fp::Unpacked r =
      run_steps<2>(views_of(steps), fp::unpack(c), dp12_, config_.accum_prec);
  return fp::pack_to_float(r);
}

float M3xuEngine::mma_dot_passthrough(std::span<const float> a,
                                      std::span<const float> b, float c,
                                      const fp::FloatFormat& fmt) const {
  const StepOperands step =
      DataAssignmentStage::schedule_passthrough(a, b, fmt, config_.injector);
  const std::array<StepView, 1> steps = {view_of(step)};
  // Stock Tensor-Core accumulation: FP32 registers.
  const fp::Unpacked r =
      run_steps<1>(steps, fp::unpack(c), dp12_, fp::ExtFloat::kFp32AccumPrec);
  return fp::pack_to_float(r);
}

std::complex<float> M3xuEngine::mma_dot_fp32c(
    std::span<const std::complex<float>> a,
    std::span<const std::complex<float>> b, std::complex<float> c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp32Complex).k);
  const auto sched = DataAssignmentStage::schedule_fp32c(a, b, config_.injector);
  const fp::Unpacked re = run_steps<2>(views_of(sched.real),
                                       fp::unpack(c.real()), dp12_,
                                       config_.accum_prec);
  const fp::Unpacked im = run_steps<2>(views_of(sched.imag),
                                       fp::unpack(c.imag()), dp12_,
                                       config_.accum_prec);
  return {fp::pack_to_float(re), fp::pack_to_float(im)};
}

double M3xuEngine::mma_dot_fp64(std::span<const double> a,
                                std::span<const double> b, double c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp64).k);
  const auto steps = DataAssignmentStage::schedule_fp64(a, b, config_.injector);
  const fp::Unpacked r = run_steps<4>(views_of(steps), fp::unpack(c), dp27_,
                                      config_.fp64_accum_prec);
  return fp::pack_to_double(r);
}

std::complex<double> M3xuEngine::mma_dot_fp64c(
    std::span<const std::complex<double>> a,
    std::span<const std::complex<double>> b, std::complex<double> c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp64Complex).k);
  const auto sched = DataAssignmentStage::schedule_fp64c(a, b, config_.injector);
  const fp::Unpacked re = run_steps<4>(views_of(sched.real),
                                       fp::unpack(c.real()), dp27_,
                                       config_.fp64_accum_prec);
  const fp::Unpacked im = run_steps<4>(views_of(sched.imag),
                                       fp::unpack(c.imag()), dp27_,
                                       config_.fp64_accum_prec);
  return {fp::pack_to_double(re), fp::pack_to_double(im)};
}

namespace {

/// Row-major index in 64-bit arithmetic: the `int` products row*ld
/// overflow once the virtual index crosses 2^31 (large leading
/// dimensions; regression-tested in core_packed_panel_test).
inline std::size_t idx(int row, int ld, int col) {
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(ld) +
         static_cast<std::size_t>(col);
}

/// Gathers a strided B column chunk into a contiguous fragment (models
/// the shared-memory -> register fragment load).
template <typename T>
void gather_column(const T* b, int ldb, int j, int k0, int kc, T* out) {
  for (int kk = 0; kk < kc; ++kk) out[kk] = b[idx(k0 + kk, ldb, j)];
}

}  // namespace

void M3xuEngine::gemm_fp32(int m, int n, int k, const float* a, int lda,
                           const float* b, int ldb, float* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp32).k;
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp32({a + idx(i, lda, k0), static_cast<std::size_t>(kc)},
                           {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
  rt_fp32_perdot.add(area(m, n));
}

void M3xuEngine::gemm_fp16(int m, int n, int k, const fp::Half* a, int lda,
                           const fp::Half* b, int ldb, float* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp16).k;
  std::vector<float> arow(static_cast<std::size_t>(kc_max));
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        for (int kk = 0; kk < kc; ++kk) {
          arow[kk] = a[idx(i, lda, k0 + kk)].to_float();
          bcol[kk] = b[idx(k0 + kk, ldb, j)].to_float();
        }
        acc = mma_dot_passthrough(
            {arow.data(), static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kFp16);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
}

void M3xuEngine::gemm_bf16(int m, int n, int k, const fp::Bf16* a, int lda,
                           const fp::Bf16* b, int ldb, float* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kBf16).k;
  std::vector<float> arow(static_cast<std::size_t>(kc_max));
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        for (int kk = 0; kk < kc; ++kk) {
          arow[kk] = a[idx(i, lda, k0 + kk)].to_float();
          bcol[kk] = b[idx(k0 + kk, ldb, j)].to_float();
        }
        acc = mma_dot_passthrough(
            {arow.data(), static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kBf16);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
}

void M3xuEngine::gemm_tf32(int m, int n, int k, const float* a, int lda,
                           const float* b, int ldb, float* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kTf32).k;
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        // The stage rounds FP32 register contents to TF32 on ingest.
        acc = mma_dot_passthrough(
            {a + idx(i, lda, k0), static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kTf32);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
}

void M3xuEngine::gemm_fp32c(int m, int n, int k, const std::complex<float>* a,
                            int lda, const std::complex<float>* b, int ldb,
                            std::complex<float>* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp32Complex).k;
  std::vector<std::complex<float>> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<float> acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp32c({a + idx(i, lda, k0), static_cast<std::size_t>(kc)},
                            {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
  rt_fp32c_perdot.add(area(m, n));
}

void M3xuEngine::gemm_fp64c(int m, int n, int k,
                            const std::complex<double>* a, int lda,
                            const std::complex<double>* b, int ldb,
                            std::complex<double>* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp64Complex).k;
  std::vector<std::complex<double>> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<double> acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp64c({a + idx(i, lda, k0), static_cast<std::size_t>(kc)},
                            {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
}

// --- Packed-operand fast path -----------------------------------------
//
// Streaming case (no specials in either panel, no injector): each
// step's operand buffers are contiguous slices of the packed panels, so
// the inner loop is pointer arithmetic plus the fused step kernel below
// - no allocation, no split, no gather. Otherwise the steps are
// reassembled per dot from the packed lanes in the exact order of
// DataAssignmentStage::schedule_fp32/fp32c (element-level special
// bypass depends on the operand *pair*, and operand-buffer fault
// opportunities must fire in the per-dot order), into thread-local
// scratch reused across dots, and run through the generic run_steps.

namespace {

// --- Fused streaming step kernel --------------------------------------
//
// One architectural step of the streaming packed path computes exactly
//
//     reg' = RNE_prec(reg + sum_i (-1)^s_i * sig_i * 2^e_i)
//
// with the inner sum exact (DpUnit::accumulate_dot into an
// ExactAccumulator, then ExtFloat::plus_exact rounds once). Because
// every stage is exact up to the single final rounding, any exact
// evaluation order produces identical bits. This kernel evaluates the
// sum in a 256-bit local two's-complement window - the ExactAccumulator
// route costs a 576-byte zero-fill, two full-array copies, and a
// 72-word scan per step - and reports failure (the caller re-runs the
// chunk through the generic path) whenever the operand exponent span
// does not fit the window or a lane needs NaN/Inf handling.

struct StreamTerm {
  bool sign;
  std::uint64_t sig;  // nonzero product of two sub-32-bit significands
  int exp;            // weight of sig's least significant bit
};

constexpr int kMaxStreamTerms = 64;

/// Appends one step's finite-lane products to `terms` starting at
/// `count`. Returns the new count, or -1 when the step must take the
/// generic path (a NaN/Inf lane class or buffer overflow).
int collect_products(std::span<const LaneOperand> a,
                     std::span<const LaneOperand> b, StreamTerm* terms,
                     int count) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const LaneOperand& x = a[i];
    const LaneOperand& y = b[i];
    if (x.cls == LaneOperand::Cls::kFinite &&
        y.cls == LaneOperand::Cls::kFinite) {
      if (count == kMaxStreamTerms) return -1;
      terms[count++] = {static_cast<bool>(x.sign ^ y.sign), x.sig * y.sig,
                        x.exp2 + y.exp2};
      continue;
    }
    if (x.cls == LaneOperand::Cls::kNaN || y.cls == LaneOperand::Cls::kNaN ||
        x.cls == LaneOperand::Cls::kInf || y.cls == LaneOperand::Cls::kInf) {
      return -1;
    }
    // At least one kZero operand: the lane contributes nothing.
  }
  return count;
}

/// RNE_prec(c + sum of terms), bit-identical to accumulating into an
/// ExactAccumulator and calling round_to_precision(prec). Returns false
/// (out untouched) when the sum does not fit the local window. The
/// rounding tail (magnitude extraction + top-64 RNE) lives in
/// core/fused_round.hpp, shared with the register-blocked microkernel.
bool fused_round(const StreamTerm* terms, int count, const fp::Unpacked& c,
                 int prec, fp::Unpacked* out) {
  // A NaN/Inf register short-circuits just like the accumulator's
  // sticky flags (the step sum itself is finite). `c` may alias `*out`
  // (the per-step register), so read it before the clearing store.
  if (c.cls == fp::FpClass::kNaN) {
    *out = {};
    out->cls = fp::FpClass::kNaN;
    return true;
  }
  if (c.cls == fp::FpClass::kInf) {
    const bool sign = c.sign;
    *out = {};
    out->cls = fp::FpClass::kInf;
    out->sign = sign;
    return true;
  }
  // Exponent window of all addends: [lo, hi] in lsb-weight terms.
  // Product significands are below 2^48 (two sub-24-bit factors); the
  // +47 msb bound is cheaper than measuring each product's width and
  // only costs window slack.
  int lo = 0, hi = 0;
  bool any = false;
  for (int i = 0; i < count; ++i) {
    if (!any) {
      lo = terms[i].exp;
      hi = terms[i].exp;
      any = true;
    } else {
      lo = std::min(lo, terms[i].exp);
      hi = std::max(hi, terms[i].exp);
    }
  }
  hi += 47;
  std::uint64_t rsig = 0;
  int rexp = 0;
  if (c.cls == fp::FpClass::kNormal) {
    // The register holds a prec-bit value (rounded to prec every step;
    // the initial C has <= 24 <= prec significant bits).
    const int drop = fp::Unpacked::kSigTop - (prec - 1);
    if ((c.sig & low_mask(drop)) != 0) return false;
    rsig = c.sig >> drop;
    rexp = c.exp - (prec - 1);
    if (!any) {
      lo = rexp;
      hi = c.exp;
      any = true;
    } else {
      lo = std::min(lo, rexp);
      hi = std::max(hi, c.exp);
    }
  }
  if (!any) {
    *out = {};  // empty sum: exact zero (FpClass::kZero, + sign)
    return true;
  }
  // <= 65 addends each below 2^(hi-lo+1): the sum needs at most
  // hi-lo+8 bits plus a sign bit.
  if (hi - lo <= 118) {
    // The common benign-data case fits one 128-bit register.
    unsigned __int128 sum = 0;
    for (int i = 0; i < count; ++i) {
      const unsigned __int128 v = static_cast<unsigned __int128>(terms[i].sig)
                                  << (terms[i].exp - lo);
      sum = terms[i].sign ? sum - v : sum + v;
    }
    if (rsig != 0) {
      const unsigned __int128 v = static_cast<unsigned __int128>(rsig)
                                  << (rexp - lo);
      sum = c.sign ? sum - v : sum + v;
    }
    detail::round_sum128(sum, lo, prec, out);
    return true;
  }
  if (hi - lo > 240) return false;
  std::uint64_t w[4] = {0, 0, 0, 0};
  const auto add = [&w](bool sign, std::uint64_t sig, int shift) {
    std::uint64_t limb[4] = {0, 0, 0, 0};
    const int word = shift / 64;
    const int sh = shift % 64;
    limb[word] = sig << sh;
    if (sh != 0 && word + 1 < 4) limb[word + 1] = sig >> (64 - sh);
    if (!sign) {
      unsigned __int128 carry = 0;
      for (int i = 0; i < 4; ++i) {
        const unsigned __int128 t =
            static_cast<unsigned __int128>(w[i]) + limb[i] + carry;
        w[i] = static_cast<std::uint64_t>(t);
        carry = t >> 64;
      }
    } else {
      std::uint64_t borrow = 0;
      for (int i = 0; i < 4; ++i) {
        const unsigned __int128 t =
            static_cast<unsigned __int128>(w[i]) - limb[i] - borrow;
        w[i] = static_cast<std::uint64_t>(t);
        borrow = static_cast<std::uint64_t>(t >> 64) & 1;
      }
    }
  };
  for (int i = 0; i < count; ++i) {
    add(terms[i].sign, terms[i].sig, terms[i].exp - lo);
  }
  if (rsig != 0) add(c.sign, rsig, rexp - lo);
  // Magnitude of the two's-complement sum (as extract_top64 does).
  const bool negative = (w[3] >> 63) != 0;
  if (negative) {
    std::uint64_t carry = 1;
    for (auto& word : w) {
      const std::uint64_t inv = ~word;
      word = inv + carry;
      carry = word < inv ? 1 : 0;
    }
  }
  int top_word = 3;
  while (top_word >= 0 && w[top_word] == 0) --top_word;
  if (top_word < 0) {
    *out = {};  // exact cancellation to zero
    return true;
  }
  const int h = top_word * 64 + highest_bit(w[top_word]);
  // Top-64 window [h .. h-63] plus a sticky for everything below,
  // mirroring ExactAccumulator::extract_top64.
  std::uint64_t top64 = 0;
  bool st = false;
  const int lo_index = h - 63;
  if (lo_index >= 0) {
    const int wd = lo_index / 64;
    const int sh = lo_index % 64;
    top64 = w[wd] >> sh;
    if (sh != 0 && wd + 1 < 4) top64 |= w[wd + 1] << (64 - sh);
    if (sh != 0) st = (w[wd] & low_mask(sh)) != 0;
    for (int i = 0; i < wd; ++i) st = st || w[i] != 0;
  } else {
    top64 = w[0] << -lo_index;
  }
  detail::finish_round(top64, st, negative, lo + h, prec, out);
  return true;
}

/// Runs one chunk's steps through the fused kernel, replicating
/// run_steps' per-step (round after every step) or idealized (one
/// rounding per instruction) register semantics. Returns false when any
/// step needs the generic path; no state is modified in that case, so
/// the caller can re-run the whole chunk through run_steps.
template <std::size_t kSteps>
bool run_steps_fused(const std::array<StepView, kSteps>& steps,
                     const fp::Unpacked& c, bool per_step_rounding, int prec,
                     fp::Unpacked* out) {
  StreamTerm terms[kMaxStreamTerms];
  if (per_step_rounding) {
    fp::Unpacked reg = c;
    for (const StepView& step : steps) {
      const int count = collect_products(step.a, step.b, terms, 0);
      if (count < 0 || !fused_round(terms, count, reg, prec, &reg)) {
        return false;
      }
    }
    *out = reg;
    return true;
  }
  int count = 0;
  for (const StepView& step : steps) {
    count = collect_products(step.a, step.b, terms, count);
    if (count < 0) return false;
  }
  return fused_round(terms, count, c, prec, out);
}

}  // namespace

void M3xuEngine::gemm_fp32_prepacked(const PackedPanelFp32A& a, int row0,
                                     const PackedPanelFp32B& b, int col0,
                                     int m, int n, float* c, int ldc) const {
  M3XU_CHECK(a.k == b.k);
  M3XU_CHECK(row0 >= 0 && m >= 0 && row0 + m <= a.rows);
  M3XU_CHECK(col0 >= 0 && n >= 0 && col0 + n <= b.cols);
  const int k = a.k;
  const int kc_max = shape_for(MxuMode::kFp32).k;
  const bool streaming = !config_.force_generic &&
      config_.injector == nullptr && !a.has_special && !b.has_special;
  thread_local std::array<StepOperands, 2> scratch;
  std::uint64_t n_fused = 0, n_fallback = 0, n_generic = 0;
  // Per-element loop over output sub-range [i0,i1) x [j0,j1); the
  // microkernel covers full MR x NR interior blocks (shape from
  // mk_block_resolve) and edge tiles fall through to this path.
  const auto run_range = [&](int i0, int i1, int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    const LaneOperand* arow =
        a.lanes.data() + static_cast<std::size_t>(row0 + i) * 2 * k;
    const std::size_t abase = static_cast<std::size_t>(row0 + i) * k;
    for (int j = j0; j < j1; ++j) {
      const LaneOperand* blike =
          b.like.data() + static_cast<std::size_t>(col0 + j) * 2 * k;
      const LaneOperand* bswap =
          b.swapped.data() + static_cast<std::size_t>(col0 + j) * 2 * k;
      const std::size_t bbase = static_cast<std::size_t>(col0 + j) * k;
      float acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        std::array<StepView, 2> steps;
        if (streaming) {
          const std::span<const LaneOperand> av{arow + 2 * k0,
                                                static_cast<std::size_t>(2 * kc)};
          steps[0] = {av, {blike + 2 * k0, static_cast<std::size_t>(2 * kc)}};
          steps[1] = {av, {bswap + 2 * k0, static_cast<std::size_t>(2 * kc)}};
          fp::Unpacked r;
          if (run_steps_fused<2>(steps, fp::unpack(acc),
                                 config_.per_step_rounding,
                                 config_.accum_prec, &r)) {
            ++n_fused;
            acc = fp::pack_to_float(r);
            continue;
          }
          ++n_fallback;
        } else {
          ++n_generic;
          for (StepOperands& s : scratch) {
            s.a.clear();
            s.b.clear();
          }
          for (int kk = 0; kk < kc; ++kk) {
            const std::size_t e = static_cast<std::size_t>(k0) + kk;
            if (a.special[abase + e] || b.special[bbase + e]) {
              scratch[0].a.push_back(a.cls[abase + e]);
              scratch[0].b.push_back(b.cls[bbase + e]);
              continue;
            }
            const LaneOperand& ah = arow[2 * e];
            const LaneOperand& al = arow[2 * e + 1];
            const LaneOperand& bh = blike[2 * e];
            const LaneOperand& bl = blike[2 * e + 1];
            scratch[0].a.push_back(ah);
            scratch[0].b.push_back(bh);
            scratch[0].a.push_back(al);
            scratch[0].b.push_back(bl);
            scratch[1].a.push_back(ah);
            scratch[1].b.push_back(bl);
            scratch[1].a.push_back(al);
            scratch[1].b.push_back(bh);
          }
          for (StepOperands& s : scratch) {
            DataAssignmentStage::corrupt_step(
                config_.injector, s, DataAssignmentStage::kFp32PartBits);
          }
          steps[0] = view_of(scratch[0]);
          steps[1] = view_of(scratch[1]);
        }
        acc = fp::pack_to_float(
            run_steps<2>(steps, fp::unpack(acc), dp12_, config_.accum_prec));
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
  };
  if (streaming && config_.enable_microkernel && k > 0) {
    M3XU_CHECK(kc_max == kPackChunkFp32);
    const MkBlockShape blk = mk_block_resolve(config_.mk_mr, config_.mk_nr);
    const MicrokernelParams mp{config_.per_step_rounding, config_.accum_prec,
                               config_.mk_variant, blk.mr, blk.nr,
                               config_.mk_prefetch};
    const int mb = m - m % blk.mr;
    const int nb = n - n % blk.nr;
    for (int i = 0; i < mb; i += blk.mr) {
      for (int j = 0; j < nb; j += blk.nr) {
        microkernel_fp32_block(a, row0 + i, b, col0 + j, dp12_, mp,
                               c + idx(i, ldc, j), ldc);
      }
    }
    run_range(0, mb, nb, n);  // right edge
    run_range(mb, m, 0, n);   // bottom edge
    rt_fp32_edge.add(area(mb, n - nb) + area(m - mb, n));
    rt_fp32_fused.add(n_fused);
    rt_fp32_fallback.add(n_fallback);
    trace_route_decisions("core.fp32.route.fallback",
                          "core.fp32.route.generic", n_fallback, 0);
    return;
  }
  run_range(0, m, 0, n);
  if (config_.injector != nullptr) {
    rt_fp32_inject.add(area(m, n));
  } else if (a.has_special || b.has_special) {
    rt_fp32_special.add(area(m, n));
  }
  rt_fp32_fused.add(n_fused);
  rt_fp32_fallback.add(n_fallback);
  rt_fp32_generic.add(n_generic);
  trace_route_decisions("core.fp32.route.fallback",
                        "core.fp32.route.generic", n_fallback, n_generic);
}

void M3xuEngine::gemm_fp32c_prepacked(const PackedPanelFp32cA& a, int row0,
                                      const PackedPanelFp32cB& b, int col0,
                                      int m, int n, std::complex<float>* c,
                                      int ldc) const {
  M3XU_CHECK(a.k == b.k);
  M3XU_CHECK(row0 >= 0 && m >= 0 && row0 + m <= a.rows);
  M3XU_CHECK(col0 >= 0 && n >= 0 && col0 + n <= b.cols);
  const int k = a.k;
  const int kc_max = shape_for(MxuMode::kFp32Complex).k;
  const bool streaming = !config_.force_generic &&
      config_.injector == nullptr && !a.has_special && !b.has_special;
  std::uint64_t n_fused = 0, n_fallback = 0, n_generic = 0;
  // Scratch step order matches schedule_fp32c: real[0..1], imag[0..1].
  thread_local std::array<StepOperands, 4> scratch;
  // Appends one scalar product term x*y to a step pair, with x's lanes
  // (and bypass class) already carrying any sign flip.
  const auto emit_term = [](StepOperands& s0, StepOperands& s1,
                            const LaneOperand* x, const LaneOperand* y,
                            bool special, const LaneOperand& xcls,
                            const LaneOperand& ycls) {
    if (special) {
      s0.a.push_back(xcls);
      s0.b.push_back(ycls);
      return;
    }
    s0.a.push_back(x[0]);
    s0.b.push_back(y[0]);
    s0.a.push_back(x[1]);
    s0.b.push_back(y[1]);
    s1.a.push_back(x[0]);
    s1.b.push_back(y[1]);
    s1.a.push_back(x[1]);
    s1.b.push_back(y[0]);
  };
  // Per-element loop over [i0,i1) x [j0,j1); edge tiles around the
  // microkernel's full blocks fall through to this path.
  const auto run_range = [&](int i0, int i1, int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    const std::size_t arow = static_cast<std::size_t>(row0 + i) * k;
    const LaneOperand* are = a.real_lanes.data() + 4 * arow;
    const LaneOperand* aim = a.imag_lanes.data() + 4 * arow;
    for (int j = j0; j < j1; ++j) {
      const std::size_t bcol = static_cast<std::size_t>(col0 + j) * k;
      std::complex<float> acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        std::array<StepView, 2> real_steps;
        std::array<StepView, 2> imag_steps;
        if (streaming) {
          const std::size_t off = static_cast<std::size_t>(4) * k0;
          const std::size_t len = static_cast<std::size_t>(4) * kc;
          const std::span<const LaneOperand> ar{are + off, len};
          const std::span<const LaneOperand> ai{aim + off, len};
          const LaneOperand* brl = b.real_like.data() + 4 * bcol + off;
          const LaneOperand* brs = b.real_swap.data() + 4 * bcol + off;
          const LaneOperand* bil = b.imag_like.data() + 4 * bcol + off;
          const LaneOperand* bis = b.imag_swap.data() + 4 * bcol + off;
          real_steps[0] = {ar, {brl, len}};
          real_steps[1] = {ar, {brs, len}};
          imag_steps[0] = {ai, {bil, len}};
          imag_steps[1] = {ai, {bis, len}};
          fp::Unpacked re, im;
          if (run_steps_fused<2>(real_steps, fp::unpack(acc.real()),
                                 config_.per_step_rounding,
                                 config_.accum_prec, &re) &&
              run_steps_fused<2>(imag_steps, fp::unpack(acc.imag()),
                                 config_.per_step_rounding,
                                 config_.accum_prec, &im)) {
            ++n_fused;
            acc = {fp::pack_to_float(re), fp::pack_to_float(im)};
            continue;
          }
          ++n_fallback;
        } else {
          ++n_generic;
          for (StepOperands& s : scratch) {
            s.a.clear();
            s.b.clear();
          }
          for (int kk = 0; kk < kc; ++kk) {
            const std::size_t ae = arow + k0 + kk;  // global element index
            const std::size_t al = static_cast<std::size_t>(4) * (k0 + kk);
            const std::size_t be = bcol + k0 + kk;
            const bool as_re = a.special[2 * ae] != 0;
            const bool as_im = a.special[2 * ae + 1] != 0;
            const bool bs_re = b.special[2 * be] != 0;
            const bool bs_im = b.special[2 * be + 1] != 0;
            // B component lanes in canonical [brh, brl, bih, bil] order.
            const LaneOperand* bre = b.real_like.data() + 4 * be;
            const LaneOperand* bim = bre + 2;
            // Term order matches schedule_fp32c: AR*BR, -AI*BI into the
            // real steps; AR*BI, AI*BR into the imaginary steps.
            emit_term(scratch[0], scratch[1], are + al, bre,
                      as_re || bs_re, a.cls[2 * ae], b.cls[2 * be]);
            emit_term(scratch[0], scratch[1], are + al + 2, bim,
                      as_im || bs_im, a.cls[2 * ae + 1].negated(),
                      b.cls[2 * be + 1]);
            emit_term(scratch[2], scratch[3], aim + al, bim,
                      as_re || bs_im, a.cls[2 * ae], b.cls[2 * be + 1]);
            emit_term(scratch[2], scratch[3], aim + al + 2, bre,
                      as_im || bs_re, a.cls[2 * ae + 1], b.cls[2 * be]);
          }
          for (StepOperands& s : scratch) {
            DataAssignmentStage::corrupt_step(
                config_.injector, s, DataAssignmentStage::kFp32PartBits);
          }
          real_steps[0] = view_of(scratch[0]);
          real_steps[1] = view_of(scratch[1]);
          imag_steps[0] = view_of(scratch[2]);
          imag_steps[1] = view_of(scratch[3]);
        }
        const fp::Unpacked re = run_steps<2>(real_steps, fp::unpack(acc.real()),
                                             dp12_, config_.accum_prec);
        const fp::Unpacked im = run_steps<2>(imag_steps, fp::unpack(acc.imag()),
                                             dp12_, config_.accum_prec);
        acc = {fp::pack_to_float(re), fp::pack_to_float(im)};
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
  };
  if (streaming && config_.enable_microkernel && k > 0) {
    M3XU_CHECK(kc_max == kPackChunkFp32c);
    const MkBlockShape blk = mk_block_resolve(config_.mk_mr, config_.mk_nr);
    const MicrokernelParams mp{config_.per_step_rounding, config_.accum_prec,
                               config_.mk_variant, blk.mr, blk.nr,
                               config_.mk_prefetch};
    const int mb = m - m % blk.mr;
    const int nb = n - n % blk.nr;
    for (int i = 0; i < mb; i += blk.mr) {
      for (int j = 0; j < nb; j += blk.nr) {
        microkernel_fp32c_block(a, row0 + i, b, col0 + j, dp12_, mp,
                                c + idx(i, ldc, j), ldc);
      }
    }
    run_range(0, mb, nb, n);  // right edge
    run_range(mb, m, 0, n);   // bottom edge
    rt_fp32c_edge.add(area(mb, n - nb) + area(m - mb, n));
    rt_fp32c_fused.add(n_fused);
    rt_fp32c_fallback.add(n_fallback);
    trace_route_decisions("core.fp32c.route.fallback",
                          "core.fp32c.route.generic", n_fallback, 0);
    return;
  }
  run_range(0, m, 0, n);
  if (config_.injector != nullptr) {
    rt_fp32c_inject.add(area(m, n));
  } else if (a.has_special || b.has_special) {
    rt_fp32c_special.add(area(m, n));
  }
  rt_fp32c_fused.add(n_fused);
  rt_fp32c_fallback.add(n_fallback);
  rt_fp32c_generic.add(n_generic);
  trace_route_decisions("core.fp32c.route.fallback",
                        "core.fp32c.route.generic", n_fallback, n_generic);
}

void M3xuEngine::gemm_fp32_packed(int m, int n, int k, const float* a,
                                  int lda, const float* b, int ldb, float* c,
                                  int ldc) const {
  thread_local PackedPanelFp32A pa;
  thread_local PackedPanelFp32B pb;
  pack_fp32_a(a, lda, m, k, pa);
  pack_fp32_b(b, ldb, k, n, pb);
  gemm_fp32_prepacked(pa, 0, pb, 0, m, n, c, ldc);
}

void M3xuEngine::gemm_fp32c_packed(int m, int n, int k,
                                   const std::complex<float>* a, int lda,
                                   const std::complex<float>* b, int ldb,
                                   std::complex<float>* c, int ldc) const {
  thread_local PackedPanelFp32cA pa;
  thread_local PackedPanelFp32cB pb;
  pack_fp32c_a(a, lda, m, k, pa);
  pack_fp32c_b(b, ldb, k, n, pb);
  gemm_fp32c_prepacked(pa, 0, pb, 0, m, n, c, ldc);
}

void M3xuEngine::gemm_fp64(int m, int n, int k, const double* a, int lda,
                           const double* b, int ldb, double* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp64).k;
  std::vector<double> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c[idx(i, ldc, j)];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp64({a + idx(i, lda, k0), static_cast<std::size_t>(kc)},
                           {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[idx(i, ldc, j)] = acc;
    }
  }
}

}  // namespace m3xu::core
