#include "core/mxu.hpp"

#include <array>
#include <vector>

#include "common/check.hpp"
#include "fault/injector.hpp"

namespace m3xu::core {

MmaShape shape_for(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
    case MxuMode::kBf16:
      return {16, 8, 16};
    case MxuMode::kTf32:
      return {16, 8, 8};
    case MxuMode::kFp32:
      return {16, 8, 8};  // half the FP16 K (Observation 1)
    case MxuMode::kFp32Complex:
      return {16, 8, 4};  // complex elements; quarter throughput
    case MxuMode::kFp64:
      return {16, 8, 4};
    case MxuMode::kFp64Complex:
      return {16, 8, 2};  // complex elements; 1/32 of the FP16 rate
  }
  return {0, 0, 0};
}

int steps_for(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
    case MxuMode::kBf16:
    case MxuMode::kTf32:
      return 1;
    case MxuMode::kFp32:
      return 2;
    case MxuMode::kFp32Complex:
    case MxuMode::kFp64:
      return 4;
    case MxuMode::kFp64Complex:
      return 8;
  }
  return 0;
}

const char* mode_name(MxuMode mode) {
  switch (mode) {
    case MxuMode::kFp16:
      return "fp16";
    case MxuMode::kBf16:
      return "bf16";
    case MxuMode::kTf32:
      return "tf32";
    case MxuMode::kFp32:
      return "fp32";
    case MxuMode::kFp32Complex:
      return "fp32c";
    case MxuMode::kFp64:
      return "fp64";
    case MxuMode::kFp64Complex:
      return "fp64c";
  }
  return "?";
}

M3xuEngine::M3xuEngine(const M3xuConfig& config)
    : config_(config),
      dp12_(DpUnitConfig{/*mult_bits=*/12, /*enable_fast_path=*/true,
                         config.injector}),
      dp27_(DpUnitConfig{DataAssignmentStage::kFp64PartBits,
                         /*enable_fast_path=*/true, config.injector}) {
  M3XU_CHECK(config_.accum_prec >= 24 && config_.accum_prec <= 63);
  M3XU_CHECK(config_.fp64_accum_prec >= 53 && config_.fp64_accum_prec <= 63);
}

template <int kSteps>
fp::Unpacked M3xuEngine::run_steps(const std::array<StepOperands, kSteps>& steps,
                                   const fp::Unpacked& c, const DpUnit& unit,
                                   int prec) const {
  if (config_.per_step_rounding) {
    // The accumulation register is initialized with C (exact: C is
    // FP32/FP64, narrower than the register) and rounded once per step.
    fp::ExtFloat reg = fp::ExtFloat::from_unpacked(c, prec);
    for (const StepOperands& step : steps) {
      fp::ExactAccumulator sum;
      unit.accumulate_dot(step.a, step.b, sum);
      reg = reg.plus_exact(sum);
      if (config_.injector != nullptr) {
        // Each step's register write-back is one flip opportunity on
        // the architectural `prec`-bit significand.
        reg = fp::ExtFloat::from_unpacked(
            config_.injector->corrupt_unpacked(fault::Site::kAccumulator,
                                               reg.value(), prec),
            prec);
      }
    }
    return reg.value();
  }
  // Idealized: one rounding per instruction.
  fp::ExactAccumulator sum;
  for (const StepOperands& step : steps) {
    unit.accumulate_dot(step.a, step.b, sum);
  }
  sum.add_unpacked(c);
  fp::Unpacked r = sum.round_to_precision(prec);
  if (config_.injector != nullptr) {
    r = config_.injector->corrupt_unpacked(fault::Site::kAccumulator, r,
                                           prec);
  }
  return r;
}

float M3xuEngine::mma_dot_fp32(std::span<const float> a,
                               std::span<const float> b, float c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp32).k);
  const auto steps = DataAssignmentStage::schedule_fp32(a, b, config_.injector);
  const fp::Unpacked r =
      run_steps<2>(steps, fp::unpack(c), dp12_, config_.accum_prec);
  return fp::pack_to_float(r);
}

float M3xuEngine::mma_dot_passthrough(std::span<const float> a,
                                      std::span<const float> b, float c,
                                      const fp::FloatFormat& fmt) const {
  const std::array<StepOperands, 1> steps = {
      DataAssignmentStage::schedule_passthrough(a, b, fmt, config_.injector)};
  // Stock Tensor-Core accumulation: FP32 registers.
  const fp::Unpacked r =
      run_steps<1>(steps, fp::unpack(c), dp12_, fp::ExtFloat::kFp32AccumPrec);
  return fp::pack_to_float(r);
}

std::complex<float> M3xuEngine::mma_dot_fp32c(
    std::span<const std::complex<float>> a,
    std::span<const std::complex<float>> b, std::complex<float> c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp32Complex).k);
  const auto sched = DataAssignmentStage::schedule_fp32c(a, b, config_.injector);
  const fp::Unpacked re = run_steps<2>(sched.real, fp::unpack(c.real()),
                                       dp12_, config_.accum_prec);
  const fp::Unpacked im = run_steps<2>(sched.imag, fp::unpack(c.imag()),
                                       dp12_, config_.accum_prec);
  return {fp::pack_to_float(re), fp::pack_to_float(im)};
}

double M3xuEngine::mma_dot_fp64(std::span<const double> a,
                                std::span<const double> b, double c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp64).k);
  const auto steps = DataAssignmentStage::schedule_fp64(a, b, config_.injector);
  const fp::Unpacked r =
      run_steps<4>(steps, fp::unpack(c), dp27_, config_.fp64_accum_prec);
  return fp::pack_to_double(r);
}

std::complex<double> M3xuEngine::mma_dot_fp64c(
    std::span<const std::complex<double>> a,
    std::span<const std::complex<double>> b, std::complex<double> c) const {
  M3XU_CHECK(static_cast<int>(a.size()) <= shape_for(MxuMode::kFp64Complex).k);
  const auto sched = DataAssignmentStage::schedule_fp64c(a, b, config_.injector);
  const fp::Unpacked re = run_steps<4>(sched.real, fp::unpack(c.real()),
                                       dp27_, config_.fp64_accum_prec);
  const fp::Unpacked im = run_steps<4>(sched.imag, fp::unpack(c.imag()),
                                       dp27_, config_.fp64_accum_prec);
  return {fp::pack_to_double(re), fp::pack_to_double(im)};
}

namespace {

/// Gathers a strided B column chunk into a contiguous fragment (models
/// the shared-memory -> register fragment load).
template <typename T>
void gather_column(const T* b, int ldb, int j, int k0, int kc, T* out) {
  for (int kk = 0; kk < kc; ++kk) out[kk] = b[(k0 + kk) * ldb + j];
}

}  // namespace

void M3xuEngine::gemm_fp32(int m, int n, int k, const float* a, int lda,
                           const float* b, int ldb, float* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp32).k;
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp32({a + i * lda + k0, static_cast<std::size_t>(kc)},
                           {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_fp16(int m, int n, int k, const fp::Half* a, int lda,
                           const fp::Half* b, int ldb, float* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp16).k;
  std::vector<float> arow(static_cast<std::size_t>(kc_max));
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        for (int kk = 0; kk < kc; ++kk) {
          arow[kk] = a[i * lda + k0 + kk].to_float();
          bcol[kk] = b[(k0 + kk) * ldb + j].to_float();
        }
        acc = mma_dot_passthrough(
            {arow.data(), static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kFp16);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_bf16(int m, int n, int k, const fp::Bf16* a, int lda,
                           const fp::Bf16* b, int ldb, float* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kBf16).k;
  std::vector<float> arow(static_cast<std::size_t>(kc_max));
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        for (int kk = 0; kk < kc; ++kk) {
          arow[kk] = a[i * lda + k0 + kk].to_float();
          bcol[kk] = b[(k0 + kk) * ldb + j].to_float();
        }
        acc = mma_dot_passthrough(
            {arow.data(), static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kBf16);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_tf32(int m, int n, int k, const float* a, int lda,
                           const float* b, int ldb, float* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kTf32).k;
  std::vector<float> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        // The stage rounds FP32 register contents to TF32 on ingest.
        acc = mma_dot_passthrough(
            {a + i * lda + k0, static_cast<std::size_t>(kc)},
            {bcol.data(), static_cast<std::size_t>(kc)}, acc, fp::kTf32);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_fp32c(int m, int n, int k, const std::complex<float>* a,
                            int lda, const std::complex<float>* b, int ldb,
                            std::complex<float>* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp32Complex).k;
  std::vector<std::complex<float>> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<float> acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp32c({a + i * lda + k0, static_cast<std::size_t>(kc)},
                            {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_fp64c(int m, int n, int k,
                            const std::complex<double>* a, int lda,
                            const std::complex<double>* b, int ldb,
                            std::complex<double>* c, int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp64Complex).k;
  std::vector<std::complex<double>> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<double> acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp64c({a + i * lda + k0, static_cast<std::size_t>(kc)},
                            {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void M3xuEngine::gemm_fp64(int m, int n, int k, const double* a, int lda,
                           const double* b, int ldb, double* c,
                           int ldc) const {
  const int kc_max = shape_for(MxuMode::kFp64).k;
  std::vector<double> bcol(static_cast<std::size_t>(kc_max));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += kc_max) {
        const int kc = std::min(kc_max, k - k0);
        gather_column(b, ldb, j, k0, kc, bcol.data());
        acc = mma_dot_fp64({a + i * lda + k0, static_cast<std::size_t>(kc)},
                           {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

}  // namespace m3xu::core
