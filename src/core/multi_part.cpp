#include "core/multi_part.hpp"

#include <array>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "core/data_assignment.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::core {

MultiPartEngine::MultiPartEngine(const MultiPartConfig& config)
    : config_(config), unit_(DpUnitConfig{config.part_bits}) {
  M3XU_CHECK(config_.part_bits >= 2 && config_.part_bits <= 31);
  M3XU_CHECK(config_.accum_prec >= config_.format.sig_bits() &&
             config_.accum_prec <= 63);
  parts_ = static_cast<int>(
      ceil_div(config_.format.sig_bits(), config_.part_bits));
}

std::vector<LaneOperand> MultiPartEngine::split_element(double v) const {
  const fp::Unpacked u = fp::unpack(v);
  std::vector<LaneOperand> out(static_cast<std::size_t>(parts_));
  if (u.cls == fp::FpClass::kNaN || u.cls == fp::FpClass::kInf) {
    out[0].cls = u.cls == fp::FpClass::kNaN ? LaneOperand::Cls::kNaN
                                            : LaneOperand::Cls::kInf;
    out[0].sign = u.sign;
    return out;
  }
  // Zero, or subnormal in `format` (flushed, matching the hardware).
  if (u.cls == fp::FpClass::kZero || u.exp < config_.format.min_normal_exp()) {
    return out;
  }
  const int sig_bits = config_.format.sig_bits();
  const int drop = fp::Unpacked::kSigTop - (sig_bits - 1);
  // Inputs must be exact values of the configured format.
  M3XU_CHECK((u.sig & low_mask(drop)) == 0);
  const std::uint64_t m = u.sig >> drop;
  for (int q = 0; q < parts_; ++q) {
    // Chunk q covers significand bits [q*part_bits, ...) from the LSB;
    // out[0] is the most significant part (holds the hidden 1).
    const int lsb = q * config_.part_bits;
    const std::uint64_t sig =
        (m >> lsb) & low_mask(std::min(config_.part_bits, sig_bits - lsb));
    LaneOperand& op = out[static_cast<std::size_t>(parts_ - 1 - q)];
    op.sign = u.sign;
    if (sig == 0) continue;  // stays kZero
    op.cls = LaneOperand::Cls::kFinite;
    op.sig = sig;
    op.exp2 = u.exp - (sig_bits - 1) + lsb;
  }
  return out;
}

double MultiPartEngine::dot(std::span<const double> a,
                            std::span<const double> b, double c) const {
  M3XU_CHECK(a.size() == b.size());
  const int s = parts_;
  std::vector<StepOperands> steps(static_cast<std::size_t>(s * s));
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto pa = split_element(a[i]);
    const auto pb = split_element(b[i]);
    const bool special = pa[0].cls == LaneOperand::Cls::kInf ||
                         pa[0].cls == LaneOperand::Cls::kNaN ||
                         pb[0].cls == LaneOperand::Cls::kInf ||
                         pb[0].cls == LaneOperand::Cls::kNaN;
    if (special) {
      // Element-level bypass: the most significant parts carry the
      // class; a zero/flushed partner keeps its kZero class; a finite
      // partner is represented by its (nonzero) leading part.
      steps[0].a.push_back(pa[0]);
      steps[0].b.push_back(pb[0]);
      continue;
    }
    for (int x = 0; x < s; ++x) {
      for (int y = 0; y < s; ++y) {
        StepOperands& step = steps[static_cast<std::size_t>(x * s + y)];
        step.a.push_back(pa[static_cast<std::size_t>(x)]);
        step.b.push_back(pb[static_cast<std::size_t>(y)]);
      }
    }
  }
  fp::Unpacked result;
  if (config_.per_step_rounding) {
    fp::ExtFloat reg = fp::ExtFloat::from_double(c, config_.accum_prec);
    for (const StepOperands& step : steps) {
      fp::ExactAccumulator sum;
      unit_.accumulate_dot(step.a, step.b, sum);
      reg = reg.plus_exact(sum);
    }
    result = reg.value();
  } else {
    fp::ExactAccumulator sum;
    for (const StepOperands& step : steps) {
      unit_.accumulate_dot(step.a, step.b, sum);
    }
    sum.add_unpacked(fp::unpack(c));
    result = sum.round_to_precision(config_.accum_prec);
  }
  // Writeback: register -> target format.
  const std::uint64_t payload = fp::pack(result, config_.format);
  return fp::pack_to_double(fp::unpack(payload, config_.format));
}

void MultiPartEngine::gemm(int m, int n, int k, int k_chunk, const double* a,
                           int lda, const double* b, int ldb, double* c,
                           int ldc) const {
  M3XU_CHECK(k_chunk >= 1);
  std::vector<double> bcol(static_cast<std::size_t>(k_chunk));
  std::vector<double> arow(static_cast<std::size_t>(k_chunk));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c[i * ldc + j];
      for (int k0 = 0; k0 < k; k0 += k_chunk) {
        const int kc = std::min(k_chunk, k - k0);
        for (int kk = 0; kk < kc; ++kk) {
          arow[kk] = a[i * lda + k0 + kk];
          bcol[kk] = b[(k0 + kk) * ldb + j];
        }
        acc = dot({arow.data(), static_cast<std::size_t>(kc)},
                  {bcol.data(), static_cast<std::size_t>(kc)}, acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

}  // namespace m3xu::core
