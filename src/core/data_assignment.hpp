// The data-assignment stage (paper SIV-A/B, Fig 3): multiplexers and
// buffers that split incoming register operands into per-step lane
// streams for the dot-product units.
//
//  - Passthrough (FP16/BF16/TF32): one step; each input feeds one lane.
//  - FP32 (Fig 3a): each FP32 number splits into 12-bit high/low parts.
//    Step 0 pairs like parts (AH*BH, AL*BL - Eq. 6); step 1 flips the
//    assignment of the B parts (AH*BL, AL*BH - Eq. 8).
//  - FP32C (Fig 3c): four steps. Steps 0-1 compute the real part with
//    the sign bit of the imaginary*imaginary inputs flipped (the
//    subtraction of Eq. 9); steps 2-3 compute the imaginary part.
//  - FP64 (SIV-C): each double splits into 27-bit high/low parts; four
//    steps cover the HH / LL / HL / LH product classes with the same
//    swapping policy as FP32C but no sign flip.
#pragma once

#include <array>
#include <complex>
#include <span>
#include <vector>

#include "core/lane_operand.hpp"
#include "fp/format.hpp"

namespace m3xu::fault {
class FaultInjector;
}  // namespace m3xu::fault

namespace m3xu::core {

/// One step's lane streams for one output element's dot product.
struct StepOperands {
  std::vector<LaneOperand> a;
  std::vector<LaneOperand> b;
};

class DataAssignmentStage {
 public:
  // Every schedule function takes an optional fault injector; when
  // non-null, each finite lane operand's significand field is an
  // injection opportunity (sites kOperandA / kOperandB) after the
  // split/routing - modeling transient flips in the operand buffers.
  // The default null keeps the fault-free path untouched.

  /// FP16/BF16/TF32 passthrough: inputs are rounded to `fmt` (they
  /// arrive already in that format from registers) and fed directly.
  static StepOperands schedule_passthrough(
      std::span<const float> a, std::span<const float> b,
      const fp::FloatFormat& fmt,
      const fault::FaultInjector* injector = nullptr);

  /// FP32 two-step schedule over k elements.
  static std::array<StepOperands, 2> schedule_fp32(
      std::span<const float> a, std::span<const float> b,
      const fault::FaultInjector* injector = nullptr);

  /// FP32C four-step schedule. real[0..1] accumulate into the real
  /// output, imag[0..1] into the imaginary output.
  struct ComplexSchedule {
    std::array<StepOperands, 2> real;
    std::array<StepOperands, 2> imag;
  };
  static ComplexSchedule schedule_fp32c(
      std::span<const std::complex<float>> a,
      std::span<const std::complex<float>> b,
      const fault::FaultInjector* injector = nullptr);

  /// FP64 four-step schedule (27-bit sub-multipliers).
  static std::array<StepOperands, 4> schedule_fp64(
      std::span<const double> a, std::span<const double> b,
      const fault::FaultInjector* injector = nullptr);

  /// FP64 complex eight-step schedule (SIV-C: "this analogous approach
  /// easily extends to ... their complex counterparts"): four product
  /// classes per scalar term, two terms per output component, with the
  /// FP32C sign-flip on the imaginary*imaginary lanes of the real part.
  struct Complex64Schedule {
    std::array<StepOperands, 4> real;
    std::array<StepOperands, 4> imag;
  };
  static Complex64Schedule schedule_fp64c(
      std::span<const std::complex<double>> a,
      std::span<const std::complex<double>> b,
      const fault::FaultInjector* injector = nullptr);

  /// Width of the FP64 mode's significand parts (hidden 1 + 26 bits).
  static constexpr int kFp64PartBits = 27;

  /// Width of the FP32 mode's 12-bit significand fields (Fig 3a).
  static constexpr int kFp32PartBits = 12;

  // --- Building blocks shared with the packed-panel fast path --------
  // (core/packed_panel.hpp pre-splits operand panels once and then
  // reassembles per-dot steps that must be bit-identical to the
  // schedule_* functions above, including the fault-opportunity order.)

  /// True when `v` takes the element-level special bypass (Inf/NaN:
  /// exponent field all ones).
  static bool is_special_fp32(float v);

  /// The element-level bypass operand for `v`: class and sign only,
  /// with a unit-magnitude placeholder significand for finite values.
  static LaneOperand class_operand_fp32(float v);

  /// Applies the operand-buffer fault hooks to one assembled step, in
  /// buffer order (all A lanes, then all B lanes). No-op when
  /// `injector` is null. The schedule_* functions and the packed path
  /// both corrupt through this, so their opportunity sequences match.
  static void corrupt_step(const fault::FaultInjector* injector,
                           StepOperands& step, int width);
};

}  // namespace m3xu::core
