#include "core/int_mode.hpp"

#include <vector>

#include "common/check.hpp"

namespace m3xu::core {

void IntEngine::gemm_s8(int m, int n, int k, const std::int8_t* a, int lda,
                        const std::int8_t* b, int ldb, std::int32_t* c,
                        int ldc) {
  M3XU_CHECK(k <= (1 << 16));  // 14-bit products cannot overflow int32
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = c[i * ldc + j];
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(a[i * lda + kk]) *
               static_cast<std::int32_t>(b[kk * ldb + j]);
      }
      c[i * ldc + j] = acc;
    }
  }
}

std::int64_t IntEngine::dot_s32_multistep(std::span<const std::int32_t> a,
                                          std::span<const std::int32_t> b) {
  M3XU_CHECK(a.size() == b.size());
  // Split: x = xh * 2^16 + xl with xh = x >> 16 (arithmetic, signed)
  // and xl = x & 0xffff (unsigned low half).
  std::int64_t step0 = 0;  // high*high << 32 and low*low
  std::int64_t step1 = 0;  // cross terms << 16
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t ah = a[i] >> 16;
    const std::int64_t al = a[i] & 0xffff;
    const std::int64_t bh = b[i] >> 16;
    const std::int64_t bl = b[i] & 0xffff;
    step0 += (ah * bh << 32) + al * bl;
    step1 += (ah * bl + al * bh) << 16;
  }
  return step0 + step1;
}

void IntEngine::gemm_s32(int m, int n, int k, const std::int32_t* a, int lda,
                         const std::int32_t* b, int ldb, std::int64_t* c,
                         int ldc) {
  std::vector<std::int32_t> bcol(static_cast<std::size_t>(k));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int kk = 0; kk < k; ++kk) bcol[kk] = b[kk * ldb + j];
      c[i * ldc + j] += dot_s32_multistep(
          {a + i * lda, static_cast<std::size_t>(k)},
          {bcol.data(), static_cast<std::size_t>(k)});
    }
  }
}

}  // namespace m3xu::core
