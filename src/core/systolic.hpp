// Weight-stationary systolic-array M3XU - the third dataflow of SII-A
// ("dot-product-unit-based, outer-product-unit-based, or a systolic
// array"). B (the "weights") stays resident in the PE grid; rows of A
// stream through; each PE multiply-accumulates split operands exactly
// as the other dataflows do. Under per-instruction rounding all three
// dataflows are bit-identical (exact accumulation commutes); the
// per-hop rounding variant models each PE's 48-bit register.
#pragma once

#include "core/mxu.hpp"

namespace m3xu::core {

class SystolicEngine {
 public:
  explicit SystolicEngine(const M3xuConfig& config = {});

  /// One FP32-mode MMA over an m x n x k tile (k <= the FP32
  /// instruction K): D = A*B + C. The PE grid is k x n (B-stationary);
  /// A rows stream through, partial sums flow down the k dimension.
  void mma_fp32(int m, int n, int k, const float* a, int lda,
                const float* b, int ldb, const float* c, int ldc, float* d,
                int ldd) const;

  const M3xuConfig& config() const { return config_; }

 private:
  M3xuConfig config_;
};

}  // namespace m3xu::core
