#include "core/dp_unit.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "fault/injector.hpp"

namespace m3xu::core {

namespace {

/// 192-bit two's-complement accumulator for the fast path.
struct Local192 {
  std::uint64_t w[3] = {0, 0, 0};

  void add(bool sign, std::uint64_t sig, int shift) {
    // shift in [0, 120]; sig <= 62 bits.
    const int word = shift / 64;
    const int sh = shift % 64;
    std::uint64_t limb[3] = {0, 0, 0};
    limb[word] = sig << sh;
    if (sh != 0 && word + 1 < 3) limb[word + 1] = sig >> (64 - sh);
    if (!sign) {
      unsigned __int128 carry = 0;
      for (int i = 0; i < 3; ++i) {
        const unsigned __int128 t =
            static_cast<unsigned __int128>(w[i]) + limb[i] + carry;
        w[i] = static_cast<std::uint64_t>(t);
        carry = t >> 64;
      }
    } else {
      std::uint64_t borrow = 0;
      for (int i = 0; i < 3; ++i) {
        const unsigned __int128 t = static_cast<unsigned __int128>(w[i]) -
                                    limb[i] - borrow;
        w[i] = static_cast<std::uint64_t>(t);
        borrow = static_cast<std::uint64_t>(t >> 64) & 1;
      }
    }
  }

  bool negative() const { return (w[2] >> 63) != 0; }

  /// Pushes the value into the wide accumulator (3 limb adds).
  void flush(fp::ExactAccumulator& sum, int base_exp) const {
    std::uint64_t mag[3] = {w[0], w[1], w[2]};
    const bool sign = negative();
    if (sign) {
      std::uint64_t carry = 1;
      for (auto& word : mag) {
        const std::uint64_t inv = ~word;
        word = inv + carry;
        carry = word < inv ? 1 : 0;
      }
    }
    sum.add_scaled(sign, mag[0], base_exp);
    sum.add_scaled(sign, mag[1], base_exp + 64);
    sum.add_scaled(sign, mag[2], base_exp + 128);
  }
};

}  // namespace

void DpUnit::accumulate_dot(std::span<const LaneOperand> a,
                            std::span<const LaneOperand> b,
                            fp::ExactAccumulator& sum) const {
  M3XU_CHECK(a.size() == b.size());
  // First pass: specials and the product exponent window.
  struct Product {
    bool sign;
    std::uint64_t sig;
    int exp;
  };
  // Stack buffer for typical step widths; spill to the direct path for
  // very long lanes.
  constexpr std::size_t kMaxFast = 64;
  Product products[kMaxFast];
  std::size_t count = 0;
  int emin = 0, emax = 0;
  bool fast_ok = config_.enable_fast_path && a.size() <= kMaxFast;

  for (std::size_t i = 0; i < a.size(); ++i) {
    const LaneOperand& x = a[i];
    const LaneOperand& y = b[i];
    if (x.cls == LaneOperand::Cls::kFinite &&
        y.cls == LaneOperand::Cls::kFinite) {
      M3XU_DCHECK(x.sig != 0 && x.sig < (std::uint64_t{1} << config_.mult_bits));
      M3XU_DCHECK(y.sig != 0 && y.sig < (std::uint64_t{1} << config_.mult_bits));
      std::uint64_t p = x.sig * y.sig;  // mult_bits <= 31: fits
      if (config_.injector != nullptr) {
        p = config_.injector->corrupt(fault::Site::kPartialProduct, p,
                                      2 * config_.mult_bits);
      }
      const int e = x.exp2 + y.exp2;
      if (fast_ok) {
        if (count == 0) {
          emin = emax = e;
        } else {
          emin = std::min(emin, e);
          emax = std::max(emax, e);
        }
        products[count++] = {static_cast<bool>(x.sign ^ y.sign), p, e};
      } else {
        sum.add_scaled(x.sign ^ y.sign, p, e);
      }
      continue;
    }
    if (x.cls == LaneOperand::Cls::kNaN || y.cls == LaneOperand::Cls::kNaN) {
      sum.set_nan();
      continue;
    }
    if (x.cls == LaneOperand::Cls::kInf || y.cls == LaneOperand::Cls::kInf) {
      if (x.cls == LaneOperand::Cls::kZero ||
          y.cls == LaneOperand::Cls::kZero) {
        sum.set_nan();  // Inf * 0
      } else {
        fp::Unpacked inf;
        inf.cls = fp::FpClass::kInf;
        inf.sign = x.sign ^ y.sign;
        sum.add_unpacked(inf);
      }
      continue;
    }
    // At least one zero operand: contributes nothing.
  }
  if (!fast_ok || count == 0) {
    if (fast_ok) return;  // nothing buffered
    return;               // direct path already accumulated
  }
  // Fast path applies when the aligned products fit the 192-bit window
  // with headroom for carries (62-bit products + 120-bit span + log2 n).
  if (emax - emin <= 120) {
    Local192 local;
    for (std::size_t i = 0; i < count; ++i) {
      local.add(products[i].sign, products[i].sig, products[i].exp - emin);
    }
    local.flush(sum, emin);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    sum.add_scaled(products[i].sign, products[i].sig, products[i].exp);
  }
}

}  // namespace m3xu::core
