// FP128 (IEEE binary128) dot products composed from narrow multipliers
// - the far end of the SIV-C design space ("this analogous approach
// easily extends to even higher bitwidth floating-point formats, such
// as FP128"). The host's __float128 provides storage and the
// correctly-rounded reference arithmetic; the engine splits the
// 113-bit significand into `part_bits`-wide parts, multiplies parts
// exactly, sums all partial products of a dot product in a wide
// fixed-point window, and rounds once back to binary128.
//
// Range restriction: |unbiased exponent| <= 1500 (checked), so partial
// products fit the internal window; full-range binary128 would need a
// ~33k-bit accumulator, which real hardware would avoid the same way.
#pragma once

#include <span>

namespace m3xu::core {

class Fp128Engine {
 public:
  /// part_bits in [4, 28]: 113 bits split into ceil(113/part_bits)
  /// parts; a dot product needs parts^2 product-class steps.
  explicit Fp128Engine(int part_bits = 28);

  int parts() const { return parts_; }
  int steps() const { return parts_ * parts_; }

  /// round_binary128(sum_k a[k]*b[k] + c), with exact partial products
  /// and a single rounding. Subnormals flush; specials follow IEEE
  /// product/sum semantics (NaN poisons, Inf-Inf is NaN).
  __float128 dot(std::span<const __float128> a,
                 std::span<const __float128> b, __float128 c) const;

 private:
  int part_bits_;
  int parts_;
};

}  // namespace m3xu::core
