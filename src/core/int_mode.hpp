// Integer-semiring modes (Observation 1 is stated for "any Matrix
// Semiring operation", not just floating point): the INT8 IMMA
// baseline every commercial MXU ships, and 32-bit integer GEMM
// composed from 16-bit sub-multipliers with the same two-step
// high/low-part scheme as the FP32 mode - exact by construction, since
// integer partial products never round.
#pragma once

#include <cstdint>
#include <span>

namespace m3xu::core {

class IntEngine {
 public:
  /// C += A*B with int8 inputs and int32 accumulation (the IMMA
  /// baseline mode; exact - no overflow for k <= 2^16).
  static void gemm_s8(int m, int n, int k, const std::int8_t* a, int lda,
                      const std::int8_t* b, int ldb, std::int32_t* c,
                      int ldc);

  /// One two-step dot product of int32 values on 16-bit multipliers:
  /// a = aH*2^16 + aL (aH signed high half, aL unsigned low half);
  /// step 0 accumulates aH*bH << 32 and aL*bL, step 1 the cross terms
  /// << 16 - the integer analog of Eq. 3. Returns the exact int64 sum
  /// (callers keep k and magnitudes within int64 range).
  static std::int64_t dot_s32_multistep(std::span<const std::int32_t> a,
                                        std::span<const std::int32_t> b);

  /// C += A*B with int32 inputs and int64 accumulation via the
  /// two-step scheme.
  static void gemm_s32(int m, int n, int k, const std::int32_t* a, int lda,
                       const std::int32_t* b, int ldb, std::int64_t* c,
                       int ldc);
};

}  // namespace m3xu::core
