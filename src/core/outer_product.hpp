// Outer-product-unit M3XU (SII-A: "the extension that M3XU proposes
// can apply to any MXU architecture, regardless of whether the
// underlying implementation is dot-product-unit-based, outer-product-
// unit-based, or a systolic array").
//
// Same data-assignment split and step schedule, different dataflow:
// each K element contributes a rank-1 update of the output tile. With
// the idealized exact adder tree the two dataflows are provably
// bit-identical under per-instruction rounding (exact accumulation is
// commutative) - a property the tests check against M3xuEngine. Under
// per-element rounding (one register update per rank-1 step, the
// natural outer-product hardware behavior) results differ by at most
// the accumulation-register quantum.
#pragma once

#include <span>

#include "core/mxu.hpp"

namespace m3xu::core {

class OuterProductEngine {
 public:
  explicit OuterProductEngine(const M3xuConfig& config = {});

  /// One FP32-mode MMA instruction over an m x n x k tile
  /// (k <= shape_for(kFp32).k): D = A*B + C, row-major with leading
  /// dimensions, computed as k rank-1 updates of split operands.
  void mma_fp32(int m, int n, int k, const float* a, int lda,
                const float* b, int ldb, const float* c, int ldc, float* d,
                int ldd) const;

  const M3xuConfig& config() const { return config_; }

 private:
  M3xuConfig config_;
};

}  // namespace m3xu::core
