// Register-blocked microkernel for the packed M3XU datapath.
//
// The per-element prepacked path (mxu.cpp) re-decodes the same A lane
// operands for every output column, re-reads the B lanes for every row,
// and re-derives the fused-round exponent window per dot product. The
// microkernel computes a kMicroMr x kMicroNr output block per pass over
// the packed K lanes instead:
//
//   - A decode is hoisted once per block row per k-chunk and reused
//     across all NR columns; each B column decodes once and is reused
//     across all MR rows. The decode recombines an element's two
//     12-bit parts into one 64-bit word (they share a sign and sit 12
//     apart, fp/split.hpp), so one 64x64->128 multiply per operand
//     pair yields all four partial products at disjoint bit fields -
//     both architectural steps' terms, including the step-1 crossed
//     order and the FP32C component pairings, fall out of one product;
//   - streaming eligibility and the fused-round window bound come from
//     the panels' pack-time exponent prescan (PanelChunkMeta), decided
//     once per (row, chunk) / (col, chunk) instead of per dot;
//   - the term build runs over structure-of-arrays slots with a fixed
//     trip count, with an explicit AVX2 path behind M3XU_ENABLE_SIMD
//     (runtime-dispatched) and the scalar loop as the always-built
//     fallback.
//
// Bit-identity: each architectural step still computes
// reg' = RNE_prec(reg + exact step sum), and chunk boundaries still
// pack the register to FP32, so results are bit-identical to the
// per-dot ExactAccumulator route (core/fused_round.hpp documents why).
// Any (i, j, chunk) the prescan cannot prove safe - wide exponent span,
// non-prec-exact register, Inf/NaN register - re-runs that chunk
// through the generic ExactAccumulator path on the same panel slices.
// Callers must keep injector-attached runs on the per-element path:
// the microkernel has no fault hooks, by design (fault-site opportunity
// order is defined by the per-dot schedule).
#pragma once

#include <complex>

#include "core/dp_unit.hpp"
#include "core/packed_panel.hpp"

namespace m3xu::core {

/// Default output-block shape (the smallest supported block; also the
/// shape the scalar variant defaults to, where decode amortization
/// matters less than register pressure).
inline constexpr int kMicroMr = 4;
inline constexpr int kMicroNr = 4;

/// Term-build SIMD variant. kAuto resolves to the widest lane the CPU
/// supports at runtime (__builtin_cpu_supports); the scalar path is
/// always built and every variant is bit-identical - dispatch is a
/// pure throughput choice. The M3XU_MK_VARIANT environment variable
/// (scalar / avx2 / avx512) caps what kAuto resolves to, so CI can
/// force the non-SIMD path without touching configs.
enum class MkVariant : int { kAuto = 0, kScalar = 1, kAvx2 = 2, kAvx512 = 3 };

const char* mk_variant_name(MkVariant v);

/// True when the build compiled the variant in and the CPU supports it
/// at runtime. kScalar and kAuto are always available.
bool mk_variant_available(MkVariant v);

/// The variant a request actually dispatches to: kAuto picks the best
/// available (capped by M3XU_MK_VARIANT); a forced-but-unavailable
/// variant clamps down to the widest available one below it. The
/// result always satisfies mk_variant_available().
MkVariant mk_variant_resolve(MkVariant requested);

/// A rectangular register-block shape (MR x NR output accumulators per
/// pass over the packed K lanes). Bigger blocks amortize the per-chunk
/// operand decode over more reuses - the decode cost per output scales
/// as (MR+NR)/(MR*NR) - at the price of more live accumulator state.
struct MkBlockShape {
  int mr = kMicroMr;
  int nr = kMicroNr;
};

/// The template-instantiated shape set: 4x4, 6x8, 8x8.
bool mk_block_supported(int mr, int nr);

/// Resolves a configured shape: (0, 0) picks the per-CPU default (8x8
/// when any SIMD variant is active, 4x4 for scalar); anything else
/// must be a supported pair (M3XU_CHECK).
MkBlockShape mk_block_resolve(int mr, int nr);

/// Rounding + dispatch configuration threaded from M3xuConfig (the
/// microkernel is engine-independent so tests can drive it directly).
/// variant/mr/nr must already make sense together: mr/nr a supported
/// pair (callers go through mk_block_resolve), variant resolved per
/// block via mk_variant_resolve.
struct MicrokernelParams {
  bool per_step_rounding = true;
  int accum_prec = 48;
  MkVariant variant = MkVariant::kAuto;
  int mr = kMicroMr;
  int nr = kMicroNr;
  /// Software-prefetch the next packed K-chunk's hi/lo lanes while the
  /// current chunk computes (off for tiny panels in tests).
  bool prefetch = true;
};

/// True when any SIMD term-build path is compiled in and the CPU
/// supports it (runtime-dispatched; the scalar path is always built).
bool microkernel_simd_active();

/// Computes the p.mr x p.nr block C += A*B at panel offset
/// (row0, col0) over the panels' full K. `c` points at the block's
/// top-left output element. Requires row0+p.mr <= a.rows,
/// col0+p.nr <= b.cols, a.k == b.k, and special-free panels.
void microkernel_fp32_block(const PackedPanelFp32A& a, int row0,
                            const PackedPanelFp32B& b, int col0,
                            const DpUnit& unit, const MicrokernelParams& p,
                            float* c, int ldc);

void microkernel_fp32c_block(const PackedPanelFp32cA& a, int row0,
                             const PackedPanelFp32cB& b, int col0,
                             const DpUnit& unit, const MicrokernelParams& p,
                             std::complex<float>* c, int ldc);

}  // namespace m3xu::core
