#include "core/systolic.hpp"

#include <vector>

#include "common/check.hpp"
#include "core/data_assignment.hpp"
#include "core/dp_unit.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"

namespace m3xu::core {

SystolicEngine::SystolicEngine(const M3xuConfig& config) : config_(config) {
  M3XU_CHECK(config_.accum_prec >= 24 && config_.accum_prec <= 63);
}

void SystolicEngine::mma_fp32(int m, int n, int k, const float* a, int lda,
                              const float* b, int ldb, const float* c,
                              int ldc, float* d, int ldd) const {
  M3XU_CHECK(k >= 0 && k <= shape_for(MxuMode::kFp32).k);
  const DpUnit unit(DpUnitConfig{12});
  // Pre-split the stationary B operands once (they are loaded into the
  // PE grid before the wavefront starts - the dataflow's whole point).
  struct SplitB {
    std::array<StepOperands, 2> steps;  // per PE, per row element of A
  };
  // For each output row i of A streaming through, column j accumulates
  // sum_kk a[i][kk]*b[kk][j] as the partial sum hops down the k chain.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (config_.per_step_rounding) {
        // Per-hop rounding: each PE adds its product pair into the
        // traveling 48-bit partial sum.
        fp::ExtFloat psum =
            fp::ExtFloat::from_float(c[i * ldc + j], config_.accum_prec);
        for (int kk = 0; kk < k; ++kk) {
          const float av = a[i * lda + kk];
          const float bv = b[kk * ldb + j];
          const auto steps = DataAssignmentStage::schedule_fp32(
              std::span<const float>(&av, 1), std::span<const float>(&bv, 1));
          fp::ExactAccumulator hop;
          unit.accumulate_dot(steps[0].a, steps[0].b, hop);
          unit.accumulate_dot(steps[1].a, steps[1].b, hop);
          psum = psum.plus_exact(hop);
        }
        d[i * ldd + j] = psum.to_float();
      } else {
        fp::ExactAccumulator acc;
        acc.add_unpacked(fp::unpack(c[i * ldc + j]));
        for (int kk = 0; kk < k; ++kk) {
          const float av = a[i * lda + kk];
          const float bv = b[kk * ldb + j];
          const auto steps = DataAssignmentStage::schedule_fp32(
              std::span<const float>(&av, 1), std::span<const float>(&bv, 1));
          unit.accumulate_dot(steps[0].a, steps[0].b, acc);
          unit.accumulate_dot(steps[1].a, steps[1].b, acc);
        }
        d[i * ldd + j] = fp::pack_to_float(
            acc.round_to_precision(config_.accum_prec));
      }
    }
  }
}

}  // namespace m3xu::core
