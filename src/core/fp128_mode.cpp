#include "core/fp128_mode.hpp"

#include <array>
#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::core {

namespace {

constexpr int kSigBits = 113;   // binary128 significand incl. hidden 1
constexpr int kExpBias = 16383;
constexpr int kMaxAbsExp = 1500;  // supported |unbiased exponent|

struct Q {
  enum class Cls { kZero, kFinite, kInf, kNaN };
  Cls cls = Cls::kZero;
  bool sign = false;
  int exp = 0;  // value = sig * 2^(exp - 112)
  unsigned __int128 sig = 0;
};

Q unpack_q(__float128 v) {
  std::uint64_t w[2];
  std::memcpy(w, &v, 16);  // x86-64: w[1] holds sign/exp/top fraction
  Q q;
  q.sign = (w[1] >> 63) != 0;
  const int biased = static_cast<int>((w[1] >> 48) & 0x7fff);
  const unsigned __int128 frac =
      (static_cast<unsigned __int128>(w[1] & 0xffffffffffffull) << 64) |
      w[0];
  if (biased == 0x7fff) {
    q.cls = frac != 0 ? Q::Cls::kNaN : Q::Cls::kInf;
    return q;
  }
  if (biased == 0) return q;  // zero or flushed subnormal
  q.cls = Q::Cls::kFinite;
  q.exp = biased - kExpBias;
  M3XU_CHECK(q.exp >= -kMaxAbsExp && q.exp <= kMaxAbsExp);
  q.sig = (static_cast<unsigned __int128>(1) << 112) | frac;
  return q;
}

__float128 pack_q(bool sign, int exp, unsigned __int128 sig113) {
  // sig113 has its leading bit at position 112.
  const int biased = exp + kExpBias;
  M3XU_CHECK(biased >= 1 && biased <= 0x7ffe);
  const unsigned __int128 frac =
      sig113 & (((static_cast<unsigned __int128>(1) << 112)) - 1);
  std::uint64_t w[2];
  w[0] = static_cast<std::uint64_t>(frac);
  w[1] = (static_cast<std::uint64_t>(sign) << 63) |
         (static_cast<std::uint64_t>(biased) << 48) |
         static_cast<std::uint64_t>(frac >> 64);
  __float128 out;
  std::memcpy(&out, w, 16);
  return out;
}

__float128 make_special(bool nan, bool sign) {
  std::uint64_t w[2];
  w[0] = nan ? 1u : 0u;
  w[1] = (static_cast<std::uint64_t>(sign) << 63) |
         (static_cast<std::uint64_t>(0x7fff) << 48) |
         (nan ? (std::uint64_t{1} << 47) : 0);
  __float128 out;
  std::memcpy(&out, w, 16);
  return out;
}

/// Two's-complement fixed-point window sized for the restricted
/// exponent range: bit 0 weighs 2^kLsb.
struct Wide {
  static constexpr int kWords = 104;
  static constexpr int kLsb = -3300;

  std::array<std::uint64_t, kWords> w{};
  bool nan = false;
  bool pinf = false;
  bool ninf = false;

  void add_scaled(bool sign, std::uint64_t sig, int exp) {
    if (sig == 0) return;
    const int pos = exp - kLsb;
    M3XU_CHECK(pos >= 0 && pos / 64 + 2 < kWords);
    const int word = pos / 64;
    const int sh = pos % 64;
    const std::uint64_t lo = sig << sh;
    const std::uint64_t hi = sh ? (sig >> (64 - sh)) : 0;
    if (!sign) {
      std::uint64_t old = w[word];
      w[word] += lo;
      std::uint64_t carry = w[word] < old ? 1 : 0;
      std::uint64_t add = hi + carry;
      for (int i = word + 1; add != 0 && i < kWords; ++i) {
        old = w[i];
        w[i] += add;
        add = w[i] < old ? 1 : 0;
      }
    } else {
      std::uint64_t old = w[word];
      w[word] -= lo;
      std::uint64_t borrow = w[word] > old ? 1 : 0;
      std::uint64_t sub = hi + borrow;
      for (int i = word + 1; sub != 0 && i < kWords; ++i) {
        old = w[i];
        w[i] -= sub;
        sub = w[i] > old ? 1 : 0;
      }
    }
  }

  /// Adds a full 113-bit significand value sig * 2^(exp).
  void add_sig113(bool sign, unsigned __int128 sig, int exp) {
    add_scaled(sign, static_cast<std::uint64_t>(sig), exp);
    add_scaled(sign, static_cast<std::uint64_t>(sig >> 64), exp + 64);
  }

  __float128 round() const {
    if (nan || (pinf && ninf)) return make_special(true, false);
    if (pinf || ninf) return make_special(false, ninf);
    std::array<std::uint64_t, kWords> mag = w;
    const bool negative = (mag[kWords - 1] >> 63) != 0;
    if (negative) {
      std::uint64_t carry = 1;
      for (auto& word : mag) {
        const std::uint64_t inv = ~word;
        word = inv + carry;
        carry = word < inv ? 1 : 0;
      }
    }
    int top = kWords - 1;
    while (top >= 0 && mag[top] == 0) --top;
    if (top < 0) return __float128(0);
    const int h = top * 64 + highest_bit(mag[top]);
    // Extract bits [h .. h-112] and a sticky below.
    auto bit_at = [&](int idx) -> int {
      if (idx < 0) return 0;
      return (mag[idx / 64] >> (idx % 64)) & 1;
    };
    unsigned __int128 sig = 0;
    for (int i = 0; i < kSigBits; ++i) {
      sig = (sig << 1) | static_cast<unsigned>(bit_at(h - i));
    }
    const int guard = bit_at(h - kSigBits);
    bool sticky = false;
    for (int idx = 0; idx < h - kSigBits && !sticky; ++idx) {
      // Word-level fast path.
      if (idx % 64 == 0 && idx + 64 <= h - kSigBits) {
        sticky = mag[idx / 64] != 0;
        idx += 63;
      } else {
        sticky = bit_at(idx) != 0;
      }
    }
    int exp = Wide::kLsb + h;  // exponent of the leading bit
    if (guard && (sticky || (sig & 1))) {
      ++sig;
      if (sig >> kSigBits) {
        sig >>= 1;
        ++exp;
      }
    }
    return pack_q(negative, exp, sig);
  }
};

}  // namespace

Fp128Engine::Fp128Engine(int part_bits) : part_bits_(part_bits) {
  M3XU_CHECK(part_bits >= 4 && part_bits <= 28);
  parts_ = (kSigBits + part_bits - 1) / part_bits;
}

__float128 Fp128Engine::dot(std::span<const __float128> a,
                            std::span<const __float128> b,
                            __float128 c) const {
  M3XU_CHECK(a.size() == b.size());
  Wide acc;
  const std::uint64_t mask = low_mask(part_bits_);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Q x = unpack_q(a[i]);
    const Q y = unpack_q(b[i]);
    if (x.cls == Q::Cls::kNaN || y.cls == Q::Cls::kNaN) {
      acc.nan = true;
      continue;
    }
    if (x.cls == Q::Cls::kInf || y.cls == Q::Cls::kInf) {
      if (x.cls == Q::Cls::kZero || y.cls == Q::Cls::kZero) {
        acc.nan = true;
      } else {
        ((x.sign ^ y.sign) ? acc.ninf : acc.pinf) = true;
      }
      continue;
    }
    if (x.cls == Q::Cls::kZero || y.cls == Q::Cls::kZero) continue;
    const bool sign = x.sign ^ y.sign;
    // All parts^2 product classes, exactly.
    for (int p = 0; p < parts_; ++p) {
      const std::uint64_t xp =
          static_cast<std::uint64_t>(x.sig >> (p * part_bits_)) & mask;
      if (xp == 0) continue;
      for (int r = 0; r < parts_; ++r) {
        const std::uint64_t yp =
            static_cast<std::uint64_t>(y.sig >> (r * part_bits_)) & mask;
        if (yp == 0) continue;
        acc.add_scaled(sign, xp * yp,
                       (x.exp - 112 + p * part_bits_) +
                           (y.exp - 112 + r * part_bits_));
      }
    }
  }
  const Q qc = unpack_q(c);
  switch (qc.cls) {
    case Q::Cls::kNaN:
      acc.nan = true;
      break;
    case Q::Cls::kInf:
      (qc.sign ? acc.ninf : acc.pinf) = true;
      break;
    case Q::Cls::kFinite:
      acc.add_sig113(qc.sign, qc.sig, qc.exp - 112);
      break;
    case Q::Cls::kZero:
      break;
  }
  return acc.round();
}

}  // namespace m3xu::core
