#include "core/data_assignment.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "fault/injector.hpp"
#include "fp/split.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::core {

namespace {

struct Fp64Split {
  LaneOperand hi;
  LaneOperand lo;
};

/// Hardware split of an FP64 value into 27-bit high / 26-bit low parts
/// (SIV-C: "options like ... 32-bit multipliers"; we model the 27-bit
/// sub-multiplier needed for an exact two-way split of the 53-bit
/// significand). Subnormal inputs flush to zero like the FP32 path.
Fp64Split split_fp64_hw(double v) {
  const std::uint64_t b = bits_of(v);
  const bool sign = (b >> 63) != 0;
  const std::uint64_t exp_biased = (b >> 52) & 0x7ff;
  const std::uint64_t frac = b & low_mask(52);
  Fp64Split s;
  s.hi.sign = sign;
  s.lo.sign = sign;
  if (exp_biased == 0x7ff) {
    s.hi.cls = frac != 0 ? LaneOperand::Cls::kNaN : LaneOperand::Cls::kInf;
    return s;
  }
  if (exp_biased == 0) return s;  // zero or flushed subnormal
  const std::uint64_t m = (std::uint64_t{1} << 52) | frac;
  const int e = static_cast<int>(exp_biased) - 1023;
  s.hi.cls = LaneOperand::Cls::kFinite;
  s.hi.sig = m >> 26;  // 27 bits, hidden 1 at bit 26
  s.hi.exp2 = e - 26;
  const std::uint64_t lo_sig = m & low_mask(26);
  if (lo_sig != 0) {
    s.lo.cls = LaneOperand::Cls::kFinite;
    s.lo.sig = lo_sig;
    s.lo.exp2 = e - 52;
  }
  return s;
}

void push_pair(StepOperands& step, const LaneOperand& a,
               const LaneOperand& b) {
  step.a.push_back(a);
  step.b.push_back(b);
}

// --- Fault-injection hook ---------------------------------------------
//
// Each finite lane operand written into a step's buffers is one
// injection opportunity on its side's site. A flip that clears the
// whole significand field turns the operand into a zero lane (the
// dp unit requires sig != 0 for finite operands); special-bypass lanes
// keep their class placeholder untouched apart from the significand,
// which is irrelevant to Inf/NaN propagation.

void corrupt_lane(const fault::FaultInjector* injector, fault::Site site,
                  LaneOperand& op, int width) {
  if (op.cls != LaneOperand::Cls::kFinite) return;
  const std::uint64_t flipped = injector->corrupt(site, op.sig, width);
  if (flipped == op.sig) return;
  op.sig = flipped;
  if (op.sig == 0) op.cls = LaneOperand::Cls::kZero;
}

// --- Special-value handling -------------------------------------------
//
// A non-finite element cannot be decomposed into high/low parts (the
// cross lanes of Inf*Inf would see Inf*0 and spuriously produce NaN).
// Real hardware detects the all-ones exponent before the split and
// routes the element through a bypass; we model that by emitting a
// single element-level lane whose operands carry only the class and
// sign of the full values - exactly the information IEEE product
// special-casing needs.

bool f32_is_special(float v) {
  return ((bits_of(v) >> 23) & 0xff) == 0xff;
}

bool f64_is_special(double v) {
  return ((bits_of(v) >> 52) & 0x7ff) == 0x7ff;
}

LaneOperand class_operand_f32(float v) {
  const std::uint32_t b = bits_of(v);
  LaneOperand op;
  op.sign = (b >> 31) != 0;
  const std::uint32_t e = (b >> 23) & 0xff;
  const std::uint32_t frac = b & static_cast<std::uint32_t>(low_mask(23));
  if (e == 0xff) {
    op.cls = frac ? LaneOperand::Cls::kNaN : LaneOperand::Cls::kInf;
  } else if (e == 0) {
    op.cls = LaneOperand::Cls::kZero;  // zero, or subnormal (flushed)
  } else {
    // Magnitude is irrelevant on the special path; a unit placeholder
    // keeps the class/sign semantics.
    op.cls = LaneOperand::Cls::kFinite;
    op.sig = 1;
  }
  return op;
}

LaneOperand class_operand_f64(double v) {
  const std::uint64_t b = bits_of(v);
  LaneOperand op;
  op.sign = (b >> 63) != 0;
  const std::uint64_t e = (b >> 52) & 0x7ff;
  const std::uint64_t frac = b & low_mask(52);
  if (e == 0x7ff) {
    op.cls = frac ? LaneOperand::Cls::kNaN : LaneOperand::Cls::kInf;
  } else if (e == 0) {
    op.cls = LaneOperand::Cls::kZero;  // zero, or subnormal (flushed)
  } else {
    op.cls = LaneOperand::Cls::kFinite;
    op.sig = 1;
  }
  return op;
}

}  // namespace

bool DataAssignmentStage::is_special_fp32(float v) { return f32_is_special(v); }

LaneOperand DataAssignmentStage::class_operand_fp32(float v) {
  return class_operand_f32(v);
}

void DataAssignmentStage::corrupt_step(const fault::FaultInjector* injector,
                                       StepOperands& step, int width) {
  if (injector == nullptr) return;
  for (LaneOperand& op : step.a) {
    corrupt_lane(injector, fault::Site::kOperandA, op, width);
  }
  for (LaneOperand& op : step.b) {
    corrupt_lane(injector, fault::Site::kOperandB, op, width);
  }
}

StepOperands DataAssignmentStage::schedule_passthrough(
    std::span<const float> a, std::span<const float> b,
    const fp::FloatFormat& fmt, const fault::FaultInjector* injector) {
  M3XU_CHECK(a.size() == b.size());
  StepOperands step;
  step.a.reserve(a.size());
  step.b.reserve(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float fa = fp::round_to_format(a[i], fmt);
    const float fb = fp::round_to_format(b[i], fmt);
    step.a.push_back(from_unpacked(fp::unpack(fa), fmt.sig_bits()));
    step.b.push_back(from_unpacked(fp::unpack(fb), fmt.sig_bits()));
  }
  corrupt_step(injector, step, fmt.sig_bits());
  return step;
}

std::array<StepOperands, 2> DataAssignmentStage::schedule_fp32(
    std::span<const float> a, std::span<const float> b,
    const fault::FaultInjector* injector) {
  M3XU_CHECK(a.size() == b.size());
  std::array<StepOperands, 2> steps;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (f32_is_special(a[i]) || f32_is_special(b[i])) {
      push_pair(steps[0], class_operand_f32(a[i]), class_operand_f32(b[i]));
      continue;
    }
    const fp::HwSplit sa = fp::split_fp32_hw(a[i]);
    const fp::HwSplit sb = fp::split_fp32_hw(b[i]);
    const LaneOperand ah = from_hw_part(sa.hi);
    const LaneOperand al = from_hw_part(sa.lo);
    const LaneOperand bh = from_hw_part(sb.hi);
    const LaneOperand bl = from_hw_part(sb.lo);
    // Step 0: like parts together (Eq. 6); step 1: B parts flipped
    // by the multiplexers (Eq. 8).
    push_pair(steps[0], ah, bh);
    push_pair(steps[0], al, bl);
    push_pair(steps[1], ah, bl);
    push_pair(steps[1], al, bh);
  }
  for (StepOperands& step : steps) corrupt_step(injector, step, kFp32PartBits);
  return steps;
}

DataAssignmentStage::ComplexSchedule DataAssignmentStage::schedule_fp32c(
    std::span<const std::complex<float>> a,
    std::span<const std::complex<float>> b,
    const fault::FaultInjector* injector) {
  M3XU_CHECK(a.size() == b.size());
  ComplexSchedule sched;
  // Emits one scalar product term x*y (optionally sign-flipped on the
  // x side, SIV-B) into a 2-step pair of operand streams: step s0 gets
  // the like-part lanes (Eq. 6), s1 the crossed lanes (Eq. 8). A term
  // with a non-finite factor takes the element-level special bypass.
  const auto emit_term = [](StepOperands& s0, StepOperands& s1, float x,
                            float y, bool negate_x) {
    if (f32_is_special(x) || f32_is_special(y)) {
      LaneOperand cx = class_operand_f32(x);
      if (negate_x) cx = cx.negated();
      push_pair(s0, cx, class_operand_f32(y));
      return;
    }
    const fp::HwSplit sx = fp::split_fp32_hw(x);
    const fp::HwSplit sy = fp::split_fp32_hw(y);
    LaneOperand xh = from_hw_part(sx.hi), xl = from_hw_part(sx.lo);
    const LaneOperand yh = from_hw_part(sy.hi), yl = from_hw_part(sy.lo);
    if (negate_x) {
      xh = xh.negated();
      xl = xl.negated();
    }
    push_pair(s0, xh, yh);
    push_pair(s0, xl, yl);
    push_pair(s1, xh, yl);
    push_pair(s1, xl, yh);
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Real part: AR*BR - AI*BI (the stage flips the sign bit of the
    // imaginary*imaginary first input); imaginary part: AR*BI + AI*BR.
    emit_term(sched.real[0], sched.real[1], a[i].real(), b[i].real(), false);
    emit_term(sched.real[0], sched.real[1], a[i].imag(), b[i].imag(), true);
    emit_term(sched.imag[0], sched.imag[1], a[i].real(), b[i].imag(), false);
    emit_term(sched.imag[0], sched.imag[1], a[i].imag(), b[i].real(), false);
  }
  for (StepOperands& step : sched.real) {
    corrupt_step(injector, step, kFp32PartBits);
  }
  for (StepOperands& step : sched.imag) {
    corrupt_step(injector, step, kFp32PartBits);
  }
  return sched;
}

std::array<StepOperands, 4> DataAssignmentStage::schedule_fp64(
    std::span<const double> a, std::span<const double> b,
    const fault::FaultInjector* injector) {
  M3XU_CHECK(a.size() == b.size());
  std::array<StepOperands, 4> steps;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (f64_is_special(a[i]) || f64_is_special(b[i])) {
      push_pair(steps[0], class_operand_f64(a[i]), class_operand_f64(b[i]));
      continue;
    }
    const Fp64Split sa = split_fp64_hw(a[i]);
    const Fp64Split sb = split_fp64_hw(b[i]);
    // Four product classes, one per step: HH, LL, HL, LH.
    push_pair(steps[0], sa.hi, sb.hi);
    push_pair(steps[1], sa.lo, sb.lo);
    push_pair(steps[2], sa.hi, sb.lo);
    push_pair(steps[3], sa.lo, sb.hi);
  }
  for (StepOperands& step : steps) {
    corrupt_step(injector, step, DataAssignmentStage::kFp64PartBits);
  }
  return steps;
}

DataAssignmentStage::Complex64Schedule DataAssignmentStage::schedule_fp64c(
    std::span<const std::complex<double>> a,
    std::span<const std::complex<double>> b,
    const fault::FaultInjector* injector) {
  M3XU_CHECK(a.size() == b.size());
  Complex64Schedule sched;
  // One scalar product term x*y spread over the four HH/LL/HL/LH
  // steps, optionally sign-flipped on the x side.
  const auto emit_term = [](std::array<StepOperands, 4>& steps, double x,
                            double y, bool negate_x) {
    if (f64_is_special(x) || f64_is_special(y)) {
      LaneOperand cx = class_operand_f64(x);
      if (negate_x) cx = cx.negated();
      push_pair(steps[0], cx, class_operand_f64(y));
      return;
    }
    Fp64Split sx = split_fp64_hw(x);
    const Fp64Split sy = split_fp64_hw(y);
    if (negate_x) {
      sx.hi = sx.hi.negated();
      sx.lo = sx.lo.negated();
    }
    push_pair(steps[0], sx.hi, sy.hi);
    push_pair(steps[1], sx.lo, sy.lo);
    push_pair(steps[2], sx.hi, sy.lo);
    push_pair(steps[3], sx.lo, sy.hi);
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    emit_term(sched.real, a[i].real(), b[i].real(), false);
    emit_term(sched.real, a[i].imag(), b[i].imag(), true);
    emit_term(sched.imag, a[i].real(), b[i].imag(), false);
    emit_term(sched.imag, a[i].imag(), b[i].real(), false);
  }
  for (StepOperands& step : sched.real) {
    corrupt_step(injector, step, DataAssignmentStage::kFp64PartBits);
  }
  for (StepOperands& step : sched.imag) {
    corrupt_step(injector, step, DataAssignmentStage::kFp64PartBits);
  }
  return sched;
}

}  // namespace m3xu::core
