#include "qsim/state_vector.hpp"

#include <cmath>

#include "common/check.hpp"

namespace m3xu::qsim {

Gate Gate::hadamard() {
  const float s = static_cast<float>(1.0 / std::sqrt(2.0));
  return {{{Amp(s, 0), Amp(s, 0)}, {Amp(s, 0), Amp(-s, 0)}}};
}

Gate Gate::pauli_x() {
  return {{{Amp(0, 0), Amp(1, 0)}, {Amp(1, 0), Amp(0, 0)}}};
}

Gate Gate::pauli_z() {
  return {{{Amp(1, 0), Amp(0, 0)}, {Amp(0, 0), Amp(-1, 0)}}};
}

Gate Gate::phase(double angle) {
  return {{{Amp(1, 0), Amp(0, 0)},
           {Amp(0, 0), Amp(static_cast<float>(std::cos(angle)),
                           static_cast<float>(std::sin(angle)))}}};
}

StateVector::StateVector(int qubits, const core::M3xuEngine* engine)
    : qubits_(qubits), engine_(engine) {
  M3XU_CHECK(qubits >= 1 && qubits <= 24);
  M3XU_CHECK(engine != nullptr);
  amps_.assign(std::size_t{1} << qubits, Amp{});
  scratch_.resize(amps_.size());
  amps_[0] = Amp(1.0f, 0.0f);
}

void StateVector::reset(std::size_t basis) {
  M3XU_CHECK(basis < amps_.size());
  std::fill(amps_.begin(), amps_.end(), Amp{});
  amps_[basis] = Amp(1.0f, 0.0f);
}

void StateVector::apply(const Gate& gate, int target) {
  M3XU_CHECK(target >= 0 && target < qubits_);
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t batch = amps_.size() / 2;
  // Gather the amplitude pairs into a 2 x batch matrix (row 0 = the
  // |0> components, row 1 = the |1> components).
  Amp* x0 = scratch_.data();
  Amp* x1 = scratch_.data() + batch;
  std::size_t col = 0;
  for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
    for (std::size_t o = 0; o < stride; ++o, ++col) {
      x0[col] = amps_[base + o];
      x1[col] = amps_[base + o + stride];
    }
  }
  // One 2 x batch x 2 CGEMM on the engine: Y = G * X.
  std::vector<Amp> y(2 * batch, Amp{});
  const Amp g[4] = {gate.m[0][0], gate.m[0][1], gate.m[1][0], gate.m[1][1]};
  engine_->gemm_fp32c(2, static_cast<int>(batch), 2, g, 2, scratch_.data(),
                      static_cast<int>(batch), y.data(),
                      static_cast<int>(batch));
  // Scatter back.
  col = 0;
  for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
    for (std::size_t o = 0; o < stride; ++o, ++col) {
      amps_[base + o] = y[col];
      amps_[base + o + stride] = y[batch + col];
    }
  }
}

void StateVector::apply_controlled(const Gate& gate, int control,
                                   int target) {
  M3XU_CHECK(control >= 0 && control < qubits_ && target >= 0 &&
             target < qubits_ && control != target);
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t cbit = std::size_t{1} << control;
  // Gather only the pairs whose control bit is set.
  std::vector<std::size_t> lows;
  lows.reserve(amps_.size() / 4);
  for (std::size_t b = 0; b < amps_.size(); ++b) {
    if ((b & cbit) && !(b & tbit)) lows.push_back(b);
  }
  const std::size_t batch = lows.size();
  if (batch == 0) return;
  Amp* x0 = scratch_.data();
  Amp* x1 = scratch_.data() + batch;
  for (std::size_t i = 0; i < batch; ++i) {
    x0[i] = amps_[lows[i]];
    x1[i] = amps_[lows[i] | tbit];
  }
  std::vector<Amp> y(2 * batch, Amp{});
  const Amp g[4] = {gate.m[0][0], gate.m[0][1], gate.m[1][0], gate.m[1][1]};
  engine_->gemm_fp32c(2, static_cast<int>(batch), 2, g, 2, scratch_.data(),
                      static_cast<int>(batch), y.data(),
                      static_cast<int>(batch));
  for (std::size_t i = 0; i < batch; ++i) {
    amps_[lows[i]] = y[i];
    amps_[lows[i] | tbit] = y[batch + i];
  }
}

double StateVector::norm() const {
  double acc = 0.0;
  for (const Amp& a : amps_) acc += std::norm(std::complex<double>(a));
  return acc;
}

double StateVector::probability(std::size_t basis) const {
  M3XU_CHECK(basis < amps_.size());
  return std::norm(std::complex<double>(amps_[basis]));
}

void StateVector::apply_qft() {
  constexpr double kPi = 3.14159265358979323846;
  for (int q = qubits_ - 1; q >= 0; --q) {
    apply(Gate::hadamard(), q);
    for (int c = q - 1; c >= 0; --c) {
      apply_controlled(Gate::phase(kPi / (1 << (q - c))), c, q);
    }
  }
}

}  // namespace m3xu::qsim
