// Quantum-circuit state-vector simulation on the M3XU FP32C engine
// (paper SI: "simulating quantum computing needs complex matrix
// multiplications to represent qubits and their operations").
//
// Gates apply as complex matrix multiplications: viewing the 2^n
// amplitude vector as a (2^(n-1-t) x 2 x 2^t) tensor, a 1-qubit gate on
// qubit t is a batched 2 x 2^t x 2 CGEMM; controlled gates restrict the
// batch to the control-set halves. All complex arithmetic runs through
// the engine's FP32C mode.
#pragma once

#include <complex>
#include <vector>

#include "core/mxu.hpp"

namespace m3xu::qsim {

using Amp = std::complex<float>;

/// A 2x2 complex gate, row-major.
struct Gate {
  Amp m[2][2];

  static Gate hadamard();
  static Gate pauli_x();
  static Gate pauli_z();
  static Gate phase(double angle);  // diag(1, e^{i angle})
};

class StateVector {
 public:
  /// |0...0> over `qubits` qubits (1 <= qubits <= 24).
  StateVector(int qubits, const core::M3xuEngine* engine);

  int qubits() const { return qubits_; }
  std::size_t dim() const { return amps_.size(); }
  const Amp& amplitude(std::size_t basis) const { return amps_[basis]; }

  /// Resets to the given computational basis state.
  void reset(std::size_t basis);

  /// Applies a 1-qubit gate to `target`.
  void apply(const Gate& gate, int target);

  /// Applies the gate to `target` only where `control` is |1>.
  void apply_controlled(const Gate& gate, int control, int target);

  /// Sum of |amplitude|^2 (1.0 for a normalized state).
  double norm() const;

  /// Measurement probability of basis state `basis`.
  double probability(std::size_t basis) const;

  /// Applies the quantum Fourier transform over all qubits (without
  /// the final bit-reversal swap network).
  void apply_qft();

 private:
  int qubits_;
  const core::M3xuEngine* engine_;
  std::vector<Amp> amps_;
  std::vector<Amp> scratch_;
};

}  // namespace m3xu::qsim
