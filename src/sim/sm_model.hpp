// Cycle-level SM model: resident CTAs' warps issue their instruction
// streams in order through per-scheduler pipes (tensor core, FP32,
// FP64, ALU, LSU) with cp.async commit-group dependencies, CTA
// barriers, shared-memory bandwidth, and an L2/DRAM bandwidth+latency
// channel whose per-SM share reflects the number of SMs running the
// kernel.
#pragma once

#include "sim/gpu_config.hpp"
#include "sim/instruction.hpp"

namespace m3xu::sim {

/// Per-CTA execution statistics (cycles are for the whole resident set;
/// op counts and bytes are per single CTA).
struct SmResult {
  double cycles = 0.0;          // until every resident CTA finished
  long mma_count = 0;           // per CTA
  long ffma_count = 0;          // per CTA (warp instructions)
  long dfma_count = 0;
  long alu_count = 0;
  double tc_busy_cycles = 0.0;  // summed over the SM's tensor cores
  double ldg_bytes = 0.0;       // per CTA, global reads
  double stg_bytes = 0.0;       // per CTA, global writes
  double smem_bytes = 0.0;      // per CTA
  bool hit_cycle_cap = false;
};

/// Simulates `ctas_resident` copies of `program` on one SM.
/// `l2_hit_fraction` of global bytes are served by L2; the rest go to
/// DRAM whose bandwidth is shared by `active_sms` SMs. `max_iterations`
/// truncates the mainloop (callers extrapolate steady state).
SmResult simulate_sm(const GpuConfig& config, const CtaProgram& program,
                     int ctas_resident, double l2_hit_fraction,
                     int active_sms, long max_iterations);

}  // namespace m3xu::sim
