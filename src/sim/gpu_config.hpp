// GPU configuration for the timing simulator - an A100-class device
// (the paper's testbed), with the M3XU extension parameters.
//
// Derived peak throughputs reproduce Table I:
//   FP32 SIMT : 108 SM x 64 lanes x 2 flop x 1.41 GHz = 19.5 TFLOPS
//   FP16 TC   : 108 SM x 4 TC x 512 flop/cyc x 1.41   = 312  TFLOPS
//   BF16 TC   : same rate as FP16 TC                  = 312  TFLOPS
//   TF32 TC   : half K per instruction                = 156  TFLOPS
//   M3XU FP32 : 2 steps, half K  -> 1/4 of FP16 TC    = 78   TFLOPS
//   M3XU FP32C: 4 steps, 1/4 K   -> 1/16 of FP16 TC   = 19.5 TFLOPS
//     (complex MACs: 4 real flops each -> 4x SIMT CGEMM throughput)
#pragma once

namespace m3xu::sim {

struct GpuConfig {
  // Compute.
  int num_sms = 108;
  int tensor_cores_per_sm = 4;
  double clock_ghz = 1.41;
  int fp32_lanes_per_sm = 64;   // CUDA cores
  int fp64_lanes_per_sm = 32;
  int schedulers_per_sm = 4;
  int max_warps_per_sm = 64;

  // Tensor core: one FP16 m16n8k16 MMA (4096 flops) per TC every
  // `hmma_ii` cycles -> 512 flops/TC/cycle.
  int hmma_ii = 8;
  int mma_latency = 24;

  // Memory system.
  double dram_bandwidth_gbs = 1555.0;
  double l2_bandwidth_bytes_per_sm_cycle = 40.0;
  double l2_capacity_bytes = 40.0 * 1024 * 1024;
  double smem_bytes_per_sm_cycle = 128.0;
  double smem_capacity_bytes = 164.0 * 1024.0;  // per SM
  int dram_latency_cycles = 450;
  int l2_latency_cycles = 200;
  int smem_latency_cycles = 25;

  // M3XU variant: the non-pipelined design runs at a lower clock
  // (cycle-time ratio 1.21 from the synthesis model / Table III).
  double m3xu_nonpipelined_clock_scale = 1.0 / 1.21;

  // Derived peaks (FLOPS).
  double fp32_simt_peak() const {
    return num_sms * fp32_lanes_per_sm * 2.0 * clock_ghz * 1e9;
  }
  double fp64_simt_peak() const {
    return num_sms * fp64_lanes_per_sm * 2.0 * clock_ghz * 1e9;
  }
  double fp16_simd_peak() const { return 4.0 * fp32_simt_peak(); }
  double bf16_simd_peak() const { return 2.0 * fp32_simt_peak(); }
  double tc_flops_per_cycle() const { return 4096.0 / hmma_ii; }
  double fp16_tc_peak() const {
    return num_sms * tensor_cores_per_sm * tc_flops_per_cycle() * clock_ghz *
           1e9;
  }
  double bf16_tc_peak() const { return fp16_tc_peak(); }
  double tf32_tc_peak() const { return fp16_tc_peak() / 2.0; }
  double m3xu_fp32_peak() const { return fp16_tc_peak() / 4.0; }
  // Complex flops counted as 4 real flops per complex MAC, matching
  // how cuBLAS reports CGEMM: same numerator as SGEMM of 4x the work.
  double m3xu_fp32c_peak() const { return fp16_tc_peak() / 16.0 * 4.0; }
  double m3xu_fp64_peak() const { return fp16_tc_peak() / 16.0; }
  double dram_bytes_per_sm_cycle() const {
    return dram_bandwidth_gbs * 1e9 / (clock_ghz * 1e9) / num_sms;
  }

  static GpuConfig a100() { return GpuConfig{}; }

  /// Hopper-class device (SIII-C: the M3XU FP32 target scales to
  /// ~248 TFLOPS). H100 SXM: 132 SMs, ~990 TFLOPS dense FP16 TC.
  static GpuConfig h100() {
    GpuConfig c;
    c.num_sms = 132;
    c.clock_ghz = 1.83;
    c.fp32_lanes_per_sm = 128;
    c.fp64_lanes_per_sm = 64;
    c.hmma_ii = 4;  // 1024 flops/TC/cycle
    c.dram_bandwidth_gbs = 3350.0;
    c.l2_capacity_bytes = 50.0 * 1024 * 1024;
    c.l2_bandwidth_bytes_per_sm_cycle = 48.0;
    return c;
  }

  /// CDNA2-class device (SIII-C: AMD Matrix Cores deliver 8x the SIMT
  /// FP32 rate, so an M3XU extension retains a 2x FP32 advantage).
  /// One MI250 GCD: 104 CUs, 22.6 TFLOPS FP32 vector, 181 TFLOPS FP16
  /// matrix (8x), 1.6 TB/s HBM2e.
  static GpuConfig mi250_gcd() {
    GpuConfig c;
    c.num_sms = 104;
    c.clock_ghz = 1.7;
    c.fp32_lanes_per_sm = 64;
    c.fp64_lanes_per_sm = 64;
    c.hmma_ii = 16;  // 256 flops per matrix unit per cycle
    c.tensor_cores_per_sm = 4;
    c.dram_bandwidth_gbs = 1638.0;
    c.l2_capacity_bytes = 8.0 * 1024 * 1024;
    return c;
  }
};

}  // namespace m3xu::sim
