#include "sim/sm_model.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace m3xu::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCycleCap = 20e6;

struct BandwidthQueue {
  double bytes_per_cycle = 1.0;
  double next_free = 0.0;

  /// Serves `bytes` starting no earlier than `now`; returns drain time.
  double serve(double now, double bytes) {
    const double start = std::max(now, next_free);
    next_free = start + bytes / bytes_per_cycle;
    return next_free;
  }
};

struct Pipe {
  double next_free = 0.0;
};

enum class Phase { kPrologue, kBody, kEpilogue, kDone };

struct WarpState {
  int cta = 0;
  Phase phase = Phase::kPrologue;
  std::size_t idx = 0;
  long iter = 0;
  double prev_complete = 0.0;
  bool bar_arrived = false;  // arrival registered for the pending kBar
  long bar_epoch = 0;
  std::vector<double> group_complete;  // abs ldg group -> drain cycle
};

struct CtaState {
  std::vector<int> bar_arrivals;      // per epoch
  std::vector<double> bar_release;    // per epoch, -1 = not yet
};

const Instr* current_instr(const CtaProgram& p, const WarpState& w,
                           long iters) {
  switch (w.phase) {
    case Phase::kPrologue:
      return &p.prologue[w.idx];
    case Phase::kBody:
      (void)iters;
      return &p.body[w.idx];
    case Phase::kEpilogue:
      return &p.epilogue[w.idx];
    case Phase::kDone:
      return nullptr;
  }
  return nullptr;
}

void advance(const CtaProgram& p, WarpState& w, long iters) {
  ++w.idx;
  switch (w.phase) {
    case Phase::kPrologue:
      if (w.idx >= p.prologue.size()) {
        w.idx = 0;
        w.phase = (iters > 0 && !p.body.empty()) ? Phase::kBody
                                                 : Phase::kEpilogue;
        if (w.phase == Phase::kEpilogue && p.epilogue.empty()) {
          w.phase = Phase::kDone;
        }
      }
      break;
    case Phase::kBody:
      if (w.idx >= p.body.size()) {
        w.idx = 0;
        ++w.iter;
        if (w.iter >= iters) {
          w.phase = p.epilogue.empty() ? Phase::kDone : Phase::kEpilogue;
        }
      }
      break;
    case Phase::kEpilogue:
      if (w.idx >= p.epilogue.size()) w.phase = Phase::kDone;
      break;
    case Phase::kDone:
      break;
  }
}

}  // namespace

SmResult simulate_sm(const GpuConfig& config, const CtaProgram& program,
                     int ctas_resident, double l2_hit_fraction,
                     int active_sms, long max_iterations) {
  M3XU_CHECK(ctas_resident >= 1);
  M3XU_CHECK(l2_hit_fraction >= 0.0 && l2_hit_fraction <= 1.0);
  M3XU_CHECK(active_sms >= 1);

  const long iters = std::min<long>(program.iterations, max_iterations);
  const int sched_count = config.schedulers_per_sm;
  const int warps_per_cta = program.warps;
  const int total_warps = ctas_resident * warps_per_cta;

  // Pipes. FP32: 64 lanes / 4 schedulers = 16 -> a 32-lane warp FFMA
  // occupies its quadrant for 2 cycles; FP64 half that rate.
  const int ffma_ii =
      std::max(1, 32 * sched_count / config.fp32_lanes_per_sm);
  const int dfma_ii =
      std::max(1, 32 * sched_count / config.fp64_lanes_per_sm);
  std::vector<Pipe> tc(sched_count), fp32(sched_count), fp64(sched_count),
      alu(sched_count), lsu(sched_count);

  BandwidthQueue smem{config.smem_bytes_per_sm_cycle};
  BandwidthQueue l2{config.l2_bandwidth_bytes_per_sm_cycle};
  BandwidthQueue dram{config.dram_bandwidth_gbs * 1e9 /
                      (config.clock_ghz * 1e9) / active_sms};

  std::vector<WarpState> warps(static_cast<std::size_t>(total_warps));
  std::vector<CtaState> ctas(static_cast<std::size_t>(ctas_resident));
  const std::size_t group_span = static_cast<std::size_t>(iters) + 8;
  for (int wi = 0; wi < total_warps; ++wi) {
    warps[wi].cta = wi / warps_per_cta;
    warps[wi].group_complete.assign(group_span, -1.0);
    if (program.prologue.empty()) {
      warps[wi].phase = (iters > 0 && !program.body.empty())
                            ? Phase::kBody
                            : (program.epilogue.empty() ? Phase::kDone
                                                        : Phase::kEpilogue);
    }
  }

  SmResult result;
  double now = 0.0;
  std::vector<int> rr(static_cast<std::size_t>(sched_count), 0);
  int done_warps = 0;
  for (const auto& w : warps) {
    if (w.phase == Phase::kDone) ++done_warps;
  }

  while (done_warps < total_warps) {
    if (now > kCycleCap) {
      result.hit_cycle_cap = true;
      break;
    }
    bool issued_any = false;
    double next_event = kInf;
    for (int s = 0; s < sched_count; ++s) {
      // One issue slot per scheduler per cycle; round-robin over the
      // scheduler's warps (warp w belongs to scheduler w % sched_count).
      const int warps_here = (total_warps - s + sched_count - 1) / sched_count;
      bool issued = false;
      for (int t = 0; t < warps_here && !issued; ++t) {
        const int slot = (rr[s] + t) % warps_here;
        const int wi = s + slot * sched_count;
        WarpState& w = warps[static_cast<std::size_t>(wi)];
        const Instr* instr = current_instr(program, w, iters);
        if (instr == nullptr) continue;
        // Dependency on the previous instruction's completion.
        if (instr->dep_on_prev && now < w.prev_complete) {
          next_event = std::min(next_event, w.prev_complete);
          continue;
        }
        CtaState& cta = ctas[static_cast<std::size_t>(w.cta)];
        double complete = now;
        switch (instr->op) {
          case Op::kWaitGroup: {
            const long target = (w.phase == Phase::kBody)
                                    ? w.iter - instr->group
                                    : instr->group;
            if (target >= 0) {
              const double ready =
                  target < static_cast<long>(group_span)
                      ? w.group_complete[static_cast<std::size_t>(target)]
                      : -1.0;
              if (ready < 0.0) continue;  // not even issued yet
              if (now < ready) {
                next_event = std::min(next_event, ready);
                continue;
              }
            }
            break;
          }
          case Op::kBar: {
            const std::size_t epoch = static_cast<std::size_t>(w.bar_epoch);
            if (cta.bar_arrivals.size() <= epoch) {
              cta.bar_arrivals.resize(epoch + 1, 0);
              cta.bar_release.resize(epoch + 1, -1.0);
            }
            if (!w.bar_arrived) {
              w.bar_arrived = true;
              ++cta.bar_arrivals[epoch];
              if (cta.bar_arrivals[epoch] == warps_per_cta) {
                cta.bar_release[epoch] = now + 1;
              }
            }
            if (cta.bar_release[epoch] < 0.0 ||
                now < cta.bar_release[epoch]) {
              if (cta.bar_release[epoch] >= 0.0) {
                next_event = std::min(next_event, cta.bar_release[epoch]);
              }
              continue;
            }
            w.bar_arrived = false;
            ++w.bar_epoch;
            break;
          }
          case Op::kLdgAsync: {
            if (lsu[s].next_free > now) {
              next_event = std::min(next_event, lsu[s].next_free);
              continue;
            }
            lsu[s].next_free = now + instr->pipe_cycles;
            const double miss_bytes = instr->bytes * (1.0 - l2_hit_fraction);
            const double l2_done = l2.serve(now, instr->bytes);
            double done = l2_done + config.l2_latency_cycles;
            if (miss_bytes > 0.0) {
              const double dram_done = dram.serve(now, miss_bytes);
              done = std::max(done, dram_done + config.dram_latency_cycles);
            }
            const long abs_group = (w.phase == Phase::kBody)
                                       ? w.iter + instr->group
                                       : instr->group;
            if (abs_group >= 0 &&
                abs_group < static_cast<long>(group_span)) {
              auto& slot_time =
                  w.group_complete[static_cast<std::size_t>(abs_group)];
              slot_time = std::max(slot_time, done);
            }
            result.ldg_bytes += instr->bytes;
            complete = done;
            break;
          }
          case Op::kStg: {
            if (lsu[s].next_free > now) {
              next_event = std::min(next_event, lsu[s].next_free);
              continue;
            }
            lsu[s].next_free = now + instr->pipe_cycles;
            l2.serve(now, instr->bytes);
            dram.serve(now, instr->bytes * (1.0 - l2_hit_fraction));
            result.stg_bytes += instr->bytes;
            complete = now + 1;
            break;
          }
          case Op::kLds:
          case Op::kSts: {
            if (lsu[s].next_free > now) {
              next_event = std::min(next_event, lsu[s].next_free);
              continue;
            }
            lsu[s].next_free = now + instr->pipe_cycles;
            const double done = smem.serve(now, instr->bytes);
            complete = done + config.smem_latency_cycles;
            result.smem_bytes += instr->bytes;
            break;
          }
          case Op::kMma: {
            if (tc[s].next_free > now) {
              next_event = std::min(next_event, tc[s].next_free);
              continue;
            }
            tc[s].next_free = now + instr->pipe_cycles;
            result.tc_busy_cycles += instr->pipe_cycles;
            ++result.mma_count;
            complete = now + config.mma_latency;
            break;
          }
          case Op::kFfma: {
            const double occupancy =
                static_cast<double>(instr->pipe_cycles) * ffma_ii;
            if (fp32[s].next_free > now) {
              next_event = std::min(next_event, fp32[s].next_free);
              continue;
            }
            fp32[s].next_free = now + occupancy;
            result.ffma_count += instr->pipe_cycles;
            complete = now + occupancy + 4;
            break;
          }
          case Op::kDfma: {
            const double occupancy =
                static_cast<double>(instr->pipe_cycles) * dfma_ii;
            if (fp64[s].next_free > now) {
              next_event = std::min(next_event, fp64[s].next_free);
              continue;
            }
            fp64[s].next_free = now + occupancy;
            result.dfma_count += instr->pipe_cycles;
            complete = now + occupancy + 4;
            break;
          }
          case Op::kAlu: {
            const double occupancy = static_cast<double>(instr->pipe_cycles);
            if (alu[s].next_free > now) {
              next_event = std::min(next_event, alu[s].next_free);
              continue;
            }
            alu[s].next_free = now + occupancy;
            result.alu_count += instr->pipe_cycles;
            complete = now + occupancy + 2;
            break;
          }
        }
        // Issued.
        result.cycles = std::max(result.cycles, complete);
        w.prev_complete = complete;
        advance(program, w, iters);
        if (w.phase == Phase::kDone) ++done_warps;
        rr[s] = (slot + 1) % warps_here;
        issued = true;
        issued_any = true;
      }
    }
    if (issued_any) {
      now += 1.0;
    } else if (next_event < kInf) {
      now = std::max(now + 1.0, next_event);
    } else {
      // All remaining warps are blocked with no future event: only
      // possible via a barrier nobody else will reach - a program bug.
      M3XU_CHECK(false && "SM model deadlock");
    }
  }

  // The kernel is finished when the last instruction completes and all
  // pending memory traffic (stores included) has drained.
  result.cycles = std::max({result.cycles, now, l2.next_free,
                            dram.next_free, smem.next_free});
  for (const Pipe& pipe : tc) {
    result.cycles = std::max(result.cycles, pipe.next_free);
  }
  for (const Pipe& pipe : fp32) {
    result.cycles = std::max(result.cycles, pipe.next_free);
  }
  for (const Pipe& pipe : fp64) {
    result.cycles = std::max(result.cycles, pipe.next_free);
  }
  const double ctas_d = static_cast<double>(ctas_resident);
  result.mma_count = static_cast<long>(result.mma_count / ctas_d);
  result.ffma_count = static_cast<long>(result.ffma_count / ctas_d);
  result.dfma_count = static_cast<long>(result.dfma_count / ctas_d);
  result.alu_count = static_cast<long>(result.alu_count / ctas_d);
  result.ldg_bytes /= ctas_d;
  result.stg_bytes /= ctas_d;
  result.smem_bytes /= ctas_d;
  return result;
}

}  // namespace m3xu::sim
