#include "sim/kernel_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/sm_model.hpp"

namespace m3xu::sim {

namespace {

// Mainloop iterations simulated before extrapolating. Two runs (half
// and full) give the steady-state slope without instrumentation.
constexpr long kSimIterations = 48;

}  // namespace

KernelTiming GpuSim::run(const KernelLaunch& launch) const {
  M3XU_CHECK(launch.grid_ctas >= 1);
  // Shared memory bounds occupancy; CTAs spread across SMs before
  // doubling up; a partial tail wave costs its fractional share (the
  // scheduler rebalances in practice).
  int ctas_per_sm = launch.ctas_per_sm;
  if (launch.smem_bytes_per_cta > 0.0) {
    const int fit = static_cast<int>(config_.smem_capacity_bytes /
                                     launch.smem_bytes_per_cta);
    M3XU_CHECK(fit >= 1);  // one CTA must fit
    ctas_per_sm = std::min(ctas_per_sm, fit);
  }
  const long resident_capacity =
      static_cast<long>(config_.num_sms) * ctas_per_sm;
  const double waves = std::max(
      1.0, static_cast<double>(launch.grid_ctas) / resident_capacity);
  const int active_sms = static_cast<int>(
      std::min<long>(config_.num_sms, launch.grid_ctas));
  const int resident = static_cast<int>(std::min<long>(
      ctas_per_sm,
      (launch.grid_ctas + active_sms - 1) / active_sms));

  const long iters = launch.program.iterations;
  double wave_cycles = 0.0;
  SmResult full;
  if (iters > kSimIterations) {
    // Simulate a truncated mainloop twice and extrapolate the slope.
    full = simulate_sm(config_, launch.program, resident,
                       launch.l2_hit_fraction, active_sms, kSimIterations);
    const SmResult half =
        simulate_sm(config_, launch.program, resident,
                    launch.l2_hit_fraction, active_sms, kSimIterations / 2);
    const double slope = (full.cycles - half.cycles) /
                         static_cast<double>(kSimIterations / 2);
    wave_cycles = full.cycles +
                  slope * static_cast<double>(iters - kSimIterations);
    // Scale the per-CTA byte/op counts from the truncated run.
    const double scale =
        static_cast<double>(iters) / static_cast<double>(kSimIterations);
    // ldg/smem traffic is dominated by the mainloop; prologue traffic
    // is (stages-1) iterations' worth and scales along with it.
    full.ldg_bytes *= scale;
    full.smem_bytes *= scale;
    full.mma_count = static_cast<long>(full.mma_count * scale);
    full.ffma_count = static_cast<long>(full.ffma_count * scale);
    full.dfma_count = static_cast<long>(full.dfma_count * scale);
    full.alu_count = static_cast<long>(full.alu_count * scale);
  } else {
    full = simulate_sm(config_, launch.program, resident,
                       launch.l2_hit_fraction, active_sms,
                       std::max<long>(iters, 0));
    wave_cycles = full.cycles;
  }
  M3XU_CHECK(!full.hit_cycle_cap);

  KernelTiming t;
  t.cycles = wave_cycles * waves;
  const double clock_hz = config_.clock_ghz * 1e9 * launch.clock_scale;
  t.seconds = t.cycles / clock_hz;

  const double grid = static_cast<double>(launch.grid_ctas);
  const double global_bytes = (full.ldg_bytes + full.stg_bytes) * grid;
  t.l2_bytes = global_bytes;
  t.dram_bytes = full.ldg_bytes * (1.0 - launch.l2_hit_fraction) * grid +
                 full.stg_bytes * grid;  // writes drain to DRAM
  t.smem_bytes = full.smem_bytes * grid;
  t.mma_instructions = static_cast<long>(full.mma_count * grid);
  t.ffma_instructions =
      static_cast<long>((full.ffma_count + full.dfma_count) * grid);
  t.alu_instructions = static_cast<long>(full.alu_count * grid);
  t.achieved_flops = t.seconds > 0.0 ? launch.flops / t.seconds : 0.0;

  // Energy: per-op + per-byte + static power over occupied SM-cycles.
  t.energy = static_cast<double>(t.mma_instructions) * launch.energy_per_mma +
             full.ffma_count * grid * launch.energy_per_ffma_warp +
             full.dfma_count * grid * launch.energy_per_dfma_warp +
             full.alu_count * grid * launch.energy_per_alu_warp +
             t.dram_bytes * energy_.per_dram_byte +
             t.l2_bytes * energy_.per_l2_byte +
             t.smem_bytes * energy_.per_smem_byte +
             t.cycles * active_sms * energy_.static_per_sm_cycle;
  return t;
}

KernelTiming operator+(const KernelTiming& a, const KernelTiming& b) {
  KernelTiming t;
  t.cycles = a.cycles + b.cycles;
  t.seconds = a.seconds + b.seconds;
  t.dram_bytes = a.dram_bytes + b.dram_bytes;
  t.l2_bytes = a.l2_bytes + b.l2_bytes;
  t.smem_bytes = a.smem_bytes + b.smem_bytes;
  t.mma_instructions = a.mma_instructions + b.mma_instructions;
  t.ffma_instructions = a.ffma_instructions + b.ffma_instructions;
  t.alu_instructions = a.alu_instructions + b.alu_instructions;
  t.energy = a.energy + b.energy;
  t.achieved_flops = 0.0;  // callers recompute from their own flops
  return t;
}

}  // namespace m3xu::sim
