// Kernel builders and evaluation-variant timing: the Table II / IV
// kernels expressed as CTA programs for the timing simulator.
//
// Tensor-core GEMM kernels follow a CUTLASS-style multi-stage pipelined
// mainloop (cp.async prefetch, barrier, fragment loads, MMA bursts);
// SIMT kernels follow the classic shared-memory-tiled FFMA loop. The
// software-emulation kernels (3xTF32 / 3xBF16) replicate the MMA count
// and add the in-kernel split/decouple ALU work the paper measures at
// ~14% of execution time.
#pragma once

#include <string>

#include "sim/gpu_config.hpp"
#include "sim/kernel_sim.hpp"

namespace m3xu::sim {

/// Per-instruction MMA characteristics of a math pipe mode.
struct MmaKindInfo {
  std::string name;
  int inst_m = 16;
  int inst_n = 8;
  int inst_k = 16;     // elements (complex elements in FP32C mode)
  int ii = 8;          // tensor-core cycles per instruction
  int elem_bytes = 2;  // A/B element storage
  int out_bytes = 4;   // C/D element storage
  double energy_per_mma = 8.0;  // relative; filled from the hwmodel
};

/// Built-in kinds. Initiation intervals scale from the device's FP16
/// MMA rate (config.hmma_ii): one step costs hmma_ii cycles, so the
/// FP32 mode is 2x and FP32C/FP64 are 4x. Energy fields derive from
/// the hwmodel designs.
MmaKindInfo kind_fp16(const GpuConfig& config);
MmaKindInfo kind_bf16(const GpuConfig& config);
MmaKindInfo kind_tf32(const GpuConfig& config);
MmaKindInfo kind_m3xu_fp32(const GpuConfig& config);
MmaKindInfo kind_m3xu_fp32c(const GpuConfig& config);
MmaKindInfo kind_m3xu_fp64(const GpuConfig& config);
MmaKindInfo kind_fp32_mxu(const GpuConfig& config);  // naive FP32-MXU (Fig 5 ref)

struct TensorGemmParams {
  MmaKindInfo kind;
  int mma_multiplier = 1;  // 3x for the split emulations (per pass)
  int split_alu_per_warp_iter = 0;  // decouple work, warp ALU instrs
  bool read_c = false;              // epilogue reads C (beta != 0)
  double clock_scale = 1.0;
  // CUDA-core correction/merge FMAs per mainloop iteration, as a
  // fraction of a pure-SIMT kernel's FMA work over the same tile
  // (EEHC's error-compensation arithmetic [Ma et al.]).
  double correction_ffma_fraction = 0.0;
};

/// Builds a tensor-core GEMM launch for problem m x n x k (k in
/// elements of the kind; complex elements for FP32C).
KernelLaunch build_tensor_gemm(const GpuConfig& config, long m, long n,
                               long k, const TensorGemmParams& params);

/// Classic SIMT GEMM (FP32 / FP32-complex / FP64 FMA loops).
enum class SimtMath { kFp32, kFp32Complex, kFp64 };
KernelLaunch build_simt_gemm(const GpuConfig& config, long m, long n, long k,
                             SimtMath math);

/// Streaming elementwise kernel (decouple passes, app glue): reads
/// `bytes_read`, writes `bytes_written`, `ffma_per_kb` warp FMA
/// instructions per KiB read.
KernelLaunch build_streaming_kernel(const GpuConfig& config,
                                    double bytes_read, double bytes_written,
                                    double ffma_per_kb = 0.0);

// --- Evaluation variants (Fig 4 / Fig 5) ------------------------------

enum class SgemmVariant {
  kSimt,              // cutlass_simt_sgemm
  kTensorOp3xTf32,    // cutlass_tensorop_sgemm
  kEehc3xBf16,        // EEHC_sgemm_fp32B
  kM3xu,              // m3xu_sgemm_pipelined
  kM3xuNonPipelined,  // m3xu_sgemm (reduced clock)
  kFp32Mxu,           // naive FP32-MXU (energy reference)
};

enum class CgemmVariant {
  kSimt,
  kTensorOp3xTf32,
  kM3xu,
  kM3xuNonPipelined,
  kFp32Mxu,
};

const char* variant_name(SgemmVariant v);
const char* variant_name(CgemmVariant v);

struct GemmTime {
  double seconds = 0.0;
  double decouple_seconds = 0.0;  // split overhead within `seconds`
  double energy = 0.0;
  double achieved_flops = 0.0;
  KernelTiming detail;
};

GemmTime time_sgemm(const GpuSim& sim, SgemmVariant v, long m, long n,
                    long k);
GemmTime time_cgemm(const GpuSim& sim, CgemmVariant v, long m, long n,
                    long k);

/// FP16 Tensor-Core GEMM (mixed-precision forward pass).
GemmTime time_hgemm(const GpuSim& sim, long m, long n, long k);

/// FP64 GEMM on SIMT FP64 units vs the M3XU FP64 mode.
enum class DgemmVariant { kSimt, kM3xu };
GemmTime time_dgemm(const GpuSim& sim, DgemmVariant v, long m, long n,
                    long k);

/// Streaming pass helper for the apps.
KernelTiming time_streaming(const GpuSim& sim, double bytes_read,
                            double bytes_written, double ffma_per_kb = 0.0);

}  // namespace m3xu::sim
