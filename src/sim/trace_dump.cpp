#include "sim/trace_dump.hpp"

#include <cstdio>

namespace m3xu::sim {

ProgramCensus census(const std::vector<Instr>& section) {
  ProgramCensus c;
  for (const Instr& instr : section) {
    switch (instr.op) {
      case Op::kLdgAsync:
        ++c.ldg;
        c.ldg_bytes += instr.bytes;
        break;
      case Op::kStg:
        ++c.stg;
        c.stg_bytes += instr.bytes;
        break;
      case Op::kLds:
      case Op::kSts:
        ++c.lds_sts;
        c.smem_bytes += instr.bytes;
        break;
      case Op::kMma:
        ++c.mma;
        break;
      case Op::kFfma:
        c.ffma_warp += instr.pipe_cycles;
        break;
      case Op::kDfma:
        c.dfma_warp += instr.pipe_cycles;
        break;
      case Op::kAlu:
        c.alu_warp += instr.pipe_cycles;
        break;
      case Op::kBar:
        ++c.barriers;
        break;
      case Op::kWaitGroup:
        ++c.waits;
        break;
    }
  }
  return c;
}

namespace {

void scale_into(ProgramCensus& total, const ProgramCensus& part,
                double factor) {
  total.ldg += static_cast<long>(part.ldg * factor);
  total.stg += static_cast<long>(part.stg * factor);
  total.lds_sts += static_cast<long>(part.lds_sts * factor);
  total.mma += static_cast<long>(part.mma * factor);
  total.ffma_warp += static_cast<long>(part.ffma_warp * factor);
  total.dfma_warp += static_cast<long>(part.dfma_warp * factor);
  total.alu_warp += static_cast<long>(part.alu_warp * factor);
  total.barriers += static_cast<long>(part.barriers * factor);
  total.waits += static_cast<long>(part.waits * factor);
  total.ldg_bytes += part.ldg_bytes * factor;
  total.stg_bytes += part.stg_bytes * factor;
  total.smem_bytes += part.smem_bytes * factor;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kLdgAsync:
      return "ldg";
    case Op::kWaitGroup:
      return "wait";
    case Op::kBar:
      return "bar";
    case Op::kLds:
      return "lds";
    case Op::kSts:
      return "sts";
    case Op::kMma:
      return "mma";
    case Op::kFfma:
      return "ffma";
    case Op::kDfma:
      return "dfma";
    case Op::kStg:
      return "stg";
    case Op::kAlu:
      return "alu";
  }
  return "?";
}

void dump_section(std::string& out, const char* name,
                  const std::vector<Instr>& section) {
  out += name;
  out += ":\n";
  for (const Instr& instr : section) {
    char line[96];
    std::snprintf(line, sizeof(line), "  %-5s ii=%-4d bytes=%-8.0f g=%d%s\n",
                  op_name(instr.op), instr.pipe_cycles, instr.bytes,
                  instr.group, instr.dep_on_prev ? " dep" : "");
    out += line;
  }
}

}  // namespace

ProgramCensus census(const CtaProgram& program) {
  ProgramCensus total = census(program.prologue);
  scale_into(total, census(program.body),
             static_cast<double>(program.iterations));
  scale_into(total, census(program.epilogue), 1.0);
  return total;
}

std::string dump(const CtaProgram& program) {
  std::string out;
  dump_section(out, "prologue", program.prologue);
  char hdr[48];
  std::snprintf(hdr, sizeof(hdr), "body (x%ld)", program.iterations);
  dump_section(out, hdr, program.body);
  dump_section(out, "epilogue", program.epilogue);
  return out;
}

}  // namespace m3xu::sim
