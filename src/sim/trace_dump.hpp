// Program inspection tooling: census and text rendering of CTA
// programs, for debugging kernel builders and asserting their traffic
// contracts in tests.
#pragma once

#include <string>

#include "sim/instruction.hpp"

namespace m3xu::sim {

struct ProgramCensus {
  long ldg = 0;
  long stg = 0;
  long lds_sts = 0;
  long mma = 0;
  long ffma_warp = 0;  // folded warp-instruction counts
  long dfma_warp = 0;
  long alu_warp = 0;
  long barriers = 0;
  long waits = 0;
  double ldg_bytes = 0.0;   // per warp, per pass through the section
  double stg_bytes = 0.0;
  double smem_bytes = 0.0;
};

/// Counts one pass through a section (prologue, body, or epilogue).
ProgramCensus census(const std::vector<Instr>& section);

/// Whole-program census for one warp: prologue + iterations * body +
/// epilogue.
ProgramCensus census(const CtaProgram& program);

/// Human-readable listing ("ldg 1024B g2 / wait g0 / bar / ...").
std::string dump(const CtaProgram& program);

}  // namespace m3xu::sim
