// Warp-level instruction IR consumed by the cycle-level SM model.
//
// A CTA program is (prologue, body x iterations, epilogue); every warp
// of the CTA executes the same stream (GEMM kernels are symmetric
// across warps). Dependencies are expressed with ldg groups (cp.async
// commit groups), a dep-on-previous flag (fragment load -> MMA), and
// CTA-wide barriers - the same synchronization skeleton as a CUTLASS
// multi-stage mainloop.
#pragma once

#include <cstdint>
#include <vector>

namespace m3xu::sim {

enum class Op : std::uint8_t {
  kLdgAsync,   // global -> smem copy (cp.async), non-blocking
  kWaitGroup,  // wait until ldg group `group` has landed
  kBar,        // CTA-wide barrier
  kLds,        // shared memory -> register fragment load
  kMma,        // tensor-core MMA (pipe_cycles = initiation interval)
  kFfma,       // FP32 pipe warp instruction
  kDfma,       // FP64 pipe warp instruction
  kAlu,        // integer/misc pipe (address math, splits, shuffles)
  kSts,        // register -> shared store
  kStg,        // global store (epilogue)
};

struct Instr {
  Op op = Op::kAlu;
  int pipe_cycles = 1;    // issue occupancy of the target pipe
  double bytes = 0.0;     // memory ops: bytes moved by this warp
  int group = 0;          // kLdgAsync: commit group; kWaitGroup: target
  bool dep_on_prev = false;  // must wait for previous instr completion

  static Instr ldg(double bytes, int group) {
    return {Op::kLdgAsync, 1, bytes, group, false};
  }
  static Instr wait_group(int group) {
    return {Op::kWaitGroup, 1, 0.0, group, false};
  }
  static Instr bar() { return {Op::kBar, 1, 0.0, 0, false}; }
  static Instr lds(double bytes) { return {Op::kLds, 1, bytes, 0, false}; }
  static Instr mma(int ii) { return {Op::kMma, ii, 0.0, 0, false}; }
  static Instr ffma(int count = 1) { return {Op::kFfma, count, 0.0, 0, false}; }
  static Instr dfma(int count = 1) { return {Op::kDfma, count, 0.0, 0, false}; }
  static Instr alu(int count = 1) { return {Op::kAlu, count, 0.0, 0, false}; }
  static Instr sts(double bytes) { return {Op::kSts, 1, bytes, 0, false}; }
  static Instr stg(double bytes) { return {Op::kStg, 1, bytes, 0, false}; }
};

struct CtaProgram {
  std::vector<Instr> prologue;
  std::vector<Instr> body;   // one mainloop iteration
  long iterations = 0;
  std::vector<Instr> epilogue;
  int warps = 8;
};

}  // namespace m3xu::sim
