// Whole-kernel timing on top of the cycle-level SM model.
//
// A kernel launch = grid of identical CTAs. One SM's resident set is
// cycle-simulated (with the mainloop truncated and extrapolated from
// its steady-state slope); the kernel time is the CTA-wave count times
// the per-wave time, with the DRAM/L2 bandwidth share of an SM set by
// how many SMs the wave occupies. This mirrors how the paper's own
// framework extrapolates from emulated instruction streams rather than
// executing every instruction (SV-B).
#pragma once

#include "sim/gpu_config.hpp"
#include "sim/instruction.hpp"

namespace m3xu::sim {

struct KernelLaunch {
  CtaProgram program;
  long grid_ctas = 1;
  int ctas_per_sm = 2;            // requested occupancy
  double smem_bytes_per_cta = 0;  // staged buffers; 0 = no smem limit
  double l2_hit_fraction = 0.0;
  double flops = 0.0;        // useful flops for achieved-throughput
  double clock_scale = 1.0;  // e.g. non-pipelined M3XU runs at 1/1.21

  // Energy accounting inputs (relative energy units per event); filled
  // by the kernel builders from the hwmodel.
  double energy_per_mma = 0.0;
  double energy_per_ffma_warp = 1.0;
  double energy_per_dfma_warp = 2.0;
  double energy_per_alu_warp = 0.25;
};

struct KernelTiming {
  double cycles = 0.0;          // SM cycles at the kernel's clock
  double seconds = 0.0;
  double dram_bytes = 0.0;      // total, post-L2
  double l2_bytes = 0.0;        // total at L2
  double smem_bytes = 0.0;
  long mma_instructions = 0;    // total
  long ffma_instructions = 0;
  long alu_instructions = 0;
  double achieved_flops = 0.0;  // flops / seconds
  double energy = 0.0;          // relative units
};

/// Per-byte / static energy constants (relative units, shared by every
/// kernel so Fig-5-style ratios are meaningful).
struct EnergyConstants {
  double per_dram_byte = 20.0;
  double per_l2_byte = 4.0;
  double per_smem_byte = 1.0;
  double static_per_sm_cycle = 2.0;
};

class GpuSim {
 public:
  explicit GpuSim(const GpuConfig& config,
                  const EnergyConstants& energy = {})
      : config_(config), energy_(energy) {}

  const GpuConfig& config() const { return config_; }
  const EnergyConstants& energy_constants() const { return energy_; }

  KernelTiming run(const KernelLaunch& launch) const;

 private:
  GpuConfig config_;
  EnergyConstants energy_;
};

/// Adds component timings (sequential kernel passes).
KernelTiming operator+(const KernelTiming& a, const KernelTiming& b);

}  // namespace m3xu::sim
