#include "sim/eval_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "hwmodel/cost_model.hpp"

namespace m3xu::sim {

namespace {

// Tensor-kernel tile geometry: CUTLASS-like CTA tiles with 8 warps and
// a 3-stage cp.async pipeline. The tile shrinks for small problems so
// the grid can occupy the whole GPU (mirroring library heuristics).
constexpr int kWarps = 8;
constexpr int kStages = 3;

struct CtaTile {
  int m;
  int n;
  int warp_m;
  int warp_n;
};

CtaTile pick_tile(const GpuConfig& config, long m, long n) {
  static constexpr CtaTile kTiles[] = {
      {256, 128, 64, 64},
      {128, 128, 64, 32},
      {128, 64, 32, 32},
      {64, 64, 32, 16},
  };
  const long want = 2L * config.num_sms;
  for (const CtaTile& t : kTiles) {
    const long grid = ((m + t.m - 1) / t.m) * ((n + t.n - 1) / t.n);
    if (grid >= want) return t;
  }
  return kTiles[3];
}

// Per-TC-cycle energy scale (pJ per relative-power unit per cycle).
constexpr double kTcEnergyScale = 1000.0;

double design_power(const hw::MxuDesign& d) {
  return hw::evaluate(d, hw::TechnologyConstants{}).power;
}

/// Energy of one MMA instruction: design power x occupied TC cycles.
double mma_energy(const hw::MxuDesign& d, int ii) {
  return design_power(d) * ii * kTcEnergyScale / 8.0;
}

const hw::MxuDesign& baseline_design() {
  static const hw::MxuDesign d = hw::table3_designs()[0];
  return d;
}
const hw::MxuDesign& fp32mxu_design() {
  static const hw::MxuDesign d = hw::table3_designs()[1];
  return d;
}
const hw::MxuDesign& m3xu_design() {
  static const hw::MxuDesign d = hw::table3_designs()[4];  // pipelined
  return d;
}
const hw::MxuDesign& m3xu_nonpipelined_design() {
  static const hw::MxuDesign d = hw::table3_designs()[3];
  return d;
}

}  // namespace

MmaKindInfo kind_fp16(const GpuConfig& config) {
  const int ii = config.hmma_ii;
  return {"fp16", 16, 8, 16, ii, 2, 4, mma_energy(baseline_design(), ii)};
}
MmaKindInfo kind_bf16(const GpuConfig& config) {
  const int ii = config.hmma_ii;
  return {"bf16", 16, 8, 16, ii, 2, 4, mma_energy(baseline_design(), ii)};
}
MmaKindInfo kind_tf32(const GpuConfig& config) {
  const int ii = config.hmma_ii;
  return {"tf32", 16, 8, 8, ii, 4, 4, mma_energy(baseline_design(), ii)};
}
MmaKindInfo kind_m3xu_fp32(const GpuConfig& config) {
  const int ii = 2 * config.hmma_ii;  // two steps per instruction
  return {"m3xu_fp32", 16, 8, 8, ii, 4, 4, mma_energy(m3xu_design(), ii)};
}
MmaKindInfo kind_m3xu_fp32c(const GpuConfig& config) {
  // Shapes are in complex elements (8 bytes each); four steps.
  const int ii = 4 * config.hmma_ii;
  return {"m3xu_fp32c", 16, 8, 4, ii, 8, 8, mma_energy(m3xu_design(), ii)};
}
MmaKindInfo kind_m3xu_fp64(const GpuConfig& config) {
  const int ii = 4 * config.hmma_ii;
  return {"m3xu_fp64", 16, 8, 4, ii, 8, 8, mma_energy(m3xu_design(), ii)};
}
MmaKindInfo kind_fp32_mxu(const GpuConfig& config) {
  const int ii = config.hmma_ii;
  return {"fp32_mxu", 16, 8, 16, ii, 4, 4, mma_energy(fp32mxu_design(), ii)};
}

namespace {

/// Shared-L2 reuse within a CTA wave: CTAs in the same grid row share
/// the A panel, same column share B. Unique panel bytes per iteration
/// over the wave vs total streamed bytes gives the hit fraction,
/// derated when the per-iteration working set exceeds L2.
double estimate_l2_hit(const GpuConfig& config, long grid_m, long grid_n,
                       int cta_m, int cta_n, int cta_k, int elem_bytes,
                       int ctas_per_sm) {
  const long grid = grid_m * grid_n;
  const long wave = std::min<long>(
      grid, static_cast<long>(config.num_sms) * ctas_per_sm);
  const long cols = std::min<long>(wave, grid_n);
  const long rows = std::min<long>(grid_m, (wave + grid_n - 1) / grid_n);
  const double unique =
      static_cast<double>(rows) * cta_m + static_cast<double>(cols) * cta_n;
  const double total = static_cast<double>(wave) * (cta_m + cta_n);
  double hit = 1.0 - unique / total;
  // Capacity derate: the wave's live panels (a few pipeline stages
  // deep) must fit in L2.
  const double working_set =
      unique * cta_k * elem_bytes * (kStages + 1);
  if (working_set > config.l2_capacity_bytes) {
    hit *= config.l2_capacity_bytes / working_set;
  }
  return std::clamp(hit, 0.0, 0.95);
}

}  // namespace

KernelLaunch build_tensor_gemm(const GpuConfig& config, long m, long n,
                               long k, const TensorGemmParams& params) {
  const MmaKindInfo& kind = params.kind;
  const CtaTile tile = pick_tile(config, m, n);
  // K-depth per mainloop iteration, sized so a stage's A+B tiles use
  // ~24 KiB of shared memory regardless of element width.
  const int cta_k = std::max(kind.inst_k, 64 / kind.elem_bytes);
  const int k_steps = cta_k / kind.inst_k;
  M3XU_CHECK(cta_k % kind.inst_k == 0);

  const long grid_m = (m + tile.m - 1) / tile.m;
  const long grid_n = (n + tile.n - 1) / tile.n;
  const long iterations = (k + cta_k - 1) / cta_k;

  const double ldg_a_per_warp =
      static_cast<double>(tile.m) * cta_k * kind.elem_bytes / kWarps;
  const double ldg_b_per_warp =
      static_cast<double>(tile.n) * cta_k * kind.elem_bytes / kWarps;
  const double lds_a_frag =
      static_cast<double>(tile.warp_m) * kind.inst_k * kind.elem_bytes;
  const double lds_b_frag =
      static_cast<double>(tile.warp_n) * kind.inst_k * kind.elem_bytes;
  const int mma_per_k_step = (tile.warp_m / kind.inst_m) *
                             (tile.warp_n / kind.inst_n) *
                             params.mma_multiplier;

  CtaProgram prog;
  prog.warps = kWarps;
  prog.iterations = iterations;
  for (int s = 0; s < kStages - 1; ++s) {
    prog.prologue.push_back(Instr::ldg(ldg_a_per_warp, s));
    prog.prologue.push_back(Instr::ldg(ldg_b_per_warp, s));
  }
  prog.body.push_back(Instr::ldg(ldg_a_per_warp, kStages - 1));
  prog.body.push_back(Instr::ldg(ldg_b_per_warp, kStages - 1));
  prog.body.push_back(Instr::wait_group(0));
  prog.body.push_back(Instr::bar());
  if (params.split_alu_per_warp_iter > 0) {
    prog.body.push_back(Instr::alu(params.split_alu_per_warp_iter));
  }
  for (int ks = 0; ks < k_steps; ++ks) {
    prog.body.push_back(Instr::lds(lds_a_frag));
    prog.body.push_back(Instr::lds(lds_b_frag));
    for (int i = 0; i < mma_per_k_step; ++i) {
      Instr mma = Instr::mma(kind.ii);
      mma.dep_on_prev = (i == 0);
      prog.body.push_back(mma);
    }
  }
  if (params.correction_ffma_fraction > 0.0) {
    const int simt_fma_equiv = tile.warp_m * tile.warp_n * cta_k / 32;
    const int count = static_cast<int>(params.correction_ffma_fraction *
                                       simt_fma_equiv);
    if (count > 0) prog.body.push_back(Instr::ffma(count));
  }
  const double out_bytes =
      static_cast<double>(tile.m) * tile.n * kind.out_bytes / kWarps;
  if (params.read_c) {
    prog.epilogue.push_back(Instr::ldg(out_bytes, 0));
    Instr st = Instr::stg(out_bytes);
    st.dep_on_prev = true;
    prog.epilogue.push_back(st);
  } else {
    prog.epilogue.push_back(Instr::stg(out_bytes));
  }
  prog.epilogue.push_back(Instr::bar());

  KernelLaunch launch;
  launch.program = std::move(prog);
  launch.grid_ctas = grid_m * grid_n;
  launch.ctas_per_sm = 2;
  launch.smem_bytes_per_cta = static_cast<double>(tile.m + tile.n) * cta_k *
                              kind.elem_bytes * kStages;
  launch.l2_hit_fraction =
      estimate_l2_hit(config, grid_m, grid_n, tile.m, tile.n, cta_k,
                      kind.elem_bytes, launch.ctas_per_sm);
  launch.clock_scale = params.clock_scale;
  launch.energy_per_mma = kind.energy_per_mma;
  launch.energy_per_ffma_warp = 128.0;
  launch.energy_per_alu_warp = 32.0;
  return launch;
}

KernelLaunch build_simt_gemm(const GpuConfig& config, long m, long n, long k,
                             SimtMath math) {
  // Shrink the tile for small problems (library heuristic parity with
  // the tensor kernels).
  int cta = 128;
  if (((m + 127) / 128) * ((n + 127) / 128) < 2L * config.num_sms) {
    cta = 64;
  }
  const int cta_k = 8;
  const int elem_bytes = math == SimtMath::kFp32 ? 4 : 8;
  const long grid_m = (m + cta - 1) / cta;
  const long grid_n = (n + cta - 1) / cta;
  const long iterations = (k + cta_k - 1) / cta_k;

  // FMA warp-instructions per warp per iteration; complex MACs cost 4.
  const int mac_scale = math == SimtMath::kFp32Complex ? 4 : 1;
  const int fma_per_warp_iter = cta * cta * cta_k / 32 / kWarps * mac_scale;
  constexpr int kFold = 32;  // FMAs folded per Instr to keep streams small

  CtaProgram prog;
  prog.warps = kWarps;
  prog.iterations = iterations;
  const double ldg_per_warp =
      2.0 * cta * cta_k * elem_bytes / kWarps;  // A + B tiles
  const double lds_per_warp = (32.0 + 64.0) * cta_k * elem_bytes;
  for (int s = 0; s < 1; ++s) {
    prog.prologue.push_back(Instr::ldg(ldg_per_warp, s));
  }
  prog.body.push_back(Instr::ldg(ldg_per_warp, 1));
  prog.body.push_back(Instr::wait_group(0));
  prog.body.push_back(Instr::bar());
  prog.body.push_back(Instr::lds(lds_per_warp));
  const int chunks = fma_per_warp_iter / kFold;
  for (int c = 0; c < chunks; ++c) {
    Instr fma = math == SimtMath::kFp64 ? Instr::dfma(kFold)
                                        : Instr::ffma(kFold);
    fma.dep_on_prev = (c == 0);
    prog.body.push_back(fma);
  }
  const int out_bytes = math == SimtMath::kFp32 ? 4 : 8;
  prog.epilogue.push_back(
      Instr::stg(static_cast<double>(cta) * cta * out_bytes / kWarps));
  prog.epilogue.push_back(Instr::bar());

  KernelLaunch launch;
  launch.program = std::move(prog);
  launch.grid_ctas = grid_m * grid_n;
  launch.ctas_per_sm = 2;
  launch.l2_hit_fraction =
      estimate_l2_hit(config, grid_m, grid_n, cta, cta, cta_k, elem_bytes,
                      launch.ctas_per_sm);
  launch.energy_per_ffma_warp = 128.0;
  launch.energy_per_dfma_warp = 256.0;
  launch.energy_per_alu_warp = 32.0;
  return launch;
}

KernelLaunch build_streaming_kernel(const GpuConfig& config,
                                    double bytes_read, double bytes_written,
                                    double ffma_per_kb) {
  (void)config;
  constexpr double kChunk = 128.0 * 1024.0;  // bytes per CTA
  const double driving = std::max(bytes_read, bytes_written);
  const long grid =
      std::max<long>(1, static_cast<long>(std::ceil(driving / kChunk)));
  const double read_per_warp = bytes_read / grid / kWarps;
  const double write_per_warp = bytes_written / grid / kWarps;
  const double ffma =
      ffma_per_kb * (bytes_read / grid) / 1024.0 / kWarps;

  CtaProgram prog;
  prog.warps = kWarps;
  prog.iterations = 1;
  prog.body.push_back(Instr::ldg(read_per_warp, 0));
  prog.body.push_back(Instr::wait_group(0));
  if (ffma >= 1.0) {
    Instr f = Instr::ffma(static_cast<int>(ffma));
    f.dep_on_prev = true;
    prog.body.push_back(f);
  }
  if (write_per_warp > 0.0) {
    Instr st = Instr::stg(write_per_warp);
    st.dep_on_prev = true;
    prog.body.push_back(st);
  }

  KernelLaunch launch;
  launch.program = std::move(prog);
  launch.grid_ctas = grid;
  launch.ctas_per_sm = 4;
  launch.l2_hit_fraction = 0.0;
  launch.energy_per_ffma_warp = 128.0;
  return launch;
}

const char* variant_name(SgemmVariant v) {
  switch (v) {
    case SgemmVariant::kSimt:
      return "cutlass_simt_sgemm";
    case SgemmVariant::kTensorOp3xTf32:
      return "cutlass_tensorop_sgemm";
    case SgemmVariant::kEehc3xBf16:
      return "EEHC_sgemm_fp32B";
    case SgemmVariant::kM3xu:
      return "m3xu_sgemm_pipelined";
    case SgemmVariant::kM3xuNonPipelined:
      return "m3xu_sgemm";
    case SgemmVariant::kFp32Mxu:
      return "baseline_MXU_sgemm";
  }
  return "?";
}

const char* variant_name(CgemmVariant v) {
  switch (v) {
    case CgemmVariant::kSimt:
      return "cutlass_simt_cgemm";
    case CgemmVariant::kTensorOp3xTf32:
      return "cutlass_tensorop_cgemm";
    case CgemmVariant::kM3xu:
      return "m3xu_cgemm_pipelined";
    case CgemmVariant::kM3xuNonPipelined:
      return "m3xu_cgemm";
    case CgemmVariant::kFp32Mxu:
      return "baseline_MXU_cgemm";
  }
  return "?";
}

namespace {

GemmTime finish(const GpuSim& sim, KernelTiming t, double flops,
                double decouple_seconds) {
  (void)sim;
  GemmTime g;
  g.detail = t;
  g.seconds = t.seconds;
  g.decouple_seconds = decouple_seconds;
  g.energy = t.energy;
  g.achieved_flops = flops / t.seconds;
  return g;
}

}  // namespace

GemmTime time_sgemm(const GpuSim& sim, SgemmVariant v, long m, long n,
                    long k) {
  const GpuConfig& cfg = sim.config();
  const double flops = 2.0 * m * n * k;
  switch (v) {
    case SgemmVariant::kSimt: {
      const KernelLaunch launch =
          build_simt_gemm(cfg, m, n, k, SimtMath::kFp32);
      return finish(sim, sim.run(launch), flops, 0.0);
    }
    case SgemmVariant::kTensorOp3xTf32: {
      // Fused single-pass: 3x MMAs + in-register split ALU work.
      TensorGemmParams p{kind_tf32(cfg), 3, /*split_alu=*/96, false, 1.0};
      const KernelTiming t = sim.run(build_tensor_gemm(cfg, m, n, k, p));
      TensorGemmParams p0 = p;
      p0.split_alu_per_warp_iter = 0;
      const KernelTiming t0 = sim.run(build_tensor_gemm(cfg, m, n, k, p0));
      return finish(sim, t, flops, std::max(0.0, t.seconds - t0.seconds));
    }
    case SgemmVariant::kEehc3xBf16: {
      // Decouple pre-pass: read FP32 A/B, write BF16 hi/lo pairs.
      const double in_bytes = 4.0 * (m * k + static_cast<double>(k) * n);
      const KernelTiming dec =
          sim.run(build_streaming_kernel(cfg, in_bytes, in_bytes, 64.0));
      // 3x BF16 passes fused, plus the scheme's error-compensation FMAs
      // on the CUDA cores (the measured bottleneck of [Ma et al.]:
      // ~35% of a pure-SIMT kernel's FMA work).
      TensorGemmParams p{kind_bf16(cfg), 3, /*split_alu=*/64, false, 1.0, 0.35};
      const KernelTiming t = sim.run(build_tensor_gemm(cfg, m, n, k, p));
      return finish(sim, dec + t, flops, dec.seconds);
    }
    case SgemmVariant::kM3xu: {
      TensorGemmParams p{kind_m3xu_fp32(cfg), 1, 0, false, 1.0};
      return finish(sim, sim.run(build_tensor_gemm(cfg, m, n, k, p)), flops,
                    0.0);
    }
    case SgemmVariant::kM3xuNonPipelined: {
      TensorGemmParams p{kind_m3xu_fp32(cfg), 1, 0, false,
                         cfg.m3xu_nonpipelined_clock_scale};
      KernelLaunch launch = build_tensor_gemm(cfg, m, n, k, p);
      launch.energy_per_mma =
          mma_energy(m3xu_nonpipelined_design(), 2 * cfg.hmma_ii) /
          cfg.m3xu_nonpipelined_clock_scale;  // power x (longer) time
      return finish(sim, sim.run(launch), flops, 0.0);
    }
    case SgemmVariant::kFp32Mxu: {
      TensorGemmParams p{kind_fp32_mxu(cfg), 1, 0, false, 1.0};
      return finish(sim, sim.run(build_tensor_gemm(cfg, m, n, k, p)), flops,
                    0.0);
    }
  }
  return {};
}

GemmTime time_cgemm(const GpuSim& sim, CgemmVariant v, long m, long n,
                    long k) {
  const GpuConfig& cfg = sim.config();
  const double flops = 8.0 * m * n * k;  // 4 mul + 4 add per complex MAC
  switch (v) {
    case CgemmVariant::kSimt: {
      const KernelLaunch launch =
          build_simt_gemm(cfg, m, n, k, SimtMath::kFp32Complex);
      return finish(sim, sim.run(launch), flops, 0.0);
    }
    case CgemmVariant::kTensorOp3xTf32: {
      // 4 component GEMMs x 3 TF32 splits, complex storage.
      MmaKindInfo kind = kind_tf32(cfg);
      kind.elem_bytes = 8;
      kind.out_bytes = 8;
      TensorGemmParams p{kind, 12, /*split_alu=*/128, false, 1.0};
      const KernelTiming t = sim.run(build_tensor_gemm(cfg, m, n, k, p));
      TensorGemmParams p0 = p;
      p0.split_alu_per_warp_iter = 0;
      const KernelTiming t0 = sim.run(build_tensor_gemm(cfg, m, n, k, p0));
      return finish(sim, t, flops, std::max(0.0, t.seconds - t0.seconds));
    }
    case CgemmVariant::kM3xu: {
      TensorGemmParams p{kind_m3xu_fp32c(cfg), 1, 0, false, 1.0};
      return finish(sim, sim.run(build_tensor_gemm(cfg, m, n, k, p)), flops,
                    0.0);
    }
    case CgemmVariant::kM3xuNonPipelined: {
      TensorGemmParams p{kind_m3xu_fp32c(cfg), 1, 0, false,
                         cfg.m3xu_nonpipelined_clock_scale};
      KernelLaunch launch = build_tensor_gemm(cfg, m, n, k, p);
      launch.energy_per_mma =
          mma_energy(m3xu_nonpipelined_design(), 4 * cfg.hmma_ii) /
          cfg.m3xu_nonpipelined_clock_scale;
      return finish(sim, sim.run(launch), flops, 0.0);
    }
    case CgemmVariant::kFp32Mxu: {
      MmaKindInfo kind = kind_fp32_mxu(cfg);
      kind.elem_bytes = 8;
      kind.out_bytes = 8;
      TensorGemmParams p{kind, 4, 0, false, 1.0};  // 4 real GEMMs
      return finish(sim, sim.run(build_tensor_gemm(cfg, m, n, k, p)), flops,
                    0.0);
    }
  }
  return {};
}

GemmTime time_hgemm(const GpuSim& sim, long m, long n, long k) {
  TensorGemmParams p{kind_fp16(sim.config()), 1, 0, false, 1.0};
  const double flops = 2.0 * m * n * k;
  return finish(sim, sim.run(build_tensor_gemm(sim.config(), m, n, k, p)),
                flops, 0.0);
}

GemmTime time_dgemm(const GpuSim& sim, DgemmVariant v, long m, long n,
                    long k) {
  const double flops = 2.0 * m * n * k;
  if (v == DgemmVariant::kSimt) {
    const KernelLaunch launch =
        build_simt_gemm(sim.config(), m, n, k, SimtMath::kFp64);
    return finish(sim, sim.run(launch), flops, 0.0);
  }
  TensorGemmParams p{kind_m3xu_fp64(sim.config()), 1, 0, false, 1.0};
  return finish(sim, sim.run(build_tensor_gemm(sim.config(), m, n, k, p)),
                flops, 0.0);
}

KernelTiming time_streaming(const GpuSim& sim, double bytes_read,
                            double bytes_written, double ffma_per_kb) {
  return sim.run(build_streaming_kernel(sim.config(), bytes_read,
                                        bytes_written, ffma_per_kb));
}

}  // namespace m3xu::sim
