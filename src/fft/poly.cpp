#include "fft/poly.hpp"

#include <cmath>
#include <complex>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "fft/gemm_fft.hpp"

namespace m3xu::fft {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::int64_t round_to_int(float v) {
  return static_cast<std::int64_t>(std::llround(static_cast<double>(v)));
}

}  // namespace

std::vector<std::int64_t> poly_multiply(const std::vector<std::int64_t>& p,
                                        const std::vector<std::int64_t>& q,
                                        const core::M3xuEngine& engine) {
  if (p.empty() || q.empty()) return {};
  const std::size_t out_len = p.size() + q.size() - 1;
  const std::size_t n = std::max<std::size_t>(2, next_pow2(out_len));
  GemmFft plan(static_cast<int>(n), 16, &engine);
  std::vector<std::complex<float>> fp_(n, {0.0f, 0.0f});
  std::vector<std::complex<float>> fq(n, {0.0f, 0.0f});
  for (std::size_t i = 0; i < p.size(); ++i) {
    fp_[i] = {static_cast<float>(p[i]), 0.0f};
  }
  for (std::size_t i = 0; i < q.size(); ++i) {
    fq[i] = {static_cast<float>(q[i]), 0.0f};
  }
  plan.forward(fp_.data());
  plan.forward(fq.data());
  for (std::size_t i = 0; i < n; ++i) fp_[i] *= fq[i];
  plan.inverse(fp_.data());
  std::vector<std::int64_t> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    out[i] = round_to_int(fp_[i].real());
  }
  return out;
}

std::vector<std::int64_t> poly_multiply_reference(
    const std::vector<std::int64_t>& p, const std::vector<std::int64_t>& q) {
  if (p.empty() || q.empty()) return {};
  std::vector<std::int64_t> out(p.size() + q.size() - 1, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < q.size(); ++j) out[i + j] += p[i] * q[j];
  }
  return out;
}

std::vector<std::int64_t> poly_multiply_negacyclic(
    const std::vector<std::int64_t>& p, const std::vector<std::int64_t>& q,
    const core::M3xuEngine& engine) {
  const std::size_t n = p.size();
  M3XU_CHECK(n >= 2 && is_pow2(n) && q.size() == n);
  GemmFft plan(static_cast<int>(n), 16, &engine);
  // Twist by the 2n-th root of unity turns negacyclic into cyclic.
  std::vector<std::complex<float>> tp(n), tq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kPi * static_cast<double>(i) / static_cast<double>(n);
    const std::complex<double> w(std::cos(ang), std::sin(ang));
    tp[i] = std::complex<float>(w * static_cast<double>(p[i]));
    tq[i] = std::complex<float>(w * static_cast<double>(q[i]));
  }
  plan.forward(tp.data());
  plan.forward(tq.data());
  for (std::size_t i = 0; i < n; ++i) tp[i] *= tq[i];
  plan.inverse(tp.data());
  std::vector<std::int64_t> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -kPi * static_cast<double>(k) / static_cast<double>(n);
    const std::complex<double> w(std::cos(ang), std::sin(ang));
    out[k] = static_cast<std::int64_t>(
        std::llround((w * std::complex<double>(tp[k])).real()));
  }
  return out;
}

}  // namespace m3xu::fft
