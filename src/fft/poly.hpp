// Polynomial multiplication via the FP32C FFT - the transform workload
// behind the paper's security-application motivation (NTT-style
// convolutions in homomorphic encryption / lattice cryptography, refs
// [49][66]). For small integer coefficients the complex FFT route is
// exact after rounding; the tests quantify the coefficient-magnitude
// ceiling FP32C supports.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mxu.hpp"

namespace m3xu::fft {

/// Multiplies two integer polynomials (coefficient vectors, lowest
/// degree first) via FFT on the engine, rounding the result back to
/// integers. Exact as long as |result coefficients| stay well within
/// FP32C's 24-bit significand (the tests establish the ceiling).
std::vector<std::int64_t> poly_multiply(const std::vector<std::int64_t>& p,
                                        const std::vector<std::int64_t>& q,
                                        const core::M3xuEngine& engine);

/// Schoolbook reference.
std::vector<std::int64_t> poly_multiply_reference(
    const std::vector<std::int64_t>& p, const std::vector<std::int64_t>& q);

/// Negacyclic (x^n + 1) convolution of two length-n coefficient
/// vectors - the Ring-LWE primitive. n must be a power of two.
std::vector<std::int64_t> poly_multiply_negacyclic(
    const std::vector<std::int64_t>& p, const std::vector<std::int64_t>& q,
    const core::M3xuEngine& engine);

}  // namespace m3xu::fft
