// Frequency-domain convolution via the convolution theorem on the
// FP32C GEMM-FFT - the complex-arithmetic CNN computation style the
// paper cites as an FP32C motivation (Ko et al., frequency-domain CNN
// training accelerators).
#pragma once

#include <vector>

#include "core/mxu.hpp"

namespace m3xu::fft {

/// Circular 2-D convolution: out[r][c] = sum_{y,x} image[(r-y) mod R]
/// [(c-x) mod C] * kernel[y][x]. `rows`/`cols` must be powers of two;
/// the kernel (kh x kw, both <= rows/cols) is embedded at the origin.
/// Computed as ifft2(fft2(image) .* fft2(kernel)) on the M3XU FFT.
std::vector<float> fft_conv2d_circular(const std::vector<float>& image,
                                       int rows, int cols,
                                       const std::vector<float>& kernel,
                                       int kh, int kw,
                                       const core::M3xuEngine& engine);

/// Direct O(R*C*kh*kw) reference with the same circular semantics.
std::vector<float> conv2d_circular_reference(const std::vector<float>& image,
                                             int rows, int cols,
                                             const std::vector<float>& kernel,
                                             int kh, int kw);

}  // namespace m3xu::fft
