#include "fft/fft_conv.hpp"

#include <complex>

#include "common/check.hpp"
#include "fft/gemm_fft.hpp"

namespace m3xu::fft {

std::vector<float> fft_conv2d_circular(const std::vector<float>& image,
                                       int rows, int cols,
                                       const std::vector<float>& kernel,
                                       int kh, int kw,
                                       const core::M3xuEngine& engine) {
  M3XU_CHECK(static_cast<int>(image.size()) == rows * cols);
  M3XU_CHECK(static_cast<int>(kernel.size()) == kh * kw);
  M3XU_CHECK(kh <= rows && kw <= cols);
  GemmFft2d plan(rows, cols, 16, &engine);
  std::vector<std::complex<float>> fi(image.size());
  std::vector<std::complex<float>> fk(image.size(), {0.0f, 0.0f});
  for (std::size_t i = 0; i < image.size(); ++i) fi[i] = {image[i], 0.0f};
  for (int y = 0; y < kh; ++y) {
    for (int x = 0; x < kw; ++x) {
      fk[static_cast<std::size_t>(y) * cols + x] = {kernel[y * kw + x],
                                                    0.0f};
    }
  }
  plan.forward(fi.data());
  plan.forward(fk.data());
  for (std::size_t i = 0; i < fi.size(); ++i) fi[i] *= fk[i];
  plan.inverse(fi.data());
  std::vector<float> out(image.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = fi[i].real();
  return out;
}

std::vector<float> conv2d_circular_reference(const std::vector<float>& image,
                                             int rows, int cols,
                                             const std::vector<float>& kernel,
                                             int kh, int kw) {
  M3XU_CHECK(static_cast<int>(image.size()) == rows * cols);
  std::vector<float> out(image.size(), 0.0f);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (int y = 0; y < kh; ++y) {
        for (int x = 0; x < kw; ++x) {
          const int sr = ((r - y) % rows + rows) % rows;
          const int sc = ((c - x) % cols + cols) % cols;
          acc += static_cast<double>(image[sr * cols + sc]) *
                 kernel[y * kw + x];
        }
      }
      out[static_cast<std::size_t>(r) * cols + c] = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace m3xu::fft
