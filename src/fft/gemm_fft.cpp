#include "fft/gemm_fft.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::fft {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

void reference_fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  M3XU_CHECK(n >= 1 && is_pow2(n));
  // Bit reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : data) v /= static_cast<double>(n);
  }
}

GemmFft::GemmFft(int n, int radix, const core::M3xuEngine* engine)
    : n_(n), radix_(radix), engine_(engine) {
  M3XU_CHECK(n >= 2 && is_pow2(static_cast<std::uint64_t>(n)));
  M3XU_CHECK(radix >= 2 && radix <= 64 &&
             is_pow2(static_cast<std::uint64_t>(radix)));
  M3XU_CHECK(engine != nullptr);
}

const std::vector<std::complex<float>>& GemmFft::dft_matrix(int r) const {
  for (const auto& m : dft_cache_) {
    if (static_cast<int>(m.size()) == r * r) return m;
  }
  std::vector<std::complex<float>> m(static_cast<std::size_t>(r) * r);
  for (int j = 0; j < r; ++j) {
    for (int k = 0; k < r; ++k) {
      const double ang = -kTwoPi * j * k / r;
      m[static_cast<std::size_t>(j) * r + k] = {
          static_cast<float>(std::cos(ang)),
          static_cast<float>(std::sin(ang))};
    }
  }
  dft_cache_.push_back(std::move(m));
  return dft_cache_.back();
}

void GemmFft::transform(std::complex<float>* data,
                        std::complex<float>* scratch, int n) const {
  if (n == 1) return;
  if (n <= radix_) {
    // Base case: one n-point DFT as an n x 1 x n CGEMM.
    const auto& f = dft_matrix(n);
    for (int i = 0; i < n; ++i) scratch[i] = {0.0f, 0.0f};
    engine_->gemm_fp32c(n, 1, n, f.data(), n, data, 1, scratch, 1);
    for (int i = 0; i < n; ++i) data[i] = scratch[i];
    return;
  }
  const int r = radix_;
  const int n2 = n / r;
  // Step 1 (the M3XU CGEMM): A = F_r * X with X viewed row-major r x n2.
  const auto& f = dft_matrix(r);
  for (int i = 0; i < n; ++i) scratch[i] = {0.0f, 0.0f};
  engine_->gemm_fp32c(r, n2, r, f.data(), r, data, n2, scratch, n2);
  // Step 2: twiddles A[k1][j2] *= w_n^(k1*j2) (elementwise, SIMT path).
  for (int k1 = 1; k1 < r; ++k1) {
    for (int j2 = 1; j2 < n2; ++j2) {
      const double ang = -kTwoPi * k1 * j2 / n;
      const std::complex<float> tw(static_cast<float>(std::cos(ang)),
                                   static_cast<float>(std::sin(ang)));
      scratch[static_cast<std::size_t>(k1) * n2 + j2] *= tw;
    }
  }
  // Step 3: n2-point FFT on each row (recursion scratch reuses `data`,
  // which holds no live values now).
  for (int k1 = 0; k1 < r; ++k1) {
    transform(scratch + static_cast<std::size_t>(k1) * n2,
              data + static_cast<std::size_t>(k1) * n2, n2);
  }
  // Step 4: transposing store: out[k1 + r*k2] = A[k1][k2].
  for (int k1 = 0; k1 < r; ++k1) {
    for (int k2 = 0; k2 < n2; ++k2) {
      data[k1 + static_cast<std::size_t>(r) * k2] =
          scratch[static_cast<std::size_t>(k1) * n2 + k2];
    }
  }
}

void GemmFft::forward(std::complex<float>* data) const {
  std::vector<std::complex<float>> scratch(static_cast<std::size_t>(n_));
  transform(data, scratch.data(), n_);
}

double GemmFft::cgemm_cmacs() const {
  double total = 0.0;
  int cur = n_;
  while (cur > radix_) {
    total += static_cast<double>(radix_) * n_;
    cur /= radix_;
  }
  total += static_cast<double>(cur) * n_;  // base-case DFTs
  return total;
}

void GemmFft::inverse(std::complex<float>* data) const {
  for (int i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  forward(data);
  const float scale = 1.0f / static_cast<float>(n_);
  for (int i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * scale;
}

int GemmFft::stage_count() const {
  int stages = 1;  // base case
  int cur = n_;
  while (cur > radix_) {
    ++stages;
    cur /= radix_;
  }
  return stages;
}

RealFft::RealFft(int n, int radix, const core::M3xuEngine* engine)
    : n_(n), half_plan_(n / 2, radix, engine) {
  M3XU_CHECK(n >= 4 && is_pow2(static_cast<std::uint64_t>(n)));
}

void RealFft::forward(const float* in, std::complex<float>* out) const {
  const int m = n_ / 2;
  // Pack even samples into the real channel, odd into the imaginary.
  std::vector<std::complex<float>> z(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    z[static_cast<std::size_t>(k)] = {in[2 * k], in[2 * k + 1]};
  }
  half_plan_.forward(z.data());
  // Untangle: X[k] = E[k] + e^{-2pi i k/n} O[k] with
  // E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = -i (Z[k] - conj(Z[m-k]))/2.
  for (int k = 0; k <= m; ++k) {
    const std::complex<double> zk(z[static_cast<std::size_t>(k % m)]);
    const std::complex<double> zmk(
        std::conj(std::complex<double>(z[static_cast<std::size_t>((m - k) % m)])));
    const std::complex<double> even = 0.5 * (zk + zmk);
    const std::complex<double> odd =
        std::complex<double>(0.0, -0.5) * (zk - zmk);
    const double ang = -kTwoPi * k / n_;
    const std::complex<double> tw(std::cos(ang), std::sin(ang));
    out[k] = std::complex<float>(even + tw * odd);
  }
}

GemmFft2d::GemmFft2d(int rows, int cols, int radix,
                     const core::M3xuEngine* engine)
    : rows_(rows),
      cols_(cols),
      row_plan_(cols, radix, engine),
      col_plan_(rows, radix, engine) {}

void GemmFft2d::pass(std::complex<float>* data, bool inv) const {
  // Rows in place.
  for (int r = 0; r < rows_; ++r) {
    std::complex<float>* row = data + static_cast<std::size_t>(r) * cols_;
    if (inv) {
      row_plan_.inverse(row);
    } else {
      row_plan_.forward(row);
    }
  }
  // Columns via a transposed scratch image.
  std::vector<std::complex<float>> t(static_cast<std::size_t>(rows_) * cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      t[static_cast<std::size_t>(c) * rows_ + r] =
          data[static_cast<std::size_t>(r) * cols_ + c];
    }
  }
  for (int c = 0; c < cols_; ++c) {
    std::complex<float>* col = t.data() + static_cast<std::size_t>(c) * rows_;
    if (inv) {
      col_plan_.inverse(col);
    } else {
      col_plan_.forward(col);
    }
  }
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      data[static_cast<std::size_t>(r) * cols_ + c] =
          t[static_cast<std::size_t>(c) * rows_ + r];
    }
  }
}

void GemmFft2d::forward(std::complex<float>* data) const {
  pass(data, /*inv=*/false);
}

void GemmFft2d::inverse(std::complex<float>* data) const {
  pass(data, /*inv=*/true);
}

}  // namespace m3xu::fft
