#include "fft/fft_timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/eval_kernels.hpp"
#include "telemetry/model_clock.hpp"

namespace m3xu::fft {

namespace {

int log2_of(long n) {
  int l = 0;
  while ((1L << l) < n) ++l;
  return l;
}

/// One butterfly stage: a full pass over the signal (read + write,
/// complex64) with per-element math on the given pipe.
/// `mma_instr_per_elem` is MMA *instructions* per signal element.
sim::KernelTiming stage_time(const sim::GpuSim& sim, double elems,
                             double ffma_per_elem, int mma_ii,
                             double mma_instr_per_elem, double mma_energy,
                             double l2_hit) {
  const double bytes = elems * 8.0;
  sim::KernelLaunch launch = sim::build_streaming_kernel(
      sim.config(), bytes, bytes, /*ffma_per_kb=*/0.0);
  launch.l2_hit_fraction = l2_hit;
  launch.energy_per_mma = mma_energy;
  // Per-CTA work (the builder sizes CTAs at 128 KiB of reads).
  const double elems_per_cta = elems / launch.grid_ctas;
  if (ffma_per_elem > 0.0) {
    const int count = std::max(
        1, static_cast<int>(ffma_per_elem * elems_per_cta / 32.0 /
                            launch.program.warps));
    sim::Instr f = sim::Instr::ffma(count);
    f.dep_on_prev = true;
    // Insert before the trailing store.
    launch.program.body.insert(launch.program.body.end() - 1, f);
  }
  if (mma_instr_per_elem > 0.0) {
    const long count = std::max<long>(
        1, static_cast<long>(mma_instr_per_elem * elems_per_cta /
                             launch.program.warps));
    for (long i = 0; i < count; ++i) {
      sim::Instr m = sim::Instr::mma(mma_ii);
      m.dep_on_prev = (i == 0);
      launch.program.body.insert(launch.program.body.end() - 1, m);
    }
  }
  return sim.run(launch);
}

}  // namespace

const char* impl_name(FftImpl impl) {
  switch (impl) {
    case FftImpl::kCuFft:
      return "cuFFT";
    case FftImpl::kTcFftTf32:
      return "tcFFT-TF32";
    case FftImpl::kM3xu:
      return "m3xu-fft";
  }
  return "?";
}

FftTime time_fft(const sim::GpuSim& sim, FftImpl impl, long n, long batch) {
  M3XU_CHECK(n >= 2 && batch >= 1);
  const double elems = static_cast<double>(n) * batch;
  const double working_set = elems * 8.0 * 2.0;  // ping-pong buffers
  const double l2_hit =
      working_set <= sim.config().l2_capacity_bytes * 0.8 ? 0.85 : 0.1;
  const int log2n = log2_of(n);

  FftTime out;
  telemetry::ModelClock clock;
  switch (impl) {
    case FftImpl::kCuFft: {
      // Radix-8 Stockham: ceil(log8 n) passes, ~10 FMA per element per
      // pass on the FP32 pipe. Very large transforms fall back to a
      // four-step decomposition with explicit transpose kernels
      // (three extra passes over the data).
      out.stages = (log2n + 2) / 3;
      const int transpose_passes = n >= (1L << 21) ? 3 : 0;
      for (int s = 0; s < out.stages; ++s) {
        const sim::KernelTiming t =
            stage_time(sim, elems, 10.0, 0, 0.0, 0.0, l2_hit);
        clock.advance("butterfly", t.seconds);
        out.energy += t.energy;
      }
      for (int s = 0; s < transpose_passes; ++s) {
        const sim::KernelTiming t =
            stage_time(sim, elems, 0.0, 0, 0.0, 0.0, l2_hit);
        clock.advance("transpose", t.seconds);
        out.energy += t.energy;
      }
      out.stages += transpose_passes;
      out.seconds = clock.seconds();
      return out;
    }
    case FftImpl::kTcFftTf32: {
      // Radix-16 stages; each complex GEMM needs 4x the Tensor-Core
      // operations (4 real TF32 GEMMs per complex product, SVI-C1)
      // -> 16 cmacs/elem * 4 real products * 4x op count on the TC,
      // plus split FMAs on the CUDA cores.
      out.stages = (log2n + 3) / 4;
      // 16 cmacs/elem x 4 real products x 4x op count, at 1024 real
      // MACs per TF32 m16n8k8 instruction -> 0.25 instructions/elem.
      const double instr_per_elem = 16.0 * 4.0 * 4.0 / 1024.0;
      const double mma_e = sim::kind_tf32(sim.config()).energy_per_mma;
      for (int s = 0; s < out.stages; ++s) {
        // 1.5x traffic: Tensor-Core fragments need de-interleaved
        // real/imag planes, so every stage pays a layout shuffle on
        // top of the butterfly pass (tcFFT's published overhead; the
        // M3XU data-assignment stage does this routing in hardware).
        const sim::KernelTiming t = stage_time(
            sim, elems * 1.5, 4.0, sim::kind_tf32(sim.config()).ii,
            instr_per_elem / 1.5, mma_e, l2_hit);
        clock.advance("butterfly", t.seconds);
        out.energy += t.energy;
      }
      out.seconds = clock.seconds();
      return out;
    }
    case FftImpl::kM3xu: {
      // Radix-16 stages; 16 native complex MACs per element per stage
      // on the FP32C pipe, twiddles fused into the DFT matrices.
      out.stages = (log2n + 3) / 4;
      // 16 cmacs/elem at 512 cmacs per m16n8k4 FP32C instruction.
      const double instr_per_elem = 16.0 / 512.0;
      const double mma_e = sim::kind_m3xu_fp32c(sim.config()).energy_per_mma;
      for (int s = 0; s < out.stages; ++s) {
        const sim::KernelTiming t =
            stage_time(sim, elems, 1.0, sim::kind_m3xu_fp32c(sim.config()).ii,
                       instr_per_elem, mma_e, l2_hit);
        clock.advance("butterfly", t.seconds);
        out.energy += t.energy;
      }
      out.seconds = clock.seconds();
      return out;
    }
  }
  return out;
}

}  // namespace m3xu::fft
