// Fig 6 timing model: batched 1-D FFT on three implementations.
//
//  - cuFFT baseline: radix-8 Stockham stages on CUDA cores; each stage
//    is one pass over the data (memory-bound at large sizes) plus
//    SIMT butterfly arithmetic, with a fixed kernel-launch cost.
//  - tcFFT extended to TF32 (SVI-C1): radix-16 stages whose butterfly
//    CGEMMs run on Tensor Cores but need 4x the operations per complex
//    GEMM (no hardware complex support) plus split overhead.
//  - M3XU: radix-16 stages whose CGEMMs run natively in FP32C mode.
//
// Fewer, natively-complex stages buy M3XU its bandwidth advantage -
// the mechanism behind the paper's 1.52x average / 1.99x max speedup.
#pragma once

#include "sim/kernel_sim.hpp"

namespace m3xu::fft {

enum class FftImpl { kCuFft, kTcFftTf32, kM3xu };

const char* impl_name(FftImpl impl);

struct FftTime {
  double seconds = 0.0;
  int stages = 0;
  double energy = 0.0;
};

/// Times `batch` independent n-point FFTs.
FftTime time_fft(const sim::GpuSim& sim, FftImpl impl, long n, long batch);

}  // namespace m3xu::fft
