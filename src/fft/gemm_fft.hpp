// GEMM-based FFT on the M3XU FP32C engine (the paper's FFT case study,
// SVI-C1; tcFFT-style).
//
// The four-step decomposition N = R * N2 turns every butterfly stage
// into a complex matrix multiplication: with the input viewed as an
// R x N2 matrix X (row-major), A = F_R * X is one CGEMM against the
// R-point DFT matrix, followed by elementwise twiddles, N2-point
// sub-FFTs on the rows, and a transposing store. M3XU executes the
// CGEMMs natively in FP32C; a conventional GPU must run them on SIMT
// cores or approximate them with TF32 splits.
#pragma once

#include <complex>
#include <vector>

#include "core/mxu.hpp"

namespace m3xu::fft {

/// Reference radix-2 iterative FFT (double precision, for validation).
void reference_fft(std::vector<std::complex<double>>& data, bool inverse);

class GemmFft {
 public:
  /// n must be a power of two >= 2. radix must be a power of two
  /// (<= 16); stages use radix R until the remainder is smaller.
  GemmFft(int n, int radix, const core::M3xuEngine* engine);

  int n() const { return n_; }
  int radix() const { return radix_; }

  /// In-place forward FFT of `data` (length n).
  void forward(std::complex<float>* data) const;

  /// In-place inverse FFT (normalized by 1/n), via the conjugation
  /// identity ifft(x) = conj(fft(conj(x))) / n - no extra hardware
  /// pass beyond the sign flips the data-assignment stage already has.
  void inverse(std::complex<float>* data) const;

  /// Total complex MACs executed in DFT-matrix CGEMMs for one
  /// transform (drives the Fig 6 timing model).
  double cgemm_cmacs() const;
  /// Number of butterfly stages (each is one pass over the data).
  int stage_count() const;

 private:
  void transform(std::complex<float>* data, std::complex<float>* scratch,
                 int n) const;
  const std::vector<std::complex<float>>& dft_matrix(int r) const;

  int n_;
  int radix_;
  const core::M3xuEngine* engine_;
  // DFT matrices F_r for every radix used (row-major r x r).
  mutable std::vector<std::vector<std::complex<float>>> dft_cache_;
};

/// Real-input FFT via the two-for-one trick: an n-point real signal
/// packs into an n/2-point complex FFT, then an O(n) untangling pass
/// recovers the n/2+1 non-redundant spectrum bins. Halves the CGEMM
/// work versus transforming the zero-padded complex signal.
class RealFft {
 public:
  /// n must be a power of two >= 4.
  RealFft(int n, int radix, const core::M3xuEngine* engine);

  int n() const { return n_; }

  /// Computes spectrum bins 0..n/2 (inclusive) of the length-n real
  /// signal `in` into `out` (n/2+1 entries). Remaining bins are the
  /// conjugate mirror.
  void forward(const float* in, std::complex<float>* out) const;

 private:
  int n_;
  GemmFft half_plan_;
};

/// 2-D FFT over a rows x cols row-major image: transforms every row,
/// then every column (each dimension a power of two). The column pass
/// works on a transposed copy so both passes use the contiguous 1-D
/// plan.
class GemmFft2d {
 public:
  GemmFft2d(int rows, int cols, int radix, const core::M3xuEngine* engine);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void forward(std::complex<float>* data) const;
  void inverse(std::complex<float>* data) const;

 private:
  void pass(std::complex<float>* data, bool inv) const;

  int rows_;
  int cols_;
  GemmFft row_plan_;
  GemmFft col_plan_;
};

}  // namespace m3xu::fft
