#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace m3xu {

namespace {

// Pool gauges (no-ops when M3XU_TELEMETRY=OFF). Worker utilization is
// worker_busy_ns / (wall_ns * thread_count); queue_depth samples the
// iterations still unclaimed at each chunk claim.
telemetry::Counter tp_tasks("threadpool.tasks");
telemetry::Counter tp_iters("threadpool.iterations");
telemetry::Counter tp_busy_ns("threadpool.worker_busy_ns");
telemetry::Counter tp_wall_ns("threadpool.wall_ns");
telemetry::Histogram tp_depth("threadpool.queue_depth");
// Guard-rail outcomes: every watchdog launch, and every abort by
// cause. Clean guarded runs bump watches only - the zero-false-
// positive property tests assert on exactly these counters.
telemetry::Counter tp_cancellations("threadpool.cancellations");
telemetry::Counter tp_watches("threadpool.watchdog.watches");
telemetry::Counter tp_deadline_fired("threadpool.watchdog.deadline_fired");
telemetry::Counter tp_stalls("threadpool.watchdog.stalls_detected");
// Concurrent-submission contention: calls that found the pool busy,
// and how long they queued before acquiring it.
telemetry::Counter tp_submit_queued("threadpool.submissions_queued");
telemetry::Histogram tp_submit_wait("threadpool.submit_wait_ns");

}  // namespace

thread_local const ThreadPool* ThreadPool::draining_pool_ = nullptr;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Task& task) {
  const ThreadPool* const prev_pool = draining_pool_;
  draining_pool_ = this;
  const telemetry::Stopwatch busy;
  for (;;) {
    std::size_t begin = task.next.fetch_add(task.chunk);
    if (begin >= task.end) break;
    tp_depth.record(task.end - begin);
    std::size_t end = std::min(begin + task.chunk, task.end);
    bool skip = task.failed.load(std::memory_order_relaxed);
    if (task.guarded && !skip) {
      if (task.stop_cause.load(std::memory_order_relaxed) == kStopNone &&
          task.token != nullptr && task.token->cancelled()) {
        int expected = kStopNone;
        if (task.stop_cause.compare_exchange_strong(expected, kStopToken)) {
          tp_cancellations.increment();
        }
      }
      skip = task.stop_cause.load(std::memory_order_relaxed) != kStopNone;
    }
    if (!skip) {
      for (std::size_t i = begin; i < end; ++i) {
        if (task.guarded) {
          if (task.token != nullptr && task.token->cancelled()) {
            int expected = kStopNone;
            if (task.stop_cause.compare_exchange_strong(expected,
                                                        kStopToken)) {
              tp_cancellations.increment();
            }
          }
          if (task.stop_cause.load(std::memory_order_relaxed) != kStopNone) {
            break;  // remaining iterations counted below
          }
        }
        try {
          (*task.fn)(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(task.error_mu);
            if (!task.error) task.error = std::current_exception();
          }
          task.failed.store(true, std::memory_order_relaxed);
          break;  // skip the rest of this chunk
        }
        if (task.guarded) {
          task.progress.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Iterations skipped after a failure or guard abort still count as
    // done so the caller's completion wait terminates.
    task.done.fetch_add(end - begin);
  }
  tp_busy_ns.add(busy.elapsed_ns());
  draining_pool_ = prev_pool;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_generation = generation_;
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || (current_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Task* task = current_;
    ++active_;
    lock.unlock();
    drain(*task);
    lock.lock();
    --active_;
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 0, fn, ParallelOptions{});
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, grain, fn, ParallelOptions{});
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn,
                              const ParallelOptions& options) {
  if (n == 0) return;
  tp_tasks.increment();
  tp_iters.add(n);
  if (workers_.empty() || n == 1) {
    if (!options.guarded()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // Serial guarded path: token and deadline are checked between
    // iterations (stall detection needs a concurrent observer and a
    // stalled serial iteration blocks the check anyway, so it reduces
    // to the deadline here).
    const telemetry::Stopwatch wall;
    for (std::size_t i = 0; i < n; ++i) {
      if (options.token != nullptr && options.token->cancelled()) {
        tp_cancellations.increment();
        throw CancelledError(
            "parallel_for cancelled: " + options.token->reason(),
            options.token->reason_tag());
      }
      if (options.deadline_ms > 0 &&
          wall.elapsed_ns() >=
                static_cast<std::uint64_t>(options.deadline_ms) * 1'000'000) {
        tp_deadline_fired.increment();
        throw DeadlineExceeded("parallel_for exceeded its deadline of " +
                               std::to_string(options.deadline_ms) + " ms");
      }
      fn(i);
    }
    return;
  }
  const telemetry::ScopedTimer span("threadpool.parallel_for");
  const telemetry::Stopwatch wall;
  M3XU_CHECK_MSG(draining_pool_ != this,
                 "nested parallel_for: a body running on this pool must not "
                 "submit to the same pool (the inner call would wait on the "
                 "task its own thread is executing)");
  Task task;
  task.fn = &fn;
  task.end = n;
  // Default grain aims for ~4 chunks per thread to balance load
  // without excess atomics.
  task.chunk = grain != 0
                   ? grain
                   : std::max<std::size_t>(1, n / (4 * thread_count()));
  task.guarded = options.guarded();
  task.token = options.token;
  {
    // Acquire the pool. The pool runs one task at a time; concurrent
    // submitters queue here until the running task retires. The wait
    // is cancellable (token) and counts against the caller's deadline,
    // so a shed or expired request never occupies the pool at all.
    std::unique_lock<std::mutex> lock(mu_);
    if (current_ != nullptr) {
      tp_submit_queued.increment();
      const telemetry::Stopwatch queued;
      while (current_ != nullptr) {
        submit_cv_.wait_for(lock, std::chrono::milliseconds(1));
        if (current_ == nullptr) break;
        if (options.token != nullptr && options.token->cancelled()) {
          tp_cancellations.increment();
          throw CancelledError(
              "parallel_for cancelled while queued for the pool: " +
                  options.token->reason(),
              options.token->reason_tag());
        }
        if (options.deadline_ms > 0 &&
            wall.elapsed_ns() >=
                static_cast<std::uint64_t>(options.deadline_ms) * 1'000'000) {
          tp_deadline_fired.increment();
          throw DeadlineExceeded(
              "parallel_for exceeded its deadline of " +
              std::to_string(options.deadline_ms) +
              " ms while queued for the pool");
        }
      }
      tp_submit_wait.record(static_cast<std::uint64_t>(queued.elapsed_ns()));
    }
    current_ = &task;
    ++generation_;
  }
  // Per-call watchdog: polls the task's heartbeat until the caller's
  // completion wait finishes. Spawned only for guarded calls with a
  // deadline or stall window, so the clean path never pays for it.
  // Started after pool acquisition (the queue wait above already
  // enforces the deadline), watching only the remaining budget.
  std::int64_t remaining_deadline_ms = options.deadline_ms;
  if (options.deadline_ms > 0) {
    remaining_deadline_ms = std::max<std::int64_t>(
        1, options.deadline_ms - wall.elapsed_ns() / 1'000'000);
  }
  std::thread watchdog;
  std::mutex watch_mu;
  std::condition_variable watch_cv;
  bool watch_done = false;
  if (options.deadline_ms > 0 || options.stall_ms > 0) {
    tp_watches.increment();
    watchdog = std::thread([&] {
      using clock = std::chrono::steady_clock;
      const auto t0 = clock::now();
      std::size_t last_progress = 0;
      auto last_change = t0;
      std::unique_lock<std::mutex> lock(watch_mu);
      while (!watch_done) {
        watch_cv.wait_for(lock, std::chrono::milliseconds(1));
        if (watch_done) break;
        const auto now = clock::now();
        if (options.deadline_ms > 0 &&
            now - t0 >= std::chrono::milliseconds(remaining_deadline_ms)) {
          int expected = kStopNone;
          if (task.stop_cause.compare_exchange_strong(expected,
                                                      kStopDeadline)) {
            tp_deadline_fired.increment();
          }
        }
        if (options.stall_ms > 0) {
          const std::size_t p = task.progress.load(std::memory_order_relaxed);
          if (p != last_progress) {
            last_progress = p;
            last_change = now;
          } else if (p < task.end &&
                     now - last_change >=
                         std::chrono::milliseconds(options.stall_ms)) {
            int expected = kStopNone;
            if (task.stop_cause.compare_exchange_strong(expected,
                                                        kStopStall)) {
              tp_stalls.increment();
            }
          }
        }
      }
    });
  }
  cv_.notify_all();
  drain(task);
  {
    // Wait until every iteration ran AND no worker still holds a
    // reference to `task` (it lives on this stack frame).
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return active_ == 0 && task.done.load() == task.end;
    });
    current_ = nullptr;
  }
  // Hand the pool to the next queued submitter, if any.
  submit_cv_.notify_one();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu);
      watch_done = true;
    }
    watch_cv.notify_one();
    watchdog.join();
  }
  tp_wall_ns.add(wall.elapsed_ns());
  // All workers have quiesced: rethrow the first captured exception on
  // the calling thread (no lock needed past the wait above). fn errors
  // outrank guard aborts - a real failure should not be masked by the
  // cancellation it triggered.
  if (task.error) std::rethrow_exception(task.error);
  switch (task.stop_cause.load(std::memory_order_relaxed)) {
    case kStopToken:
      throw CancelledError(
          "parallel_for cancelled: " +
              (task.token != nullptr ? task.token->reason() : std::string()),
          task.token != nullptr ? task.token->reason_tag()
                                : CancelReason::kUnspecified);
    case kStopDeadline:
      throw DeadlineExceeded("parallel_for exceeded its deadline of " +
                             std::to_string(options.deadline_ms) + " ms");
    case kStopStall:
      throw DeadlineExceeded(
          "parallel_for stalled: no iteration completed for " +
              std::to_string(options.stall_ms) + " ms",
          CancelReason::kStall);
    default:
      break;
  }
}

namespace {

// Requested global-pool size: SIZE_MAX = unset (fall through to the
// M3XU_THREADS env var, then the hardware default). Latched by the
// first global() call.
std::atomic<std::size_t> g_global_threads{SIZE_MAX};
std::atomic<bool> g_global_built{false};

std::size_t global_pool_size() {
  std::size_t req = g_global_threads.load(std::memory_order_acquire);
  if (req != SIZE_MAX) return req;
  if (const char* env = std::getenv("M3XU_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 4096) return v;
  }
  return 0;  // hardware default
}

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool* pool = [] {
    static ThreadPool p(global_pool_size());
    g_global_built.store(true, std::memory_order_release);
    return &p;
  }();
  return *pool;
}

bool ThreadPool::configure_global(std::size_t threads) {
  if (g_global_built.load(std::memory_order_acquire)) return false;
  g_global_threads.store(threads, std::memory_order_release);
  // Benign race: a concurrent first global() call may or may not see
  // the request; callers are expected to configure before spinning up
  // concurrent work.
  return !g_global_built.load(std::memory_order_acquire);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn,
                  const ParallelOptions& options) {
  ThreadPool::global().parallel_for(n, grain, fn, options);
}

}  // namespace m3xu

// Watchdog limitation, documented here next to the implementation: a
// worker that never returns from fn cannot be preempted - the
// completion wait above still blocks on its chunk. The watchdog's job
// is to convert a *finite* stall (a slow syscall, an injected delay, a
// contended lock) into a clean DeadlineExceeded instead of silently
// absorbing it, and to stop the rest of the grid from piling in after
// it. Truly unbounded hangs need process-level supervision.
