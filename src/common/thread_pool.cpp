#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace m3xu {

namespace {

// Pool gauges (no-ops when M3XU_TELEMETRY=OFF). Worker utilization is
// worker_busy_ns / (wall_ns * thread_count); queue_depth samples the
// iterations still unclaimed at each chunk claim.
telemetry::Counter tp_tasks("threadpool.tasks");
telemetry::Counter tp_iters("threadpool.iterations");
telemetry::Counter tp_busy_ns("threadpool.worker_busy_ns");
telemetry::Counter tp_wall_ns("threadpool.wall_ns");
telemetry::Histogram tp_depth("threadpool.queue_depth");

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Task& task) {
  const telemetry::Stopwatch busy;
  for (;;) {
    std::size_t begin = task.next.fetch_add(task.chunk);
    if (begin >= task.end) break;
    tp_depth.record(task.end - begin);
    std::size_t end = std::min(begin + task.chunk, task.end);
    if (!task.failed.load(std::memory_order_relaxed)) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*task.fn)(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(task.error_mu);
            if (!task.error) task.error = std::current_exception();
          }
          task.failed.store(true, std::memory_order_relaxed);
          break;  // skip the rest of this chunk
        }
      }
    }
    // Iterations skipped after a failure still count as done so the
    // caller's completion wait terminates.
    task.done.fetch_add(end - begin);
  }
  tp_busy_ns.add(busy.elapsed_ns());
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_generation = generation_;
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || (current_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Task* task = current_;
    ++active_;
    lock.unlock();
    drain(*task);
    lock.lock();
    --active_;
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 0, fn);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  tp_tasks.increment();
  tp_iters.add(n);
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const telemetry::ScopedTimer span("threadpool.parallel_for");
  const telemetry::Stopwatch wall;
  Task task;
  task.fn = &fn;
  task.end = n;
  // Default grain aims for ~4 chunks per thread to balance load
  // without excess atomics.
  task.chunk = grain != 0
                   ? grain
                   : std::max<std::size_t>(1, n / (4 * thread_count()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    M3XU_CHECK(current_ == nullptr);  // no nested parallel_for
    current_ = &task;
    ++generation_;
  }
  cv_.notify_all();
  drain(task);
  {
    // Wait until every iteration ran AND no worker still holds a
    // reference to `task` (it lives on this stack frame).
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return active_ == 0 && task.done.load() == task.end;
    });
    current_ = nullptr;
  }
  tp_wall_ns.add(wall.elapsed_ns());
  // All workers have quiesced: rethrow the first captured exception on
  // the calling thread (no lock needed past the wait above).
  if (task.error) std::rethrow_exception(task.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

}  // namespace m3xu
