// Minimal --flag=value parsing for the benchmark/example executables.
// Keeps the harness binaries dependency-free and self-describing.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace m3xu {

class Cli {
 public:
  /// Parses argv of the form --name=value or --name (boolean true).
  /// Unrecognized positional arguments abort with a usage message.
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace m3xu
