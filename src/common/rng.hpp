// Deterministic, seedable RNG for tests, workload generators, and
// property sweeps. splitmix64 seeding + xoshiro256** core: fast, high
// quality, and fully reproducible across platforms (unlike std::
// distributions, whose outputs are implementation-defined).
#pragma once

#include <cstdint>
#include <limits>

#include "common/bits.hpp"

namespace m3xu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : seed_(seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// The seed this generator was constructed with (for a split stream,
  /// the derived stream seed). Lets consumers re-derive child streams
  /// or seed other deterministic machinery (e.g. a FaultInjector) from
  /// the same root.
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent child generator for stream `stream`. The
  /// child is a pure function of (construction seed, stream) - it does
  /// NOT depend on how much this generator has been consumed - so
  /// per-tile / per-iteration streams are reproducible regardless of
  /// thread interleaving or evaluation order. Distinct streams are
  /// decorrelated by a splitmix64 finalizer over the golden-ratio
  /// stride (the same construction splitmix seeding uses).
  Rng split(std::uint64_t stream) const {
    std::uint64_t z = seed_ + (stream + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, n), exactly (no modulo bias). Power-of-two ranges
  /// mask the draw; other ranges reject draws from the incomplete final
  /// wrap of [0, 2^64) so every residue keeps equal probability. Still
  /// fully deterministic for a fixed seed: a rejection just consumes an
  /// extra draw, and its probability is (2^64 mod n) / 2^64 - for the
  /// small ranges tests use, effectively never.
  std::uint64_t next_below(std::uint64_t n) {
    if (n == 0) return 0;
    if ((n & (n - 1)) == 0) return next_u64() & (n - 1);
    const std::uint64_t min_valid = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= min_valid) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, throughput is not a concern here).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586476925286766559 * u2);
  }

  /// A finite float drawn from the full bit space (any exponent, any
  /// mantissa) - exercises subnormals and extreme magnitudes.
  float any_finite_float() {
    for (;;) {
      std::uint32_t b = next_u32();
      // Reject Inf/NaN (exponent all ones).
      if (((b >> 23) & 0xff) != 0xff) return float_from_bits(b);
    }
  }

  /// A "well-scaled" float: magnitude in roughly [2^-8, 2^8], the range
  /// where GEMM accumulation is numerically benign.
  float scaled_float() {
    int e = static_cast<int>(next_below(17)) - 8;
    float m = uniform(-1.0f, 1.0f);
    return __builtin_ldexpf(m, e);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace m3xu
