// Summary statistics used by the benchmark harnesses and tests
// (speedup series, error distributions).
#pragma once

#include <cstddef>
#include <vector>

namespace m3xu {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double geomean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Computes min/max/mean/geomean/stddev of `values`. Geomean is over
/// absolute values and is 0 if any value is 0. Empty input yields a
/// zeroed Summary.
Summary summarize(const std::vector<double>& values);

}  // namespace m3xu
