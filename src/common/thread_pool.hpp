// A small work-stealing-free thread pool with a blocking parallel_for.
//
// GEMM drivers and workload generators parallelize over tile grids with
// parallel_for; the pool is created once and reused. On single-core
// hosts the pool degenerates to serial execution with identical results
// (chunk order is deterministic regardless of thread count).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace m3xu {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks.
  /// Blocks until all iterations complete. If `fn` throws, the first
  /// exception is captured, remaining iterations are skipped, and the
  /// exception is rethrown on the calling thread once all workers have
  /// quiesced (which iterations ran before the skip is unspecified).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// As above with an explicit scheduling grain: workers claim `grain`
  /// consecutive indices per queue pop, so cheap per-index bodies
  /// amortize the atomic increment and closure dispatch. grain == 0
  /// picks the default (~4 chunks per thread). Iteration results are
  /// independent of grain; only scheduling granularity changes.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> done{0};
    // First exception thrown by fn; later ones are dropped. `failed`
    // short-circuits the remaining iterations cheaply.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void worker_loop();
  static void drain(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace m3xu
