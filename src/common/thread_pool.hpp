// A small work-stealing-free thread pool with a blocking parallel_for.
//
// GEMM drivers and workload generators parallelize over tile grids with
// parallel_for; the pool is created once and reused. On single-core
// hosts the pool degenerates to serial execution with identical results
// (chunk order is deterministic regardless of thread count).
//
// parallel_for can optionally run *guarded* (ParallelOptions): a
// cooperative CancellationToken is polled between iterations, and a
// per-call watchdog thread enforces a wall deadline and detects
// stalled progress. Guarding is strictly opt-in - the default options
// leave the hot path byte-identical to the unguarded pool (no extra
// thread, no per-iteration atomics). See docs/RESILIENCE.md.
//
// Concurrent submissions: parallel_for may be called from multiple OS
// threads at once (the multi-tenant GemmServer does exactly this).
// The pool runs one task at a time; later submitters queue on a
// condition variable until the pool frees up. The queue wait is
// cancellable (a latched token throws CancelledError without running
// a single iteration) and counts against the caller's deadline_ms;
// threadpool.submit_wait_ns / threadpool.submissions_queued telemetry
// expose the contention. Calling parallel_for from *inside* a body
// running on the same pool is still misuse (it would deadlock) and
// fails a M3XU_CHECK. See docs/SERVING.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"

namespace m3xu {

/// Optional guard rails for one parallel_for call. All default-off;
/// any non-default field switches the call into guarded mode.
struct ParallelOptions {
  /// Cooperative cancellation: polled before every iteration. A
  /// latched token makes workers skip their remaining iterations and
  /// parallel_for throw CancelledError after quiescing.
  const CancellationToken* token = nullptr;
  /// Wall-clock budget for the whole call, in ms (0 = none). When it
  /// elapses the watchdog stops further iterations and parallel_for
  /// throws DeadlineExceeded.
  std::int64_t deadline_ms = 0;
  /// No-progress window, in ms (0 = none): if no iteration completes
  /// for this long while work remains, the watchdog flags a stalled
  /// worker and parallel_for throws DeadlineExceeded. Note the abort
  /// is still cooperative - a worker stuck *inside* fn is only
  /// reclaimed when fn returns; the watchdog bounds the damage by
  /// cancelling everything after it.
  std::int64_t stall_ms = 0;

  bool guarded() const {
    return token != nullptr || deadline_ms > 0 || stall_ms > 0;
  }
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks.
  /// Blocks until all iterations complete. If `fn` throws, the first
  /// exception is captured, remaining iterations are skipped, and the
  /// exception is rethrown on the calling thread once all workers have
  /// quiesced (which iterations ran before the skip is unspecified).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// As above with an explicit scheduling grain: workers claim `grain`
  /// consecutive indices per queue pop, so cheap per-index bodies
  /// amortize the atomic increment and closure dispatch. grain == 0
  /// picks the default (~4 chunks per thread). Iteration results are
  /// independent of grain; only scheduling granularity changes.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Guarded variant: cooperative cancellation + watchdog per
  /// `options`. Exceptions thrown by fn take priority over guard
  /// aborts; otherwise a latched token throws CancelledError and a
  /// fired deadline / stall detection throws DeadlineExceeded, in both
  /// cases only after every worker has quiesced.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn,
                    const ParallelOptions& options);

  /// Process-wide default pool (lazily constructed). Sized by the
  /// first of: configure_global(), the M3XU_THREADS environment
  /// variable, hardware_concurrency().
  static ThreadPool& global();

  /// Sets the worker count the global pool is built with (0 = the
  /// hardware default). Only effective before the first global() call
  /// - the pool is immutable once running - and returns false without
  /// touching anything afterwards. Benchmarks call this from flag
  /// parsing; libraries should take an explicit pool instead.
  static bool configure_global(std::size_t threads);

 private:
  // Why the watchdog aborted (Task::stop_cause values).
  enum : int { kStopNone = 0, kStopToken = 1, kStopDeadline = 2,
               kStopStall = 3 };

  struct Task {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> done{0};
    // First exception thrown by fn; later ones are dropped. `failed`
    // short-circuits the remaining iterations cheaply.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;
    // Guarded-mode state. `guarded` is a plain bool set before the
    // task is published, so unguarded drains pay one predictable
    // branch and no atomics beyond the existing ones.
    bool guarded = false;
    const CancellationToken* token = nullptr;
    std::atomic<int> stop_cause{kStopNone};
    // Completed-iteration heartbeat for stall detection (finer-grained
    // than `done`, which advances per chunk).
    std::atomic<std::size_t> progress{0};
  };

  void worker_loop();
  void drain(Task& task);

  // The pool this thread is currently draining a task for (nullptr
  // outside drain). Lets parallel_for reject the one submission shape
  // that cannot queue: a body resubmitting to its own pool.
  static thread_local const ThreadPool* draining_pool_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::condition_variable submit_cv_;
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn,
                  const ParallelOptions& options);

}  // namespace m3xu
