// Bit-manipulation helpers shared by the soft-float and MXU models.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace m3xu {

/// Reinterprets the bits of a float as a uint32_t (type-pun safe).
inline std::uint32_t bits_of(float f) {
  return std::bit_cast<std::uint32_t>(f);
}

/// Reinterprets the bits of a double as a uint64_t.
inline std::uint64_t bits_of(double d) {
  return std::bit_cast<std::uint64_t>(d);
}

/// Builds a float from raw IEEE-754 bits.
inline float float_from_bits(std::uint32_t b) { return std::bit_cast<float>(b); }

/// Builds a double from raw IEEE-754 bits.
inline double double_from_bits(std::uint64_t b) {
  return std::bit_cast<double>(b);
}

/// Mask with the low `n` bits set (n in [0, 64]).
constexpr std::uint64_t low_mask(int n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Index of the most significant set bit, or -1 for zero.
constexpr int highest_bit(std::uint64_t v) {
  return v == 0 ? -1 : 63 - std::countl_zero(v);
}

/// True if `v` is a power of two (v != 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  return ceil_div(a, b) * b;
}

}  // namespace m3xu
