// Fixed-width ASCII table printer for the benchmark harnesses; every
// figure/table reproduction prints its rows through this so the output
// stays aligned and grep-friendly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace m3xu {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (with a separator under the header) to `out`.
  void print(std::FILE* out = stdout) const;

  /// Formats a double with `digits` fractional digits.
  static std::string num(double v, int digits = 2);

  /// Formats "3.64x"-style speedups.
  static std::string speedup(double v) { return num(v, 2) + "x"; }

  /// Formats a percentage, e.g. pct(0.47) == "47.0%".
  static std::string pct(double fraction, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m3xu
