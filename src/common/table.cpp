#include "common/table.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace m3xu {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  M3XU_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  M3XU_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(headers_);
  std::fprintf(out, "|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    std::fprintf(out, "|");
  }
  std::fprintf(out, "\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace m3xu
