// Lightweight runtime assertions used across the library.
//
// M3XU_CHECK is always on (cheap invariants on public API boundaries);
// M3XU_DCHECK compiles out in NDEBUG builds (hot inner loops).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace m3xu {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "M3XU_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace m3xu

#define M3XU_CHECK(expr)                                   \
  do {                                                     \
    if (!(expr)) ::m3xu::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define M3XU_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define M3XU_DCHECK(expr) M3XU_CHECK(expr)
#endif
