// Lightweight runtime assertions used across the library.
//
// M3XU_CHECK is always on (cheap invariants on public API boundaries);
// M3XU_CHECK_MSG additionally carries a human-readable message for
// public-entry-point validation; M3XU_DCHECK compiles out in NDEBUG
// builds (hot inner loops).
//
// Failures route through an overridable process-wide handler so
// library embedders (and the fault-injection campaign) can intercept
// them - e.g. translate into exceptions - instead of the default
// stderr + std::abort. A handler must not return; if it does, the
// default abort path runs anyway.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace m3xu {

/// Called on check failure. `msg` is null for plain M3XU_CHECK. The
/// handler must abort or throw; returning falls back to std::abort.
using CheckFailureHandler = void (*)(const char* expr, const char* msg,
                                     const char* file, int line);

namespace detail {
inline std::atomic<CheckFailureHandler> check_handler{nullptr};
}  // namespace detail

/// Installs `handler` (nullptr restores the default abort behaviour)
/// and returns the previous one.
inline CheckFailureHandler set_check_failure_handler(
    CheckFailureHandler handler) {
  return detail::check_handler.exchange(handler);
}

/// The exception thrown_check_failure_handler raises.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// A ready-made handler that throws CheckError.
[[noreturn]] inline void throwing_check_failure_handler(const char* expr,
                                                        const char* msg,
                                                        const char* file,
                                                        int line) {
  std::string what = "M3XU_CHECK failed: ";
  what += expr;
  if (msg != nullptr) {
    what += " (";
    what += msg;
    what += ")";
  }
  what += " at ";
  what += file;
  what += ":" + std::to_string(line);
  throw CheckError(what);
}

/// RAII install/restore of a failure handler (tests, campaign trials).
class ScopedCheckHandler {
 public:
  explicit ScopedCheckHandler(CheckFailureHandler handler)
      : previous_(set_check_failure_handler(handler)) {}
  ~ScopedCheckHandler() { set_check_failure_handler(previous_); }
  ScopedCheckHandler(const ScopedCheckHandler&) = delete;
  ScopedCheckHandler& operator=(const ScopedCheckHandler&) = delete;

 private:
  CheckFailureHandler previous_;
};

[[noreturn]] inline void check_failed(const char* expr, const char* msg,
                                      const char* file, int line) {
  if (CheckFailureHandler handler = detail::check_handler.load()) {
    handler(expr, msg, file, line);  // expected to throw or abort
  }
  if (msg != nullptr) {
    std::fprintf(stderr, "M3XU_CHECK failed: %s (%s) at %s:%d\n", expr, msg,
                 file, line);
  } else {
    std::fprintf(stderr, "M3XU_CHECK failed: %s at %s:%d\n", expr, file,
                 line);
  }
  std::abort();
}

}  // namespace m3xu

#define M3XU_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) ::m3xu::check_failed(#expr, nullptr, __FILE__, __LINE__); \
  } while (0)

#define M3XU_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) ::m3xu::check_failed(#expr, msg, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define M3XU_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define M3XU_DCHECK(expr) M3XU_CHECK(expr)
#endif
