#include "common/stats.hpp"

#include <cmath>

namespace m3xu {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  double log_sum = 0.0;
  bool any_zero = false;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    if (v == 0.0) {
      any_zero = true;
    } else {
      log_sum += std::log(std::fabs(v));
    }
  }
  s.mean = sum / static_cast<double>(values.size());
  s.geomean =
      any_zero ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace m3xu
