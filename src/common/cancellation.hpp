// Cooperative cancellation for long-running parallel work.
//
// A CancellationToken is a thread-safe flag plus a human-readable
// reason. Producers (a timeout thread, a signal handler shim, an RPC
// layer) call request_cancel(); consumers (ThreadPool::parallel_for,
// the tiled GEMM driver's per-chunk checkpoints) poll cancelled() or
// call check(), which throws CancelledError. Cancellation is purely
// cooperative: work only stops at the next checkpoint, so a
// non-cooperative stall needs the ThreadPool watchdog (deadline /
// stall detection in ParallelOptions) on top. See docs/RESILIENCE.md.
#pragma once

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace m3xu {

/// A run was cancelled via a CancellationToken (or aborted by the
/// ThreadPool watchdog, whose errors derive from this so one catch
/// clause covers every cooperative abort).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The ThreadPool watchdog aborted a parallel_for: either the wall
/// deadline elapsed or no worker made progress for the stall window.
/// The message distinguishes the two.
class DeadlineExceeded : public CancelledError {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : CancelledError(what) {}
};

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Latches the token. The first caller's reason wins; later calls
  /// are no-ops. Safe from any thread.
  void request_cancel(const std::string& reason = "cancelled") {
    const std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = reason;
    cancelled_.store(true, std::memory_order_release);
  }

  /// Cheap poll (one acquire load) for inner-loop checkpoints.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The reason passed to request_cancel (empty until then).
  std::string reason() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

  /// Throws CancelledError when the token is latched; otherwise a
  /// no-op. The canonical checkpoint call.
  void check() const {
    if (cancelled()) throw CancelledError("cancelled: " + reason());
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

}  // namespace m3xu
