// Cooperative cancellation for long-running parallel work.
//
// A CancellationToken is a thread-safe flag plus a human-readable
// reason and a machine-readable CancelReason tag. Producers (a timeout
// thread, the serving layer's admission control, an RPC layer) call
// request_cancel(); consumers (ThreadPool::parallel_for, the tiled
// GEMM driver's per-chunk checkpoints) poll cancelled() or call
// check(), which throws CancelledError. Cancellation is purely
// cooperative: work only stops at the next checkpoint, so a
// non-cooperative stall needs the ThreadPool watchdog (deadline /
// stall detection in ParallelOptions) on top.
//
// cancel_after() arms a background one-shot timer (CancelTimer, RAII:
// destroying the timer disarms it) that latches the token after a wall
// delay - the serving layer uses it to propagate per-request deadlines
// end-to-end without polling. The reason tag distinguishes who pulled
// the trigger (user cancel, deadline, load shed, stall watchdog), is
// carried on CancelledError, and is mirrored into cancel.* telemetry
// counters. See docs/RESILIENCE.md and docs/SERVING.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "telemetry/telemetry.hpp"

namespace m3xu {

/// Who (conceptually) latched a CancellationToken / aborted a guarded
/// call. Tags are advisory labels for classification - they do not
/// change abort semantics - but the serving layer relies on them to
/// map aborts onto terminal request statuses (user cancel vs deadline
/// vs shed) and to decide which failures are retryable (stall).
enum class CancelReason : int {
  kUnspecified = 0,  // legacy callers that never tagged their cancel
  kUser = 1,         // an explicit caller-initiated cancel
  kDeadline = 2,     // a wall deadline elapsed (timer or watchdog)
  kShed = 3,         // admission control / load shedding
  kStall = 4,        // the watchdog saw no progress for the stall window
};

inline const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kUnspecified:
      return "unspecified";
    case CancelReason::kUser:
      return "user";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kShed:
      return "shed";
    case CancelReason::kStall:
      return "stall";
  }
  return "?";
}

namespace detail {
/// One bump per latch/abort, by reason - no-ops with M3XU_TELEMETRY=OFF.
inline void count_cancel_reason(CancelReason reason) {
  static telemetry::Counter unspecified("cancel.unspecified");
  static telemetry::Counter user("cancel.user");
  static telemetry::Counter deadline("cancel.deadline");
  static telemetry::Counter shed("cancel.shed");
  static telemetry::Counter stall("cancel.stall");
  switch (reason) {
    case CancelReason::kUser:
      user.increment();
      break;
    case CancelReason::kDeadline:
      deadline.increment();
      break;
    case CancelReason::kShed:
      shed.increment();
      break;
    case CancelReason::kStall:
      stall.increment();
      break;
    default:
      unspecified.increment();
      break;
  }
}
}  // namespace detail

/// A run was cancelled via a CancellationToken (or aborted by the
/// ThreadPool watchdog, whose errors derive from this so one catch
/// clause covers every cooperative abort). reason() carries the
/// CancelReason tag of whoever triggered the abort.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what,
                          CancelReason reason = CancelReason::kUnspecified)
      : std::runtime_error(what), reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// The ThreadPool watchdog aborted a parallel_for: either the wall
/// deadline elapsed (reason kDeadline) or no worker made progress for
/// the stall window (reason kStall). The message distinguishes the two
/// as well.
class DeadlineExceeded : public CancelledError {
 public:
  explicit DeadlineExceeded(const std::string& what,
                            CancelReason reason = CancelReason::kDeadline)
      : CancelledError(what, reason) {}
};

class CancelTimer;

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Latches the token. The first caller's reason (and tag) wins;
  /// later calls are no-ops. Safe from any thread.
  void request_cancel(const std::string& reason = "cancelled",
                      CancelReason tag = CancelReason::kUser) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = reason;
    tag_ = tag;
    detail::count_cancel_reason(tag);
    cancelled_.store(true, std::memory_order_release);
  }

  /// Cheap poll (one acquire load) for inner-loop checkpoints.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The reason passed to request_cancel (empty until then).
  std::string reason() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

  /// The machine-readable tag of the winning request_cancel
  /// (kUnspecified until the token latches).
  CancelReason reason_tag() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tag_;
  }

  /// Throws CancelledError when the token is latched; otherwise a
  /// no-op. The canonical checkpoint call.
  void check() const {
    if (cancelled()) {
      const std::lock_guard<std::mutex> lock(mu_);
      throw CancelledError("cancelled: " + reason_, tag_);
    }
  }

  /// Arms a one-shot timer that latches this token with `tag` after
  /// `delay_ms` of wall time. Returns the RAII timer: the token is
  /// only latched while the timer is alive, and destroying it disarms
  /// (and joins) the timer thread, so the token's lifetime safely
  /// bounds the timer's. Defined below CancelTimer.
  CancelTimer cancel_after(std::int64_t delay_ms,
                           CancelReason tag = CancelReason::kDeadline,
                           const std::string& reason = "deadline exceeded");

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
  CancelReason tag_ = CancelReason::kUnspecified;
};

/// One-shot deadline timer bound to a CancellationToken (see
/// CancellationToken::cancel_after). Non-copyable and non-movable: it
/// owns a thread whose closure captures `this`. Keep it on the stack
/// (or as a member) that outlives neither the token nor the work it
/// guards; its destructor wakes and joins the thread, so disarming a
/// not-yet-fired timer is prompt (no sleep-out wait).
class CancelTimer {
 public:
  CancelTimer(CancellationToken& token, std::int64_t delay_ms,
              CancelReason tag, const std::string& reason)
      : thread_([this, &token, delay_ms, tag, reason] {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                       [&] { return disarmed_; });
          if (!disarmed_) token.request_cancel(reason, tag);
        }) {}

  CancelTimer(const CancelTimer&) = delete;
  CancelTimer& operator=(const CancelTimer&) = delete;

  ~CancelTimer() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      disarmed_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

inline CancelTimer CancellationToken::cancel_after(std::int64_t delay_ms,
                                                   CancelReason tag,
                                                   const std::string& reason) {
  return CancelTimer(*this, delay_ms, tag, reason);
}

}  // namespace m3xu
