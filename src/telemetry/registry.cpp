#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace m3xu::telemetry {

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::uint64_t Snapshot::counter_delta(const Snapshot& before,
                                      std::string_view name) const {
  const std::uint64_t now = counter(name);
  const std::uint64_t then = before.counter(name);
  return now > then ? now - then : 0;
}

double Snapshot::HistogramValue::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the p-th percentile sample (1-based, ceil), then walk the
  // buckets until the cumulative count reaches it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Bucket i holds values of bit-width i: [2^(i-1), 2^i - 1]
      // (bucket 0 holds exactly 0).
      return i == 0 ? 0.0 : std::ldexp(1.0, i) - 1.0;
    }
  }
  return std::ldexp(1.0, kHistBuckets) - 1.0;
}

const Snapshot::HistogramValue* Snapshot::histogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

#if M3XU_TELEMETRY_ENABLED

namespace detail {

namespace {

/// Plain (non-atomic) accumulation image of a shard, used for the
/// retired totals (mutated only under the registry mutex).
struct Totals {
  std::array<std::uint64_t, kMaxCounters> counters{};
  struct Hist {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists{};

  void fold(const Shard& s) {
    for (int i = 0; i < kMaxCounters; ++i) {
      counters[i] += s.counters[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kMaxHistograms; ++i) {
      const Shard::Hist& h = s.hists[i];
      hists[i].count += h.count.load(std::memory_order_relaxed);
      hists[i].sum += h.sum.load(std::memory_order_relaxed);
      for (int b = 0; b < kHistBuckets; ++b) {
        hists[i].buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
};

void zero_shard(Shard& s) {
  for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
  for (auto& h : s.hists) {
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
  }
}

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  int register_counter(const char* name) {
    return register_name(counter_names_, kMaxCounters, "counter", name);
  }
  int register_histogram(const char* name) {
    return register_name(histogram_names_, kMaxHistograms, "histogram", name);
  }

  void attach(Shard* shard) {
    const std::lock_guard<std::mutex> lock(mu_);
    live_.push_back(shard);
  }
  void detach(Shard* shard) {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_.fold(*shard);
    live_.erase(std::remove(live_.begin(), live_.end(), shard), live_.end());
  }

  Snapshot snapshot() {
    const std::lock_guard<std::mutex> lock(mu_);
    Totals t = retired_;
    for (const Shard* s : live_) t.fold(*s);
    Snapshot out;
    out.counters.reserve(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      out.counters.emplace_back(counter_names_[i], t.counters[i]);
    }
    out.histograms.reserve(histogram_names_.size());
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      Snapshot::HistogramValue h;
      h.name = histogram_names_[i];
      h.count = t.hists[i].count;
      h.sum = t.hists[i].sum;
      h.buckets = t.hists[i].buckets;
      out.histograms.push_back(std::move(h));
    }
    return out;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_ = Totals{};
    for (Shard* s : live_) zero_shard(*s);
  }

 private:
  int register_name(std::vector<std::string>& names, int cap,
                    const char* kind, const char* name) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    if (static_cast<int>(names.size()) == cap) {
      std::fprintf(stderr,
                   "m3xu telemetry: %s limit (%d) exceeded registering "
                   "'%s'\n",
                   kind, cap, name);
      std::abort();
    }
    names.emplace_back(name);
    return static_cast<int>(names.size()) - 1;
  }

  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::vector<Shard*> live_;
  Totals retired_;
};

/// Registers the thread's shard for its lifetime. Constructed after
/// (and therefore destroyed before) the registry singleton.
struct ShardOwner {
  Shard shard;
  ShardOwner() { Registry::instance().attach(&shard); }
  ~ShardOwner() { Registry::instance().detach(&shard); }
};

}  // namespace

Shard& local_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

int register_counter(const char* name) {
  return Registry::instance().register_counter(name);
}

int register_histogram(const char* name) {
  return Registry::instance().register_histogram(name);
}

}  // namespace detail

Snapshot snapshot() { return detail::Registry::instance().snapshot(); }

void reset() { detail::Registry::instance().reset(); }

#endif  // M3XU_TELEMETRY_ENABLED

}  // namespace m3xu::telemetry
