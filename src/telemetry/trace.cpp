#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "telemetry/json.hpp"

namespace m3xu::telemetry {

#if M3XU_TELEMETRY_ENABLED

namespace {

struct Span {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One thread's span ring. The owning thread appends under `mu`;
/// exporters copy the ring out under the same mutex. Contention only
/// happens while an export is in flight.
struct Ring {
  std::mutex mu;
  std::array<Span, kSpanRingCapacity> spans;
  std::uint64_t head = 0;  // total spans ever emitted
  int tid = 0;
};

struct RingSnapshot {
  int tid;
  std::vector<Span> spans;  // oldest first
};

class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    // Intentionally leaked: worker threads' thread_local RingOwner
    // destructors run while those threads unwind, which for the global
    // ThreadPool's workers is during static destruction - possibly
    // after a function-local static registry would already be gone
    // (destruction order across translation units is unspecified).
    // detach() into a destroyed registry is a use-after-free, so the
    // registry is immortal; the one-time allocation is reclaimed by
    // process exit.
    static TraceRegistry* const r = new TraceRegistry;
    return *r;
  }

  /// now_ns() at first trace use; exported ts values are relative to
  /// this origin so traces start near t=0.
  std::uint64_t origin_ns() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (origin_ns_ == 0) origin_ns_ = now_ns();
    return origin_ns_;
  }

  int attach(Ring* ring) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (origin_ns_ == 0) origin_ns_ = now_ns();
    live_.push_back(ring);
    return next_tid_++;
  }

  void detach(Ring* ring) {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(copy_ring(*ring));
    live_.erase(std::remove(live_.begin(), live_.end(), ring), live_.end());
  }

  std::vector<RingSnapshot> collect() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<RingSnapshot> out = retired_;
    out.reserve(out.size() + live_.size());
    for (Ring* r : live_) out.push_back(copy_ring(*r));
    return out;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_.clear();
    for (Ring* r : live_) {
      const std::lock_guard<std::mutex> ring_lock(r->mu);
      r->head = 0;
    }
  }

 private:
  static RingSnapshot copy_ring(Ring& r) {
    const std::lock_guard<std::mutex> lock(r.mu);
    RingSnapshot snap;
    snap.tid = r.tid;
    const std::uint64_t n = std::min<std::uint64_t>(r.head, kSpanRingCapacity);
    snap.spans.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = r.head - n; i < r.head; ++i) {
      snap.spans.push_back(r.spans[i % kSpanRingCapacity]);
    }
    return snap;
  }

  std::mutex mu_;
  std::vector<Ring*> live_;
  std::vector<RingSnapshot> retired_;
  std::uint64_t origin_ns_ = 0;
  int next_tid_ = 1;
};

struct RingOwner {
  Ring ring;
  RingOwner() { ring.tid = TraceRegistry::instance().attach(&ring); }
  ~RingOwner() { TraceRegistry::instance().detach(&ring); }
};

Ring& local_ring() {
  thread_local RingOwner owner;
  return owner.ring;
}

}  // namespace

std::uint64_t trace_origin_ns() {
  return TraceRegistry::instance().origin_ns();
}

void emit_span(const char* name, std::uint64_t start_ns,
               std::uint64_t dur_ns) {
  Ring& r = local_ring();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.spans[r.head % kSpanRingCapacity] = Span{name, start_ns, dur_ns};
  ++r.head;
}

std::string trace_json() {
  TraceRegistry& reg = TraceRegistry::instance();
  const std::uint64_t origin = reg.origin_ns();
  std::vector<RingSnapshot> rings = reg.collect();
  // Stable sorts keep the export byte-identical across calls even when
  // tids collide with equal keys (retired ring order is detach order,
  // which varies with thread teardown at shutdown).
  std::stable_sort(rings.begin(), rings.end(),
                   [](const RingSnapshot& a, const RingSnapshot& b) {
                     return a.tid < b.tid;
                   });

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const RingSnapshot& ring : rings) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", ring.tid);
    w.key("args").begin_object();
    w.kv("name",
         ring.tid == 1 ? std::string("main")
                       : "thread-" + std::to_string(ring.tid));
    w.end_object();
    w.end_object();
    std::vector<Span> spans = ring.spans;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       return a.start_ns < b.start_ns;
                     });
    for (const Span& s : spans) {
      const std::uint64_t rel =
          s.start_ns >= origin ? s.start_ns - origin : 0;
      w.begin_object();
      w.kv("name", s.name);
      w.kv("ph", "X");
      w.key("ts").value(static_cast<double>(rel) * 1e-3, 12);
      w.key("dur").value(static_cast<double>(s.dur_ns) * 1e-3, 9);
      w.kv("pid", 1);
      w.kv("tid", ring.tid);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void reset_trace() { TraceRegistry::instance().reset(); }

#else  // !M3XU_TELEMETRY_ENABLED

std::string trace_json() {
  return "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": []\n}";
}

#endif  // M3XU_TELEMETRY_ENABLED

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = trace_json();
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace m3xu::telemetry
