// Request-scoped tracing: a TraceContext carries one request's
// identity (process-unique request id + tenant + label) and a bounded,
// causally-ordered event log from admission to terminal resolution.
// The serving layer creates one per request and threads a pointer down
// through ExecRails -> ExecConfig into the tiled driver and recovery
// ladder; layers without a rails pointer (the core route dispatch)
// reach the active context through a thread-local scope installed by
// the driver around each tile.
//
// Events are request-level milestones (admission, queue wait, pack
// cache hits, ABFT detections, retries, demotions, terminal status),
// not per-element records: emission takes the context mutex and copies
// a short detail string, which is microseconds-scale against a
// millisecond-scale GEMM. The log is bounded at kMaxEvents; overflow
// increments a drop counter instead of growing.
//
// Event ids are drawn from one process-wide atomic, so they are unique
// and monotonic across pool threads; `seq` orders events within one
// context. Timestamps share the now_ns() epoch with trace spans, and
// the JSON export also carries span-relative microseconds so a
// per-request timeline can be laid over the Perfetto trace.
//
// In M3XU_TELEMETRY=OFF builds the class compiles to a no-op with the
// same surface: events are discarded, exports return empty documents.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace m3xu::telemetry {

class JsonWriter;

/// Events retained per request; later events are dropped (counted).
inline constexpr std::size_t kMaxTraceEvents = 512;

/// One milestone in a request's history. `name` must be a string
/// literal (the log stores the pointer). `a0`/`a1` are event-specific
/// small arguments (tile index, route rung, attempt number, ...); -1
/// means unused. `detail` is optional free-form context.
struct TraceEvent {
  std::uint64_t id = 0;     // process-unique, monotonic across threads
  std::uint64_t seq = 0;    // position within the owning context
  std::uint64_t ts_ns = 0;  // now_ns() epoch (same clock as spans)
  const char* name = "";
  long a0 = -1;
  long a1 = -1;
  std::string detail;
};

#if M3XU_TELEMETRY_ENABLED

class TraceContext {
 public:
  /// Assigns the next process-unique request id.
  TraceContext(std::string tenant, std::string label);
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  std::uint64_t request_id() const { return request_id_; }
  const std::string& tenant() const { return tenant_; }
  const std::string& label() const { return label_; }
  std::uint64_t created_ns() const { return created_ns_; }

  /// Appends one event. `name` must be a string literal.
  void event(const char* name, long a0 = -1, long a1 = -1,
             std::string detail = {});

  /// Appends the event only if no event with the same name (pointer or
  /// text equality) has been logged yet; returns true when appended.
  /// Used by per-chunk code (core route dispatch) to record "this
  /// request left the fast path" exactly once instead of flooding.
  bool event_once(const char* name, long a0 = -1, long a1 = -1);

  /// Snapshot of the log so far, seq-ordered (thread-safe copy).
  std::vector<TraceEvent> events() const;
  /// Events discarded after the log filled up.
  std::uint64_t dropped() const;

  /// Writes {"request_id", "tenant", "label", "created_ns", "events":
  /// [...], "dropped_events"} as the writer's next value. Each event
  /// carries ts_ns plus ts_us relative to the span-trace origin.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  const std::uint64_t request_id_;
  const std::string tenant_;
  const std::string label_;
  const std::uint64_t created_ns_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Installs `ctx` as the calling thread's active context for the
/// scope's lifetime (nullptr is fine and means "no tracing"). Nests:
/// the previous context is restored on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext* ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext* prev_;
};

/// The calling thread's active context, or nullptr.
TraceContext* current_trace_context();

#else  // !M3XU_TELEMETRY_ENABLED

class TraceContext {
 public:
  TraceContext(std::string, std::string) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  std::uint64_t request_id() const { return 0; }
  const std::string& tenant() const { return empty_; }
  const std::string& label() const { return empty_; }
  std::uint64_t created_ns() const { return 0; }

  void event(const char*, long = -1, long = -1, std::string = {}) {}
  bool event_once(const char*, long = -1, long = -1) { return false; }

  std::vector<TraceEvent> events() const { return {}; }
  std::uint64_t dropped() const { return 0; }

  void write_json(JsonWriter& w) const;
  std::string to_json() const { return "{}"; }

 private:
  inline static const std::string empty_;
};

class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext*) {}
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
};

inline TraceContext* current_trace_context() { return nullptr; }

#endif  // M3XU_TELEMETRY_ENABLED

}  // namespace m3xu::telemetry
