// The single metrics export pipeline: one snapshot, three sinks -
// a standalone metrics JSON file, a JSON fragment benches embed in
// their own documents, and a human-readable summary table rendered
// through common/table. All of it works (emitting empty sections) in
// M3XU_TELEMETRY=OFF builds so callers compile unchanged.
#pragma once

#include <cstdio>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::telemetry {

/// Build/host metadata stamped into exported artifacts.
struct Environment {
  std::string compiler;  // __VERSION__ of the telemetry build
  std::string git_rev;   // short HEAD revision, or "unknown"
};

Environment collect_environment();

/// Short git revision of the working tree, or "unknown" outside a
/// checkout.
std::string git_revision();

/// Writes {"counters": {...}, "histograms": {...}} (the given
/// snapshot) into an open object of `w`, as two key/value pairs.
void write_metrics(JsonWriter& w, const Snapshot& snap);

/// Writes environment metadata into an open object of `w` under an
/// "environment" key (callers may add their own fields next to it).
void write_environment(JsonWriter& w, const Environment& env);

/// Standalone metrics document: telemetry state + environment. Returns
/// false on I/O failure.
bool export_json(const std::string& path);
std::string metrics_json();

/// Renders the snapshot's counters and histograms as fixed-width text
/// tables (common/table) to `out`.
void print_summary(const Snapshot& snap, std::FILE* out);

}  // namespace m3xu::telemetry
