// Minimal streaming JSON writer - the one emission path for every
// metrics/bench JSON artifact (BENCH_gemm.json, the metrics export,
// the Chrome trace), replacing per-bench string concatenation.
// Produces pretty-printed, key-ordered output; the writer tracks
// nesting and comma placement so callers only name structure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace m3xu::telemetry {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Keys apply inside an object, before the value/container call.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v, int digits = 6);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(long v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices pre-rendered JSON as the next value (caller guarantees
  /// validity).
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// The document; call after the outermost container closed.
  const std::string& str() const { return out_; }

 private:
  void pre_value();
  void indent();

  std::string out_;
  // One frame per open container: first tracks comma insertion,
  // is_object whether a key is expected.
  struct Frame {
    bool is_object;
    bool first;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

}  // namespace m3xu::telemetry
