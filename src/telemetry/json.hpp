// Minimal streaming JSON writer - the one emission path for every
// metrics/bench JSON artifact (BENCH_gemm.json, the metrics export,
// the Chrome trace), replacing per-bench string concatenation - plus
// its read-side counterpart, a small recursive-descent parser
// (JsonValue::parse) for artifacts the toolchain reads back, e.g. the
// autotuner's persisted tuned-config cache. The writer produces
// pretty-printed, key-ordered output; the writer tracks nesting and
// comma placement so callers only name structure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace m3xu::telemetry {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Keys apply inside an object, before the value/container call.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v, int digits = 6);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(long v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices pre-rendered JSON as the next value (caller guarantees
  /// validity).
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// The document; call after the outermost container closed.
  const std::string& str() const { return out_; }

 private:
  void pre_value();
  void indent();

  std::string out_;
  // One frame per open container: first tracks comma insertion,
  // is_object whether a key is expected.
  struct Frame {
    bool is_object;
    bool first;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

/// Parsed JSON document node. The accessors are total: a type-mismatch
/// read returns the caller's fallback instead of throwing, so loaders
/// validating untrusted artifacts (the autotune cache survives stray
/// edits and truncation) can probe fields and reject gracefully.
/// Object key order is preserved; duplicate keys keep the last value
/// on lookup.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Strict parse of a complete document (one value plus whitespace).
  /// Returns nullopt on any syntax error or trailing garbage. Depth is
  /// bounded to keep adversarial nesting from overflowing the stack.
  static std::optional<JsonValue> parse(std::string_view text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0.0) const;
  /// Integer tokens (no fraction/exponent) are held exactly in 64
  /// bits, so values past 2^53 round-trip bit-exactly through the
  /// writer's uint64/long emitters; only fractional or out-of-64-bit
  /// numbers go through double. Truncates toward zero; fallback on
  /// type mismatch or out-of-range.
  std::int64_t as_int(std::int64_t fallback = 0) const;
  std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  const std::string& as_string() const;  // empty string on mismatch

  /// Array element count / object member count; 0 for scalars.
  std::size_t size() const;
  /// Array element by index; a null sentinel when out of range or not
  /// an array.
  const JsonValue& at(std::size_t i) const;
  /// Object member by key; nullptr on a miss or a non-object.
  const JsonValue* find(std::string_view key) const;
  /// Object members in document order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend struct JsonParser;

  // Integer-token numbers additionally keep an exact 64-bit value
  // (num_kind_ says which well is authoritative); num_ always holds
  // the nearest double for as_double.
  enum class NumKind { kDouble, kInt, kUint };

  Type type_ = Type::kNull;
  bool bool_ = false;
  NumKind num_kind_ = NumKind::kDouble;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace m3xu::telemetry
