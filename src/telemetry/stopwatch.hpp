// Wall-clock timing utilities shared by the benchmark harnesses and
// the tracing layer. Always compiled - a stopwatch is measurement the
// caller asked for, not observability - so benches keep timing
// correctly in M3XU_TELEMETRY=OFF builds.
#pragma once

#include <chrono>
#include <cstdint>

namespace m3xu::telemetry {

/// Monotonic nanoseconds (steady_clock).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic seconds, for coarse interval timing.
inline double now_seconds() {
  return static_cast<double>(now_ns()) * 1e-9;
}

/// Interval stopwatch: starts at construction, seconds() reads the
/// elapsed time without stopping.
class Stopwatch {
 public:
  Stopwatch() : t0_(now_ns()) {}
  void reset() { t0_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - t0_; }
  double seconds() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t t0_;
};

}  // namespace m3xu::telemetry
