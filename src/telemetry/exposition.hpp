// Live metrics exposition: renders the telemetry registry as
// Prometheus text format (counters plus cumulative-bucket histograms)
// and as a schema-versioned JSON snapshot, on demand or continuously
// via MetricsDumper (periodic file dump + optional snapshot-on-signal).
//
// Exposition adds zero hot-path locking: it only calls snapshot(),
// which aggregates the existing sharded registry under the registry
// mutex, exactly like the JSON metrics export. In M3XU_TELEMETRY=OFF
// builds everything still compiles and runs; the rendered documents
// are just empty (and still pass prometheus_lint).
//
// prometheus_lint is a dependency-free line-format checker used by the
// tests and the CI metrics-smoke step to validate that whatever we
// expose actually parses as Prometheus text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace m3xu::telemetry {

/// Schema version stamped into the JSON snapshot document.
inline constexpr int kExpositionSchemaVersion = 1;

/// `name` mapped to a valid Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes '_', and the result is prefixed with
/// "m3xu_" (which also guarantees a valid leading character).
std::string prometheus_name(std::string_view name);

/// The snapshot as Prometheus text format. Counters render as one
/// `# TYPE ... counter` sample; histograms as cumulative
/// `_bucket{le="..."}` series (bucket i of the bit-width histogram has
/// upper bound 2^i - 1) plus `_sum` and `_count`.
std::string prometheus_text(const Snapshot& snap);
/// prometheus_text(snapshot()).
std::string prometheus_text();

/// The snapshot as a JSON document: {"schema_version", "environment",
/// "counters", "histograms"} in the metrics-export layout.
std::string snapshot_json(const Snapshot& snap);
std::string snapshot_json();

/// Write either rendering to `path`; false on I/O failure.
bool write_prometheus(const std::string& path);
bool write_snapshot_json(const std::string& path);

/// Validates Prometheus text format line by line: every sample must
/// parse as `name[{label="value",...}] number`, reference a preceding
/// `# TYPE` declaration (histogram samples via their _bucket/_sum/
/// _count suffixes), and every histogram must have non-decreasing
/// cumulative buckets ending in an le="+Inf" bucket equal to its
/// _count. Returns true on success; on failure `error` (when non-null)
/// receives a one-line description including the offending line.
bool prometheus_lint(std::string_view text, std::string* error = nullptr);

/// Background exposition: dumps the configured renderings every
/// `period_ms`, and additionally whenever `signal_number` (e.g.
/// SIGUSR1) is delivered to the process. Either trigger may be
/// disabled (period_ms == 0 / signal_number == 0); with both disabled
/// only dump_now() dumps. At most one dumper should own a given signal
/// at a time; the previous handler is restored on stop().
struct DumpOptions {
  std::string prometheus_path;  // empty: skip this rendering
  std::string json_path;        // empty: skip this rendering
  std::int64_t period_ms = 0;
  int signal_number = 0;
};

class MetricsDumper {
 public:
  explicit MetricsDumper(DumpOptions options);
  ~MetricsDumper();
  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  /// Renders and writes both configured paths now; false if any
  /// configured write failed.
  bool dump_now();

  /// Completed dumps (manual, periodic, and signal-triggered).
  std::uint64_t dumps() const;

  /// Stops the background thread and releases the signal handler.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace m3xu::telemetry
