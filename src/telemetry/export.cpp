#include "telemetry/export.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/table.hpp"

namespace m3xu::telemetry {

std::string git_revision() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 64> buf{};
  std::string rev;
  if (std::fgets(buf.data(), buf.size(), pipe) != nullptr) rev = buf.data();
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

Environment collect_environment() {
  Environment env;
#if defined(__VERSION__)
  env.compiler = __VERSION__;
#else
  env.compiler = "unknown";
#endif
  env.git_rev = git_revision();
  return env;
}

void write_metrics(JsonWriter& w, const Snapshot& snap) {
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.kv(name, value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const Snapshot::HistogramValue& h : snap.histograms) {
    w.key(h.name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.key("mean").value(h.mean(), 6);
    // Buckets as [bit_width, count] pairs, empty buckets omitted.
    w.key("buckets").begin_array();
    for (int b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[static_cast<std::size_t>(b)] == 0) continue;
      w.begin_array();
      w.value(b);
      w.value(h.buckets[static_cast<std::size_t>(b)]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void write_environment(JsonWriter& w, const Environment& env) {
  w.key("environment").begin_object();
  w.kv("compiler", env.compiler);
  w.kv("git_revision", env.git_rev);
  w.kv("telemetry_enabled", static_cast<bool>(M3XU_TELEMETRY_ENABLED));
  w.end_object();
}

std::string metrics_json() {
  JsonWriter w;
  w.begin_object();
  write_environment(w, collect_environment());
  write_metrics(w, snapshot());
  w.end_object();
  return w.str();
}

bool export_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = metrics_json();
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void print_summary(const Snapshot& snap, std::FILE* out) {
  if (snap.counters.empty() && snap.histograms.empty()) {
    std::fprintf(out, "telemetry: no metrics recorded%s\n",
                 M3XU_TELEMETRY_ENABLED ? "" : " (built with telemetry off)");
    return;
  }
  if (!snap.counters.empty()) {
    Table t({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      t.add_row({name, std::to_string(value)});
    }
    t.print(out);
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "\n");
    Table t({"histogram", "count", "mean", "max_bucket"});
    for (const Snapshot::HistogramValue& h : snap.histograms) {
      int top = 0;
      for (int b = 0; b < kHistBuckets; ++b) {
        if (h.buckets[static_cast<std::size_t>(b)] != 0) top = b;
      }
      t.add_row({h.name, std::to_string(h.count), Table::num(h.mean(), 2),
                 "2^" + std::to_string(top)});
    }
    t.print(out);
  }
}

}  // namespace m3xu::telemetry
