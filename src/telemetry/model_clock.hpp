// Virtual-time phase clock for the analytic timing models.
//
// The kNN / MRF / FFT / DNN case-study models all accumulate the same
// shape of result: a sequence of modeled kernels, each contributing
// its simulated execution time plus a fixed per-launch overhead, with
// one or two phases broken out for Amdahl bookkeeping. Before the
// telemetry layer each module carried its own kLaunchSeconds constant
// and hand-rolled accumulation; ModelClock is that pattern in one
// place. It deals in *modeled* seconds - no wall clock - so it is
// always compiled, independent of M3XU_TELEMETRY.
#pragma once

#include <string_view>
#include <utility>
#include <vector>

namespace m3xu::telemetry {

class ModelClock {
 public:
  /// Fixed kernel-launch overhead added per launch (the constant the
  /// four case-study timing modules previously duplicated).
  static constexpr double kLaunchSeconds = 5e-6;

  /// Accounts one modeled kernel (or `launches` back-to-back launches
  /// of it): `seconds` of execution plus launch overhead, attributed
  /// to `phase`. Returns the full cost added, so callers can fold the
  /// same number into their own result fields.
  double advance(std::string_view phase, double seconds, int launches = 1) {
    const double cost = seconds + kLaunchSeconds * launches;
    for (auto& [name, total] : phases_) {
      if (name == phase) {
        total += cost;
        total_ += cost;
        return cost;
      }
    }
    phases_.emplace_back(phase, cost);
    total_ += cost;
    return cost;
  }

  /// Total modeled seconds across all phases.
  double seconds() const { return total_; }

  /// Modeled seconds attributed to `phase` (0 when never advanced).
  double phase_seconds(std::string_view phase) const {
    for (const auto& [name, total] : phases_) {
      if (name == phase) return total;
    }
    return 0.0;
  }

  const std::vector<std::pair<std::string_view, double>>& phases() const {
    return phases_;
  }

 private:
  std::vector<std::pair<std::string_view, double>> phases_;
  double total_ = 0.0;
};

}  // namespace m3xu::telemetry
