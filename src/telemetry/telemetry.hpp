// Process-wide metrics registry: named counters and histograms backed
// by per-thread sharded slots.
//
// Hot-path contract: a bump touches only the calling thread's shard
// with relaxed non-RMW atomics (plain load + store on the same slot,
// which compiles to an ordinary add - no lock prefix, no cache-line
// contention), so instrumented inner loops pay a TLS lookup and a
// store. Aggregation happens only at snapshot time, which walks every
// registered shard under the registry mutex. Shards of exited threads
// fold into a retired accumulator so their counts survive.
//
// Counter totals are deterministic: a counter's aggregate depends only
// on the work performed, not on how iterations were distributed over
// pool threads (per-thread partial sums commute).
//
// Building with -DM3XU_TELEMETRY=OFF (CMake option; defines
// M3XU_TELEMETRY_DISABLED) compiles every recording call in this
// header to an empty inline function: no registry, no TLS, no atomics.
// The snapshot/export entry points still link and return empty data so
// callers compile unchanged.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if defined(M3XU_TELEMETRY_DISABLED)
#define M3XU_TELEMETRY_ENABLED 0
#else
#define M3XU_TELEMETRY_ENABLED 1
#endif

namespace m3xu::telemetry {

/// Capacity limits of the fixed-size per-thread shard. Registration
/// past the limit aborts with a message (a static instrumentation bug,
/// not a runtime condition).
inline constexpr int kMaxCounters = 192;
inline constexpr int kMaxHistograms = 32;
/// Histogram buckets are value bit-widths: bucket i counts values v
/// with bit_width(v) == i (bucket 0: v == 0), clamped to the last
/// bucket. Covers [0, 2^47) exactly - plenty for ns durations and
/// queue depths.
inline constexpr int kHistBuckets = 48;

/// Aggregated registry state at one point in time. Counters and
/// histograms appear in registration order.
struct Snapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistBuckets> buckets{};
    double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// Upper bound of the bucket holding the p-th percentile sample
    /// (p in [0, 100]), i.e. the value the p-th sample is guaranteed
    /// not to exceed. Bucket resolution is a power of two, so treat
    /// this as an order-of-magnitude latency readout, not an exact
    /// quantile. 0 when the histogram is empty.
    double percentile(double p) const;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramValue> histograms;

  /// The named histogram, or nullptr when absent (always nullptr in
  /// the disabled build).
  const HistogramValue* histogram(std::string_view name) const;

  /// Value of the named counter, or 0 when absent (also the disabled
  /// build's answer for everything).
  std::uint64_t counter(std::string_view name) const;
  /// this->counter(name) - before.counter(name), clamped at 0 (the
  /// registry is process-global, so tests and benches measure deltas).
  std::uint64_t counter_delta(const Snapshot& before,
                              std::string_view name) const;
};

#if M3XU_TELEMETRY_ENABLED

namespace detail {

/// One thread's slot block. Slots are written only by the owning
/// thread; snapshot readers use relaxed loads, so a torn read is
/// impossible and TSan sees no race.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists{};
};

/// The calling thread's shard, registered with the registry on first
/// use and folded into the retired accumulator on thread exit.
Shard& local_shard();

/// Owner-thread-only bump: relaxed load + relaxed store (not an RMW).
inline void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

int register_counter(const char* name);
int register_histogram(const char* name);

}  // namespace detail

/// A named monotonic counter. Construct once (namespace-scope static
/// in the instrumented translation unit); add() from any thread.
/// Constructing two Counters with the same name yields the same slot.
class Counter {
 public:
  explicit Counter(const char* name)
      : id_(detail::register_counter(name)) {}

  void add(std::uint64_t n) {
    detail::bump(detail::local_shard().counters[static_cast<std::size_t>(id_)],
                 n);
  }
  void increment() { add(1); }

 private:
  int id_;
};

/// A named power-of-two-bucketed histogram (count + sum + buckets).
class Histogram {
 public:
  explicit Histogram(const char* name)
      : id_(detail::register_histogram(name)) {}

  void record(std::uint64_t value) {
    detail::Shard::Hist& h =
        detail::local_shard().hists[static_cast<std::size_t>(id_)];
    detail::bump(h.count, 1);
    detail::bump(h.sum, value);
    detail::bump(h.buckets[static_cast<std::size_t>(bucket_of(value))], 1);
  }

  static int bucket_of(std::uint64_t v) {
    int w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w < kHistBuckets ? w : kHistBuckets - 1;
  }

 private:
  int id_;
};

/// Aggregates every registered counter/histogram across live shards
/// and retired threads. Safe to call while other threads record
/// (relaxed reads observe some recent value of each slot).
Snapshot snapshot();

/// Zeroes all live shards and the retired accumulator. Test-only:
/// concurrent writers may re-add between the zeroing passes.
void reset();

#else  // !M3XU_TELEMETRY_ENABLED

class Counter {
 public:
  explicit Counter(const char*) {}
  void add(std::uint64_t) {}
  void increment() {}
};

class Histogram {
 public:
  explicit Histogram(const char*) {}
  void record(std::uint64_t) {}
  static int bucket_of(std::uint64_t v) {
    int w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w < kHistBuckets ? w : kHistBuckets - 1;
  }
};

inline Snapshot snapshot() { return {}; }
inline void reset() {}

#endif  // M3XU_TELEMETRY_ENABLED

}  // namespace m3xu::telemetry
