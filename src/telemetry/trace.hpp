// Scoped tracing: RAII timers emit spans into a fixed-capacity
// per-thread ring buffer (wraparound overwrites the oldest spans), and
// the whole process's rings export as Chrome trace_event JSON that
// chrome://tracing and Perfetto load directly.
//
// Span names must be string literals (the ring stores the pointer).
// Emission takes the owning ring's mutex - uncontended except while an
// export is walking the rings - plus two steady_clock reads, so spans
// are meant for phase-level scopes (a staging pass, a mainloop
// iteration), not per-element inner loops; use counters there.
//
// In M3XU_TELEMETRY=OFF builds ScopedTimer/emit_span compile to empty
// inlines (no clock reads) and the export functions produce an empty
// trace.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::telemetry {

/// Spans retained per thread; older spans are overwritten.
inline constexpr std::size_t kSpanRingCapacity = 4096;

#if M3XU_TELEMETRY_ENABLED

/// Records a completed span on the calling thread's ring. `start_ns`
/// is a now_ns()-epoch timestamp.
void emit_span(const char* name, std::uint64_t start_ns,
               std::uint64_t dur_ns);

/// RAII span: emits [construction, destruction) under `name`. When
/// `accum_seconds` is non-null the duration is also added to it, so a
/// caller can fold phase times into its own stats struct (the tiled
/// driver folds these into TiledGemmStats).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, double* accum_seconds = nullptr)
      : name_(name), accum_(accum_seconds), t0_(now_ns()) {}
  ~ScopedTimer() {
    const std::uint64_t dur = now_ns() - t0_;
    if (accum_ != nullptr) *accum_ += static_cast<double>(dur) * 1e-9;
    emit_span(name_, t0_, dur);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  double* accum_;
  std::uint64_t t0_;
};

/// Chrome trace_event JSON of every span currently retained, all
/// threads, ts-sorted per thread ("X" complete events plus thread_name
/// metadata; ts/dur in microseconds relative to process telemetry
/// init).
std::string trace_json();

/// Writes trace_json() to `path`; false on I/O failure.
bool write_trace_json(const std::string& path);

/// Drops every retained span (test-only).
void reset_trace();

/// now_ns() value the exported trace uses as t=0 (fixed at first trace
/// use). TraceContext::write_json emits ts_us relative to this so
/// per-request timelines align with the Perfetto span export.
std::uint64_t trace_origin_ns();

#else  // !M3XU_TELEMETRY_ENABLED

inline void emit_span(const char*, std::uint64_t, std::uint64_t) {}

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*, double* = nullptr) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

std::string trace_json();
bool write_trace_json(const std::string& path);
inline void reset_trace() {}
inline std::uint64_t trace_origin_ns() { return 0; }

#endif  // M3XU_TELEMETRY_ENABLED

}  // namespace m3xu::telemetry
