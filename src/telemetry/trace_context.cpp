#include "telemetry/trace_context.hpp"

#include <atomic>
#include <cstring>

#include "telemetry/json.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/trace.hpp"

namespace m3xu::telemetry {

#if M3XU_TELEMETRY_ENABLED

namespace {

// Process-wide id wells. fetch_add gives every request and every event
// a unique id, monotone in allocation order across all pool threads.
std::atomic<std::uint64_t> g_next_request_id{1};
std::atomic<std::uint64_t> g_next_event_id{1};

thread_local TraceContext* t_current_context = nullptr;

}  // namespace

TraceContext::TraceContext(std::string tenant, std::string label)
    : request_id_(g_next_request_id.fetch_add(1, std::memory_order_relaxed)),
      tenant_(std::move(tenant)),
      label_(std::move(label)),
      created_ns_(now_ns()) {
  events_.reserve(32);
}

void TraceContext::event(const char* name, long a0, long a1,
                         std::string detail) {
  const std::uint64_t ts = now_ns();
  const std::uint64_t id =
      g_next_event_id.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(
      TraceEvent{id, next_seq_++, ts, name, a0, a1, std::move(detail)});
}

bool TraceContext::event_once(const char* name, long a0, long a1) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : events_) {
      if (e.name == name || std::strcmp(e.name, name) == 0) return false;
    }
  }
  event(name, a0, a1);
  return true;
}

std::vector<TraceEvent> TraceContext::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t TraceContext::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceContext::write_json(JsonWriter& w) const {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  const std::uint64_t origin = trace_origin_ns();
  w.begin_object();
  w.kv("request_id", request_id_);
  w.kv("tenant", tenant_);
  w.kv("label", label_);
  w.kv("created_ns", created_ns_);
  w.key("events").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.kv("id", e.id);
    w.kv("seq", e.seq);
    w.kv("name", e.name);
    w.kv("ts_ns", e.ts_ns);
    // Span-trace-relative microseconds: overlays directly on the
    // Perfetto export's ts axis.
    const std::uint64_t rel = e.ts_ns >= origin ? e.ts_ns - origin : 0;
    w.key("ts_us").value(static_cast<double>(rel) * 1e-3, 12);
    if (e.a0 != -1) w.kv("a0", e.a0);
    if (e.a1 != -1) w.kv("a1", e.a1);
    if (!e.detail.empty()) w.kv("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  w.kv("dropped_events", dropped);
  w.end_object();
}

std::string TraceContext::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

TraceContextScope::TraceContextScope(TraceContext* ctx)
    : prev_(t_current_context) {
  t_current_context = ctx;
}

TraceContextScope::~TraceContextScope() { t_current_context = prev_; }

TraceContext* current_trace_context() { return t_current_context; }

#else  // !M3XU_TELEMETRY_ENABLED

void TraceContext::write_json(JsonWriter& w) const {
  w.begin_object();
  w.end_object();
}

#endif  // M3XU_TELEMETRY_ENABLED

}  // namespace m3xu::telemetry
