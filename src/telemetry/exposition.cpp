#include "telemetry/exposition.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace m3xu::telemetry {

namespace {

Counter c_dumps("exposition.dumps");

bool write_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

bool name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool valid_metric_name(std::string_view n) {
  if (n.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(n[0])) != 0) return false;
  for (const char c : n) {
    if (!name_char(c)) return false;
  }
  return true;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "m3xu_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += name_char(c) ? c : '_';
  }
  return out;
}

std::string prometheus_text(const Snapshot& snap) {
  std::string out = "# m3xu metrics exposition\n";
  char buf[128];
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += p + buf;
  }
  for (const Snapshot::HistogramValue& h : snap.histograms) {
    const std::string p = prometheus_name(h.name);
    out += "# TYPE " + p + " histogram\n";
    // Bucket i of the bit-width histogram counts values with
    // bit_width(v) == i, so its inclusive upper bound is 2^i - 1.
    // The last (clamp) bucket folds into le="+Inf".
    std::uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets - 1; ++b) {
      cum += h.buckets[static_cast<std::size_t>(b)];
      const std::uint64_t le = (std::uint64_t{1} << b) - 1;
      std::snprintf(buf, sizeof(buf), "_bucket{le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(le),
                    static_cast<unsigned long long>(cum));
      out += p + buf;
    }
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += p + buf;
    std::snprintf(buf, sizeof(buf), "_sum %llu\n",
                  static_cast<unsigned long long>(h.sum));
    out += p + buf;
    std::snprintf(buf, sizeof(buf), "_count %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += p + buf;
  }
  return out;
}

std::string prometheus_text() { return prometheus_text(snapshot()); }

std::string snapshot_json(const Snapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kExpositionSchemaVersion);
  write_environment(w, collect_environment());
  write_metrics(w, snap);
  w.end_object();
  return w.str();
}

std::string snapshot_json() { return snapshot_json(snapshot()); }

bool write_prometheus(const std::string& path) {
  return write_file(path, prometheus_text());
}

bool write_snapshot_json(const std::string& path) {
  return write_file(path, snapshot_json() + "\n");
}

namespace {

struct LintHistogram {
  bool has_cum = false;
  double last_cum = 0.0;
  bool has_inf = false;
  double inf_value = 0.0;
  bool has_sum = false;
  bool has_count = false;
  double count_value = 0.0;
};

bool lint_fail(std::string* error, std::size_t line_no, std::string_view line,
               const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why + " [" +
             std::string(line) + "]";
  }
  return false;
}

}  // namespace

bool prometheus_lint(std::string_view text, std::string* error) {
  std::map<std::string, char, std::less<>> types;  // 'c' or 'h'
  std::map<std::string, LintHistogram, std::less<>> hists;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comments pass through; "# TYPE <name> <counter|histogram>"
      // additionally declares a series.
      if (line.rfind("# TYPE ", 0) != 0) continue;
      std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string_view::npos) {
        return lint_fail(error, line_no, line, "malformed TYPE declaration");
      }
      const std::string_view name = rest.substr(0, sp);
      const std::string_view kind = rest.substr(sp + 1);
      if (!valid_metric_name(name)) {
        return lint_fail(error, line_no, line, "invalid metric name in TYPE");
      }
      if (kind == "counter") {
        types.emplace(std::string(name), 'c');
      } else if (kind == "histogram") {
        types.emplace(std::string(name), 'h');
        hists.emplace(std::string(name), LintHistogram{});
      } else {
        return lint_fail(error, line_no, line, "unsupported metric type");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && name_char(line[i])) ++i;
    const std::string_view name = line.substr(0, i);
    if (!valid_metric_name(name)) {
      return lint_fail(error, line_no, line, "invalid metric name");
    }
    std::string le_value;
    bool has_le = false;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t ls = i;
        while (i < line.size() && name_char(line[i])) ++i;
        const std::string_view label = line.substr(ls, i - ls);
        if (label.empty() || i >= line.size() || line[i] != '=') {
          return lint_fail(error, line_no, line, "malformed label");
        }
        ++i;
        if (i >= line.size() || line[i] != '"') {
          return lint_fail(error, line_no, line, "label value not quoted");
        }
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) ++i;
          value += line[i++];
        }
        if (i >= line.size()) {
          return lint_fail(error, line_no, line, "unterminated label value");
        }
        ++i;  // closing quote
        if (label == "le") {
          le_value = value;
          has_le = true;
        }
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') {
        return lint_fail(error, line_no, line, "unterminated label set");
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      return lint_fail(error, line_no, line, "missing value separator");
    }
    ++i;
    const std::string value_str(line.substr(i));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (value_str.empty() || end != value_str.c_str() + value_str.size()) {
      return lint_fail(error, line_no, line, "sample value is not a number");
    }
    if (value < 0) {
      return lint_fail(error, line_no, line, "negative sample value");
    }
    // Resolve the sample against a declared series.
    const auto exact = types.find(name);
    if (exact != types.end() && exact->second == 'c') {
      if (has_le) {
        return lint_fail(error, line_no, line, "le label on a counter");
      }
      continue;
    }
    bool resolved = false;
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (name.size() <= suffix.size() ||
          name.substr(name.size() - suffix.size()) != suffix) {
        continue;
      }
      const std::string_view base = name.substr(0, name.size() - suffix.size());
      const auto h = hists.find(base);
      if (h == hists.end()) continue;
      resolved = true;
      LintHistogram& state = h->second;
      if (suffix == "_bucket") {
        if (!has_le) {
          return lint_fail(error, line_no, line, "_bucket without le label");
        }
        if (le_value == "+Inf") {
          state.has_inf = true;
          state.inf_value = value;
        } else {
          char* le_end = nullptr;
          std::strtod(le_value.c_str(), &le_end);
          if (le_value.empty() ||
              le_end != le_value.c_str() + le_value.size()) {
            return lint_fail(error, line_no, line, "non-numeric le bound");
          }
          if (state.has_cum && value < state.last_cum) {
            return lint_fail(error, line_no, line,
                             "cumulative bucket count decreased");
          }
          state.has_cum = true;
          state.last_cum = value;
        }
      } else if (suffix == "_sum") {
        state.has_sum = true;
      } else {
        state.has_count = true;
        state.count_value = value;
      }
      break;
    }
    if (!resolved) {
      return lint_fail(error, line_no, line,
                       "sample has no matching TYPE declaration");
    }
  }
  for (const auto& [name, state] : hists) {
    if (!state.has_inf || !state.has_sum || !state.has_count) {
      return lint_fail(error, line_no, name,
                       "histogram missing _bucket{le=\"+Inf\"}/_sum/_count");
    }
    if (state.inf_value != state.count_value) {
      return lint_fail(error, line_no, name,
                       "+Inf bucket disagrees with _count");
    }
    if (state.has_cum && state.last_cum > state.inf_value) {
      return lint_fail(error, line_no, name,
                       "finite cumulative buckets exceed +Inf");
    }
  }
  return true;
}

namespace {

// Signal-hit well shared by all dumpers (in practice one). A handler
// may only touch lock-free atomics; the worker thread polls this.
std::atomic<std::uint64_t> g_signal_hits{0};

void on_dump_signal(int) {
  g_signal_hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

struct MetricsDumper::Impl {
  DumpOptions opts;
  std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;
  bool stopped = false;
  std::atomic<std::uint64_t> dumps{0};
  void (*prev_handler)(int) = nullptr;
  bool owns_signal = false;
  // Baseline for the global hit counter, captured BEFORE the handler
  // is installed so a signal that lands while the worker thread is
  // still starting up is not absorbed into the baseline.
  std::uint64_t seen_hits = 0;
  std::thread worker;

  bool dump() {
    bool ok = true;
    if (!opts.prometheus_path.empty()) {
      ok = write_prometheus(opts.prometheus_path) && ok;
    }
    if (!opts.json_path.empty()) {
      ok = write_snapshot_json(opts.json_path) && ok;
    }
    dumps.fetch_add(1, std::memory_order_relaxed);
    c_dumps.increment();
    return ok;
  }

  void run() {
    using Clock = std::chrono::steady_clock;
    auto last_dump = Clock::now();
    const std::int64_t poll_ms =
        opts.period_ms > 0 ? std::min<std::int64_t>(opts.period_ms, 100) : 50;
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::milliseconds(poll_ms));
      if (stopping) break;
      bool want = false;
      const std::uint64_t hits =
          g_signal_hits.load(std::memory_order_relaxed);
      if (owns_signal && hits != seen_hits) {
        seen_hits = hits;
        want = true;
      }
      const auto now = Clock::now();
      if (opts.period_ms > 0 &&
          now - last_dump >= std::chrono::milliseconds(opts.period_ms)) {
        want = true;
      }
      if (want) {
        last_dump = now;
        lock.unlock();
        dump();
        lock.lock();
      }
    }
  }
};

MetricsDumper::MetricsDumper(DumpOptions options) : impl_(new Impl) {
  impl_->opts = std::move(options);
  if (impl_->opts.signal_number != 0) {
    impl_->seen_hits = g_signal_hits.load(std::memory_order_relaxed);
    impl_->prev_handler =
        std::signal(impl_->opts.signal_number, &on_dump_signal);
    impl_->owns_signal = impl_->prev_handler != SIG_ERR;
  }
  if (impl_->opts.period_ms > 0 || impl_->owns_signal) {
    impl_->worker = std::thread([this] { impl_->run(); });
  }
}

MetricsDumper::~MetricsDumper() {
  stop();
  delete impl_;
}

bool MetricsDumper::dump_now() { return impl_->dump(); }

std::uint64_t MetricsDumper::dumps() const {
  return impl_->dumps.load(std::memory_order_relaxed);
}

void MetricsDumper::stop() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stopped) return;
    impl_->stopped = true;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->worker.joinable()) impl_->worker.join();
  if (impl_->owns_signal) {
    std::signal(impl_->opts.signal_number, impl_->prev_handler);
    impl_->owns_signal = false;
  }
}

}  // namespace m3xu::telemetry
