#include "telemetry/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace m3xu::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::pre_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (!top.first) out_ += ',';
  top.first = false;
  indent();
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Frame{true, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Frame{false, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  Frame& top = stack_.back();
  if (!top.first) out_ += ',';
  top.first = false;
  indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v, int digits) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  pre_value();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  pre_value();
  out_ += json;
  return *this;
}

}  // namespace m3xu::telemetry
