#include "telemetry/json.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace m3xu::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::pre_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (!top.first) out_ += ',';
  top.first = false;
  indent();
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Frame{true, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Frame{false, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  Frame& top = stack_.back();
  if (!top.first) out_ += ',';
  top.first = false;
  indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v, int digits) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  pre_value();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  pre_value();
  out_ += json;
  return *this;
}

/// Recursive-descent parser over a string_view cursor. Any error sets
/// `ok = false` and parsing unwinds; the public entry point maps that
/// to nullopt. Namespace-scope (not anonymous) so JsonValue can name
/// it as a friend.
struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;
  bool ok = true;
  // Generous for config artifacts, small enough that a hostile
  // deeply-nested document cannot blow the call stack.
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    ok = false;
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.compare(pos, lit.size(), lit) == 0) {
      pos += lit.size();
      return true;
    }
    ok = false;
    return false;
  }

  JsonValue parse_value(int depth) {
    JsonValue v;
    if (!ok || depth > kMaxDepth) {
      ok = false;
      return v;
    }
    skip_ws();
    if (pos >= s.size()) {
      ok = false;
      return v;
    }
    switch (s[pos]) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.str_ = parse_string();
        return v;
      case 't':
        literal("true");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        literal("false");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        literal("null");
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return v;
    }
    while (ok) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      consume(':');
      JsonValue member = parse_value(depth + 1);
      if (!ok) break;
      v.object_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      consume('}');
      break;
    }
    return v;
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return v;
    }
    while (ok) {
      JsonValue elem = parse_value(depth + 1);
      if (!ok) break;
      v.array_.push_back(std::move(elem));
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      consume(']');
      break;
    }
    return v;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= s.size()) break;
        const char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > s.size()) {
              ok = false;
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                ok = false;
                return out;
              }
            }
            // UTF-8 encode the BMP code point (the writer only ever
            // emits \u00xx control escapes; surrogate pairs are out of
            // scope for config artifacts).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            ok = false;
            return out;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        ok = false;  // raw control character inside a string
        return out;
      }
      out += c;
    }
    ok = false;  // unterminated string
    return out;
  }

  // RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][-+]?[0-9]+)?
  // Rejects the spellings strtod tolerates but JSON forbids: leading
  // '+', leading '.', leading zeros in the integer part, empty
  // fraction/exponent. Exponents MAY carry '+' and leading zeros
  // (the writer's %g emits e.g. "1e+06").
  static bool is_json_number(const std::string& t) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t j) {
      return j < t.size() && t[j] >= '0' && t[j] <= '9';
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  JsonValue parse_number() {
    JsonValue v;
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) ||
            s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
            s[pos] == '+' || s[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      ok = false;
      return v;
    }
    const std::string token(s.substr(start, pos - start));
    if (!is_json_number(token)) {
      ok = false;
      return v;
    }
    // Integer tokens are parsed into exact 64-bit wells first so
    // values past 2^53 (histogram sums, checksums, ids) survive a
    // round-trip; only fractional/exponent tokens and out-of-64-bit
    // magnitudes take the double path.
    if (token.find_first_of(".eE") == std::string::npos) {
      char* iend = nullptr;
      errno = 0;
      if (token[0] == '-') {
        const long long parsed = std::strtoll(token.c_str(), &iend, 10);
        if (errno == 0 && iend == token.c_str() + token.size()) {
          v.type_ = JsonValue::Type::kNumber;
          v.num_kind_ = JsonValue::NumKind::kInt;
          v.int_ = parsed;
          v.num_ = static_cast<double>(parsed);
          return v;
        }
      } else {
        const unsigned long long parsed =
            std::strtoull(token.c_str(), &iend, 10);
        if (errno == 0 && iend == token.c_str() + token.size()) {
          v.type_ = JsonValue::Type::kNumber;
          v.num_kind_ = JsonValue::NumKind::kUint;
          v.uint_ = parsed;
          v.num_ = static_cast<double>(parsed);
          return v;
        }
      }
    }
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      // Rejecting non-finite results also rejects overflow spellings
      // like 1e999: JSON has no Inf/NaN, and the writer emits null for
      // them, so nothing we wrote ever takes this path.
      ok = false;
      return v;
    }
    v.type_ = JsonValue::Type::kNumber;
    v.num_ = parsed;
    return v;
  }
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  JsonParser p{text};
  JsonValue v = p.parse_value(0);
  p.skip_ws();
  if (!p.ok || p.pos != text.size()) return std::nullopt;
  return v;
}

bool JsonValue::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double JsonValue::as_double(double fallback) const {
  return type_ == Type::kNumber ? num_ : fallback;
}

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  switch (num_kind_) {
    case NumKind::kInt:
      return int_;
    case NumKind::kUint:
      return uint_ <= 9223372036854775807ull
                 ? static_cast<std::int64_t>(uint_)
                 : fallback;
    case NumKind::kDouble:
      break;
  }
  if (num_ < -9.2233720368547758e18 || num_ > 9.2233720368547758e18) {
    return fallback;
  }
  return static_cast<std::int64_t>(num_);
}

std::uint64_t JsonValue::as_uint(std::uint64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  switch (num_kind_) {
    case NumKind::kUint:
      return uint_;
    case NumKind::kInt:
      return int_ >= 0 ? static_cast<std::uint64_t>(int_) : fallback;
    case NumKind::kDouble:
      break;
  }
  if (num_ < 0 || num_ > 1.8446744073709552e19) {
    return fallback;
  }
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? str_ : kEmpty;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  static const JsonValue kNull;
  if (type_ != Type::kArray || i >= array_.size()) return kNull;
  return array_[i];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  static const std::vector<std::pair<std::string, JsonValue>> kEmpty;
  return type_ == Type::kObject ? object_ : kEmpty;
}

}  // namespace m3xu::telemetry
