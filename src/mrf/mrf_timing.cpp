#include "mrf/mrf_timing.hpp"

#include "common/check.hpp"
#include "sim/eval_kernels.hpp"
#include "telemetry/model_clock.hpp"

namespace m3xu::mrf {

namespace {

// Truncated EPG dephasing-order count: SnapMRF's extended-phase-graph
// simulation tracks a bank of (F+, F-, Z) configuration states per
// atom, not a single magnetization vector. Six retained orders
// reproduce the paper's ~22% CGEMM share of dictionary-generation time
// at large dictionaries.
constexpr int kEpgStates = 6;

}  // namespace

DictGenTime time_dictionary_generation(const sim::GpuSim& sim, long atoms,
                                       int timepoints, int rank,
                                       bool use_m3xu) {
  M3XU_CHECK(atoms >= 1 && timepoints >= 1 && rank >= 1);
  telemetry::ModelClock clock;
  // Simulation: one kernel per timepoint; each streams the per-atom
  // state (m complex + z + signal store ~ 24 B/atom each way) and runs
  // ~14 FMA-class ops per atom (rotation + relaxation).
  const double state_bytes = static_cast<double>(atoms) * 24.0 * kEpgStates;
  const sim::KernelTiming step = sim::time_streaming(
      sim, state_bytes, state_bytes, /*ffma_per_kb=*/14.0 * 1024 / 24 / 32);
  clock.advance("simulate", step.seconds * timepoints,
                /*launches=*/timepoints);
  // Compression CGEMM (the cublas_cgemm / m3xu_cgemm portion).
  const sim::GemmTime cgemm = sim::time_cgemm(
      sim, use_m3xu ? sim::CgemmVariant::kM3xu : sim::CgemmVariant::kSimt,
      atoms, rank, timepoints);
  clock.advance("cgemm", cgemm.seconds);
  DictGenTime t;
  t.seconds = clock.seconds();
  t.cgemm_seconds = clock.phase_seconds("cgemm");
  return t;
}

DictGenTime time_pattern_matching(const sim::GpuSim& sim, long atoms,
                                  long voxels, int rank, bool use_m3xu) {
  M3XU_CHECK(atoms >= 1 && voxels >= 1 && rank >= 1);
  telemetry::ModelClock clock;
  const sim::GemmTime cgemm = sim::time_cgemm(
      sim, use_m3xu ? sim::CgemmVariant::kM3xu : sim::CgemmVariant::kSimt,
      atoms, voxels, rank);
  clock.advance("cgemm", cgemm.seconds);
  // Argmax over the atoms x voxels correlation matrix (streaming).
  clock.advance("argmax",
                sim::time_streaming(sim,
                                    static_cast<double>(atoms) * voxels * 8.0,
                                    voxels * 8.0, 4.0)
                    .seconds);
  DictGenTime t;
  t.seconds = clock.seconds();
  t.cgemm_seconds = clock.phase_seconds("cgemm");
  return t;
}

}  // namespace m3xu::mrf
