// MRF case study (SVI-C3, Fig 8): magnetic resonance fingerprinting
// dictionary generation in the SnapMRF style.
//
// Dictionary generation = (a) per-atom signal simulation over the flip-
// angle schedule (elementwise complex arithmetic on the SIMT path - a
// simplified EPG/Bloch model, see DESIGN.md) and (b) dictionary
// compression, a large complex GEMM (atoms x rank x timepoints) against
// an orthogonal temporal basis - the CGEMM the paper reports at ~22% of
// dictionary-generation runtime. Pattern matching correlates a measured
// signal with the compressed dictionary (another CGEMM).
#pragma once

#include <complex>
#include <utility>
#include <vector>

#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::mrf {

struct MrfConfig {
  std::vector<double> t1_values_ms;  // longitudinal relaxation grid
  std::vector<double> t2_values_ms;  // transverse relaxation grid
  int timepoints = 256;
  double tr_ms = 12.0;

  static MrfConfig small_grid();
};

/// Flip angle (radians) of the MRF schedule at timepoint t.
double flip_angle(int t, int timepoints);

struct Dictionary {
  gemm::Matrix<std::complex<float>> signals;  // atoms x timepoints (rows
                                              // L2-normalized)
  std::vector<std::pair<double, double>> params;  // (T1, T2) per atom

  int atoms() const { return signals.rows(); }
  int timepoints() const { return signals.cols(); }
};

/// Simulates every (T1, T2) atom with T2 < T1 over the schedule.
Dictionary generate_dictionary(const MrfConfig& config);

/// Simulates one atom's (normalized) signal at double precision - the
/// acquisition model for tests and the matching demo.
std::vector<std::complex<double>> simulate_signal(double t1_ms, double t2_ms,
                                                  const MrfConfig& config);

/// Orthogonal temporal compression basis (DCT-II rows), rank x L.
gemm::Matrix<std::complex<float>> compression_basis(int rank,
                                                    int timepoints);

/// Compresses the dictionary: C = D * B^T (atoms x rank) via the given
/// CGEMM kernel - the M3XU-accelerated portion of dictionary
/// generation.
gemm::Matrix<std::complex<float>> compress(const Dictionary& dict,
                                           const gemm::Matrix<std::complex<float>>& basis,
                                           gemm::CgemmKernel kernel,
                                           const core::M3xuEngine& engine);

/// Matches a measured signal against the compressed dictionary;
/// returns the best atom index (max |correlation|).
int match(const gemm::Matrix<std::complex<float>>& compressed,
          const gemm::Matrix<std::complex<float>>& basis,
          const std::vector<std::complex<double>>& signal,
          gemm::CgemmKernel kernel, const core::M3xuEngine& engine);

}  // namespace m3xu::mrf
