#include "mrf/dictionary.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace m3xu::mrf {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// One atom's raw (unnormalized) signal trace: a simplified Bloch/EPG
/// evolution of transverse magnetization m (complex) and longitudinal
/// z (real) under the flip-angle schedule with T1/T2 relaxation.
template <typename Real>
void simulate(double t1_ms, double t2_ms, const MrfConfig& config,
              std::complex<Real>* out) {
  const Real e1 = static_cast<Real>(std::exp(-config.tr_ms / t1_ms));
  const Real e2 = static_cast<Real>(std::exp(-config.tr_ms / t2_ms));
  std::complex<Real> m(0, 0);
  // MRF sequences are inversion-prepared: the initial 180-degree pulse
  // makes the early signal strongly T1-dependent.
  Real z = -1;
  for (int t = 0; t < config.timepoints; ++t) {
    const Real a = static_cast<Real>(flip_angle(t, config.timepoints));
    const Real ca = std::cos(a);
    const Real sa = std::sin(a);
    // RF pulse about x: mixes z into the imaginary channel.
    const std::complex<Real> m_rf(m.real() * ca,
                                  m.imag() * ca + z * sa);
    const Real z_rf = z * ca - m.imag() * sa;
    // Relaxation over TR.
    m = m_rf * e2;
    z = z_rf * e1 + (1 - e1);
    out[t] = m;
  }
}

template <typename Real>
void normalize(std::complex<Real>* v, int n) {
  Real energy = 0;
  for (int i = 0; i < n; ++i) energy += std::norm(v[i]);
  const Real inv = energy > 0 ? Real(1) / std::sqrt(energy) : Real(0);
  for (int i = 0; i < n; ++i) v[i] *= inv;
}

}  // namespace

MrfConfig MrfConfig::small_grid() {
  MrfConfig c;
  for (double t1 = 100.0; t1 <= 2000.0; t1 *= 1.35) {
    c.t1_values_ms.push_back(t1);
  }
  for (double t2 = 20.0; t2 <= 300.0; t2 *= 1.35) {
    c.t2_values_ms.push_back(t2);
  }
  c.timepoints = 256;
  return c;
}

double flip_angle(int t, int timepoints) {
  // FISP-MRF style sinusoidal schedule, 10..60 degrees.
  const double deg =
      10.0 + 50.0 * std::fabs(std::sin(kPi * t / timepoints * 3.0));
  return deg * kPi / 180.0;
}

Dictionary generate_dictionary(const MrfConfig& config) {
  Dictionary dict;
  for (double t1 : config.t1_values_ms) {
    for (double t2 : config.t2_values_ms) {
      if (t2 >= t1) continue;  // physical constraint
      dict.params.emplace_back(t1, t2);
    }
  }
  const int atoms = static_cast<int>(dict.params.size());
  dict.signals = gemm::Matrix<std::complex<float>>(atoms, config.timepoints);
  parallel_for(static_cast<std::size_t>(atoms), [&](std::size_t a) {
    std::complex<float>* row = dict.signals.data() +
                               static_cast<std::size_t>(a) *
                                   config.timepoints;
    simulate<float>(dict.params[a].first, dict.params[a].second, config,
                    row);
    normalize(row, config.timepoints);
  });
  return dict;
}

std::vector<std::complex<double>> simulate_signal(double t1_ms, double t2_ms,
                                                  const MrfConfig& config) {
  std::vector<std::complex<double>> out(
      static_cast<std::size_t>(config.timepoints));
  simulate<double>(t1_ms, t2_ms, config, out.data());
  double energy = 0;
  for (const auto& v : out) energy += std::norm(v);
  const double inv = energy > 0 ? 1.0 / std::sqrt(energy) : 0.0;
  for (auto& v : out) v *= inv;
  return out;
}

gemm::Matrix<std::complex<float>> compression_basis(int rank,
                                                    int timepoints) {
  M3XU_CHECK(rank >= 1 && rank <= timepoints);
  gemm::Matrix<std::complex<float>> b(rank, timepoints);
  for (int r = 0; r < rank; ++r) {
    const double scale =
        std::sqrt((r == 0 ? 1.0 : 2.0) / timepoints);
    for (int t = 0; t < timepoints; ++t) {
      b(r, t) = {static_cast<float>(
                     scale * std::cos(kPi * r * (t + 0.5) / timepoints)),
                 0.0f};
    }
  }
  return b;
}

gemm::Matrix<std::complex<float>> compress(
    const Dictionary& dict,
    const gemm::Matrix<std::complex<float>>& basis,
    gemm::CgemmKernel kernel, const core::M3xuEngine& engine) {
  M3XU_CHECK(basis.cols() == dict.timepoints());
  // C = D * B^T: build B^T once (timepoints x rank).
  gemm::Matrix<std::complex<float>> bt(basis.cols(), basis.rows());
  for (int i = 0; i < basis.rows(); ++i) {
    for (int j = 0; j < basis.cols(); ++j) bt(j, i) = basis(i, j);
  }
  gemm::Matrix<std::complex<float>> out(dict.atoms(), basis.rows());
  out.fill({});
  gemm::run_cgemm(kernel, engine, dict.signals, bt, out);
  return out;
}

int match(const gemm::Matrix<std::complex<float>>& compressed,
          const gemm::Matrix<std::complex<float>>& basis,
          const std::vector<std::complex<double>>& signal,
          gemm::CgemmKernel kernel, const core::M3xuEngine& engine) {
  M3XU_CHECK(static_cast<int>(signal.size()) == basis.cols());
  // Project the measured signal onto the basis, then correlate:
  // c = compressed * conj(q) as an atoms x 1 x rank CGEMM.
  gemm::Matrix<std::complex<float>> q(basis.rows(), 1);
  for (int r = 0; r < basis.rows(); ++r) {
    std::complex<double> acc{};
    for (int t = 0; t < basis.cols(); ++t) {
      acc += std::complex<double>(basis(r, t)) * signal[t];
    }
    q(r, 0) = std::complex<float>(std::conj(acc));
  }
  gemm::Matrix<std::complex<float>> corr(compressed.rows(), 1);
  corr.fill({});
  gemm::run_cgemm(kernel, engine, compressed, q, corr);
  int best = 0;
  double best_mag = -1.0;
  for (int a = 0; a < corr.rows(); ++a) {
    const double mag = std::abs(std::complex<double>(corr(a, 0)));
    if (mag > best_mag) {
      best_mag = mag;
      best = a;
    }
  }
  return best;
}

}  // namespace m3xu::mrf
