// Fig 8 timing: end-to-end dictionary-generation latency, SnapMRF
// (cublas_cgemm) baseline vs M3XU.
//
// Per-timepoint simulation kernels stream the per-atom state
// (elementwise, SIMT in both variants); the compression CGEMM
// (atoms x rank x timepoints) runs on SIMT (cublas_cgemm) in the
// baseline and on the M3XU FP32C mode otherwise. The CGEMM lands at
// ~22% of baseline dictionary-generation time at the default
// configuration (the paper's measurement), bounding the end-to-end
// speedup at ~1.26x by Amdahl's law.
#pragma once

#include "sim/kernel_sim.hpp"

namespace m3xu::mrf {

struct DictGenTime {
  double seconds = 0.0;
  double cgemm_seconds = 0.0;
  double cgemm_fraction() const { return cgemm_seconds / seconds; }
};

DictGenTime time_dictionary_generation(const sim::GpuSim& sim, long atoms,
                                       int timepoints, int rank,
                                       bool use_m3xu);

/// Pattern matching: correlate `voxels` measured signals against the
/// compressed dictionary - one big CGEMM (atoms x voxels x rank) plus
/// an argmax pass. (SnapMRF's second phase; the paper reports
/// dictionary generation dominating end-to-end runtime at 98.2%,
/// which corresponds to small per-slice voxel batches relative to the
/// dictionary size.)
DictGenTime time_pattern_matching(const sim::GpuSim& sim, long atoms,
                                  long voxels, int rank, bool use_m3xu);

}  // namespace m3xu::mrf
