#include "knn/knn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace m3xu::knn {

namespace {

std::vector<double> row_norms(const gemm::Matrix<float>& m) {
  std::vector<double> norms(static_cast<std::size_t>(m.rows()));
  for (int i = 0; i < m.rows(); ++i) {
    double acc = 0.0;
    for (int j = 0; j < m.cols(); ++j) {
      acc += static_cast<double>(m(i, j)) * m(i, j);
    }
    norms[static_cast<std::size_t>(i)] = acc;
  }
  return norms;
}

void select_k(const float* dist, int n, int k, std::vector<int>& idx,
              std::vector<float>& out) {
  idx.resize(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      return dist[a] != dist[b] ? dist[a] < dist[b] : a < b;
                    });
  idx.resize(static_cast<std::size_t>(k));
  out.resize(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) out[static_cast<std::size_t>(j)] = dist[idx[j]];
}

}  // namespace

KnnResult knn_search(const gemm::Matrix<float>& queries,
                     const gemm::Matrix<float>& refs, int k,
                     gemm::SgemmKernel kernel,
                     const core::M3xuEngine& engine) {
  M3XU_CHECK(queries.cols() == refs.cols());
  M3XU_CHECK(k >= 1 && k <= refs.rows());
  const int m = queries.rows();
  const int n = refs.rows();
  const int d = refs.cols();
  // G = Q * R^T via the chosen SGEMM kernel. Transpose R in square
  // blocks so both the read and the write stream stay within a few
  // cache lines per tile (a straight row-by-row copy strides the
  // destination by n floats on every element).
  constexpr int kTransposeBlock = 32;
  gemm::Matrix<float> rt(d, n);
  for (int i0 = 0; i0 < n; i0 += kTransposeBlock) {
    const int i1 = std::min(n, i0 + kTransposeBlock);
    for (int j0 = 0; j0 < d; j0 += kTransposeBlock) {
      const int j1 = std::min(d, j0 + kTransposeBlock);
      for (int i = i0; i < i1; ++i) {
        for (int j = j0; j < j1; ++j) rt(j, i) = refs(i, j);
      }
    }
  }
  gemm::Matrix<float> g(m, n);
  g.fill(0.0f);
  gemm::run_sgemm(kernel, engine, queries, rt, g);
  const std::vector<double> qn = row_norms(queries);
  const std::vector<double> rn = row_norms(refs);

  KnnResult result;
  result.indices.resize(static_cast<std::size_t>(m));
  result.distances.resize(static_cast<std::size_t>(m));
  // Per-thread distance scratch (resize is a no-op after the first
  // iteration on a thread), and a scheduling grain so one queue pop
  // covers several cheap rows.
  parallel_for(static_cast<std::size_t>(m), /*grain=*/8, [&](std::size_t i) {
    thread_local std::vector<float> dist;
    dist.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      dist[static_cast<std::size_t>(j)] = static_cast<float>(
          qn[i] + rn[static_cast<std::size_t>(j)] -
          2.0 * g(static_cast<int>(i), j));
    }
    select_k(dist.data(), n, k, result.indices[i], result.distances[i]);
  });
  return result;
}

KnnResult knn_search_chunked(const gemm::Matrix<float>& queries,
                             const gemm::Matrix<float>& refs, int k,
                             gemm::SgemmKernel kernel,
                             const core::M3xuEngine& engine,
                             long max_distance_elems) {
  M3XU_CHECK(max_distance_elems >= refs.rows());
  const int chunk = static_cast<int>(
      std::min<long>(queries.rows(),
                     std::max<long>(1, max_distance_elems / refs.rows())));
  KnnResult result;
  result.indices.resize(static_cast<std::size_t>(queries.rows()));
  result.distances.resize(static_cast<std::size_t>(queries.rows()));
  for (int q0 = 0; q0 < queries.rows(); q0 += chunk) {
    const int qc = std::min(chunk, queries.rows() - q0);
    gemm::Matrix<float> sub(qc, queries.cols());
    for (int i = 0; i < qc; ++i) {
      for (int j = 0; j < queries.cols(); ++j) sub(i, j) = queries(q0 + i, j);
    }
    KnnResult part = knn_search(sub, refs, k, kernel, engine);
    for (int i = 0; i < qc; ++i) {
      result.indices[static_cast<std::size_t>(q0 + i)] =
          std::move(part.indices[static_cast<std::size_t>(i)]);
      result.distances[static_cast<std::size_t>(q0 + i)] =
          std::move(part.distances[static_cast<std::size_t>(i)]);
    }
  }
  return result;
}

KnnResult knn_reference(const gemm::Matrix<float>& queries,
                        const gemm::Matrix<float>& refs, int k) {
  M3XU_CHECK(queries.cols() == refs.cols());
  const int m = queries.rows();
  const int n = refs.rows();
  KnnResult result;
  result.indices.resize(static_cast<std::size_t>(m));
  result.distances.resize(static_cast<std::size_t>(m));
  parallel_for(static_cast<std::size_t>(m), /*grain=*/4, [&](std::size_t i) {
    thread_local std::vector<float> dist;
    dist.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int d = 0; d < queries.cols(); ++d) {
        const double diff = static_cast<double>(queries(static_cast<int>(i), d)) -
                            refs(j, d);
        acc += diff * diff;
      }
      dist[static_cast<std::size_t>(j)] = static_cast<float>(acc);
    }
    select_k(dist.data(), n, k, result.indices[i], result.distances[i]);
  });
  return result;
}

}  // namespace m3xu::knn
