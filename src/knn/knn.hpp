// KNN case study (SVI-C4, Fig 9): GEMM-based k-nearest-neighbor search
// in the kNN-CUDA / cublas_sgemm style.
//
// Squared distances decompose as ||q||^2 + ||r||^2 - 2 Q R^T: the
// dominant cost is the SGEMM, which is precision-sensitive (FP16
// Tensor Cores produce meaningless neighbors for inputs with small
// dynamic range - the paper's motivation); M3XU runs it in exact FP32.
#pragma once

#include <vector>

#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::knn {

struct KnnResult {
  // indices(i, j) = index of query i's j-th nearest reference.
  std::vector<std::vector<int>> indices;
  std::vector<std::vector<float>> distances;  // squared L2
};

/// Exact k-NN of `queries` (m x d) against `refs` (n x d) using the
/// given SGEMM kernel for the -2 Q R^T term.
KnnResult knn_search(const gemm::Matrix<float>& queries,
                     const gemm::Matrix<float>& refs, int k,
                     gemm::SgemmKernel kernel,
                     const core::M3xuEngine& engine);

/// Brute-force double-precision reference for validation.
KnnResult knn_reference(const gemm::Matrix<float>& queries,
                        const gemm::Matrix<float>& refs, int k);

/// Memory-bounded variant: processes queries in chunks so the distance
/// matrix never exceeds `max_distance_elems` (kNN-CUDA's strategy for
/// large point sets). Results are identical to knn_search.
KnnResult knn_search_chunked(const gemm::Matrix<float>& queries,
                             const gemm::Matrix<float>& refs, int k,
                             gemm::SgemmKernel kernel,
                             const core::M3xuEngine& engine,
                             long max_distance_elems);

}  // namespace m3xu::knn
