#include "knn/knn_timing.hpp"

#include "common/check.hpp"
#include "sim/eval_kernels.hpp"
#include "telemetry/model_clock.hpp"

namespace m3xu::knn {

namespace {

// Effective uncoalesced traffic of the insertion-sort selection per
// distance element at the paper's K=16 (calibrated so the non-GEMM
// share at the largest Fig 9 configuration matches the paper's
// end-to-end numbers; see EXPERIMENTS.md). The in-register sorted list
// grows with K, so the cost scales mildly with it.
constexpr double kSelectBytesPerElementK16 = 430.0;

double select_bytes_per_element(int k) {
  return kSelectBytesPerElementK16 * (0.5 + 0.5 * k / 16.0);
}

}  // namespace

KnnTime time_knn(const sim::GpuSim& sim, long queries, long refs, long dims,
                 int k, bool use_m3xu) {
  M3XU_CHECK(queries >= 1 && refs >= 1 && dims >= 1 && k >= 1);
  telemetry::ModelClock clock;
  const double mn = static_cast<double>(queries) * refs;
  // Norm kernels over both point sets.
  const double points_bytes = static_cast<double>(queries + refs) * dims * 4;
  clock.advance("norms",
                sim::time_streaming(sim, points_bytes,
                                    (queries + refs) * 4.0, 8.0)
                    .seconds,
                /*launches=*/2);
  // Distance GEMM.
  const sim::GemmTime g = sim::time_sgemm(
      sim, use_m3xu ? sim::SgemmVariant::kM3xu : sim::SgemmVariant::kSimt,
      queries, refs, dims);
  clock.advance("gemm", g.seconds);
  // Epilogue: read the GEMM output, add the norms, write distances.
  clock.advance("epilogue",
                sim::time_streaming(sim, mn * 4.0, mn * 4.0, 2.0).seconds);
  // Selection: insertion sort with uncoalesced global traffic.
  clock.advance("select",
                sim::time_streaming(sim, mn * select_bytes_per_element(k),
                                    queries * 8.0 * k, 0.0)
                    .seconds);
  KnnTime t;
  t.seconds = clock.seconds();
  t.gemm_seconds = clock.phase_seconds("gemm");
  return t;
}

}  // namespace m3xu::knn
