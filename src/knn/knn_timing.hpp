// Fig 9 timing: kNN-CUDA-style pipeline latency, cublas_sgemm baseline
// vs M3XU SGEMM.
//
// Pipeline: norms (streaming) + distance SGEMM + distance epilogue
// (norm add + write) + k-selection. The selection phase models
// kNN-CUDA's global-memory insertion sort, whose uncoalesced traffic
// makes it a large fixed cost per distance element (Garcia et al.
// report the sort dominating for large n) - this is what caps the
// end-to-end gain at ~1.8x in the paper despite the 4x GEMM speedup.
#pragma once

#include "sim/kernel_sim.hpp"

namespace m3xu::knn {

struct KnnTime {
  double seconds = 0.0;
  double gemm_seconds = 0.0;
  double gemm_fraction() const { return gemm_seconds / seconds; }
};

KnnTime time_knn(const sim::GpuSim& sim, long queries, long refs, long dims,
                 int k, bool use_m3xu);

}  // namespace m3xu::knn
