// BLAS-style entry points over the kernel inventory:
//   C = alpha * op(A) * op(B) + beta * C
// with op in {N, T, C(onjugate-transpose, complex only)}. This is the
// drop-in surface the paper's "zero changes in software" argument
// targets: existing cuBLAS-shaped callers move to M3XU by switching
// the kernel enum. The epilogue (alpha/beta scaling) runs in FP32 on
// the SIMT path, as in cuBLAS.
#pragma once

#include <complex>

#include "gemm/kernels.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::gemm {

enum class Trans {
  kN,  // as-is
  kT,  // transpose
  kC,  // conjugate transpose (complex entry points only)
};

struct BlasParams {
  Trans transa = Trans::kN;
  Trans transb = Trans::kN;
  float alpha = 1.0f;
  float beta = 1.0f;
};

/// C = alpha * op(A) * op(B) + beta * C. Shapes are validated after
/// applying the ops: op(A) is m x k, op(B) is k x n, C is m x n.
void blas_sgemm(const BlasParams& params, SgemmKernel kernel,
                const core::M3xuEngine& engine, const Matrix<float>& a,
                const Matrix<float>& b, Matrix<float>& c);

struct BlasParamsC {
  Trans transa = Trans::kN;
  Trans transb = Trans::kN;
  std::complex<float> alpha = {1.0f, 0.0f};
  std::complex<float> beta = {1.0f, 0.0f};
};

void blas_cgemm(const BlasParamsC& params, CgemmKernel kernel,
                const core::M3xuEngine& engine,
                const Matrix<std::complex<float>>& a,
                const Matrix<std::complex<float>>& b,
                Matrix<std::complex<float>>& c);

/// Strided-batched GEMM (the cuBLAS *StridedBatched surface the FFT
/// and attention-style workloads use): batch_count independent
/// m x n x k products over flat buffers with per-matrix strides.
/// C[i] = A[i] * B[i] + C[i]. Batches run on the global thread pool.
///
/// Packed-layout contract: batch i's matrices start at a + i*stride_a,
/// b + i*stride_b, c + i*stride_c and are read/written *packed*
/// row-major - lda = k, ldb = n, ldc = n. There is no per-matrix
/// leading-dimension parameter (matching cublasGemmStridedBatched's
/// common packed usage); strides only space the batches out. With
/// batch_count > 1 the entry points enforce stride_a >= m*k,
/// stride_b >= k*n, stride_c >= m*n and non-negative strides, so
/// undersized strides cannot silently alias consecutive batches.
void blas_sgemm_strided_batched(SgemmKernel kernel,
                                const core::M3xuEngine& engine, int m, int n,
                                int k, const float* a, long stride_a,
                                const float* b, long stride_b, float* c,
                                long stride_c, int batch_count);

void blas_cgemm_strided_batched(CgemmKernel kernel,
                                const core::M3xuEngine& engine, int m, int n,
                                int k, const std::complex<float>* a,
                                long stride_a, const std::complex<float>* b,
                                long stride_b, std::complex<float>* c,
                                long stride_c, int batch_count);

}  // namespace m3xu::gemm
