// Seam between the tiled driver and an external prepacked-B cache.
//
// Serving workloads are dominated by many GEMMs against a small set of
// shared B matrices (weights), and the pack step re-splits the same B
// panel for every request and every tile row that touches it. A
// PanelCache lets the driver reuse a previously packed B panel keyed by
// (caller-assigned B identity, K-block, column block): tiles in the
// same column of the grid - and requests against the same weights -
// coalesce onto one pack.
//
// The driver only consults the cache when ExecConfig::b_key is nonzero
// AND the executing engine carries no fault injector: injected
// staged-panel corruption must never be published into a cache shared
// across requests (it would turn one transient fault into a persistent
// cross-request one). Ladder retries always repack locally for the
// same reason, so recovery is never at the mercy of a cached panel.
//
// Implementations own eviction, thread safety, and integrity: get()
// must return false (a miss) for an entry it cannot vouch for, so a
// corrupted cached panel is repacked instead of served. The concrete
// LRU + checksum implementation lives in src/serve/pack_cache.hpp; the
// driver depends only on this interface. See docs/SERVING.md.
#pragma once

#include <cstdint>

#include "core/packed_panel.hpp"

namespace m3xu::gemm {

/// Identity of one packed B panel: which B matrix (caller-assigned
/// key), which K-block x column-block slice of it, and the panel's
/// dimensions. The driver packs staged B slices of exactly (kc x cols)
/// at matrix offset (k0, col0).
struct PanelKey {
  std::uint64_t b_key = 0;  // ExecConfig::b_key of the owning matrix
  int k0 = 0;               // K offset of the staged slice
  int col0 = 0;             // column offset of the staged slice
  int kc = 0;               // staged K extent
  int cols = 0;             // staged column extent
  bool cplx = false;        // fp32c panel (distinct key space)

  friend bool operator==(const PanelKey& a, const PanelKey& b) {
    return a.b_key == b.b_key && a.k0 == b.k0 && a.col0 == b.col0 &&
           a.kc == b.kc && a.cols == b.cols && a.cplx == b.cplx;
  }
};

/// Abstract prepacked-B panel cache (see file comment). All methods
/// must be safe to call concurrently from driver worker threads.
class PanelCache {
 public:
  virtual ~PanelCache() = default;

  /// On a verified hit, copies the cached panel into *out and returns
  /// true. Returns false on a miss or when the entry fails integrity
  /// verification (the implementation should invalidate it so the
  /// repacked panel replaces it).
  virtual bool get_fp32(const PanelKey& key, core::PackedPanelFp32B* out) = 0;
  virtual bool get_fp32c(const PanelKey& key,
                         core::PackedPanelFp32cB* out) = 0;

  /// Publishes a freshly packed panel (copied in).
  virtual void put_fp32(const PanelKey& key,
                        const core::PackedPanelFp32B& panel) = 0;
  virtual void put_fp32c(const PanelKey& key,
                         const core::PackedPanelFp32cB& panel) = 0;
};

}  // namespace m3xu::gemm
