#include "gemm/recovery.hpp"

namespace m3xu::gemm {

const char* route_name(Route route) {
  switch (route) {
    case Route::kMicrokernel:
      return "microkernel";
    case Route::kPackedFused:
      return "packed_fused";
    case Route::kGenericPerDot:
      return "generic_perdot";
    case Route::kScalarReference:
      return "scalar_reference";
  }
  return "?";
}

bool TileQuarantine::lookup(long tile, Route* route) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tiles_.find(tile);
  if (it == tiles_.end()) return false;
  *route = it->second;
  return true;
}

bool TileQuarantine::demote(long tile, Route route) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = tiles_.try_emplace(tile, route);
  if (inserted) return true;
  if (static_cast<int>(route) > static_cast<int>(it->second)) {
    it->second = route;
    return true;
  }
  return false;
}

std::size_t TileQuarantine::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tiles_.size();
}

void TileQuarantine::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  tiles_.clear();
}

}  // namespace m3xu::gemm
