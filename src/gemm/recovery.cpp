#include "gemm/recovery.hpp"

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::gemm {

namespace {
telemetry::Counter quarantine_evictions_ctr("recovery.quarantine_evictions");
}  // namespace

const char* route_name(Route route) {
  switch (route) {
    case Route::kMicrokernel:
      return "microkernel";
    case Route::kPackedFused:
      return "packed_fused";
    case Route::kGenericPerDot:
      return "generic_perdot";
    case Route::kScalarReference:
      return "scalar_reference";
  }
  return "?";
}

TileQuarantine::TileQuarantine(std::size_t capacity) : capacity_(capacity) {
  M3XU_CHECK_MSG(capacity_ > 0,
                 "TileQuarantine capacity must be positive (a zero-capacity "
                 "quarantine could never record anything)");
}

bool TileQuarantine::lookup(long tile, Route* route) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tiles_.find(tile);
  if (it == tiles_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *route = it->second.route;
  return true;
}

bool TileQuarantine::demote(long tile, Route route) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tiles_.find(tile);
  if (it != tiles_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    if (static_cast<int>(route) > static_cast<int>(it->second.route)) {
      it->second.route = route;
      return true;
    }
    return false;
  }
  if (tiles_.size() >= capacity_) {
    const long victim = lru_.back();
    lru_.pop_back();
    tiles_.erase(victim);
    ++evictions_;
    quarantine_evictions_ctr.increment();
  }
  lru_.push_front(tile);
  tiles_.emplace(tile, Entry{route, lru_.begin()});
  return true;
}

std::size_t TileQuarantine::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tiles_.size();
}

std::uint64_t TileQuarantine::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void TileQuarantine::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  tiles_.clear();
  lru_.clear();
}

}  // namespace m3xu::gemm
