#include "gemm/tiled_driver.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace m3xu::gemm {

namespace {

struct TileGrid {
  long grid_m;
  long grid_n;
  long tiles() const { return grid_m * grid_n; }
};

TileGrid make_grid(const TileConfig& cfg, int m, int n) {
  return {(m + cfg.block_m - 1) / cfg.block_m,
          (n + cfg.block_n - 1) / cfg.block_n};
}

long instr_count(int m_eff, int n_eff, int kc, int inst_m, int inst_n,
                 int inst_k) {
  return static_cast<long>((m_eff + inst_m - 1) / inst_m) *
         ((n_eff + inst_n - 1) / inst_n) * ((kc + inst_k - 1) / inst_k);
}

/// Shared implementation over the element type and engine entry point.
template <typename T, typename MmaFn>
TiledGemmStats run_tiled(const TileConfig& cfg, const Matrix<T>& a,
                         const Matrix<T>& b, Matrix<T>& c, int inst_k,
                         int inst_m, int inst_n, MmaFn&& mma) {
  M3XU_CHECK(cfg.valid());
  // K-chunk boundaries must coincide with the engine's instruction
  // chunking for bit-identical results vs the flat loop.
  M3XU_CHECK(cfg.block_k % inst_k == 0);
  M3XU_CHECK(a.cols() == b.rows());
  M3XU_CHECK(a.rows() == c.rows() && b.cols() == c.cols());
  const int m = a.rows(), n = b.cols(), k = a.cols();
  const TileGrid grid = make_grid(cfg, m, n);

  std::mutex stats_mu;
  TiledGemmStats stats;
  stats.block_tiles = grid.tiles();

  parallel_for(static_cast<std::size_t>(grid.tiles()), [&](std::size_t t) {
    const int bm = static_cast<int>(t / grid.grid_n) * cfg.block_m;
    const int bn = static_cast<int>(t % grid.grid_n) * cfg.block_n;
    const int m_eff = std::min(cfg.block_m, m - bm);
    const int n_eff = std::min(cfg.block_n, n - bn);
    // Staging buffers (the shared-memory model) and the C fragment.
    std::vector<T> a_stage(static_cast<std::size_t>(m_eff) * cfg.block_k);
    std::vector<T> b_stage(static_cast<std::size_t>(cfg.block_k) * n_eff);
    std::vector<T> c_frag(static_cast<std::size_t>(m_eff) * n_eff);
    for (int i = 0; i < m_eff; ++i) {
      for (int j = 0; j < n_eff; ++j) {
        c_frag[static_cast<std::size_t>(i) * n_eff + j] = c(bm + i, bn + j);
      }
    }
    TiledGemmStats local;
    for (int k0 = 0; k0 < k; k0 += cfg.block_k) {
      const int kc = std::min(cfg.block_k, k - k0);
      // Stage the A and B panels (cp.async in the real kernel).
      for (int i = 0; i < m_eff; ++i) {
        for (int kk = 0; kk < kc; ++kk) {
          a_stage[static_cast<std::size_t>(i) * cfg.block_k + kk] =
              a(bm + i, k0 + kk);
        }
      }
      for (int kk = 0; kk < kc; ++kk) {
        for (int j = 0; j < n_eff; ++j) {
          b_stage[static_cast<std::size_t>(kk) * n_eff + j] =
              b(k0 + kk, bn + j);
        }
      }
      local.staged_bytes +=
          static_cast<double>(m_eff + n_eff) * kc * sizeof(T);
      ++local.mainloop_iterations;
      // Warp tiles over the block tile.
      for (int wm = 0; wm < m_eff; wm += cfg.warp_m) {
        const int wm_eff = std::min(cfg.warp_m, m_eff - wm);
        for (int wn = 0; wn < n_eff; wn += cfg.warp_n) {
          const int wn_eff = std::min(cfg.warp_n, n_eff - wn);
          mma(wm_eff, wn_eff, kc,
              a_stage.data() + static_cast<std::size_t>(wm) * cfg.block_k,
              cfg.block_k, b_stage.data() + wn, n_eff,
              c_frag.data() + static_cast<std::size_t>(wm) * n_eff + wn,
              n_eff);
          local.mma_instructions +=
              instr_count(wm_eff, wn_eff, kc, inst_m, inst_n, inst_k);
        }
      }
    }
    for (int i = 0; i < m_eff; ++i) {
      for (int j = 0; j < n_eff; ++j) {
        c(bm + i, bn + j) = c_frag[static_cast<std::size_t>(i) * n_eff + j];
      }
    }
    const std::lock_guard<std::mutex> lock(stats_mu);
    stats.mainloop_iterations += local.mainloop_iterations;
    stats.staged_bytes += local.staged_bytes;
    stats.mma_instructions += local.mma_instructions;
  });
  return stats;
}

}  // namespace

TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c) {
  const core::MmaShape shape = core::shape_for(core::MxuMode::kFp32);
  return run_tiled<float>(
      config, a, b, c, shape.k, shape.m, shape.n,
      [&](int mm, int nn, int kk, const float* pa, int lda, const float* pb,
          int ldb, float* pc, int ldc) {
        engine.gemm_fp32(mm, nn, kk, pa, lda, pb, ldb, pc, ldc);
      });
}

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c) {
  const core::MmaShape shape = core::shape_for(core::MxuMode::kFp32Complex);
  return run_tiled<std::complex<float>>(
      config, a, b, c, shape.k, shape.m, shape.n,
      [&](int mm, int nn, int kk, const std::complex<float>* pa, int lda,
          const std::complex<float>* pb, int ldb, std::complex<float>* pc,
          int ldc) {
        engine.gemm_fp32c(mm, nn, kk, pa, lda, pb, ldb, pc, ldc);
      });
}

}  // namespace m3xu::gemm
