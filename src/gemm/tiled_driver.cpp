#include "gemm/tiled_driver.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/packed_panel.hpp"
#include "fault/injector.hpp"
#include "gemm/panel_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace m3xu::gemm {

double eps_per_chunk(int accum_prec) {
  return std::ldexp(1.0, -24) + std::ldexp(1.0, 2 - accum_prec);
}

namespace {

// ABFT outcome counters, mirroring the TiledGemmStats fields so fault
// recovery shows up in the process-wide metrics export (no-ops when
// M3XU_TELEMETRY=OFF).
telemetry::Counter abft_checks_ctr("abft.tile_checks");
telemetry::Counter abft_detected_ctr("abft.detected");
telemetry::Counter abft_recomputed_ctr("abft.recomputed");
telemetry::Counter abft_recovered_ctr("abft.recovered");
telemetry::Counter abft_false_alarms_ctr("abft.false_alarms");
// Recovery-ladder counters, mirroring RecoveryReport (the per-route
// breakdown lives in the stats; telemetry carries the aggregates).
telemetry::Counter rec_retries_ctr("recovery.retries");
telemetry::Counter rec_demotions_ctr("recovery.demotions");
telemetry::Counter rec_recovered_ctr("recovery.recovered");
telemetry::Counter rec_quarantined_ctr("recovery.quarantined");
telemetry::Counter rec_quarantine_hits_ctr("recovery.quarantine_hits");
telemetry::Counter rec_alloc_fallbacks_ctr("recovery.alloc_fallbacks");
telemetry::Counter rec_degraded_ctr("recovery.degraded_tiles");
telemetry::Counter rec_poisoned_ctr("recovery.poisoned_tiles");

struct TileGrid {
  long grid_m;
  long grid_n;
  long tiles() const { return grid_m * grid_n; }
};

TileGrid make_grid(const TileConfig& cfg, int m, int n) {
  return {(m + cfg.block_m - 1) / cfg.block_m,
          (n + cfg.block_n - 1) / cfg.block_n};
}

long instr_count(int m_eff, int n_eff, int kc, int inst_m, int inst_n,
                 int inst_k) {
  return static_cast<long>((m_eff + inst_m - 1) / inst_m) *
         ((n_eff + inst_n - 1) / inst_n) * ((kc + inst_k - 1) / inst_k);
}

// --- ABFT support -----------------------------------------------------
//
// Checksums accumulate in double (complex<double> for the FP32C mode):
// the 2^-53 checksum rounding is ~2^29 below the 2^-24 output-rounding
// scale the tolerance must cover, so the check arithmetic itself never
// trips the guard. See docs/FAULT_INJECTION.md for the derivation.

/// FP32 pack roundings each output element undergoes across the
/// mainloop (one per instruction K-chunk; the driver's block_k staging
/// preserves the engine's chunk boundaries).
long chunk_roundings(int k, int block_k, int inst_k) {
  long chunks = 0;
  for (int k0 = 0; k0 < k; k0 += block_k) {
    const int kc = std::min(block_k, k - k0);
    chunks += (kc + inst_k - 1) / inst_k;
  }
  return chunks;
}

template <typename T>
struct ChecksumTraits;

template <>
struct ChecksumTraits<float> {
  using Acc = double;
  static Acc widen(float v) { return v; }
  static double mag(float v) { return std::fabs(static_cast<double>(v)); }
  static double residual(Acc v) { return std::fabs(v); }
  static float poison() { return std::numeric_limits<float>::quiet_NaN(); }
};

template <>
struct ChecksumTraits<std::complex<float>> {
  using Acc = std::complex<double>;
  static Acc widen(std::complex<float> v) {
    return {static_cast<double>(v.real()), static_cast<double>(v.imag())};
  }
  static double mag(std::complex<float> v) { return std::abs(widen(v)); }
  static double residual(Acc v) { return std::abs(v); }
  static std::complex<float> poison() {
    return {std::numeric_limits<float>::quiet_NaN(),
            std::numeric_limits<float>::quiet_NaN()};
  }
};

/// Packed-path glue per element type: staged panels are split once per
/// mainloop iteration (at the stage step, where the shared-memory model
/// already touches every element) and every warp tile streams the
/// packed fragments through the engine's prepacked GEMM. perdot() is
/// the unpacked route over the same staged buffers - bit-identical (the
/// per-dot flat loop uses the same K-chunk rounding boundaries), used
/// by the kScalarReference rung and the allocation-failure fallback.
template <typename T>
struct PackedOps;

template <>
struct PackedOps<float> {
  using PanelA = core::PackedPanelFp32A;
  using PanelB = core::PackedPanelFp32B;
  static constexpr bool kCplx = false;
  static void pack_a(const float* p, int ld, int rows, int k, PanelA& out) {
    core::pack_fp32_a(p, ld, rows, k, out);
  }
  static void pack_b(const float* p, int ld, int k, int cols, PanelB& out) {
    core::pack_fp32_b(p, ld, k, cols, out);
  }
  static bool cache_get(PanelCache& cache, const PanelKey& key, PanelB* out) {
    return cache.get_fp32(key, out);
  }
  static void cache_put(PanelCache& cache, const PanelKey& key,
                        const PanelB& panel) {
    cache.put_fp32(key, panel);
  }
  static void mma(const core::M3xuEngine& engine, const PanelA& a, int row0,
                  const PanelB& b, int col0, int m, int n, float* c,
                  int ldc) {
    engine.gemm_fp32_prepacked(a, row0, b, col0, m, n, c, ldc);
  }
  static void perdot(const core::M3xuEngine& engine, const float* a, int lda,
                     const float* b, int ldb, int m, int n, int k, float* c,
                     int ldc) {
    engine.gemm_fp32(m, n, k, a, lda, b, ldb, c, ldc);
  }
};

template <>
struct PackedOps<std::complex<float>> {
  using PanelA = core::PackedPanelFp32cA;
  using PanelB = core::PackedPanelFp32cB;
  static constexpr bool kCplx = true;
  static void pack_a(const std::complex<float>* p, int ld, int rows, int k,
                     PanelA& out) {
    core::pack_fp32c_a(p, ld, rows, k, out);
  }
  static void pack_b(const std::complex<float>* p, int ld, int k, int cols,
                     PanelB& out) {
    core::pack_fp32c_b(p, ld, k, cols, out);
  }
  static bool cache_get(PanelCache& cache, const PanelKey& key, PanelB* out) {
    return cache.get_fp32c(key, out);
  }
  static void cache_put(PanelCache& cache, const PanelKey& key,
                        const PanelB& panel) {
    cache.put_fp32c(key, panel);
  }
  static void mma(const core::M3xuEngine& engine, const PanelA& a, int row0,
                  const PanelB& b, int col0, int m, int n,
                  std::complex<float>* c, int ldc) {
    engine.gemm_fp32c_prepacked(a, row0, b, col0, m, n, c, ldc);
  }
  static void perdot(const core::M3xuEngine& engine,
                     const std::complex<float>* a, int lda,
                     const std::complex<float>* b, int ldb, int m, int n,
                     int k, std::complex<float>* c, int ldc) {
    engine.gemm_fp32c(m, n, k, a, lda, b, ldb, c, ldc);
  }
};

/// kStagedPanel fault hook: one bit-flip opportunity per staged scalar
/// (real and imaginary parts count separately), applied after the
/// stage copy so the corruption models a bad shared-memory cell rather
/// than bad global memory.
void corrupt_staged_value(const fault::FaultInjector& inj, float& v) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  v = std::bit_cast<float>(static_cast<std::uint32_t>(
      inj.corrupt(fault::Site::kStagedPanel, bits, 32)));
}

void corrupt_staged_value(const fault::FaultInjector& inj,
                          std::complex<float>& v) {
  float re = v.real();
  float im = v.imag();
  corrupt_staged_value(inj, re);
  corrupt_staged_value(inj, im);
  v = {re, im};
}

/// Shared implementation over the element type, driven entirely by a
/// CompiledDispatch: the caller (an ad-hoc entry point or a GemmPlan)
/// owns the validated configs and every engine the tile loop needs -
/// primary (possibly fault-injected), fault-free clone for ABFT
/// recompute and the terminal scalar rung, and the route-forced clones
/// for quarantined tiles' initial passes. Nothing config-derived is
/// computed here, so a plan amortizes it all across executes.
template <typename T>
TiledGemmStats run_tiled(const CompiledDispatch& d, const ExecConfig& exec,
                         const Matrix<T>& a, const Matrix<T>& b,
                         Matrix<T>& c) {
  using Traits = ChecksumTraits<T>;
  using Acc = typename Traits::Acc;
  const TileConfig& cfg = d.tile;
  const AbftConfig& abft = d.abft;
  const RecoveryPolicy& policy = d.policy;
  const int inst_m = d.inst_m, inst_n = d.inst_n, inst_k = d.inst_k;
  const double eps_chunk = d.eps_chunk;
  const core::M3xuEngine& engine = *d.engine;
  const core::M3xuEngine& clean = *d.clean;
  // K-chunk boundaries must coincide with the engine's instruction
  // chunking for bit-identical results vs the flat loop.
  const int m = a.rows(), n = b.cols(), k = a.cols();
  const TileGrid grid = make_grid(cfg, m, n);
  const long chunks = chunk_roundings(k, cfg.block_k, inst_k);
  const ParallelOptions popts{exec.token, exec.deadline_ms, exec.stall_ms};
  // Tile partitioning runs on the caller-selected pool (null = the
  // process-wide default). Tiles are independent and each tile's
  // K-chunk schedule is fixed, so the result is bit-identical for
  // every pool size and schedule.
  ThreadPool& pool = exec.pool != nullptr ? *exec.pool : ThreadPool::global();

  const auto initial_engine = [&](Route r) -> const core::M3xuEngine& {
    switch (r) {
      case Route::kPackedFused:
        return *d.route_nomk;
      case Route::kGenericPerDot:
        return *d.route_generic;
      default:
        // kMicrokernel is the engine's natural preference; the scalar
        // rung bypasses packing entirely, so route config is moot.
        return engine;
    }
  };

  std::mutex stats_mu;
  TiledGemmStats stats;
  stats.block_tiles = grid.tiles();
  if (exec.trace != nullptr) {
    exec.trace->event("exec.start", grid.tiles(), static_cast<long>(k));
  }

  // ABFT column-checksum ingredients: asum/amag depend only on a tile's
  // block-row (sum over its A rows), so compute them once per block row
  // instead of once per tile - an O(grid_n) saving on the O(m_eff * k)
  // scan. Cached values are bit-identical to a per-tile recompute (same
  // summation order), so detection behavior is unchanged.
  std::vector<std::vector<Acc>> row_asum;
  std::vector<std::vector<double>> row_amag;
  if (abft.enable) {
    row_asum.resize(static_cast<std::size_t>(grid.grid_m));
    row_amag.resize(static_cast<std::size_t>(grid.grid_m));
    pool.parallel_for(
        static_cast<std::size_t>(grid.grid_m), 0,
        [&](std::size_t r) {
          const int bm = static_cast<int>(r) * cfg.block_m;
          const int m_eff = std::min(cfg.block_m, m - bm);
          std::vector<Acc>& asum = row_asum[r];
          std::vector<double>& amag = row_amag[r];
          asum.assign(static_cast<std::size_t>(k), Acc{});
          amag.assign(static_cast<std::size_t>(k), 0.0);
          for (int i = 0; i < m_eff; ++i) {
            for (int kk = 0; kk < k; ++kk) {
              asum[kk] += Traits::widen(a(bm + i, kk));
              amag[kk] += Traits::mag(a(bm + i, kk));
            }
          }
        },
        popts);
  }

  pool.parallel_for(
      static_cast<std::size_t>(grid.tiles()), 0,
      [&](std::size_t t) {
    const long tile_row = static_cast<long>(t) / grid.grid_n;
    const long tile_col = static_cast<long>(t) % grid.grid_n;
    // Request-scoped tracing: `trace` gets tile-level milestones, and
    // installing it as the thread-local context lets the core route
    // dispatch attribute route decisions to this request.
    telemetry::TraceContext* const trace = exec.trace;
    const telemetry::TraceContextScope trace_scope(trace);
    const int bm = static_cast<int>(tile_row) * cfg.block_m;
    const int bn = static_cast<int>(tile_col) * cfg.block_n;
    const int m_eff = std::min(cfg.block_m, m - bm);
    const int n_eff = std::min(cfg.block_n, n - bn);
    // The C fragment's initial contents (kept for ABFT recompute).
    std::vector<T> c_in(static_cast<std::size_t>(m_eff) * n_eff);
    for (int i = 0; i < m_eff; ++i) {
      for (int j = 0; j < n_eff; ++j) {
        c_in[static_cast<std::size_t>(i) * n_eff + j] = c(bm + i, bn + j);
      }
    }
    TiledGemmStats local;

    // One pass of the tile mainloop into `frag` (which must hold the
    // initial C fragment). Traffic counters accumulate into `counters`
    // on the first pass only; ABFT recomputes are tracked separately.
    // `route` picks the datapath rung; kScalarReference skips packing
    // and runs the staged buffers through the flat per-dot GEMM
    // (bit-identical K-chunk boundaries). `allow_cache` gates the
    // shared prepacked-B cache: only the initial pass may use it -
    // ladder retries and recomputes always repack locally so recovery
    // never depends on a cached panel's integrity.
    const auto compute_tile = [&](const core::M3xuEngine& eng, Route route,
                                  std::vector<T>& frag,
                                  TiledGemmStats* counters,
                                  bool allow_cache) {
      const fault::FaultInjector* inj = eng.config().injector;
      // kWorkerStall: one opportunity per tile pass. The injected
      // delay is finite, so the pool watchdog can convert it into a
      // clean abort instead of an indefinite hang.
      if (inj != nullptr && inj->trigger(fault::Site::kWorkerStall)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(inj->stall_duration_ms));
      }
      // Staging buffers (the shared-memory model) and their packed
      // lane-operand panels, split once per mainloop iteration. They
      // are thread_local so a worker reuses its allocations across
      // tiles (grow-only): every slot a pass reads is written by that
      // pass's stage/pack step first, so stale contents from a prior
      // tile are unreachable, and each worker owns its buffers - no
      // shared mutable state across the tile grid.
      thread_local std::vector<T> a_stage;
      thread_local std::vector<T> b_stage;
      thread_local typename PackedOps<T>::PanelA a_panel;
      thread_local typename PackedOps<T>::PanelB b_panel;
      const std::size_t a_need = static_cast<std::size_t>(m_eff) * cfg.block_k;
      const std::size_t b_need = static_cast<std::size_t>(cfg.block_k) * n_eff;
      if (a_stage.size() < a_need) a_stage.resize(a_need);
      if (b_stage.size() < b_need) b_stage.resize(b_need);
      for (int k0 = 0; k0 < k; k0 += cfg.block_k) {
        if (exec.token != nullptr) exec.token->check();
        const int kc = std::min(cfg.block_k, k - k0);
        {
          // Stage the A and B panels (cp.async in the real kernel).
          const telemetry::ScopedTimer span(
              "tile.stage", counters != nullptr ? &counters->stage_seconds
                                                : nullptr);
          for (int i = 0; i < m_eff; ++i) {
            for (int kk = 0; kk < kc; ++kk) {
              a_stage[static_cast<std::size_t>(i) * cfg.block_k + kk] =
                  a(bm + i, k0 + kk);
            }
          }
          for (int kk = 0; kk < kc; ++kk) {
            for (int j = 0; j < n_eff; ++j) {
              b_stage[static_cast<std::size_t>(kk) * n_eff + j] =
                  b(k0 + kk, bn + j);
            }
          }
        }
        if (inj != nullptr) {
          for (int i = 0; i < m_eff; ++i) {
            for (int kk = 0; kk < kc; ++kk) {
              corrupt_staged_value(
                  *inj, a_stage[static_cast<std::size_t>(i) * cfg.block_k +
                                kk]);
            }
          }
          for (int kk = 0; kk < kc; ++kk) {
            for (int j = 0; j < n_eff; ++j) {
              corrupt_staged_value(
                  *inj, b_stage[static_cast<std::size_t>(kk) * n_eff + j]);
            }
          }
        }
        // Packed-panel staging can fail to allocate (for real, or via
        // the kAllocFailure domain). The K-block then degrades to the
        // unpacked per-dot route over the staged buffers instead of
        // crashing the GEMM - same bits, slower path.
        bool packed = false;
        if (route != Route::kScalarReference) {
          const bool alloc_failed =
              inj != nullptr && inj->trigger(fault::Site::kAllocFailure);
          if (!alloc_failed) {
            try {
              const telemetry::ScopedTimer span(
                  "tile.pack", counters != nullptr ? &counters->pack_seconds
                                                   : nullptr);
              PackedOps<T>::pack_a(a_stage.data(), cfg.block_k, m_eff, kc,
                                   a_panel);
              // The B panel for this (K-block, column block) is shared
              // by every tile row and every request with the same
              // b_key, so consult the cache first. Never with an
              // injector attached: corrupted staging must not be
              // published into shared state.
              const bool cacheable = allow_cache && exec.b_cache != nullptr &&
                                     exec.b_key != 0 && inj == nullptr;
              bool b_cached = false;
              if (cacheable) {
                const PanelKey key{exec.b_key, k0,   bn,
                                   kc,         n_eff, PackedOps<T>::kCplx};
                b_cached =
                    PackedOps<T>::cache_get(*exec.b_cache, key, &b_panel);
                if (trace != nullptr) {
                  trace->event(b_cached ? "pack.cache.hit" : "pack.cache.miss",
                               static_cast<long>(t), k0);
                }
                if (!b_cached) {
                  PackedOps<T>::pack_b(b_stage.data(), n_eff, kc, n_eff,
                                       b_panel);
                  PackedOps<T>::cache_put(*exec.b_cache, key, b_panel);
                }
              } else {
                PackedOps<T>::pack_b(b_stage.data(), n_eff, kc, n_eff,
                                     b_panel);
              }
              packed = true;
            } catch (const std::bad_alloc&) {
              packed = false;
            }
          }
          if (!packed) {
            ++local.recovery.alloc_fallbacks;
            if (trace != nullptr) {
              trace->event("recovery.alloc_fallback", static_cast<long>(t),
                           k0);
            }
          }
        }
        if (counters != nullptr) {
          counters->staged_bytes +=
              static_cast<double>(m_eff + n_eff) * kc * sizeof(T);
          ++counters->mainloop_iterations;
        }
        // Warp tiles over the block tile.
        const telemetry::ScopedTimer span(
            "tile.mainloop", counters != nullptr
                                 ? &counters->mainloop_seconds
                                 : nullptr);
        for (int wm = 0; wm < m_eff; wm += cfg.warp_m) {
          const int wm_eff = std::min(cfg.warp_m, m_eff - wm);
          for (int wn = 0; wn < n_eff; wn += cfg.warp_n) {
            const int wn_eff = std::min(cfg.warp_n, n_eff - wn);
            T* frag_ptr =
                frag.data() + static_cast<std::size_t>(wm) * n_eff + wn;
            if (packed) {
              PackedOps<T>::mma(eng, a_panel, wm, b_panel, wn, wm_eff,
                                wn_eff, frag_ptr, n_eff);
            } else {
              PackedOps<T>::perdot(
                  eng,
                  a_stage.data() + static_cast<std::size_t>(wm) * cfg.block_k,
                  cfg.block_k, b_stage.data() + wn, n_eff, wm_eff, wn_eff,
                  kc, frag_ptr, n_eff);
            }
            if (counters != nullptr) {
              counters->mma_instructions +=
                  instr_count(wm_eff, wn_eff, kc, inst_m, inst_n, inst_k);
            }
          }
        }
      }
    };

    // Quarantined tiles start directly on their recorded rung.
    Route start_route = Route::kMicrokernel;
    if (policy.demote && policy.quarantine != nullptr) {
      Route q = start_route;
      if (policy.quarantine->lookup(static_cast<long>(t), &q)) {
        start_route = std::min(q, policy.floor, [](Route x, Route y) {
          return static_cast<int>(x) < static_cast<int>(y);
        });
        ++local.recovery.quarantine_hits;
        if (trace != nullptr) {
          trace->event("recovery.quarantine_hit", static_cast<long>(t),
                       static_cast<long>(start_route));
        }
      }
    }

    std::vector<T> c_frag = c_in;
    compute_tile(initial_engine(start_route), start_route, c_frag, &local,
                 /*allow_cache=*/true);

    if (abft.enable) {
      const telemetry::ScopedTimer span("tile.abft", &local.abft_seconds);
      ++local.abft_tile_checks;
      // Column checksums over the tile: expected_j = sum_i C_in[i][j]
      // + sum_k (sum_i A[i][k]) * B[k][j], and the magnitude sum that
      // scales the rounding tolerance. asum/amag come from the
      // per-block-row cache computed above.
      const std::vector<Acc>& asum =
          row_asum[static_cast<std::size_t>(tile_row)];
      const std::vector<double>& amag =
          row_amag[static_cast<std::size_t>(tile_row)];
      std::vector<Acc> expected(static_cast<std::size_t>(n_eff), Acc{});
      std::vector<double> tol(static_cast<std::size_t>(n_eff), 0.0);
      for (int j = 0; j < n_eff; ++j) {
        Acc e{};
        double mag = 0.0;
        for (int i = 0; i < m_eff; ++i) {
          e += Traits::widen(c_in[static_cast<std::size_t>(i) * n_eff + j]);
          mag += Traits::mag(c_in[static_cast<std::size_t>(i) * n_eff + j]);
        }
        for (int kk = 0; kk < k; ++kk) {
          e += asum[kk] * Traits::widen(b(kk, bn + j));
          mag += amag[kk] * Traits::mag(b(kk, bn + j));
        }
        expected[j] = e;
        tol[j] = abft.tolerance_scale * static_cast<double>(chunks) *
                 eps_chunk * mag;
      }
      // Negated <= so a NaN residual (e.g. a staged-panel flip that
      // manufactured an Inf/NaN) counts as a detection, not a silent
      // escape.
      const auto verify = [&](const std::vector<T>& frag) {
        for (int j = 0; j < n_eff; ++j) {
          Acc actual{};
          for (int i = 0; i < m_eff; ++i) {
            actual += Traits::widen(frag[static_cast<std::size_t>(i) * n_eff + j]);
          }
          if (!(Traits::residual(actual - expected[j]) <= tol[j])) {
            return false;
          }
        }
        return true;
      };
      if (!verify(c_frag)) {
        ++local.abft_detected;
        if (trace != nullptr) {
          trace->event("abft.detect", static_cast<long>(t),
                       static_cast<long>(start_route));
        }
        bool resolved = false;
        std::vector<T> prev = c_frag;
        if (!policy.demote) {
          // Legacy protocol: bounded fault-free recomputes on the
          // original route, then AbftFailure.
          const int attempts = std::max(1, abft.max_recompute);
          for (int attempt = 0; attempt < attempts && !resolved; ++attempt) {
            std::vector<T> redo = c_in;
            compute_tile(clean, Route::kMicrokernel, redo, nullptr,
                         /*allow_cache=*/false);
            ++local.abft_recomputed;
            if (trace != nullptr) {
              trace->event("abft.recompute", static_cast<long>(t), attempt);
            }
            if (verify(redo)) {
              c_frag = std::move(redo);
              ++local.abft_recovered;
              resolved = true;
            } else if (std::memcmp(redo.data(), prev.data(),
                                   redo.size() * sizeof(T)) == 0) {
              // The deterministic fault-free engine reproduced the same
              // bits: the residual is a tolerance artifact of this
              // input, not a transient fault. Keep the reproduced
              // result.
              c_frag = std::move(redo);
              ++local.abft_false_alarms;
              resolved = true;
            } else {
              prev = std::move(redo);
            }
          }
          if (!resolved) {
            throw AbftFailure(
                "ABFT: tile at (" + std::to_string(bm) + "," +
                    std::to_string(bn) +
                    ") failed its column checksum after " +
                    std::to_string(attempts) +
                    " fault-free recomputes (tolerance_scale=" +
                    std::to_string(abft.tolerance_scale) + ")",
                tile_row, tile_col, Route::kMicrokernel, attempts);
          }
        } else {
          // Demotion ladder. Retries at each rung re-run the tile on
          // the *primary* datapath forced to that route (transient
          // faults clear on re-execution); the terminal scalar rung
          // runs on the fault-free clone, whose deterministic result
          // either passes the checksum or proves a false alarm - so
          // the default ladder always terminates.
          //
          // Retry determinism: the primary injector's opportunity
          // counters are shared across tiles, so retries through it
          // would depend on thread interleaving. Each tile instead
          // gets a private injector seeded from
          // Rng(retry_seed ^ primary seed).split(tile) - a pure
          // function of (seeds, tile index).
          std::optional<fault::FaultInjector> retry_inj;
          core::M3xuConfig retry_base = engine.config();
          if (retry_base.injector != nullptr) {
            retry_inj.emplace(Rng(policy.retry_seed ^
                                  retry_base.injector->seed())
                                  .split(static_cast<std::uint64_t>(t))
                                  .seed(),
                              retry_base.injector->rates());
            retry_inj->stall_duration_ms =
                retry_base.injector->stall_duration_ms;
            retry_base.injector = &*retry_inj;
          }
          core::M3xuConfig retry_nomk = retry_base;
          retry_nomk.enable_microkernel = false;
          core::M3xuConfig retry_gen = retry_base;
          retry_gen.force_generic = true;
          const core::M3xuEngine retry_eng0(retry_base);
          const core::M3xuEngine retry_eng1(retry_nomk);
          const core::M3xuEngine retry_eng2(retry_gen);
          const auto retry_engine = [&](Route r) -> const core::M3xuEngine& {
            switch (r) {
              case Route::kPackedFused:
                return retry_eng1;
              case Route::kGenericPerDot:
                return retry_eng2;
              default:
                return retry_eng0;
            }
          };
          bool false_alarm = false;
          Route rung = start_route;
          int total_attempts = 0;
          for (;;) {
            const bool scalar_clean = rung == Route::kScalarReference;
            int attempts_here = std::max(1, policy.retries_per_route);
            if (scalar_clean) attempts_here = std::max(2, attempts_here);
            for (int attempt = 0; attempt < attempts_here && !resolved;
                 ++attempt) {
              std::vector<T> redo = c_in;
              if (trace != nullptr) {
                trace->event("recovery.retry", static_cast<long>(t),
                             static_cast<long>(rung));
              }
              compute_tile(scalar_clean ? clean : retry_engine(rung), rung,
                           redo, nullptr, /*allow_cache=*/false);
              ++local.abft_recomputed;
              ++local.recovery.retries;
              ++total_attempts;
              if (verify(redo)) {
                c_frag = std::move(redo);
                ++local.abft_recovered;
                ++local.recovery.recovered_on[static_cast<int>(rung)];
                resolved = true;
                if (trace != nullptr) {
                  trace->event("recovery.recovered", static_cast<long>(t),
                               static_cast<long>(rung));
                }
              } else if (std::memcmp(redo.data(), prev.data(),
                                     redo.size() * sizeof(T)) == 0) {
                // Two identical results that both fail the checksum:
                // tolerance artifact, not a fault. Keep the bits.
                c_frag = std::move(redo);
                ++local.abft_false_alarms;
                resolved = true;
                false_alarm = true;
                if (trace != nullptr) {
                  trace->event("abft.false_alarm", static_cast<long>(t),
                               static_cast<long>(rung));
                }
              } else {
                prev = std::move(redo);
              }
            }
            if (resolved ||
                static_cast<int>(rung) >= static_cast<int>(policy.floor)) {
              break;
            }
            rung = static_cast<Route>(static_cast<int>(rung) + 1);
            ++local.recovery.demotions;
            ++local.recovery.demoted_to[static_cast<int>(rung)];
            if (trace != nullptr) {
              trace->event("recovery.demote", static_cast<long>(t),
                           static_cast<long>(rung), route_name(rung));
            }
          }
          if (resolved && !false_alarm &&
              static_cast<int>(rung) > static_cast<int>(start_route) &&
              policy.quarantine != nullptr) {
            if (policy.quarantine->demote(static_cast<long>(t), rung)) {
              ++local.recovery.quarantined;
              if (trace != nullptr) {
                trace->event("recovery.quarantined", static_cast<long>(t),
                             static_cast<long>(rung));
              }
            }
          }
          if (!resolved) {
            switch (policy.terminal) {
              case RecoveryPolicy::Terminal::kThrow:
                if (trace != nullptr) {
                  trace->event("abft.unrecovered", static_cast<long>(t),
                               static_cast<long>(rung));
                }
                throw AbftFailure(
                    "ABFT: tile (" + std::to_string(tile_row) + "," +
                        std::to_string(tile_col) +
                        ") failed its column checksum after " +
                        std::to_string(total_attempts) +
                        " attempts down to route " +
                        route_name(rung) + " (tolerance_scale=" +
                        std::to_string(abft.tolerance_scale) + ")",
                    tile_row, tile_col, rung, total_attempts);
              case RecoveryPolicy::Terminal::kDegrade:
                // Keep the last attempt's bits (already in prev /
                // c_frag lineage) and carry on degraded.
                ++local.recovery.degraded_tiles;
                if (trace != nullptr) {
                  trace->event("recovery.degraded_tile",
                               static_cast<long>(t),
                               static_cast<long>(rung));
                }
                break;
              case RecoveryPolicy::Terminal::kPoison:
                std::fill(c_frag.begin(), c_frag.end(), Traits::poison());
                ++local.recovery.poisoned_tiles;
                if (trace != nullptr) {
                  trace->event("recovery.poisoned_tile",
                               static_cast<long>(t),
                               static_cast<long>(rung));
                }
                break;
            }
          }
        }
      }
    }

    {
      const telemetry::ScopedTimer span("tile.epilogue",
                                        &local.epilogue_seconds);
      for (int i = 0; i < m_eff; ++i) {
        for (int j = 0; j < n_eff; ++j) {
          c(bm + i, bn + j) = c_frag[static_cast<std::size_t>(i) * n_eff + j];
        }
      }
    }
    abft_checks_ctr.add(static_cast<std::uint64_t>(local.abft_tile_checks));
    abft_detected_ctr.add(static_cast<std::uint64_t>(local.abft_detected));
    abft_recomputed_ctr.add(
        static_cast<std::uint64_t>(local.abft_recomputed));
    abft_recovered_ctr.add(static_cast<std::uint64_t>(local.abft_recovered));
    abft_false_alarms_ctr.add(
        static_cast<std::uint64_t>(local.abft_false_alarms));
    const RecoveryReport& rec = local.recovery;
    rec_retries_ctr.add(static_cast<std::uint64_t>(rec.retries));
    rec_demotions_ctr.add(static_cast<std::uint64_t>(rec.demotions));
    long recovered = 0;
    for (int r = 0; r < kRouteCount; ++r) recovered += rec.recovered_on[r];
    rec_recovered_ctr.add(static_cast<std::uint64_t>(recovered));
    rec_quarantined_ctr.add(static_cast<std::uint64_t>(rec.quarantined));
    rec_quarantine_hits_ctr.add(
        static_cast<std::uint64_t>(rec.quarantine_hits));
    rec_alloc_fallbacks_ctr.add(
        static_cast<std::uint64_t>(rec.alloc_fallbacks));
    rec_degraded_ctr.add(static_cast<std::uint64_t>(rec.degraded_tiles));
    rec_poisoned_ctr.add(static_cast<std::uint64_t>(rec.poisoned_tiles));
    const std::lock_guard<std::mutex> lock(stats_mu);
    stats.mainloop_iterations += local.mainloop_iterations;
    stats.staged_bytes += local.staged_bytes;
    stats.mma_instructions += local.mma_instructions;
    stats.stage_seconds += local.stage_seconds;
    stats.pack_seconds += local.pack_seconds;
    stats.mainloop_seconds += local.mainloop_seconds;
    stats.epilogue_seconds += local.epilogue_seconds;
    stats.abft_seconds += local.abft_seconds;
    stats.abft_tile_checks += local.abft_tile_checks;
    stats.abft_detected += local.abft_detected;
    stats.abft_recomputed += local.abft_recomputed;
    stats.abft_recovered += local.abft_recovered;
    stats.abft_false_alarms += local.abft_false_alarms;
    stats.recovery.retries += rec.retries;
    stats.recovery.demotions += rec.demotions;
    for (int r = 0; r < kRouteCount; ++r) {
      stats.recovery.recovered_on[r] += rec.recovered_on[r];
      stats.recovery.demoted_to[r] += rec.demoted_to[r];
    }
    stats.recovery.quarantined += rec.quarantined;
    stats.recovery.quarantine_hits += rec.quarantine_hits;
    stats.recovery.alloc_fallbacks += rec.alloc_fallbacks;
    stats.recovery.degraded_tiles += rec.degraded_tiles;
    stats.recovery.poisoned_tiles += rec.poisoned_tiles;
      },
      popts);
  if (exec.trace != nullptr) {
    exec.trace->event("exec.done", grid.tiles(),
                      static_cast<long>(stats.abft_detected));
  }
  return stats;
}

/// Operand-shape validation shared by the public drivers and the
/// compiled-dispatch execute path.
template <typename T>
void validate_shapes(const Matrix<T>& a, const Matrix<T>& b,
                     const Matrix<T>& c) {
  M3XU_CHECK_MSG(a.cols() == b.rows(),
                 "tiled GEMM shape mismatch: A columns != B rows");
  M3XU_CHECK_MSG(a.rows() == c.rows() && b.cols() == c.cols(),
                 "tiled GEMM shape mismatch: C must be A.rows x B.cols");
}

/// Entry-point validation shared by the public drivers.
template <typename T>
void validate_entry(const TileConfig& cfg, int inst_k, const Matrix<T>& a,
                    const Matrix<T>& b, const Matrix<T>& c) {
  validate_tile_config(cfg, inst_k);
  validate_shapes(a, b, c);
}

/// Fault-free clone of the caller's engine for ABFT recompute: same
/// arithmetic configuration with the injector stripped (and any route
/// forcing lifted, so the recompute runs the engine's natural route).
core::M3xuConfig clean_config(const core::M3xuEngine& engine) {
  core::M3xuConfig cfg = engine.config();
  cfg.injector = nullptr;
  return cfg;
}

/// The legacy overloads run with recovery demotion off, which
/// reproduces the original clean-recompute-or-throw protocol exactly.
RecoveryPolicy legacy_policy() {
  RecoveryPolicy policy;
  policy.demote = false;
  return policy;
}

/// Stack-owned engine set + dispatch for the ad-hoc entry points: the
/// same clones a GemmPlan would freeze, built per call (the historical
/// behavior). Keeping the ad-hoc path on the exact same run_tiled core
/// as the plan path is what makes plan-vs-ad-hoc bit-identity hold by
/// construction.
struct AdHocDispatch {
  AdHocDispatch(const core::M3xuEngine& engine, const TileConfig& config,
                const AbftConfig& abft, const RecoveryPolicy& policy,
                core::MxuMode mode)
      : clean(clean_config(engine)) {
    if (policy.demote) {
      core::M3xuConfig c_nomk = engine.config();
      c_nomk.enable_microkernel = false;
      nomk.emplace(c_nomk);
      core::M3xuConfig c_gen = engine.config();
      c_gen.force_generic = true;
      generic.emplace(c_gen);
    }
    const core::MmaShape shape = core::shape_for(mode);
    dispatch.tile = config;
    dispatch.abft = abft;
    dispatch.policy = policy;
    dispatch.inst_m = shape.m;
    dispatch.inst_n = shape.n;
    dispatch.inst_k = shape.k;
    dispatch.eps_chunk = eps_per_chunk(engine.config().accum_prec);
    dispatch.engine = &engine;
    dispatch.clean = &clean;
    dispatch.route_nomk = nomk.has_value() ? &*nomk : nullptr;
    dispatch.route_generic = generic.has_value() ? &*generic : nullptr;
  }

  core::M3xuEngine clean;
  std::optional<core::M3xuEngine> nomk, generic;
  CompiledDispatch dispatch;
};

}  // namespace

void validate_tile_config(const TileConfig& config, int inst_k) {
  M3XU_CHECK_MSG(config.valid(),
                 "TileConfig invalid: block_m/block_n/block_k/warp_m/warp_n "
                 "must be positive and block_m/block_n divisible by "
                 "warp_m/warp_n");
  M3XU_CHECK_MSG(config.block_k % inst_k == 0,
                 "TileConfig.block_k must be a multiple of the mode's MMA "
                 "instruction K so chunk rounding boundaries line up");
}

/// Catch nonsensical resilience-knob combinations at the API boundary
/// with a clear message instead of downstream misbehavior (negative
/// retries silently becoming one attempt, a stall watchdog with no
/// deadline backstop, an out-of-range demotion floor).
void validate_resilience_config(const RecoveryPolicy& policy,
                                const ExecConfig& exec) {
  M3XU_CHECK_MSG(policy.retries_per_route >= 0,
                 "RecoveryPolicy.retries_per_route must be >= 0");
  M3XU_CHECK_MSG(static_cast<int>(policy.floor) >= 0 &&
                     static_cast<int>(policy.floor) < kRouteCount,
                 "RecoveryPolicy.floor must be a valid Route rung "
                 "(kMicrokernel..kScalarReference)");
  M3XU_CHECK_MSG(exec.deadline_ms >= 0,
                 "ExecConfig.deadline_ms must be >= 0 (0 disables the "
                 "deadline watchdog)");
  M3XU_CHECK_MSG(exec.stall_ms >= 0,
                 "ExecConfig.stall_ms must be >= 0 (0 disables stall "
                 "detection)");
  M3XU_CHECK_MSG(exec.stall_ms == 0 || exec.deadline_ms > 0,
                 "ExecConfig.stall_ms requires a nonzero deadline_ms: stall "
                 "detection without a wall-deadline backstop can absorb an "
                 "arbitrarily slow trickle of progress");
  M3XU_CHECK_MSG(exec.b_cache == nullptr || exec.b_key != 0,
                 "ExecConfig.b_cache requires a nonzero b_key identifying "
                 "the B matrix contents");
}

TiledGemmStats tiled_execute(const CompiledDispatch& dispatch,
                             const ExecConfig& exec, const Matrix<float>& a,
                             const Matrix<float>& b, Matrix<float>& c) {
  M3XU_CHECK_MSG(dispatch.engine != nullptr && dispatch.clean != nullptr,
                 "CompiledDispatch must carry primary and clean engines");
  M3XU_CHECK_MSG(!dispatch.policy.demote ||
                     (dispatch.route_nomk != nullptr &&
                      dispatch.route_generic != nullptr),
                 "CompiledDispatch with a demotion ladder must carry the "
                 "route-forced engine clones");
  validate_shapes(a, b, c);
  return run_tiled<float>(dispatch, exec, a, b, c);
}

TiledGemmStats tiled_execute(const CompiledDispatch& dispatch,
                             const ExecConfig& exec,
                             const Matrix<std::complex<float>>& a,
                             const Matrix<std::complex<float>>& b,
                             Matrix<std::complex<float>>& c) {
  M3XU_CHECK_MSG(dispatch.engine != nullptr && dispatch.clean != nullptr,
                 "CompiledDispatch must carry primary and clean engines");
  M3XU_CHECK_MSG(!dispatch.policy.demote ||
                     (dispatch.route_nomk != nullptr &&
                      dispatch.route_generic != nullptr),
                 "CompiledDispatch with a demotion ladder must carry the "
                 "route-forced engine clones");
  validate_shapes(a, b, c);
  return run_tiled<std::complex<float>>(dispatch, exec, a, b, c);
}

TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c) {
  return tiled_sgemm(engine, config, AbftConfig{}, a, b, c);
}

TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<float>& a, const Matrix<float>& b,
                           Matrix<float>& c) {
  return tiled_sgemm(engine, config, abft, legacy_policy(), ExecConfig{}, a,
                     b, c);
}

TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const RecoveryPolicy& policy,
                           const ExecConfig& exec, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c) {
  const core::MmaShape shape = core::shape_for(core::MxuMode::kFp32);
  validate_entry(config, shape.k, a, b, c);
  validate_resilience_config(policy, exec);
  const AdHocDispatch ad(engine, config, abft, policy,
                         core::MxuMode::kFp32);
  return run_tiled<float>(ad.dispatch, exec, a, b, c);
}

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c) {
  return tiled_cgemm(engine, config, AbftConfig{}, a, b, c);
}

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c) {
  return tiled_cgemm(engine, config, abft, legacy_policy(), ExecConfig{}, a,
                     b, c);
}

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const RecoveryPolicy& policy,
                           const ExecConfig& exec,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c) {
  const core::MmaShape shape = core::shape_for(core::MxuMode::kFp32Complex);
  validate_entry(config, shape.k, a, b, c);
  validate_resilience_config(policy, exec);
  const AdHocDispatch ad(engine, config, abft, policy,
                         core::MxuMode::kFp32Complex);
  return run_tiled<std::complex<float>>(ad.dispatch, exec, a, b, c);
}

double abft_column_tolerance(const core::M3xuEngine& engine,
                             const TileConfig& config, const AbftConfig& abft,
                             const Matrix<float>& a, const Matrix<float>& b,
                             const Matrix<float>& c_in, int bm, int m_eff,
                             int j) {
  const int inst_k = core::shape_for(core::MxuMode::kFp32).k;
  const int k = a.cols();
  const long chunks = chunk_roundings(k, config.block_k, inst_k);
  double mag = 0.0;
  for (int i = 0; i < m_eff; ++i) {
    mag += std::fabs(static_cast<double>(c_in(bm + i, j)));
  }
  for (int kk = 0; kk < k; ++kk) {
    double acol = 0.0;
    for (int i = 0; i < m_eff; ++i) {
      acol += std::fabs(static_cast<double>(a(bm + i, kk)));
    }
    mag += acol * std::fabs(static_cast<double>(b(kk, j)));
  }
  return abft.tolerance_scale * static_cast<double>(chunks) *
         eps_per_chunk(engine.config().accum_prec) * mag;
}

}  // namespace m3xu::gemm
