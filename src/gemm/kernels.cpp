#include "gemm/kernels.hpp"

#include <vector>

#include "common/thread_pool.hpp"
#include "core/packed_panel.hpp"
#include "fp/split.hpp"
#include "gemm/reference.hpp"
#include "telemetry/trace.hpp"

namespace m3xu::gemm {

namespace {

/// Partitions [0, rows) into blocks and runs fn(row_begin, row_count)
/// on the global pool. Blocks are fixed-size so results are identical
/// for any thread count.
void over_row_blocks(int rows,
                     const std::function<void(int, int)>& fn) {
  constexpr int kBlock = 32;
  const int blocks = (rows + kBlock - 1) / kBlock;
  parallel_for(static_cast<std::size_t>(blocks), [&](std::size_t b) {
    const int r0 = static_cast<int>(b) * kBlock;
    fn(r0, std::min(kBlock, rows - r0));
  });
}

void check_shapes(int am, int ak, int bk, int bn, int cm, int cn) {
  M3XU_CHECK(ak == bk);
  M3XU_CHECK(am == cm);
  M3XU_CHECK(bn == cn);
}

/// One TF32 Tensor-Core GEMM pass: C += A*B over row blocks.
void tf32_pass(const core::M3xuEngine& engine, const Matrix<float>& a,
               const Matrix<float>& b, Matrix<float>& c) {
  over_row_blocks(a.rows(), [&](int r0, int rc) {
    engine.gemm_tf32(rc, b.cols(), a.cols(), a.data() + r0 * a.ld(), a.ld(),
                     b.data(), b.ld(), c.data() + r0 * c.ld(), c.ld());
  });
}

void bf16_pass(const core::M3xuEngine& engine, const Matrix<float>& a,
               const Matrix<float>& b, Matrix<float>& c) {
  // Convert the (bf16-exact) float planes to BF16 storage fragments.
  Matrix<fp::Bf16> ab(a.rows(), a.cols());
  Matrix<fp::Bf16> bb(b.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) ab(i, j) = fp::Bf16::from_float(a(i, j));
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) bb(i, j) = fp::Bf16::from_float(b(i, j));
  }
  over_row_blocks(a.rows(), [&](int r0, int rc) {
    engine.gemm_bf16(rc, b.cols(), a.cols(), ab.data() + r0 * ab.ld(), ab.ld(),
                     bb.data(), bb.ld(), c.data() + r0 * c.ld(), c.ld());
  });
}

}  // namespace

const char* kernel_name(SgemmKernel k) {
  switch (k) {
    case SgemmKernel::kSimt:
      return "cutlass_simt_sgemm";
    case SgemmKernel::kTensorOp3xTf32:
      return "cutlass_tensorop_sgemm";
    case SgemmKernel::kTensorOp4xTf32:
      return "cutlass_tensorop_sgemm_4x";
    case SgemmKernel::kEehc3xBf16:
      return "EEHC_sgemm_fp32B";
    case SgemmKernel::kM3xu:
      return "m3xu_sgemm";
  }
  return "?";
}

const char* kernel_name(CgemmKernel k) {
  switch (k) {
    case CgemmKernel::kSimt:
      return "cutlass_simt_cgemm";
    case CgemmKernel::kTensorOp3xTf32:
      return "cutlass_tensorop_cgemm";
    case CgemmKernel::kM3xu:
      return "m3xu_cgemm";
  }
  return "?";
}

SplitMatrices split_matrix(const Matrix<float>& m, const fp::FloatFormat& fmt) {
  SplitMatrices s{Matrix<float>(m.rows(), m.cols()),
                  Matrix<float>(m.rows(), m.cols())};
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      const fp::SwSplit2 parts = fp::split_float_sw(m(i, j), fmt);
      s.hi(i, j) = parts.hi;
      s.lo(i, j) = parts.lo;
    }
  }
  return s;
}

ComplexPlanes planes(const Matrix<std::complex<float>>& m) {
  ComplexPlanes p{Matrix<float>(m.rows(), m.cols()),
                  Matrix<float>(m.rows(), m.cols())};
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      p.re(i, j) = m(i, j).real();
      p.im(i, j) = m(i, j).imag();
    }
  }
  return p;
}

void run_sgemm(SgemmKernel kernel, const core::M3xuEngine& engine,
               const Matrix<float>& a, const Matrix<float>& b,
               Matrix<float>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  switch (kernel) {
    case SgemmKernel::kSimt:
      simt_sgemm(a, b, c);
      return;
    case SgemmKernel::kTensorOp3xTf32:
    case SgemmKernel::kTensorOp4xTf32: {
      const SplitMatrices sa = split_matrix(a, fp::kTf32);
      const SplitMatrices sb = split_matrix(b, fp::kTf32);
      // Small terms first (CUTLASS accumulates the dominant hi*hi last
      // to preserve its bits in the FP32 accumulator).
      if (kernel == SgemmKernel::kTensorOp4xTf32) {
        tf32_pass(engine, sa.lo, sb.lo, c);
      }
      tf32_pass(engine, sa.hi, sb.lo, c);
      tf32_pass(engine, sa.lo, sb.hi, c);
      tf32_pass(engine, sa.hi, sb.hi, c);
      return;
    }
    case SgemmKernel::kEehc3xBf16: {
      const SplitMatrices sa = split_matrix(a, fp::kBf16);
      const SplitMatrices sb = split_matrix(b, fp::kBf16);
      bf16_pass(engine, sa.hi, sb.lo, c);
      bf16_pass(engine, sa.lo, sb.hi, c);
      bf16_pass(engine, sa.hi, sb.hi, c);
      return;
    }
    case SgemmKernel::kM3xu: {
      // Packed fast path: B is split once and shared read-only across
      // all row blocks; each block splits only its own A rows.
      const telemetry::ScopedTimer total_span("sgemm.m3xu");
      core::PackedPanelFp32B pb;
      {
        const telemetry::ScopedTimer span("sgemm.pack_b");
        core::pack_fp32_b(b.data(), b.ld(), b.rows(), b.cols(), pb);
      }
      over_row_blocks(a.rows(), [&](int r0, int rc) {
        const telemetry::ScopedTimer span("sgemm.row_block");
        core::PackedPanelFp32A pa;
        core::pack_fp32_a(a.data() + static_cast<std::size_t>(r0) * a.ld(),
                          a.ld(), rc, a.cols(), pa);
        engine.gemm_fp32_prepacked(
            pa, 0, pb, 0, rc, b.cols(),
            c.data() + static_cast<std::size_t>(r0) * c.ld(), c.ld());
      });
      return;
    }
  }
}

void run_cgemm(CgemmKernel kernel, const core::M3xuEngine& engine,
               const Matrix<std::complex<float>>& a,
               const Matrix<std::complex<float>>& b,
               Matrix<std::complex<float>>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  switch (kernel) {
    case CgemmKernel::kSimt:
      simt_cgemm(a, b, c);
      return;
    case CgemmKernel::kTensorOp3xTf32: {
      // Complex GEMM as four real GEMMs (RR, II, RI, IR), each emulated
      // with the 3xTF32 scheme.
      const ComplexPlanes pa = planes(a);
      const ComplexPlanes pb = planes(b);
      ComplexPlanes pc = planes(c);
      Matrix<float> neg_ai(a.rows(), a.cols());
      for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j) neg_ai(i, j) = -pa.im(i, j);
      }
      run_sgemm(SgemmKernel::kTensorOp3xTf32, engine, pa.re, pb.re, pc.re);
      run_sgemm(SgemmKernel::kTensorOp3xTf32, engine, neg_ai, pb.im, pc.re);
      run_sgemm(SgemmKernel::kTensorOp3xTf32, engine, pa.re, pb.im, pc.im);
      run_sgemm(SgemmKernel::kTensorOp3xTf32, engine, pa.im, pb.re, pc.im);
      for (int i = 0; i < c.rows(); ++i) {
        for (int j = 0; j < c.cols(); ++j) {
          c(i, j) = {pc.re(i, j), pc.im(i, j)};
        }
      }
      return;
    }
    case CgemmKernel::kM3xu: {
      const telemetry::ScopedTimer total_span("cgemm.m3xu");
      core::PackedPanelFp32cB pb;
      {
        const telemetry::ScopedTimer span("cgemm.pack_b");
        core::pack_fp32c_b(b.data(), b.ld(), b.rows(), b.cols(), pb);
      }
      over_row_blocks(a.rows(), [&](int r0, int rc) {
        const telemetry::ScopedTimer span("cgemm.row_block");
        core::PackedPanelFp32cA pa;
        core::pack_fp32c_a(a.data() + static_cast<std::size_t>(r0) * a.ld(),
                           a.ld(), rc, a.cols(), pa);
        engine.gemm_fp32c_prepacked(
            pa, 0, pb, 0, rc, b.cols(),
            c.data() + static_cast<std::size_t>(r0) * c.ld(), c.ld());
      });
      return;
    }
  }
}

void tensorop_hgemm(const core::M3xuEngine& engine, const Matrix<float>& a,
                    const Matrix<float>& b, Matrix<float>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  Matrix<fp::Half> ah(a.rows(), a.cols());
  Matrix<fp::Half> bh(b.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) ah(i, j) = fp::Half::from_float(a(i, j));
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) bh(i, j) = fp::Half::from_float(b(i, j));
  }
  over_row_blocks(a.rows(), [&](int r0, int rc) {
    engine.gemm_fp16(rc, b.cols(), a.cols(), ah.data() + r0 * ah.ld(), ah.ld(),
                     bh.data(), bh.ld(), c.data() + r0 * c.ld(), c.ld());
  });
}

}  // namespace m3xu::gemm
