// Recovery policy for the resilient tiled GEMM driver: the existing
// route hierarchy doubles as a degradation ladder.
//
// Every route computes bit-identical results by construction (same
// step schedule, same rounding points - verified by the tiled tests),
// so demoting a tile trades only throughput, never numerics:
//
//   kMicrokernel      register-blocked packed microkernel (fastest)
//   kPackedFused      per-element fused streaming over packed panels
//   kGenericPerDot    generic per-dot reassembly from packed lanes
//   kScalarReference  plain per-dot gemm over the staged buffers
//                     (no packing at all - also the allocation-failure
//                     fallback)
//
// On an ABFT detection the driver retries the tile a bounded number of
// times per rung, then demotes one rung and retries again, down to
// RecoveryPolicy::floor. The bottom rung runs on the fault-free engine
// clone (the "trusted scalar unit"), whose deterministic reproduction
// either passes the checksum or proves the mismatch is a tolerance
// artifact - so a full ladder always terminates. Persistent offenders
// can be remembered in a TileQuarantine so later calls start them on a
// lower rung directly. See docs/RESILIENCE.md.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/cancellation.hpp"

namespace m3xu {
class ThreadPool;
}

namespace m3xu::telemetry {
class TraceContext;  // see telemetry/trace_context.hpp
}

namespace m3xu::gemm {

class PanelCache;  // see gemm/panel_cache.hpp

/// One rung of the demotion ladder, fastest first. Higher enum values
/// are *lower* rungs.
enum class Route : int {
  kMicrokernel = 0,
  kPackedFused = 1,
  kGenericPerDot = 2,
  kScalarReference = 3,
};

inline constexpr int kRouteCount = 4;

const char* route_name(Route route);

/// Thread-safe per-tile route memory shared across driver calls: a
/// tile that had to demote records its landing rung, and later GEMMs
/// over the same grid start that tile there instead of re-walking the
/// ladder. Keyed by flat tile index (row * grid_n + col), so reuse a
/// quarantine only across calls with the same tile grid.
///
/// The tracked-tile set is bounded: at most `capacity` entries, with
/// least-recently-touched eviction (a lookup hit or a demote both
/// refresh an entry). A long-lived server can therefore share one
/// quarantine per tenant indefinitely - cold entries age out instead
/// of growing the map without limit. Evictions are counted here and in
/// the recovery.quarantine_evictions telemetry counter.
class TileQuarantine {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TileQuarantine(std::size_t capacity = kDefaultCapacity);

  /// Looks up the quarantined rung for `tile`. Returns false (and
  /// leaves *route untouched) when the tile is not quarantined. A hit
  /// refreshes the entry's LRU position.
  bool lookup(long tile, Route* route) const;

  /// Quarantines `tile` at `route`. Only ever lowers (a recorded rung
  /// is never raised back up). Returns true when the entry is new or
  /// was lowered. May evict the least-recently-touched entry when the
  /// quarantine is at capacity.
  bool demote(long tile, Route route);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Entries dropped by LRU eviction since construction (clear() does
  /// not count).
  std::uint64_t evictions() const;
  void clear();

 private:
  struct Entry {
    Route route;
    std::list<long>::iterator lru_it;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  // Front = most recently touched. splice() moves nodes without
  // invalidating the iterators stored in tiles_.
  mutable std::list<long> lru_;
  std::unordered_map<long, Entry> tiles_;
};

/// How the driver escalates when a tile's ABFT checksum keeps failing.
struct RecoveryPolicy {
  /// Master switch. false reproduces the legacy protocol exactly:
  /// AbftConfig::max_recompute fault-free recomputes on the original
  /// route, then AbftFailure - no ladder, no quarantine.
  bool demote = true;
  /// Retry attempts per rung before demoting one rung further. The
  /// terminal scalar rung always gets at least 2 attempts so its
  /// deterministic reproduction can prove a false alarm.
  int retries_per_route = 1;
  /// Lowest rung the ladder may demote to. Raising the floor above
  /// kScalarReference makes the terminal behavior reachable even for
  /// tolerance artifacts (used by tests); the default floor guarantees
  /// recovery for every transient fault.
  Route floor = Route::kScalarReference;
  /// What happens when the ladder hits the floor without a passing
  /// checksum.
  enum class Terminal {
    kThrow,    // AbftFailure with tile coordinates / route / attempts
    kDegrade,  // keep the suspect tile result, count it, continue
    kPoison,   // overwrite the tile with quiet NaNs, count, continue
  };
  Terminal terminal = Terminal::kThrow;
  /// Optional cross-call tile memory (non-owning; may be null).
  TileQuarantine* quarantine = nullptr;
  /// Root for the per-tile deterministic retry streams: tile t's retry
  /// injector is seeded from Rng(seed ^ injector seed).split(t), so
  /// recovery replays identically regardless of thread interleaving.
  std::uint64_t retry_seed = 0x5eedbed5ull;
};

/// Execution guard rails threaded through the driver's parallel_for
/// calls and its per-chunk checkpoints. All default-off: the default
/// ExecConfig leaves the driver byte-identical to the unguarded path.
struct ExecConfig {
  /// Cooperative cancellation, polled per tile and per staged K-block.
  const CancellationToken* token = nullptr;
  /// Watchdog wall deadline per parallel_for call, in ms (0 = none).
  std::int64_t deadline_ms = 0;
  /// Watchdog no-progress window, in ms (0 = none). Requires a nonzero
  /// deadline_ms as a backstop (validated at driver entry).
  std::int64_t stall_ms = 0;
  /// Optional shared prepacked-B cache (non-owning; may be null). Only
  /// consulted when b_key is nonzero and the engine carries no fault
  /// injector - injected staged-panel corruption must never enter a
  /// cache shared across requests. Ladder retries always repack
  /// locally, so a corrupted cached panel cannot defeat recovery.
  PanelCache* b_cache = nullptr;
  /// Caller-assigned identity of the B matrix contents for cache keys
  /// (0 = caching disabled for this call). Callers must guarantee two
  /// calls share a b_key only when their B bytes are identical.
  std::uint64_t b_key = 0;
  /// Thread pool the driver partitions the tile grid across (non-
  /// owning; null = ThreadPool::global()). Results are bit-identical
  /// for every pool size - tiles are independent and each tile's
  /// K-chunk schedule is fixed - so this only chooses where the work
  /// runs (benchmark thread sweeps, per-tenant pools).
  ThreadPool* pool = nullptr;
  /// Optional request-scoped trace (non-owning; may be null). The
  /// driver logs tile-level milestones - pack-cache hits, ABFT
  /// detections, ladder retries/demotions, quarantine activity,
  /// terminal degradations - into it and installs it as the active
  /// thread-local context around each tile so the core route dispatch
  /// can attribute route decisions to the request.
  telemetry::TraceContext* trace = nullptr;
};

/// What the recovery layer did during one driver call. Folded into
/// TiledGemmStats and mirrored into telemetry recovery.* counters.
struct RecoveryReport {
  long retries = 0;          // recompute attempts driven by the ladder
  long demotions = 0;        // rung steps taken (summed over tiles)
  long recovered_on[kRouteCount] = {};  // recoveries by landing rung
  long demoted_to[kRouteCount] = {};    // rung arrivals (ladder steps)
  long quarantined = 0;      // tiles newly added/lowered in quarantine
  long quarantine_hits = 0;  // tiles that started on a quarantined rung
  long alloc_fallbacks = 0;  // staged K-blocks that lost their packed
                             // panels (bad_alloc or injected) and ran
                             // the unpacked per-dot fallback
  long degraded_tiles = 0;   // Terminal::kDegrade outcomes
  long poisoned_tiles = 0;   // Terminal::kPoison outcomes
};

}  // namespace m3xu::gemm
