// Reference GEMMs: the CUDA-core (SIMT) semantics baselines and exact
// oracles every kernel is validated against.
#pragma once

#include <complex>

#include "gemm/matrix.hpp"

namespace m3xu::gemm {

/// cutlass_simt_sgemm semantics: per-element serial FP32 FMA chain
/// (one rounding per multiply-add), deterministic K order. This is the
/// "conventional vector processing units" baseline of the paper.
void simt_sgemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<float>& c);

/// cutlass_simt_cgemm semantics: complex FP32 FMA chains (four real
/// FMAs per complex MAC).
void simt_cgemm(const Matrix<std::complex<float>>& a,
                const Matrix<std::complex<float>>& b,
                Matrix<std::complex<float>>& c);

/// Double-precision reference (error measurement baseline).
void ref_dgemm(const Matrix<double>& a, const Matrix<double>& b,
               Matrix<double>& c);
void ref_zgemm(const Matrix<std::complex<double>>& a,
               const Matrix<std::complex<double>>& b,
               Matrix<std::complex<double>>& c);

/// Exact oracle: every output element is the correctly rounded (to
/// double) exact dot product - computed with the exact accumulator.
/// O(mnk) with wide arithmetic: use on small/medium problems only.
void exact_gemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<double>& c);

// --- Error metrics ----------------------------------------------------

struct ErrorStats {
  double max_abs = 0.0;
  double max_rel = 0.0;
  double mean_rel = 0.0;
};

/// Per-element comparison against a double reference; relative error is
/// |x-ref| / max(|ref|, floor) with a small floor to avoid div-by-zero.
ErrorStats compare(const Matrix<float>& x, const Matrix<double>& ref);
ErrorStats compare(const Matrix<std::complex<float>>& x,
                   const Matrix<std::complex<double>>& ref);

}  // namespace m3xu::gemm
