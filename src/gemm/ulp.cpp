#include "gemm/ulp.hpp"

#include <cmath>
#include <cstdio>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace m3xu::gemm {

namespace {

/// Maps a float's bits to a monotone signed integer line so ULP
/// distance is a subtraction.
std::int64_t ordered(float f) {
  const std::uint32_t b = bits_of(f);
  return (b & 0x80000000u)
             ? -static_cast<std::int64_t>(b & 0x7fffffffu)
             : static_cast<std::int64_t>(b & 0x7fffffffu);
}

}  // namespace

std::int64_t ulp_distance(float x, double reference) {
  const float rounded = static_cast<float>(reference);
  if (std::isnan(x) || std::isnan(rounded)) {
    return (std::isnan(x) && std::isnan(rounded)) ? 0
                                                  : (std::int64_t{1} << 40);
  }
  if (std::isinf(x) || std::isinf(rounded)) {
    return x == rounded ? 0 : (std::int64_t{1} << 40);
  }
  return std::llabs(ordered(x) - ordered(rounded));
}

void UlpHistogram::add(float x, double reference) {
  const std::int64_t d = ulp_distance(x, reference);
  max_ = std::max(max_, d);
  ++total_;
  if (d == 0) {
    ++buckets_[0];
  } else if (d == 1) {
    ++buckets_[1];
  } else if (d == 2) {
    ++buckets_[2];
  } else if (d <= 4) {
    ++buckets_[3];
  } else if (d <= 16) {
    ++buckets_[4];
  } else {
    ++buckets_[5];
  }
}

void UlpHistogram::add_matrix(const Matrix<float>& x,
                              const Matrix<double>& reference) {
  M3XU_CHECK(x.rows() == reference.rows() && x.cols() == reference.cols());
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) add(x(i, j), reference(i, j));
  }
}

double UlpHistogram::exact_fraction() const {
  return total_ ? static_cast<double>(buckets_[0]) / total_ : 0.0;
}

double UlpHistogram::faithful_fraction() const {
  return total_ ? static_cast<double>(buckets_[0] + buckets_[1]) / total_
                : 0.0;
}

std::string UlpHistogram::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%5.1f%% exact | %5.1f%% <=1ulp | max %ld",
                exact_fraction() * 100.0, faithful_fraction() * 100.0,
                static_cast<long>(max_));
  return buf;
}

}  // namespace m3xu::gemm
