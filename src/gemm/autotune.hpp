// Autotuner for the compile-then-execute plan layer.
//
// Tile/block/chunk shapes are a real throughput lever (cache blocking,
// pack granularity, per-tile parallel slack), but the best choice
// depends on the problem shape and the host - exactly what a static
// default cannot know. autotune() searches a candidate TileConfig set
// for one (shape, dtype) problem, rejects invalid candidates through
// the same validators as plan compile, gates every candidate on
// bit-identity against the default-config result (the tile hierarchy
// must never change results - a mismatch is a driver bug, not a
// tuning preference), measures the survivors, and returns the fastest.
//
// The search runs in two stages: tile shapes first (the cache-blocking
// lever), then - with the winning tile frozen - microkernel register-
// block shape and thread count (the width/parallelism levers). Every
// candidate in both stages is gated on bit-identity, including each
// thread-count candidate (run on its own pool), so a tuned config can
// never change results, only where and how fast they are computed.
//
// Tuned configs persist across processes in a versioned JSON cache
// (TuneCache) keyed by (problem shape, dtype, cpu signature). Load
// validates schema version and a per-entry checksum and silently drops
// anything corrupt, stale, or invalid - a damaged cache file costs a
// re-tune, never a wrong config. Bumping kSchemaVersion drops every
// older file wholesale on load (the documented migration: old entries
// are simply re-tuned under the new schema). See docs/PLAN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/mxu.hpp"
#include "gemm/plan.hpp"

namespace m3xu::gemm {

/// Host identity a tuned config is considered valid for: compiler,
/// CPU model, and which microkernel SIMD variant dispatch resolves to.
/// A cache entry recorded under a different signature is ignored
/// (tuned block sizes do not transfer across hosts or builds, and a
/// config tuned for one SIMD width may be wrong for another).
std::string cpu_signature();

/// Everything autotune() can tune: the tile hierarchy plus the
/// microkernel register-block shape and a recommended thread count.
/// mk_mr/mk_nr = 0 and threads = 0 mean "no override" (the engine's
/// per-CPU shape default, the caller's / global pool) - the config the
/// search gates everything against.
struct TunedConfig {
  TileConfig tile;
  int mk_mr = 0;
  int mk_nr = 0;
  /// Dedicated-pool worker count the measurement ran on (0 = defer to
  /// the execution-time pool). Callers honor it by passing a pool of
  /// this size via ExecRails; results are bit-identical either way.
  int threads = 0;
};

bool same_tuned(const TunedConfig& a, const TunedConfig& b);

/// The candidate tile set autotune() searches when the caller does not
/// supply one: the default TileConfig first (it is the baseline every
/// candidate is gated against), then block/warp/chunk combinations
/// filtered to TileConfig::valid() and the mode's instruction-K
/// alignment, and trimmed to shapes that are not degenerate for the
/// problem (a block larger than the whole matrix in both dimensions
/// duplicates an existing candidate's behavior). `quick` trims to a
/// handful of candidates for CI smoke runs.
std::vector<TileConfig> default_candidates(const PlanKey& key, bool quick);

struct AutotuneOptions {
  /// Timed executes per candidate; the median is the candidate's
  /// score. 1 is fine for CI smoke; benchmarks use more.
  int reps = 3;
  /// Trimmed candidate set (CI smoke).
  bool quick = false;
  /// Explicit tile-candidate override; empty means
  /// default_candidates(). Stage 2 (register-block shape x thread
  /// count) always uses its built-in candidate set.
  std::vector<TileConfig> candidates;
  /// Measurement hook: seconds for one candidate, lower is better.
  /// Tests inject a deterministic synthetic cost here; the default
  /// (unset) measures wall-clock plan.execute() with a Stopwatch.
  std::function<double(const TunedConfig&)> measure;
  /// Seed for the deterministic operands the bit-identity gate and the
  /// default measurement run against.
  std::uint64_t seed = 0x74756e65;  // "tune"
};

struct AutotuneResult {
  TunedConfig best;
  /// Median seconds of the winning candidate (0 when served from
  /// cache or when a custom measure hook returned a synthetic cost).
  double best_seconds = 0.0;
  /// Median seconds of the default TileConfig, for speedup reporting.
  double default_seconds = 0.0;
  int candidates_tried = 0;    // measured candidates (validity survivors)
  int candidates_invalid = 0;  // rejected by the validators
  /// Candidates whose result differed bitwise from the default-config
  /// result. Always 0 unless the driver is broken; benches fail on it.
  int bit_mismatches = 0;
  /// True when the result came from a TuneCache hit (no search ran).
  bool from_cache = false;
};

/// Versioned on-disk store of tuned configs, keyed by (problem shape,
/// dtype, cpu signature). One JSON document per path; load() drops
/// invalid entries, save() rewrites the whole document.
class TuneCache {
 public:
  /// v2 added mk_mr / mk_nr / threads to each entry (and to the
  /// checksummed canonical string). v1 files fail the version check on
  /// load and are dropped wholesale: those problems re-tune once and
  /// the next save() rewrites the file at the current version.
  static constexpr int kSchemaVersion = 2;

  explicit TuneCache(std::string path);

  /// Reads and validates the cache file. Returns false when the file
  /// is missing or the document is unusable (unparseable, wrong
  /// schema version) - the cache is simply empty then. Individual
  /// entries failing their checksum or carrying an invalid tile are
  /// dropped and counted in rejected().
  bool load();

  /// Rewrites the cache file. Returns false on I/O failure.
  bool save() const;

  /// The tuned config recorded for (key, signature), if any.
  std::optional<TunedConfig> lookup(const PlanKey& key,
                                    const std::string& signature) const;

  /// Records (overwrites) the tuned config for (key, signature).
  void store(const PlanKey& key, const std::string& signature,
             const TunedConfig& tuned, double seconds);

  std::size_t size() const { return entries_.size(); }
  /// Entries dropped by the last load() (corrupt checksum, invalid
  /// tile, malformed fields).
  std::size_t rejected() const { return rejected_; }
  const std::string& path() const { return path_; }

  /// The integrity checksum an entry must carry (FNV-1a over the
  /// canonical identity+config string). Exposed so tests can craft
  /// fixture files with valid and deliberately broken checksums.
  static std::uint64_t entry_checksum(const PlanKey& key,
                                      const std::string& signature,
                                      const TunedConfig& tuned);

 private:
  struct Entry {
    PlanKey key;
    std::string signature;
    TunedConfig tuned;
    double seconds = 0.0;
  };

  std::string path_;
  std::vector<Entry> entries_;
  std::size_t rejected_ = 0;
};

/// Searches for the fastest bit-identical TunedConfig for `key` on
/// engines built from `engine_cfg` (tiles first, then register-block
/// shape x thread count at the winning tile). With a cache, a valid
/// hit for (key, cpu_signature()) short-circuits the search
/// (from_cache), and a completed search is stored back and saved.
AutotuneResult autotune(const core::M3xuConfig& engine_cfg, const PlanKey& key,
                        const AutotuneOptions& options = {},
                        TuneCache* cache = nullptr);

}  // namespace m3xu::gemm
