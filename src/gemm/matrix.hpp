// Dense row-major matrix container used by the GEMM kernels, apps, and
// benchmark harnesses.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace m3xu::gemm {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols) {
    M3XU_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(int i, int j) {
    M3XU_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  const T& operator()(int i, int j) const {
    M3XU_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T value) {
    for (auto& v : data_) v = value;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// Fills with well-scaled random values (benign GEMM range).
void fill_random(Matrix<float>& m, Rng& rng);
void fill_random(Matrix<double>& m, Rng& rng);
void fill_random(Matrix<std::complex<float>>& m, Rng& rng);
void fill_random(Matrix<std::complex<double>>& m, Rng& rng);

/// Exact widenings / conversions.
Matrix<double> widen(const Matrix<float>& m);
Matrix<std::complex<double>> widen(const Matrix<std::complex<float>>& m);
Matrix<float> narrow(const Matrix<double>& m);

}  // namespace m3xu::gemm
