// Hierarchical tiled GEMM driver - the CUTLASS-style host-side
// structure a production M3XU library would ship: threadblock tiles
// staged through an explicit shared-memory buffer model, warp tiles
// carved from the block tile, and the engine's MMA instruction as the
// innermost level. Functionally it produces bit-identical results to
// the flat engine loop (same K-chunk rounding boundaries) - verified
// by tests - while exhibiting the data movement the timing simulator
// models.
//
// The driver can additionally run ABFT-guarded (algorithm-based fault
// tolerance): per threadblock tile it maintains column-checksum
// vectors in double precision, verifies the tile's output against a
// mode-aware ULP tolerance after the mainloop, and on mismatch
// recomputes the tile fault-free (bounded retries, then a structured
// AbftFailure instead of an abort). With AbftConfig.enable == false
// (the default) the driver is byte-for-byte the unguarded seed path.
// See docs/FAULT_INJECTION.md for the tolerance derivation.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"
#include "gemm/recovery.hpp"

namespace m3xu::gemm {

struct TileConfig {
  int block_m = 128;
  int block_n = 128;
  int block_k = 32;  // staged K-depth per mainloop iteration
  int warp_m = 64;   // warp tile within the block tile
  int warp_n = 32;

  bool valid() const {
    // Positivity first: the divisibility checks below are UB on a zero
    // warp tile, and an autotuner search enumerates exactly that kind
    // of malformed candidate. A validator must be safe on any input.
    if (block_m <= 0 || block_n <= 0 || block_k <= 0 || warp_m <= 0 ||
        warp_n <= 0) {
      return false;
    }
    return block_m % warp_m == 0 && block_n % warp_n == 0;
  }
};

/// ABFT guard configuration for the tiled driver.
struct AbftConfig {
  /// Off by default: the guarded path is opt-in and the unguarded path
  /// is bit-identical to the original driver.
  bool enable = false;
  /// Multiplier on the derived worst-case rounding bound. 1.0 already
  /// covers the bound with 2x headroom; raise it to trade detection
  /// sensitivity for fewer false alarms on adversarial inputs.
  double tolerance_scale = 1.0;
  /// Fault-free recompute attempts per detected tile before the driver
  /// gives up with AbftFailure.
  int max_recompute = 2;
};

/// Thrown when a tile keeps failing its checksum after the recovery
/// protocol is exhausted (legacy recomputes, or the full demotion
/// ladder under a RecoveryPolicy with Terminal::kThrow). Carries the
/// tile's grid coordinates, the last route attempted, and the total
/// recompute attempts, so recovery reports and logs are actionable.
class AbftFailure : public std::runtime_error {
 public:
  explicit AbftFailure(const std::string& what) : std::runtime_error(what) {}
  AbftFailure(const std::string& what, long tile_row, long tile_col,
              Route route, int attempts)
      : std::runtime_error(what),
        tile_row_(tile_row),
        tile_col_(tile_col),
        route_(route),
        attempts_(attempts) {}

  /// Tile-grid coordinates of the failing threadblock tile (row index
  /// bm / block_m, column index bn / block_n); -1 when unknown.
  long tile_row() const { return tile_row_; }
  long tile_col() const { return tile_col_; }
  /// The last ladder rung the tile was attempted on.
  Route route() const { return route_; }
  /// Recompute attempts spent across all rungs before giving up.
  int attempts() const { return attempts_; }

 private:
  long tile_row_ = -1;
  long tile_col_ = -1;
  Route route_ = Route::kMicrokernel;
  int attempts_ = 0;
};

/// Counters the driver reports (cross-checked against the simulator's
/// traffic model in tests).
struct TiledGemmStats {
  long block_tiles = 0;       // threadblock tiles launched
  long mainloop_iterations = 0;  // summed over tiles
  double staged_bytes = 0.0;  // global -> staging traffic
  long mma_instructions = 0;  // engine MMA-shape invocations
  // Per-phase CPU seconds summed over tiles (across pool threads, so
  // they can exceed wall time). Fed by telemetry scoped timers: all
  // zero in M3XU_TELEMETRY=OFF builds.
  double stage_seconds = 0.0;     // global -> staging copies
  double pack_seconds = 0.0;      // lane-operand panel splits
  double mainloop_seconds = 0.0;  // warp-tile MMA loops
  double epilogue_seconds = 0.0;  // C fragment write-back
  double abft_seconds = 0.0;      // checksum verify + recompute
  // ABFT counters; all zero when the guard is disabled or nothing
  // trips the checksum.
  long abft_tile_checks = 0;   // tiles verified
  long abft_detected = 0;      // tiles whose checksum tripped
  long abft_recomputed = 0;    // fault-free recomputes executed
  long abft_recovered = 0;     // tiles recovered by a passing recompute
  long abft_false_alarms = 0;  // deterministic reproduction => tolerance
                               // artifact, original result kept
  // What the recovery ladder did (all zero in legacy mode and on clean
  // runs). See gemm/recovery.hpp.
  RecoveryReport recovery;
};

/// C <- A*B + C through the tile hierarchy on the M3XU FP32 mode.
/// Threadblock tiles are distributed over the global thread pool.
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c);

/// ABFT-guarded variant. With abft.enable the per-tile checksums are
/// verified and failing tiles are recomputed on a fault-free clone of
/// the engine (same arithmetic config, injector stripped).
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<float>& a, const Matrix<float>& b,
                           Matrix<float>& c);

/// Complex variant on the FP32C mode.
TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

/// Resilient variants: ABFT detection feeds the RecoveryPolicy's
/// retry-then-demote ladder (gemm/recovery.hpp) instead of the legacy
/// clean-recompute-or-throw protocol, and the ExecConfig threads a
/// cooperative CancellationToken plus the ThreadPool watchdog through
/// the tile loop. With the default policy every transient fault
/// recovers bit-exactly (the terminal scalar rung runs fault-free);
/// stats.recovery reports what the ladder did.
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const RecoveryPolicy& policy,
                           const ExecConfig& exec, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c);

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const RecoveryPolicy& policy,
                           const ExecConfig& exec,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

/// Per-call-invariant state the compile-then-execute plan layer
/// (gemm/plan.hpp) freezes once: validated configs, the mode's MMA
/// instruction shape, the rounding bound per K-chunk, and the engine
/// set the driver otherwise re-derives and re-constructs on every call
/// (fault-free clone for ABFT recompute, route-forced clones for
/// quarantined tiles' initial passes). All engine pointers are
/// non-owning; the owner (GemmPlan, or a stack frame in the ad-hoc
/// entries) must keep them alive across the execute call.
struct CompiledDispatch {
  TileConfig tile;
  AbftConfig abft;
  RecoveryPolicy policy;
  int inst_m = 0;
  int inst_n = 0;
  int inst_k = 0;
  double eps_chunk = 0.0;
  /// Primary datapath (may carry a fault injector).
  const core::M3xuEngine* engine = nullptr;
  /// Fault-free clone: ABFT recompute and the terminal scalar rung.
  const core::M3xuEngine* clean = nullptr;
  /// Route-forced clones for quarantined tiles' initial passes; must
  /// be non-null when policy.demote is true, ignored otherwise.
  const core::M3xuEngine* route_nomk = nullptr;
  const core::M3xuEngine* route_generic = nullptr;
};

/// Worst-case relative rounding error one K-chunk contributes to an
/// output element: half an output-format ULP from the FP32 pack plus
/// the per-step accumulation-register roundings (two steps at
/// 2^(1-accum_prec) each, folded into one term with headroom). The
/// plan layer freezes this into CompiledDispatch.eps_chunk at compile.
double eps_per_chunk(int accum_prec);

/// Config-only validation shared by the ad-hoc entries and plan
/// compile: tile shape sanity (via TileConfig::valid()) and the
/// K-chunk alignment that keeps the hierarchy bit-identical to the
/// flat loop. Fails through M3XU_CHECK_MSG.
void validate_tile_config(const TileConfig& config, int inst_k);

/// Resilience-knob validation shared by the policy-taking entries and
/// plan compile (see tiled_driver.cpp for the rationale per check).
void validate_resilience_config(const RecoveryPolicy& policy,
                                const ExecConfig& exec);

/// Executes one GEMM through a pre-compiled dispatch with zero
/// per-call re-derivation: no config validation beyond the operand
/// shape check, no engine clone construction, no eps/instruction-shape
/// lookups. Bit-identical to the ad-hoc tiled_sgemm/tiled_cgemm with
/// the same configs by construction (same run_tiled core). The
/// ExecConfig carries the per-execute guard rails (token, deadline,
/// B-panel cache).
TiledGemmStats tiled_execute(const CompiledDispatch& dispatch,
                             const ExecConfig& exec, const Matrix<float>& a,
                             const Matrix<float>& b, Matrix<float>& c);

TiledGemmStats tiled_execute(const CompiledDispatch& dispatch,
                             const ExecConfig& exec,
                             const Matrix<std::complex<float>>& a,
                             const Matrix<std::complex<float>>& b,
                             Matrix<std::complex<float>>& c);

/// The per-column ABFT detection tolerance the guarded FP32 driver
/// uses for one threadblock tile spanning rows [bm, bm+m_eff) and all
/// of K, evaluated for column `j` of C. Exposed so the fault campaign
/// and the property tests can classify a deviation as
/// guaranteed-detectable (> 2x tolerance) or sub-tolerance. For the
/// campaign's single-tile geometry this is the whole-matrix column.
double abft_column_tolerance(const core::M3xuEngine& engine,
                             const TileConfig& config, const AbftConfig& abft,
                             const Matrix<float>& a, const Matrix<float>& b,
                             const Matrix<float>& c_in, int bm, int m_eff,
                             int j);

}  // namespace m3xu::gemm
