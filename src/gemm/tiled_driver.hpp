// Hierarchical tiled GEMM driver - the CUTLASS-style host-side
// structure a production M3XU library would ship: threadblock tiles
// staged through an explicit shared-memory buffer model, warp tiles
// carved from the block tile, and the engine's MMA instruction as the
// innermost level. Functionally it produces bit-identical results to
// the flat engine loop (same K-chunk rounding boundaries) - verified
// by tests - while exhibiting the data movement the timing simulator
// models.
//
// The driver can additionally run ABFT-guarded (algorithm-based fault
// tolerance): per threadblock tile it maintains column-checksum
// vectors in double precision, verifies the tile's output against a
// mode-aware ULP tolerance after the mainloop, and on mismatch
// recomputes the tile fault-free (bounded retries, then a structured
// AbftFailure instead of an abort). With AbftConfig.enable == false
// (the default) the driver is byte-for-byte the unguarded seed path.
// See docs/FAULT_INJECTION.md for the tolerance derivation.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::gemm {

struct TileConfig {
  int block_m = 128;
  int block_n = 128;
  int block_k = 32;  // staged K-depth per mainloop iteration
  int warp_m = 64;   // warp tile within the block tile
  int warp_n = 32;

  bool valid() const {
    return block_m % warp_m == 0 && block_n % warp_n == 0 && block_m > 0 &&
           block_n > 0 && block_k > 0;
  }
};

/// ABFT guard configuration for the tiled driver.
struct AbftConfig {
  /// Off by default: the guarded path is opt-in and the unguarded path
  /// is bit-identical to the original driver.
  bool enable = false;
  /// Multiplier on the derived worst-case rounding bound. 1.0 already
  /// covers the bound with 2x headroom; raise it to trade detection
  /// sensitivity for fewer false alarms on adversarial inputs.
  double tolerance_scale = 1.0;
  /// Fault-free recompute attempts per detected tile before the driver
  /// gives up with AbftFailure.
  int max_recompute = 2;
};

/// Thrown when a tile keeps failing its checksum after the configured
/// number of fault-free recomputes (i.e. the mismatch is not a
/// transient fault the retry policy can absorb).
class AbftFailure : public std::runtime_error {
 public:
  explicit AbftFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Counters the driver reports (cross-checked against the simulator's
/// traffic model in tests).
struct TiledGemmStats {
  long block_tiles = 0;       // threadblock tiles launched
  long mainloop_iterations = 0;  // summed over tiles
  double staged_bytes = 0.0;  // global -> staging traffic
  long mma_instructions = 0;  // engine MMA-shape invocations
  // Per-phase CPU seconds summed over tiles (across pool threads, so
  // they can exceed wall time). Fed by telemetry scoped timers: all
  // zero in M3XU_TELEMETRY=OFF builds.
  double stage_seconds = 0.0;     // global -> staging copies
  double pack_seconds = 0.0;      // lane-operand panel splits
  double mainloop_seconds = 0.0;  // warp-tile MMA loops
  double epilogue_seconds = 0.0;  // C fragment write-back
  double abft_seconds = 0.0;      // checksum verify + recompute
  // ABFT counters; all zero when the guard is disabled or nothing
  // trips the checksum.
  long abft_tile_checks = 0;   // tiles verified
  long abft_detected = 0;      // tiles whose checksum tripped
  long abft_recomputed = 0;    // fault-free recomputes executed
  long abft_recovered = 0;     // tiles recovered by a passing recompute
  long abft_false_alarms = 0;  // deterministic reproduction => tolerance
                               // artifact, original result kept
};

/// C <- A*B + C through the tile hierarchy on the M3XU FP32 mode.
/// Threadblock tiles are distributed over the global thread pool.
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c);

/// ABFT-guarded variant. With abft.enable the per-tile checksums are
/// verified and failing tiles are recomputed on a fault-free clone of
/// the engine (same arithmetic config, injector stripped).
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<float>& a, const Matrix<float>& b,
                           Matrix<float>& c);

/// Complex variant on the FP32C mode.
TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const AbftConfig& abft,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

/// The per-column ABFT detection tolerance the guarded FP32 driver
/// uses for one threadblock tile spanning rows [bm, bm+m_eff) and all
/// of K, evaluated for column `j` of C. Exposed so the fault campaign
/// and the property tests can classify a deviation as
/// guaranteed-detectable (> 2x tolerance) or sub-tolerance. For the
/// campaign's single-tile geometry this is the whole-matrix column.
double abft_column_tolerance(const core::M3xuEngine& engine,
                             const TileConfig& config, const AbftConfig& abft,
                             const Matrix<float>& a, const Matrix<float>& b,
                             const Matrix<float>& c_in, int bm, int m_eff,
                             int j);

}  // namespace m3xu::gemm
