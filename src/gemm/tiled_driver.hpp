// Hierarchical tiled GEMM driver - the CUTLASS-style host-side
// structure a production M3XU library would ship: threadblock tiles
// staged through an explicit shared-memory buffer model, warp tiles
// carved from the block tile, and the engine's MMA instruction as the
// innermost level. Functionally it produces bit-identical results to
// the flat engine loop (same K-chunk rounding boundaries) - verified
// by tests - while exhibiting the data movement the timing simulator
// models.
#pragma once

#include <complex>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::gemm {

struct TileConfig {
  int block_m = 128;
  int block_n = 128;
  int block_k = 32;  // staged K-depth per mainloop iteration
  int warp_m = 64;   // warp tile within the block tile
  int warp_n = 32;

  bool valid() const {
    return block_m % warp_m == 0 && block_n % warp_n == 0 && block_m > 0 &&
           block_n > 0 && block_k > 0;
  }
};

/// Counters the driver reports (cross-checked against the simulator's
/// traffic model in tests).
struct TiledGemmStats {
  long block_tiles = 0;       // threadblock tiles launched
  long mainloop_iterations = 0;  // summed over tiles
  double staged_bytes = 0.0;  // global -> staging traffic
  long mma_instructions = 0;  // engine MMA-shape invocations
};

/// C <- A*B + C through the tile hierarchy on the M3XU FP32 mode.
/// Threadblock tiles are distributed over the global thread pool.
TiledGemmStats tiled_sgemm(const core::M3xuEngine& engine,
                           const TileConfig& config, const Matrix<float>& a,
                           const Matrix<float>& b, Matrix<float>& c);

/// Complex variant on the FP32C mode.
TiledGemmStats tiled_cgemm(const core::M3xuEngine& engine,
                           const TileConfig& config,
                           const Matrix<std::complex<float>>& a,
                           const Matrix<std::complex<float>>& b,
                           Matrix<std::complex<float>>& c);

}  // namespace m3xu::gemm
