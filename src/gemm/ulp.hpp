// ULP-level error analysis: distances from correctly rounded results,
// and histograms for precision reports (the quantitative form of the
// paper's SV-B exactness discussion).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "gemm/matrix.hpp"

namespace m3xu::gemm {

/// Distance in FP32 ULPs between `x` and the FP32 value correctly
/// rounded from `reference`. 0 means x IS the correctly rounded value.
/// Inf/NaN mismatches count as the maximum bucket.
std::int64_t ulp_distance(float x, double reference);

/// Log-scaled histogram of ULP distances: {0, 1, 2, 3-4, 5-16, >16}.
class UlpHistogram {
 public:
  void add(float x, double reference);
  void add_matrix(const Matrix<float>& x, const Matrix<double>& reference);

  std::size_t total() const { return total_; }
  /// Fraction of samples that are exactly correctly rounded.
  double exact_fraction() const;
  /// Fraction within 1 ULP.
  double faithful_fraction() const;
  std::int64_t max_ulps() const { return max_; }
  /// "37.5% exact | 99.1% <=1ulp | max 7" style summary.
  std::string summary() const;

 private:
  std::array<std::size_t, 6> buckets_{};
  std::size_t total_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace m3xu::gemm
