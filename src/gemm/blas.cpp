#include "gemm/blas.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace m3xu::gemm {

namespace {

Matrix<float> apply_op(const Matrix<float>& m, Trans op) {
  M3XU_CHECK(op != Trans::kC);  // real entry points have no conjugate
  if (op == Trans::kN) return m;
  Matrix<float> t(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

Matrix<std::complex<float>> apply_op(const Matrix<std::complex<float>>& m,
                                     Trans op) {
  if (op == Trans::kN) return m;
  Matrix<std::complex<float>> t(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      t(j, i) = op == Trans::kC ? std::conj(m(i, j)) : m(i, j);
    }
  }
  return t;
}

/// Validates a strided-batched call against the packed-layout contract
/// documented in blas.hpp: each batch matrix is read with lda=k, ldb=n,
/// ldc=n, so consecutive batches must be at least one packed matrix
/// apart (undersized or negative strides would silently alias them).
/// Strides are unused when batch_count <= 1.
void check_batched(int m, int n, int k, long stride_a, long stride_b,
                   long stride_c, int batch_count) {
  M3XU_CHECK_MSG(batch_count >= 0, "batch_count must be non-negative");
  M3XU_CHECK_MSG(m >= 0 && n >= 0 && k >= 0,
                 "strided-batched GEMM dims must be non-negative");
  if (batch_count <= 1) return;
  M3XU_CHECK_MSG(stride_a >= 0 && stride_b >= 0 && stride_c >= 0,
                 "strided-batched GEMM strides must be non-negative");
  M3XU_CHECK_MSG(stride_a >= static_cast<long>(m) * k,
                 "stride_a must be >= m*k (packed row-major batches)");
  M3XU_CHECK_MSG(stride_b >= static_cast<long>(k) * n,
                 "stride_b must be >= k*n (packed row-major batches)");
  M3XU_CHECK_MSG(stride_c >= static_cast<long>(m) * n,
                 "stride_c must be >= m*n (packed row-major batches)");
}

}  // namespace

void blas_sgemm(const BlasParams& params, SgemmKernel kernel,
                const core::M3xuEngine& engine, const Matrix<float>& a,
                const Matrix<float>& b, Matrix<float>& c) {
  const Matrix<float> oa = apply_op(a, params.transa);
  const Matrix<float> ob = apply_op(b, params.transb);
  M3XU_CHECK(oa.cols() == ob.rows());
  M3XU_CHECK(oa.rows() == c.rows() && ob.cols() == c.cols());
  // Product into a zeroed temp, then the FP32 epilogue.
  Matrix<float> prod(c.rows(), c.cols());
  prod.fill(0.0f);
  run_sgemm(kernel, engine, oa, ob, prod);
  // BLAS semantics: beta == 0 means C is write-only (NaN/garbage in C
  // must not propagate).
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) {
      const float base =
          params.beta == 0.0f ? 0.0f : params.beta * c(i, j);
      c(i, j) = params.alpha * prod(i, j) + base;
    }
  }
}

void blas_cgemm(const BlasParamsC& params, CgemmKernel kernel,
                const core::M3xuEngine& engine,
                const Matrix<std::complex<float>>& a,
                const Matrix<std::complex<float>>& b,
                Matrix<std::complex<float>>& c) {
  const Matrix<std::complex<float>> oa = apply_op(a, params.transa);
  const Matrix<std::complex<float>> ob = apply_op(b, params.transb);
  M3XU_CHECK(oa.cols() == ob.rows());
  M3XU_CHECK(oa.rows() == c.rows() && ob.cols() == c.cols());
  Matrix<std::complex<float>> prod(c.rows(), c.cols());
  prod.fill({});
  run_cgemm(kernel, engine, oa, ob, prod);
  const bool beta_zero = params.beta == std::complex<float>{0.0f, 0.0f};
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) {
      const std::complex<float> base =
          beta_zero ? std::complex<float>{} : params.beta * c(i, j);
      c(i, j) = params.alpha * prod(i, j) + base;
    }
  }
}

void blas_sgemm_strided_batched(SgemmKernel kernel,
                                const core::M3xuEngine& engine, int m, int n,
                                int k, const float* a, long stride_a,
                                const float* b, long stride_b, float* c,
                                long stride_c, int batch_count) {
  check_batched(m, n, k, stride_a, stride_b, stride_c, batch_count);
  if (kernel == SgemmKernel::kM3xu) {
    // Native mode: parallelize over batches (the per-batch engine call
    // is serial); each batch packs its operands once and streams them.
    parallel_for(static_cast<std::size_t>(batch_count), [&](std::size_t i) {
      engine.gemm_fp32_packed(m, n, k, a + i * stride_a, k, b + i * stride_b,
                              n, c + i * stride_c, n);
    });
    return;
  }
  // Other kernels parallelize internally: run batches sequentially
  // (parallel_for does not nest).
  for (int i = 0; i < batch_count; ++i) {
    Matrix<float> ma(m, k), mb(k, n), mc(m, n);
    std::copy_n(a + i * stride_a, static_cast<std::size_t>(m) * k, ma.data());
    std::copy_n(b + i * stride_b, static_cast<std::size_t>(k) * n, mb.data());
    std::copy_n(c + i * stride_c, static_cast<std::size_t>(m) * n, mc.data());
    run_sgemm(kernel, engine, ma, mb, mc);
    std::copy_n(mc.data(), static_cast<std::size_t>(m) * n,
                c + i * stride_c);
  }
}

void blas_cgemm_strided_batched(CgemmKernel kernel,
                                const core::M3xuEngine& engine, int m, int n,
                                int k, const std::complex<float>* a,
                                long stride_a, const std::complex<float>* b,
                                long stride_b, std::complex<float>* c,
                                long stride_c, int batch_count) {
  check_batched(m, n, k, stride_a, stride_b, stride_c, batch_count);
  if (kernel == CgemmKernel::kM3xu) {
    parallel_for(static_cast<std::size_t>(batch_count), [&](std::size_t i) {
      engine.gemm_fp32c_packed(m, n, k, a + i * stride_a, k,
                               b + i * stride_b, n, c + i * stride_c, n);
    });
    return;
  }
  for (int i = 0; i < batch_count; ++i) {
    Matrix<std::complex<float>> ma(m, k), mb(k, n), mc(m, n);
    std::copy_n(a + i * stride_a, static_cast<std::size_t>(m) * k, ma.data());
    std::copy_n(b + i * stride_b, static_cast<std::size_t>(k) * n, mb.data());
    std::copy_n(c + i * stride_c, static_cast<std::size_t>(m) * n, mc.data());
    run_cgemm(kernel, engine, ma, mb, mc);
    std::copy_n(mc.data(), static_cast<std::size_t>(m) * n,
                c + i * stride_c);
  }
}

}  // namespace m3xu::gemm
