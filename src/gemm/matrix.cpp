#include "gemm/matrix.hpp"

namespace m3xu::gemm {

void fill_random(Matrix<float>& m, Rng& rng) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) m(i, j) = rng.scaled_float();
  }
}

void fill_random(Matrix<double>& m, Rng& rng) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      m(i, j) = static_cast<double>(rng.scaled_float());
    }
  }
}

void fill_random(Matrix<std::complex<float>>& m, Rng& rng) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      m(i, j) = {rng.scaled_float(), rng.scaled_float()};
    }
  }
}

void fill_random(Matrix<std::complex<double>>& m, Rng& rng) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      m(i, j) = {static_cast<double>(rng.scaled_float()),
                 static_cast<double>(rng.scaled_float())};
    }
  }
}

Matrix<double> widen(const Matrix<float>& m) {
  Matrix<double> out(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) out(i, j) = m(i, j);
  }
  return out;
}

Matrix<std::complex<double>> widen(const Matrix<std::complex<float>>& m) {
  Matrix<std::complex<double>> out(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      out(i, j) = std::complex<double>(m(i, j));
    }
  }
  return out;
}

Matrix<float> narrow(const Matrix<double>& m) {
  Matrix<float> out(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) out(i, j) = static_cast<float>(m(i, j));
  }
  return out;
}

}  // namespace m3xu::gemm
