#include "gemm/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/microkernel.hpp"
#include "gemm/matrix.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::gemm {

namespace {

telemetry::Counter tune_search_ctr("autotune.search");
telemetry::Counter tune_cache_hit_ctr("autotune.cache_hit");
telemetry::Counter tune_cache_reject_ctr("autotune.cache_rejected_entries");
telemetry::Counter tune_candidates_ctr("autotune.candidates_measured");

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// First "model name" line of /proc/cpuinfo, or a fallback tag. The
/// signature must only distinguish hosts, not describe them.
std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown-cpu";
}

/// Median of an unsorted sample (destructive).
double median(std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

bool candidate_ok(const TileConfig& tile, int inst_k) {
  return tile.valid() && tile.block_k % inst_k == 0;
}

bool same_tile(const TileConfig& a, const TileConfig& b) {
  return a.block_m == b.block_m && a.block_n == b.block_n &&
         a.block_k == b.block_k && a.warp_m == b.warp_m &&
         a.warp_n == b.warp_n;
}

/// The microkernel shape / thread-count overrides a usable entry may
/// carry: (0, 0) or a supported block pair, and a sane worker count.
bool extras_ok(const TunedConfig& t) {
  const bool mk_ok = (t.mk_mr == 0 && t.mk_nr == 0) ||
                     core::mk_block_supported(t.mk_mr, t.mk_nr);
  return mk_ok && t.threads >= 0 && t.threads < 4096;
}

/// Canonical per-entry string the integrity checksum covers. Any field
/// edit - including flipping cplx or a warp size - breaks the
/// checksum, so hand-edited or bit-rotted entries are dropped on load.
std::string canonical_entry(const PlanKey& key, const std::string& signature,
                            const TunedConfig& t) {
  std::ostringstream os;
  os << "v" << TuneCache::kSchemaVersion << "|" << key.m << "|" << key.n
     << "|" << key.k << "|" << (key.cplx ? 1 : 0) << "|" << signature << "|"
     << t.tile.block_m << "|" << t.tile.block_n << "|" << t.tile.block_k
     << "|" << t.tile.warp_m << "|" << t.tile.warp_n << "|" << t.mk_mr << "|"
     << t.mk_nr << "|" << t.threads;
  return os.str();
}

template <typename T>
struct TuneProblem {
  Matrix<T> a, b, c0;

  explicit TuneProblem(const PlanKey& key, std::uint64_t seed)
      : a(key.m, key.k), b(key.k, key.n), c0(key.m, key.n) {
    Rng rng(seed);
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(c0, rng);
  }
};

template <typename T>
bool bits_equal(const Matrix<T>& x, const Matrix<T>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0;
}

/// Stage-2 candidate set: microkernel register-block shapes x thread
/// counts, searched at the winning tile. (0, 0) / 0 entries mean "no
/// override" - the stage-1 winner itself - and lead the set so ties
/// resolve toward the least-constrained config. Thread candidates only
/// appear on multi-core hosts (a 1-worker pool is the serial baseline
/// already measured in stage 1).
std::vector<TunedConfig> stage2_candidates(const TileConfig& best_tile,
                                           bool quick) {
  std::vector<std::pair<int, int>> shapes{{0, 0}, {4, 4}, {6, 8}, {8, 8}};
  if (quick) shapes = {{0, 0}, {8, 8}};
  std::vector<int> threads{0};
  const int hw =
      static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1) {
    threads.push_back(hw);
    if (!quick && hw > 2) threads.push_back(hw / 2);
  }
  std::vector<TunedConfig> out;
  for (const auto& [mr, nr] : shapes) {
    for (const int t : threads) {
      out.push_back(TunedConfig{best_tile, mr, nr, t});
    }
  }
  return out;
}

/// The search body, shared by both dtypes. The reference result is the
/// default-config plan's output on the fixed operands; every candidate
/// - tile, register-block shape, or thread count - must reproduce it
/// bitwise to stay in the race.
template <typename T>
AutotuneResult search(const core::M3xuConfig& engine_cfg, const PlanKey& key,
                      const AutotuneOptions& options) {
  AutotuneResult result;
  const core::MmaShape shape = core::shape_for(
      key.cplx ? core::MxuMode::kFp32Complex : core::MxuMode::kFp32);

  std::vector<TileConfig> candidates =
      options.candidates.empty() ? default_candidates(key, options.quick)
                                 : options.candidates;

  const TuneProblem<T> problem(key, options.seed);
  const int reps = std::max(1, options.reps);

  // Reference: the default config's result (plans reuse B panels, so
  // repeat executes inside the timing loop exercise the cached-pack
  // path the production loop runs).
  const TileConfig default_tile{};
  PlanOptions default_opts;
  default_opts.tile = default_tile;
  const GemmPlan default_plan = GemmPlan::compile(engine_cfg, key, default_opts);
  Matrix<T> reference = problem.c0;
  default_plan.execute(problem.a, problem.b, reference);

  Matrix<T> scratch(key.m, key.n);
  const auto measure_plan = [&](const GemmPlan& plan, const ExecRails& rails) {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      std::memcpy(scratch.data(), problem.c0.data(),
                  scratch.size() * sizeof(T));
      const telemetry::Stopwatch sw;
      plan.execute(problem.a, problem.b, scratch, rails);
      times.push_back(sw.seconds());
    }
    return median(times);
  };

  // Gate + measure one candidate; returns its score, or nullopt when
  // the bit gate failed. Thread-count overrides run on a candidate-
  // private pool threaded through ExecRails, so the gate covers the
  // exact threaded execution the tuned config recommends.
  const auto try_candidate =
      [&](const TunedConfig& cand) -> std::optional<double> {
    core::M3xuConfig cand_cfg = engine_cfg;
    cand_cfg.mk_mr = cand.mk_mr;
    cand_cfg.mk_nr = cand.mk_nr;
    PlanOptions plan_opts;
    plan_opts.tile = cand.tile;
    const GemmPlan plan = GemmPlan::compile(cand_cfg, key, plan_opts);
    std::optional<ThreadPool> local_pool;
    ExecRails rails;
    if (cand.threads > 0) {
      local_pool.emplace(static_cast<std::size_t>(cand.threads));
      rails.pool = &*local_pool;
    }
    // Bit-identity gate: one execute against the fixed operands,
    // compared bitwise to the default config's result.
    std::memcpy(scratch.data(), problem.c0.data(),
                scratch.size() * sizeof(T));
    plan.execute(problem.a, problem.b, scratch, rails);
    if (!bits_equal(scratch, reference)) {
      ++result.bit_mismatches;
      return std::nullopt;
    }
    const double seconds =
        options.measure ? options.measure(cand) : measure_plan(plan, rails);
    ++result.candidates_tried;
    tune_candidates_ctr.increment();
    return seconds;
  };

  result.best = TunedConfig{default_tile, 0, 0, 0};
  result.best_seconds = 0.0;
  bool have_best = false;

  // Stage 1: tile shapes (default microkernel shape, caller's pool).
  for (const TileConfig& tile : candidates) {
    if (!candidate_ok(tile, shape.k)) {
      ++result.candidates_invalid;
      continue;
    }
    const TunedConfig cand{tile, 0, 0, 0};
    const std::optional<double> seconds = try_candidate(cand);
    if (!seconds.has_value()) continue;
    if (same_tile(tile, default_tile)) result.default_seconds = *seconds;
    if (!have_best || *seconds < result.best_seconds) {
      have_best = true;
      result.best = cand;
      result.best_seconds = *seconds;
    }
  }

  // Stage 2: register-block shape x thread count at the winning tile.
  // Strictly-less comparison keeps the no-override entry on ties.
  for (const TunedConfig& cand :
       stage2_candidates(result.best.tile, options.quick)) {
    if (cand.mk_mr == 0 && cand.mk_nr == 0 && cand.threads == 0) {
      continue;  // the stage-1 winner itself, already measured
    }
    const std::optional<double> seconds = try_candidate(cand);
    if (!seconds.has_value()) continue;
    if (have_best && *seconds < result.best_seconds) {
      result.best = cand;
      result.best_seconds = *seconds;
    }
  }
  tune_search_ctr.increment();
  return result;
}

}  // namespace

bool same_tuned(const TunedConfig& a, const TunedConfig& b) {
  return same_tile(a.tile, b.tile) && a.mk_mr == b.mk_mr &&
         a.mk_nr == b.mk_nr && a.threads == b.threads;
}

std::string cpu_signature() {
  const telemetry::Environment env = telemetry::collect_environment();
  std::ostringstream os;
  os << env.compiler << "|" << cpu_model() << "|simd="
     << core::mk_variant_name(core::mk_variant_resolve(core::MkVariant::kAuto));
  return os.str();
}

std::vector<TileConfig> default_candidates(const PlanKey& key, bool quick) {
  std::vector<TileConfig> out;
  const auto push = [&](int bm, int bn, int bk, int wm, int wn) {
    const TileConfig tile{bm, bn, bk, wm, wn};
    for (const TileConfig& existing : out) {
      if (same_tile(existing, tile)) return;
    }
    out.push_back(tile);
  };
  // The default config leads: it is the baseline the speedup is
  // reported against and the fallback when nothing beats it.
  out.push_back(TileConfig{});
  if (quick) {
    push(64, 64, 32, 32, 32);
    push(64, 64, 16, 64, 32);
    push(32, 32, 32, 16, 16);
    return out;
  }
  for (const int bm : {32, 64, 128}) {
    for (const int bn : {32, 64, 128}) {
      // A block larger than the problem in both dimensions degenerates
      // to the same single-tile execution as a smaller cover.
      if (bm / 2 >= key.m && bn / 2 >= key.n) continue;
      for (const int bk : {16, 32, 64}) {
        for (const int wm : {bm, bm / 2}) {
          for (const int wn : {bn, bn / 2}) {
            push(bm, bn, bk, wm, wn);
          }
        }
      }
    }
  }
  return out;
}

TuneCache::TuneCache(std::string path) : path_(std::move(path)) {}

std::uint64_t TuneCache::entry_checksum(const PlanKey& key,
                                        const std::string& signature,
                                        const TunedConfig& tuned) {
  return fnv1a(canonical_entry(key, signature, tuned));
}

bool TuneCache::load() {
  entries_.clear();
  rejected_ = 0;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<telemetry::JsonValue> doc =
      telemetry::JsonValue::parse(buf.str());
  if (!doc || !doc->is_object()) return false;
  const telemetry::JsonValue* version = doc->find("schema_version");
  if (version == nullptr || version->as_int(-1) != kSchemaVersion) {
    return false;
  }
  const telemetry::JsonValue* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_array()) return false;

  for (std::size_t i = 0; i < entries->size(); ++i) {
    const telemetry::JsonValue& e = entries->at(i);
    const telemetry::JsonValue* tile_v = e.find("tile");
    if (!e.is_object() || tile_v == nullptr || !tile_v->is_object()) {
      ++rejected_;
      tune_cache_reject_ctr.increment();
      continue;
    }
    Entry entry;
    const auto field = [&e](const char* name) {
      const telemetry::JsonValue* v = e.find(name);
      return v != nullptr ? v->as_int(-1) : -1;
    };
    entry.key.m = static_cast<int>(field("m"));
    entry.key.n = static_cast<int>(field("n"));
    entry.key.k = static_cast<int>(field("k"));
    const telemetry::JsonValue* cplx = e.find("cplx");
    entry.key.cplx = cplx != nullptr && cplx->as_bool(false);
    const telemetry::JsonValue* sig = e.find("cpu");
    entry.signature = sig != nullptr ? sig->as_string() : "";
    const auto tile_field = [tile_v](const char* name) {
      const telemetry::JsonValue* v = tile_v->find(name);
      return v != nullptr ? static_cast<int>(v->as_int(-1)) : -1;
    };
    entry.tuned.tile.block_m = tile_field("block_m");
    entry.tuned.tile.block_n = tile_field("block_n");
    entry.tuned.tile.block_k = tile_field("block_k");
    entry.tuned.tile.warp_m = tile_field("warp_m");
    entry.tuned.tile.warp_n = tile_field("warp_n");
    // v2 width/parallelism overrides. Absent fields parse as -1 and
    // fail extras_ok below, so a truncated entry is rejected, not
    // silently defaulted.
    entry.tuned.mk_mr = static_cast<int>(field("mk_mr"));
    entry.tuned.mk_nr = static_cast<int>(field("mk_nr"));
    entry.tuned.threads = static_cast<int>(field("threads"));
    const telemetry::JsonValue* seconds = e.find("seconds");
    entry.seconds = seconds != nullptr ? seconds->as_double(0.0) : 0.0;
    const telemetry::JsonValue* checksum = e.find("checksum");
    std::uint64_t stored_checksum = 0;
    bool checksum_ok = false;
    if (checksum != nullptr && checksum->is_string()) {
      const std::string& text = checksum->as_string();
      char* end = nullptr;
      stored_checksum = std::strtoull(text.c_str(), &end, 10);
      checksum_ok = !text.empty() && end == text.c_str() + text.size();
    }

    // Reject: malformed identity, a tile the validator would refuse
    // (a checksum-valid entry with an invalid tile means the schema
    // evolved or the file was crafted - either way, unusable), or a
    // checksum mismatch (bit rot / hand edits).
    const bool well_formed = entry.key.m > 0 && entry.key.n > 0 &&
                             entry.key.k > 0 && !entry.signature.empty() &&
                             entry.tuned.tile.valid() &&
                             extras_ok(entry.tuned);
    const std::uint64_t expected =
        entry_checksum(entry.key, entry.signature, entry.tuned);
    if (!well_formed || !checksum_ok || stored_checksum != expected) {
      ++rejected_;
      tune_cache_reject_ctr.increment();
      continue;
    }
    entries_.push_back(std::move(entry));
  }
  return true;
}

bool TuneCache::save() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kSchemaVersion);
  w.key("entries").begin_array();
  for (const Entry& e : entries_) {
    w.begin_object();
    w.kv("key", plan_key_label(e.key));
    w.kv("m", e.key.m);
    w.kv("n", e.key.n);
    w.kv("k", e.key.k);
    w.kv("cplx", e.key.cplx);
    w.kv("cpu", e.signature);
    w.key("tile").begin_object();
    w.kv("block_m", e.tuned.tile.block_m);
    w.kv("block_n", e.tuned.tile.block_n);
    w.kv("block_k", e.tuned.tile.block_k);
    w.kv("warp_m", e.tuned.tile.warp_m);
    w.kv("warp_n", e.tuned.tile.warp_n);
    w.end_object();
    w.kv("mk_mr", e.tuned.mk_mr);
    w.kv("mk_nr", e.tuned.mk_nr);
    w.kv("threads", e.tuned.threads);
    w.key("seconds").value(e.seconds, 9);
    // As a string: JSON numbers round-trip through double in the
    // parser, which cannot represent a full 64-bit checksum exactly.
    w.kv("checksum",
         std::to_string(entry_checksum(e.key, e.signature, e.tuned)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

std::optional<TunedConfig> TuneCache::lookup(
    const PlanKey& key, const std::string& signature) const {
  for (const Entry& e : entries_) {
    if (e.key == key && e.signature == signature) return e.tuned;
  }
  return std::nullopt;
}

void TuneCache::store(const PlanKey& key, const std::string& signature,
                      const TunedConfig& tuned, double seconds) {
  for (Entry& e : entries_) {
    if (e.key == key && e.signature == signature) {
      e.tuned = tuned;
      e.seconds = seconds;
      return;
    }
  }
  entries_.push_back(Entry{key, signature, tuned, seconds});
}

AutotuneResult autotune(const core::M3xuConfig& engine_cfg, const PlanKey& key,
                        const AutotuneOptions& options, TuneCache* cache) {
  const std::string signature = cpu_signature();
  if (cache != nullptr) {
    const core::MmaShape shape = core::shape_for(
        key.cplx ? core::MxuMode::kFp32Complex : core::MxuMode::kFp32);
    const std::optional<TunedConfig> hit = cache->lookup(key, signature);
    // A cached config is re-validated against today's constraints: a
    // cache written by an older build whose constraints differ must
    // never hand the driver an invalid config.
    if (hit.has_value() && candidate_ok(hit->tile, shape.k) &&
        extras_ok(*hit)) {
      tune_cache_hit_ctr.increment();
      AutotuneResult result;
      result.best = *hit;
      result.from_cache = true;
      return result;
    }
  }
  AutotuneResult result =
      key.cplx ? search<std::complex<float>>(engine_cfg, key, options)
               : search<float>(engine_cfg, key, options);
  if (cache != nullptr && result.bit_mismatches == 0) {
    cache->store(key, signature, result.best, result.best_seconds);
    cache->save();
  }
  return result;
}

}  // namespace m3xu::gemm
