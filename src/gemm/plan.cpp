#include "gemm/plan.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/packed_panel.hpp"
#include "gemm/panel_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace m3xu::gemm {

namespace {

// Plan lifecycle counters (no-ops with M3XU_TELEMETRY=OFF). compile /
// execute reconcile against the serving layer's plan-reuse counters;
// the b_panels pair measures how much pack work the private store
// absorbs, and b_refresh counts executes that brought different B
// bytes than the store held.
telemetry::Counter plan_compile_ctr("plan.compile");
telemetry::Counter plan_execute_ctr("plan.execute");
telemetry::Counter plan_prepack_ctr("plan.prepack_panels");
telemetry::Counter plan_b_hits_ctr("plan.b_panels.hits");
telemetry::Counter plan_b_misses_ctr("plan.b_panels.misses");
telemetry::Counter plan_b_refresh_ctr("plan.b_refresh");

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Content identity of a B matrix for the plan-private store. Never 0
/// (0 means "caching off" to the driver), so a pathological hash still
/// caches correctly.
template <typename T>
std::uint64_t fingerprint(const Matrix<T>& b) {
  const std::uint64_t h = fnv1a(b.data(), b.size() * sizeof(T));
  return h != 0 ? h : 0x9e3779b97f4a7c15ull;
}

struct PanelKeyHash {
  std::size_t operator()(const PanelKey& k) const {
    std::uint64_t h = fnv1a(&k.b_key, sizeof(k.b_key));
    h = fnv1a(&k.k0, sizeof(k.k0), h);
    h = fnv1a(&k.col0, sizeof(k.col0), h);
    h = fnv1a(&k.kc, sizeof(k.kc), h);
    h = fnv1a(&k.cols, sizeof(k.cols), h);
    h = fnv1a(&k.cplx, sizeof(k.cplx), h);
    return static_cast<std::size_t>(h);
  }
};

/// Plan-private prepacked-B store. Unlike the serving PackCache it is
/// unbounded (its working set is one matrix's panel grid, freed with
/// the plan) and unchecksummed (it is private mutable state of one
/// plan, not shared across trust domains). Entries are keyed with the
/// owning B's fingerprint as b_key, so concurrent executes against
/// different B matrices can never serve each other's panels; clearing
/// on a fingerprint change only bounds memory.
class LocalPanelStore final : public PanelCache {
 public:
  bool get_fp32(const PanelKey& key, core::PackedPanelFp32B* out) override {
    return get_impl(f32_, key, out);
  }
  bool get_fp32c(const PanelKey& key, core::PackedPanelFp32cB* out) override {
    return get_impl(f32c_, key, out);
  }
  void put_fp32(const PanelKey& key,
                const core::PackedPanelFp32B& panel) override {
    put_impl(f32_, key, panel);
  }
  void put_fp32c(const PanelKey& key,
                 const core::PackedPanelFp32cB& panel) override {
    put_impl(f32c_, key, panel);
  }

  /// Points the store at B contents `fp`; a change drops every held
  /// panel. Returns true when the store was retargeted (counted as a
  /// refresh by the caller), false when `fp` already matches.
  bool retarget(std::uint64_t fp) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (fp == current_fp_) return false;
    const bool had_panels = !f32_.empty() || !f32c_.empty();
    f32_.clear();
    f32c_.clear();
    current_fp_ = fp;
    return had_panels;
  }

  PlanPanelStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void count_refresh() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.refreshes;
  }

 private:
  template <typename Map, typename Panel>
  bool get_impl(Map& map, const PanelKey& key, Panel* out) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map.find(key);
    if (it == map.end()) {
      ++stats_.misses;
      plan_b_misses_ctr.increment();
      return false;
    }
    *out = it->second;
    ++stats_.hits;
    plan_b_hits_ctr.increment();
    return true;
  }
  template <typename Map, typename Panel>
  void put_impl(Map& map, const PanelKey& key, const Panel& panel) {
    const std::lock_guard<std::mutex> lock(mu_);
    map[key] = panel;
  }

  mutable std::mutex mu_;
  std::uint64_t current_fp_ = 0;
  PlanPanelStats stats_;
  std::unordered_map<PanelKey, core::PackedPanelFp32B, PanelKeyHash> f32_;
  std::unordered_map<PanelKey, core::PackedPanelFp32cB, PanelKeyHash> f32c_;
};

}  // namespace

std::string plan_key_label(const PlanKey& key) {
  return std::string(key.cplx ? "cgemm." : "sgemm.") + std::to_string(key.m) +
         "x" + std::to_string(key.n) + "x" + std::to_string(key.k);
}

struct GemmPlan::Impl {
  PlanKey key;
  PlanOptions options;
  std::string label;
  // Engine set, constructed once. `dispatch` points into these
  // members; Impl lives behind a unique_ptr so plan moves never
  // invalidate the pointers.
  core::M3xuEngine engine;
  core::M3xuEngine clean;
  std::optional<core::M3xuEngine> route_nomk, route_generic;
  CompiledDispatch dispatch;
  mutable LocalPanelStore b_store;
  mutable std::atomic<std::uint64_t> executions{0};

  Impl(const core::M3xuConfig& engine_cfg, const core::M3xuConfig& clean_cfg,
       const PlanKey& k, const PlanOptions& opts)
      : key(k),
        options(opts),
        label(plan_key_label(k)),
        engine(engine_cfg),
        clean(clean_cfg) {}

  template <typename T>
  TiledGemmStats run(const ExecRails& rails, const Matrix<T>& a,
                     const Matrix<T>& b, Matrix<T>& c) const {
    constexpr bool kCplx = std::is_same_v<T, std::complex<float>>;
    M3XU_CHECK_MSG(key.cplx == kCplx,
                   "GemmPlan dtype mismatch: plan was compiled for the other "
                   "element type");
    M3XU_CHECK_MSG(a.rows() == key.m && a.cols() == key.k &&
                       b.rows() == key.k && b.cols() == key.n &&
                       c.rows() == key.m && c.cols() == key.n,
                   "GemmPlan shape mismatch: operands must match the "
                   "compiled PlanKey exactly");
    const telemetry::ScopedTimer span("plan.execute");

    // Per-execute rails over the frozen dispatch. The dispatch copy is
    // a handful of words; the engines behind it are not copied.
    CompiledDispatch d = dispatch;
    d.policy.quarantine = rails.quarantine;
    ExecConfig exec;
    exec.token = rails.token;
    exec.deadline_ms = rails.deadline_ms;
    exec.stall_ms = rails.stall_ms;
    exec.pool = rails.pool;
    exec.trace = rails.trace;
    if (rails.trace != nullptr) {
      rails.trace->event("plan.execute", -1, -1, label);
    }
    if (rails.b_cache != nullptr) {
      exec.b_cache = rails.b_cache;
      exec.b_key = rails.b_key;
    } else if (options.reuse_b_panels) {
      const std::uint64_t fp = fingerprint(b);
      if (b_store.retarget(fp)) {
        b_store.count_refresh();
        plan_b_refresh_ctr.increment();
      }
      exec.b_cache = &b_store;
      exec.b_key = fp;
    }
    validate_resilience_config(d.policy, exec);
    TiledGemmStats stats = tiled_execute(d, exec, a, b, c);
    executions.fetch_add(1, std::memory_order_relaxed);
    plan_execute_ctr.increment();
    return stats;
  }
};

GemmPlan::GemmPlan(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
GemmPlan::GemmPlan(GemmPlan&&) noexcept = default;
GemmPlan& GemmPlan::operator=(GemmPlan&&) noexcept = default;
GemmPlan::~GemmPlan() = default;

GemmPlan GemmPlan::compile(const core::M3xuConfig& engine_cfg,
                           const PlanKey& key, const PlanOptions& options) {
  const telemetry::ScopedTimer span("plan.compile");
  M3XU_CHECK_MSG(key.m > 0 && key.n > 0 && key.k > 0,
                 "PlanKey dimensions must be positive");
  const core::MmaShape shape = core::shape_for(
      key.cplx ? core::MxuMode::kFp32Complex : core::MxuMode::kFp32);
  validate_tile_config(options.tile, shape.k);
  // Rails are validated per execute; compile validates the frozen
  // policy against an empty rail set so a bad policy fails here.
  validate_resilience_config(options.policy, ExecConfig{});

  core::M3xuConfig clean_cfg = engine_cfg;
  clean_cfg.injector = nullptr;
  auto impl = std::make_unique<Impl>(engine_cfg, clean_cfg, key, options);
  // The quarantine is a per-execute rail; never freeze a caller's
  // pointer into the plan.
  impl->options.policy.quarantine = nullptr;
  if (impl->options.policy.demote) {
    core::M3xuConfig c_nomk = engine_cfg;
    c_nomk.enable_microkernel = false;
    impl->route_nomk.emplace(c_nomk);
    core::M3xuConfig c_gen = engine_cfg;
    c_gen.force_generic = true;
    impl->route_generic.emplace(c_gen);
  }
  CompiledDispatch& d = impl->dispatch;
  d.tile = impl->options.tile;
  d.abft = impl->options.abft;
  d.policy = impl->options.policy;
  d.inst_m = shape.m;
  d.inst_n = shape.n;
  d.inst_k = shape.k;
  d.eps_chunk = eps_per_chunk(engine_cfg.accum_prec);
  d.engine = &impl->engine;
  d.clean = &impl->clean;
  d.route_nomk =
      impl->route_nomk.has_value() ? &*impl->route_nomk : nullptr;
  d.route_generic =
      impl->route_generic.has_value() ? &*impl->route_generic : nullptr;
  plan_compile_ctr.increment();
  return GemmPlan(std::move(impl));
}

TiledGemmStats GemmPlan::execute(const Matrix<float>& a,
                                 const Matrix<float>& b,
                                 Matrix<float>& c) const {
  return impl_->run(ExecRails{}, a, b, c);
}

TiledGemmStats GemmPlan::execute(const Matrix<float>& a,
                                 const Matrix<float>& b, Matrix<float>& c,
                                 const ExecRails& rails) const {
  return impl_->run(rails, a, b, c);
}

TiledGemmStats GemmPlan::execute(const Matrix<std::complex<float>>& a,
                                 const Matrix<std::complex<float>>& b,
                                 Matrix<std::complex<float>>& c) const {
  return impl_->run(ExecRails{}, a, b, c);
}

TiledGemmStats GemmPlan::execute(const Matrix<std::complex<float>>& a,
                                 const Matrix<std::complex<float>>& b,
                                 Matrix<std::complex<float>>& c,
                                 const ExecRails& rails) const {
  return impl_->run(rails, a, b, c);
}

namespace {

/// Stages one (kc x n_eff) B slice exactly as the driver's mainloop
/// does (row-major, leading dimension n_eff) so prepacked panels are
/// bit-identical to mid-execute packs.
template <typename T, typename Panel, typename PackFn, typename PutFn>
void prepack_b_impl(const Matrix<T>& b, const TileConfig& tile, bool cplx,
                    std::uint64_t fp, const PackFn& pack, const PutFn& put) {
  const int k = b.rows(), n = b.cols();
  std::vector<T> b_stage;
  for (int bn = 0; bn < n; bn += tile.block_n) {
    const int n_eff = std::min(tile.block_n, n - bn);
    for (int k0 = 0; k0 < k; k0 += tile.block_k) {
      const int kc = std::min(tile.block_k, k - k0);
      b_stage.assign(static_cast<std::size_t>(kc) * n_eff, T{});
      for (int kk = 0; kk < kc; ++kk) {
        for (int j = 0; j < n_eff; ++j) {
          b_stage[static_cast<std::size_t>(kk) * n_eff + j] =
              b(k0 + kk, bn + j);
        }
      }
      Panel panel;
      pack(b_stage.data(), n_eff, kc, n_eff, panel);
      put(PanelKey{fp, k0, bn, kc, n_eff, cplx}, panel);
      plan_prepack_ctr.increment();
    }
  }
}

}  // namespace

void GemmPlan::prepack_b(const Matrix<float>& b) {
  M3XU_CHECK_MSG(!impl_->key.cplx, "GemmPlan dtype mismatch in prepack_b");
  M3XU_CHECK_MSG(b.rows() == impl_->key.k && b.cols() == impl_->key.n,
                 "GemmPlan shape mismatch: B must be k x n of the PlanKey");
  if (!impl_->options.reuse_b_panels) return;
  const std::uint64_t fp = fingerprint(b);
  impl_->b_store.retarget(fp);
  prepack_b_impl<float, core::PackedPanelFp32B>(
      b, impl_->options.tile, false, fp,
      [](const float* p, int ld, int kc, int cols,
         core::PackedPanelFp32B& out) {
        core::pack_fp32_b(p, ld, kc, cols, out);
      },
      [&](const PanelKey& key, const core::PackedPanelFp32B& panel) {
        impl_->b_store.put_fp32(key, panel);
      });
}

void GemmPlan::prepack_b(const Matrix<std::complex<float>>& b) {
  M3XU_CHECK_MSG(impl_->key.cplx, "GemmPlan dtype mismatch in prepack_b");
  M3XU_CHECK_MSG(b.rows() == impl_->key.k && b.cols() == impl_->key.n,
                 "GemmPlan shape mismatch: B must be k x n of the PlanKey");
  if (!impl_->options.reuse_b_panels) return;
  const std::uint64_t fp = fingerprint(b);
  impl_->b_store.retarget(fp);
  prepack_b_impl<std::complex<float>, core::PackedPanelFp32cB>(
      b, impl_->options.tile, true, fp,
      [](const std::complex<float>* p, int ld, int kc, int cols,
         core::PackedPanelFp32cB& out) {
        core::pack_fp32c_b(p, ld, kc, cols, out);
      },
      [&](const PanelKey& key, const core::PackedPanelFp32cB& panel) {
        impl_->b_store.put_fp32c(key, panel);
      });
}

const PlanKey& GemmPlan::key() const { return impl_->key; }
const TileConfig& GemmPlan::tile() const { return impl_->options.tile; }
const PlanOptions& GemmPlan::options() const { return impl_->options; }
const std::string& GemmPlan::label() const { return impl_->label; }
std::uint64_t GemmPlan::executions() const {
  return impl_->executions.load(std::memory_order_relaxed);
}
PlanPanelStats GemmPlan::panel_stats() const {
  return impl_->b_store.stats();
}

}  // namespace m3xu::gemm
