// Compile-then-execute GEMM plans.
//
// Every ad-hoc tiled_sgemm/tiled_cgemm call re-derives the same
// artifacts: config validation, the mode's MMA instruction shape, the
// per-chunk rounding bound, a fault-free engine clone for ABFT
// recompute, route-forced clones for quarantined tiles, and - in
// serving workloads - the packed B panels of weights that never
// change. A GemmPlan compiles all of that exactly once from (problem
// shape, dtype, PlanOptions) and then executes many times with zero
// per-call re-derivation:
//
//   GemmPlan plan = GemmPlan::compile(engine_cfg, {m, n, k, cplx});
//   plan.execute(a, b, c);   // validated, cloned, prepacked already
//
// Execution is bit-identical to the ad-hoc path by construction: both
// run the same run_tiled core (gemm/tiled_driver.cpp) with the same
// frozen configs - verified by tests across every route rung and both
// dtypes.
//
// Frozen at compile: tile/ABFT/recovery configs (validated), engines,
// telemetry labels, the B-panel store. Per-execute (ExecRails):
// cancellation token, deadline/stall watchdog windows, the tenant's
// TileQuarantine, and an external PanelCache - everything that varies
// request-to-request in the serving layer.
//
// B-panel reuse: with PlanOptions.reuse_b_panels (default on) the plan
// owns a private panel store keyed by a fingerprint of the B bytes.
// Repeat executes against the same B skip the pack step entirely;
// executing with a different B is detected by the fingerprint and
// repacks (counted in plan.b_refresh), never served stale. prepack_b()
// optionally fills the store at compile time so even the first execute
// skips packing. See docs/PLAN.md.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"
#include "gemm/recovery.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {

/// Immutable problem identity a plan is compiled for. execute() checks
/// its operands against this and rejects mismatches (a plan is not a
/// generic entry point).
struct PlanKey {
  int m = 0;
  int n = 0;
  int k = 0;
  bool cplx = false;  // false: sgemm (FP32), true: cgemm (FP32C)

  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.m == b.m && a.n == b.n && a.k == b.k && a.cplx == b.cplx;
  }
};

/// "sgemm.512x512x512" / "cgemm.192x192x192" - the telemetry span /
/// log label for one plan identity.
std::string plan_key_label(const PlanKey& key);

/// Everything a plan freezes beyond the problem identity. The policy's
/// quarantine pointer is ignored (quarantine is a per-execute rail).
struct PlanOptions {
  TileConfig tile;
  AbftConfig abft;
  RecoveryPolicy policy;
  /// Keep packed B panels across execute() calls in a plan-private
  /// store, guarded by a fingerprint of the B bytes (see file
  /// comment). Disable when every execute brings different weights and
  /// an external cache (ExecRails.b_cache) does the sharing instead.
  bool reuse_b_panels = true;
};

/// Per-execute guard rails - the request-scoped counterpart of the
/// frozen PlanOptions. Mirrors ExecConfig but adds the quarantine
/// (frozen policies cannot carry per-tenant state).
struct ExecRails {
  const CancellationToken* token = nullptr;
  std::int64_t deadline_ms = 0;
  std::int64_t stall_ms = 0;
  /// Per-tenant tile memory for this execute; may be null.
  TileQuarantine* quarantine = nullptr;
  /// External shared prepacked-B cache (e.g. the serving PackCache).
  /// Takes precedence over the plan's private store when non-null.
  PanelCache* b_cache = nullptr;
  std::uint64_t b_key = 0;
  /// Thread pool this execute partitions tiles across (non-owning;
  /// null = the global pool). Bit-identical for every pool size.
  ThreadPool* pool = nullptr;
  /// Request-scoped trace this execute logs milestones into (non-
  /// owning; may be null). Forwarded to ExecConfig::trace.
  telemetry::TraceContext* trace = nullptr;
};

/// Pack/reuse statistics of a plan's private B-panel store.
struct PlanPanelStats {
  std::uint64_t hits = 0;      // packs skipped (panel served from store)
  std::uint64_t misses = 0;    // packs performed and published
  std::uint64_t refreshes = 0; // store invalidations on a B-bytes change
};

class GemmPlan {
 public:
  /// Compiles a plan: validates every config (through the same
  /// validators as the ad-hoc entry points, so invalid configs fail
  /// here, not mid-execute), freezes the MMA instruction shape and
  /// rounding bound, and constructs the engine set (primary from
  /// `engine_cfg`, fault-free clone, route-forced clones when the
  /// demotion ladder is on). O(1) in the problem size.
  static GemmPlan compile(const core::M3xuConfig& engine_cfg,
                          const PlanKey& key, const PlanOptions& options = {});

  GemmPlan(GemmPlan&&) noexcept;
  GemmPlan& operator=(GemmPlan&&) noexcept;
  GemmPlan(const GemmPlan&) = delete;
  GemmPlan& operator=(const GemmPlan&) = delete;
  ~GemmPlan();

  /// C <- A*B + C with the plan's frozen configuration. Operands must
  /// match key() exactly (M3XU_CHECK). Bit-identical to the ad-hoc
  /// driver with the same configs.
  TiledGemmStats execute(const Matrix<float>& a, const Matrix<float>& b,
                         Matrix<float>& c) const;
  TiledGemmStats execute(const Matrix<float>& a, const Matrix<float>& b,
                         Matrix<float>& c, const ExecRails& rails) const;
  TiledGemmStats execute(const Matrix<std::complex<float>>& a,
                         const Matrix<std::complex<float>>& b,
                         Matrix<std::complex<float>>& c) const;
  TiledGemmStats execute(const Matrix<std::complex<float>>& a,
                         const Matrix<std::complex<float>>& b,
                         Matrix<std::complex<float>>& c,
                         const ExecRails& rails) const;

  /// Packs every B panel of `b` into the plan's private store now, so
  /// the first execute() against this B skips packing too. No-op when
  /// reuse_b_panels is off. Panels are bit-identical to the ones the
  /// driver would pack mid-execute (same staging layout).
  void prepack_b(const Matrix<float>& b);
  void prepack_b(const Matrix<std::complex<float>>& b);

  const PlanKey& key() const;
  const TileConfig& tile() const;
  const PlanOptions& options() const;
  /// The telemetry/log label, e.g. "sgemm.512x512x512".
  const std::string& label() const;
  /// execute() calls completed on this plan (telemetry mirror:
  /// plan.execute).
  std::uint64_t executions() const;
  PlanPanelStats panel_stats() const;

 private:
  struct Impl;
  explicit GemmPlan(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace m3xu::gemm
