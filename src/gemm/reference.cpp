#include "gemm/reference.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "fp/exact_accumulator.hpp"

namespace m3xu::gemm {

namespace {

void check_shapes(int am, int ak, int bk, int bn, int cm, int cn) {
  M3XU_CHECK(ak == bk);
  M3XU_CHECK(am == cm);
  M3XU_CHECK(bn == cn);
}

}  // namespace

void simt_sgemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<float>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const int k = a.cols();
  // Row bodies are cheap fused loops; a scheduling grain keeps the
  // per-index closure dispatch off the critical path for small shapes.
  parallel_for(static_cast<std::size_t>(a.rows()), /*grain=*/4,
               [&](std::size_t i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = c(static_cast<int>(i), j);
      for (int kk = 0; kk < k; ++kk) {
        acc = std::fmaf(a(static_cast<int>(i), kk), b(kk, j), acc);
      }
      c(static_cast<int>(i), j) = acc;
    }
  });
}

void simt_cgemm(const Matrix<std::complex<float>>& a,
                const Matrix<std::complex<float>>& b,
                Matrix<std::complex<float>>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const int k = a.cols();
  parallel_for(static_cast<std::size_t>(a.rows()), /*grain=*/4,
               [&](std::size_t si) {
    const int i = static_cast<int>(si);
    for (int j = 0; j < b.cols(); ++j) {
      float re = c(i, j).real();
      float im = c(i, j).imag();
      for (int kk = 0; kk < k; ++kk) {
        const std::complex<float> x = a(i, kk);
        const std::complex<float> y = b(kk, j);
        // Four FMAs per complex MAC, the standard SIMT lowering.
        re = std::fmaf(x.real(), y.real(), re);
        re = std::fmaf(-x.imag(), y.imag(), re);
        im = std::fmaf(x.real(), y.imag(), im);
        im = std::fmaf(x.imag(), y.real(), im);
      }
      c(i, j) = {re, im};
    }
  });
}

void ref_dgemm(const Matrix<double>& a, const Matrix<double>& b,
               Matrix<double>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const int k = a.cols();
  parallel_for(static_cast<std::size_t>(a.rows()), /*grain=*/4,
               [&](std::size_t si) {
    const int i = static_cast<int>(si);
    for (int j = 0; j < b.cols(); ++j) {
      double acc = c(i, j);
      for (int kk = 0; kk < k; ++kk) acc = std::fma(a(i, kk), b(kk, j), acc);
      c(i, j) = acc;
    }
  });
}

void ref_zgemm(const Matrix<std::complex<double>>& a,
               const Matrix<std::complex<double>>& b,
               Matrix<std::complex<double>>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const int k = a.cols();
  parallel_for(static_cast<std::size_t>(a.rows()), /*grain=*/4,
               [&](std::size_t si) {
    const int i = static_cast<int>(si);
    for (int j = 0; j < b.cols(); ++j) {
      std::complex<double> acc = c(i, j);
      for (int kk = 0; kk < k; ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  });
}

void exact_gemm(const Matrix<float>& a, const Matrix<float>& b,
                Matrix<double>& c) {
  check_shapes(a.rows(), a.cols(), b.rows(), b.cols(), c.rows(), c.cols());
  const int k = a.cols();
  parallel_for(static_cast<std::size_t>(a.rows()), [&](std::size_t si) {
    const int i = static_cast<int>(si);
    for (int j = 0; j < b.cols(); ++j) {
      fp::ExactAccumulator acc;
      acc.add_double(c(i, j));
      for (int kk = 0; kk < k; ++kk) {
        acc.add_product(fp::unpack(a(i, kk)), fp::unpack(b(kk, j)));
      }
      c(i, j) = acc.to_double();
    }
  });
}

namespace {

constexpr double kRelFloor = 1e-30;

void accumulate_error(double x, double ref, ErrorStats& s, double& rel_sum,
                      std::size_t& count) {
  const double abs_err = std::fabs(x - ref);
  const double rel = abs_err / std::max(std::fabs(ref), kRelFloor);
  s.max_abs = std::max(s.max_abs, abs_err);
  s.max_rel = std::max(s.max_rel, rel);
  rel_sum += rel;
  ++count;
}

}  // namespace

ErrorStats compare(const Matrix<float>& x, const Matrix<double>& ref) {
  M3XU_CHECK(x.rows() == ref.rows() && x.cols() == ref.cols());
  ErrorStats s;
  double rel_sum = 0.0;
  std::size_t count = 0;
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      accumulate_error(x(i, j), ref(i, j), s, rel_sum, count);
    }
  }
  s.mean_rel = count ? rel_sum / static_cast<double>(count) : 0.0;
  return s;
}

ErrorStats compare(const Matrix<std::complex<float>>& x,
                   const Matrix<std::complex<double>>& ref) {
  M3XU_CHECK(x.rows() == ref.rows() && x.cols() == ref.cols());
  ErrorStats s;
  double rel_sum = 0.0;
  std::size_t count = 0;
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      accumulate_error(x(i, j).real(), ref(i, j).real(), s, rel_sum, count);
      accumulate_error(x(i, j).imag(), ref(i, j).imag(), s, rel_sum, count);
    }
  }
  s.mean_rel = count ? rel_sum / static_cast<double>(count) : 0.0;
  return s;
}

}  // namespace m3xu::gemm
