// The GEMM kernel inventory of the paper's evaluation (Tables II & IV):
// SIMT baselines, the software-emulation kernels on stock Tensor Cores,
// and the M3XU kernels. These are the *functional* implementations; the
// timing simulator (src/sim) models their execution cost.
//
//   FP32 (Table IV):
//     cutlass_simt_sgemm       - FP32 FMA on CUDA cores
//     cutlass_tensorop_sgemm   - 3xTF32 software emulation (drops the
//                                low*low term -> loses precision)
//     EEHC_sgemm_fp32B         - 3xBF16 software emulation [Ma et al.]
//     m3xu_sgemm               - the M3XU FP32 mode (exact products)
//   FP32C:
//     cutlass_simt_cgemm, cutlass_tensorop_cgemm (3xTF32 complex),
//     m3xu_cgemm
//
// The 4xTF32 variant (the "perfect emulation" CUTLASS omits for speed)
// is included for the precision ablation.
#pragma once

#include <complex>
#include <string>

#include "core/mxu.hpp"
#include "gemm/matrix.hpp"

namespace m3xu::gemm {

enum class SgemmKernel {
  kSimt,            // cutlass_simt_sgemm
  kTensorOp3xTf32,  // cutlass_tensorop_sgemm
  kTensorOp4xTf32,  // precision ablation (4th low*low GEMM included)
  kEehc3xBf16,      // EEHC_sgemm_fp32B
  kM3xu,            // m3xu_sgemm (pipelined and non-pipelined share
                    // numerics; they differ only in clocks, see src/sim)
};

enum class CgemmKernel {
  kSimt,            // cutlass_simt_cgemm
  kTensorOp3xTf32,  // cutlass_tensorop_cgemm
  kM3xu,            // m3xu_cgemm
};

const char* kernel_name(SgemmKernel k);
const char* kernel_name(CgemmKernel k);

/// Runs the kernel: C <- A*B + C. Parallelized over row blocks with the
/// global thread pool (deterministic results regardless of threading).
void run_sgemm(SgemmKernel kernel, const core::M3xuEngine& engine,
               const Matrix<float>& a, const Matrix<float>& b,
               Matrix<float>& c);

void run_cgemm(CgemmKernel kernel, const core::M3xuEngine& engine,
               const Matrix<std::complex<float>>& a,
               const Matrix<std::complex<float>>& b,
               Matrix<std::complex<float>>& c);

/// FP16 Tensor-Core GEMM (mixed-precision forward pass): inputs are
/// rounded to FP16, accumulation is FP32.
void tensorop_hgemm(const core::M3xuEngine& engine, const Matrix<float>& a,
                    const Matrix<float>& b, Matrix<float>& c);

// --- Building blocks exposed for tests and the apps -------------------

/// Splits every element: hi = rne(x, fmt), lo = rne(x - hi, fmt).
struct SplitMatrices {
  Matrix<float> hi;
  Matrix<float> lo;
};
SplitMatrices split_matrix(const Matrix<float>& m, const fp::FloatFormat& fmt);

/// Component planes of a complex matrix.
struct ComplexPlanes {
  Matrix<float> re;
  Matrix<float> im;
};
ComplexPlanes planes(const Matrix<std::complex<float>>& m);

}  // namespace m3xu::gemm
