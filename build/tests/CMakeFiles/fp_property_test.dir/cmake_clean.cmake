file(REMOVE_RECURSE
  "CMakeFiles/fp_property_test.dir/fp_property_test.cpp.o"
  "CMakeFiles/fp_property_test.dir/fp_property_test.cpp.o.d"
  "fp_property_test"
  "fp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
