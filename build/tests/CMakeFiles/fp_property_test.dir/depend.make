# Empty dependencies file for fp_property_test.
# This may be replaced when dependencies are built.
