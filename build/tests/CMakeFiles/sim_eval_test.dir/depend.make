# Empty dependencies file for sim_eval_test.
# This may be replaced when dependencies are built.
