file(REMOVE_RECURSE
  "CMakeFiles/sim_eval_test.dir/sim_eval_test.cpp.o"
  "CMakeFiles/sim_eval_test.dir/sim_eval_test.cpp.o.d"
  "sim_eval_test"
  "sim_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
