file(REMOVE_RECURSE
  "CMakeFiles/core_m3xu_test.dir/core_m3xu_test.cpp.o"
  "CMakeFiles/core_m3xu_test.dir/core_m3xu_test.cpp.o.d"
  "core_m3xu_test"
  "core_m3xu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_m3xu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
