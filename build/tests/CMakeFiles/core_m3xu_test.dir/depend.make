# Empty dependencies file for core_m3xu_test.
# This may be replaced when dependencies are built.
