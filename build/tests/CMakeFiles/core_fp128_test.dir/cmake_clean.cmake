file(REMOVE_RECURSE
  "CMakeFiles/core_fp128_test.dir/core_fp128_test.cpp.o"
  "CMakeFiles/core_fp128_test.dir/core_fp128_test.cpp.o.d"
  "core_fp128_test"
  "core_fp128_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fp128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
