# Empty compiler generated dependencies file for core_fp128_test.
# This may be replaced when dependencies are built.
