file(REMOVE_RECURSE
  "CMakeFiles/gemm_ulp_test.dir/gemm_ulp_test.cpp.o"
  "CMakeFiles/gemm_ulp_test.dir/gemm_ulp_test.cpp.o.d"
  "gemm_ulp_test"
  "gemm_ulp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_ulp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
