# Empty compiler generated dependencies file for fp_accumulator_test.
# This may be replaced when dependencies are built.
