file(REMOVE_RECURSE
  "CMakeFiles/fp_accumulator_test.dir/fp_accumulator_test.cpp.o"
  "CMakeFiles/fp_accumulator_test.dir/fp_accumulator_test.cpp.o.d"
  "fp_accumulator_test"
  "fp_accumulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
