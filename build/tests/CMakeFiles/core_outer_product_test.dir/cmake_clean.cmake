file(REMOVE_RECURSE
  "CMakeFiles/core_outer_product_test.dir/core_outer_product_test.cpp.o"
  "CMakeFiles/core_outer_product_test.dir/core_outer_product_test.cpp.o.d"
  "core_outer_product_test"
  "core_outer_product_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_outer_product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
