# Empty dependencies file for core_outer_product_test.
# This may be replaced when dependencies are built.
