# Empty compiler generated dependencies file for fp_split_test.
# This may be replaced when dependencies are built.
