file(REMOVE_RECURSE
  "CMakeFiles/fp_split_test.dir/fp_split_test.cpp.o"
  "CMakeFiles/fp_split_test.dir/fp_split_test.cpp.o.d"
  "fp_split_test"
  "fp_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
