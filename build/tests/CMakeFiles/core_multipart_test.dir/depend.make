# Empty dependencies file for core_multipart_test.
# This may be replaced when dependencies are built.
