file(REMOVE_RECURSE
  "CMakeFiles/core_multipart_test.dir/core_multipart_test.cpp.o"
  "CMakeFiles/core_multipart_test.dir/core_multipart_test.cpp.o.d"
  "core_multipart_test"
  "core_multipart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multipart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
