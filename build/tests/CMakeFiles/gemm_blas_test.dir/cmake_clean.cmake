file(REMOVE_RECURSE
  "CMakeFiles/gemm_blas_test.dir/gemm_blas_test.cpp.o"
  "CMakeFiles/gemm_blas_test.dir/gemm_blas_test.cpp.o.d"
  "gemm_blas_test"
  "gemm_blas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_blas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
