file(REMOVE_RECURSE
  "CMakeFiles/qsim_test.dir/qsim_test.cpp.o"
  "CMakeFiles/qsim_test.dir/qsim_test.cpp.o.d"
  "qsim_test"
  "qsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
