file(REMOVE_RECURSE
  "CMakeFiles/core_dp_unit_test.dir/core_dp_unit_test.cpp.o"
  "CMakeFiles/core_dp_unit_test.dir/core_dp_unit_test.cpp.o.d"
  "core_dp_unit_test"
  "core_dp_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dp_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
