# Empty dependencies file for mrf_test.
# This may be replaced when dependencies are built.
