file(REMOVE_RECURSE
  "CMakeFiles/mrf_test.dir/mrf_test.cpp.o"
  "CMakeFiles/mrf_test.dir/mrf_test.cpp.o.d"
  "mrf_test"
  "mrf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
