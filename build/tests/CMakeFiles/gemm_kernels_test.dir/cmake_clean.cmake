file(REMOVE_RECURSE
  "CMakeFiles/gemm_kernels_test.dir/gemm_kernels_test.cpp.o"
  "CMakeFiles/gemm_kernels_test.dir/gemm_kernels_test.cpp.o.d"
  "gemm_kernels_test"
  "gemm_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
