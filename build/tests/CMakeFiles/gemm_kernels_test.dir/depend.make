# Empty dependencies file for gemm_kernels_test.
# This may be replaced when dependencies are built.
