# Empty compiler generated dependencies file for fp_format_test.
# This may be replaced when dependencies are built.
