file(REMOVE_RECURSE
  "CMakeFiles/fp_format_test.dir/fp_format_test.cpp.o"
  "CMakeFiles/fp_format_test.dir/fp_format_test.cpp.o.d"
  "fp_format_test"
  "fp_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
