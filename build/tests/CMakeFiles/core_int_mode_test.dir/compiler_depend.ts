# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_int_mode_test.
