# Empty compiler generated dependencies file for core_int_mode_test.
# This may be replaced when dependencies are built.
