# Empty compiler generated dependencies file for gemm_tiled_test.
# This may be replaced when dependencies are built.
