file(REMOVE_RECURSE
  "CMakeFiles/gemm_tiled_test.dir/gemm_tiled_test.cpp.o"
  "CMakeFiles/gemm_tiled_test.dir/gemm_tiled_test.cpp.o.d"
  "gemm_tiled_test"
  "gemm_tiled_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_tiled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
