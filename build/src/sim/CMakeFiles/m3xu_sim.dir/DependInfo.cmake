
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/eval_kernels.cpp" "src/sim/CMakeFiles/m3xu_sim.dir/eval_kernels.cpp.o" "gcc" "src/sim/CMakeFiles/m3xu_sim.dir/eval_kernels.cpp.o.d"
  "/root/repo/src/sim/kernel_sim.cpp" "src/sim/CMakeFiles/m3xu_sim.dir/kernel_sim.cpp.o" "gcc" "src/sim/CMakeFiles/m3xu_sim.dir/kernel_sim.cpp.o.d"
  "/root/repo/src/sim/sm_model.cpp" "src/sim/CMakeFiles/m3xu_sim.dir/sm_model.cpp.o" "gcc" "src/sim/CMakeFiles/m3xu_sim.dir/sm_model.cpp.o.d"
  "/root/repo/src/sim/trace_dump.cpp" "src/sim/CMakeFiles/m3xu_sim.dir/trace_dump.cpp.o" "gcc" "src/sim/CMakeFiles/m3xu_sim.dir/trace_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwmodel/CMakeFiles/m3xu_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
