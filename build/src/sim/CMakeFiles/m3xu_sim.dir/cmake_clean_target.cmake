file(REMOVE_RECURSE
  "libm3xu_sim.a"
)
