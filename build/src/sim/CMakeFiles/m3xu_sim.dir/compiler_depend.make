# Empty compiler generated dependencies file for m3xu_sim.
# This may be replaced when dependencies are built.
