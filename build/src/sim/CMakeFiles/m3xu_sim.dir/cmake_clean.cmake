file(REMOVE_RECURSE
  "CMakeFiles/m3xu_sim.dir/eval_kernels.cpp.o"
  "CMakeFiles/m3xu_sim.dir/eval_kernels.cpp.o.d"
  "CMakeFiles/m3xu_sim.dir/kernel_sim.cpp.o"
  "CMakeFiles/m3xu_sim.dir/kernel_sim.cpp.o.d"
  "CMakeFiles/m3xu_sim.dir/sm_model.cpp.o"
  "CMakeFiles/m3xu_sim.dir/sm_model.cpp.o.d"
  "CMakeFiles/m3xu_sim.dir/trace_dump.cpp.o"
  "CMakeFiles/m3xu_sim.dir/trace_dump.cpp.o.d"
  "libm3xu_sim.a"
  "libm3xu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
