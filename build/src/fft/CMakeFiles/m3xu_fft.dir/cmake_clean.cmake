file(REMOVE_RECURSE
  "CMakeFiles/m3xu_fft.dir/fft_conv.cpp.o"
  "CMakeFiles/m3xu_fft.dir/fft_conv.cpp.o.d"
  "CMakeFiles/m3xu_fft.dir/fft_timing.cpp.o"
  "CMakeFiles/m3xu_fft.dir/fft_timing.cpp.o.d"
  "CMakeFiles/m3xu_fft.dir/gemm_fft.cpp.o"
  "CMakeFiles/m3xu_fft.dir/gemm_fft.cpp.o.d"
  "CMakeFiles/m3xu_fft.dir/poly.cpp.o"
  "CMakeFiles/m3xu_fft.dir/poly.cpp.o.d"
  "libm3xu_fft.a"
  "libm3xu_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
