# Empty compiler generated dependencies file for m3xu_fft.
# This may be replaced when dependencies are built.
