file(REMOVE_RECURSE
  "libm3xu_fft.a"
)
