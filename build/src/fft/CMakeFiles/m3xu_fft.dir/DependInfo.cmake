
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/fft_conv.cpp" "src/fft/CMakeFiles/m3xu_fft.dir/fft_conv.cpp.o" "gcc" "src/fft/CMakeFiles/m3xu_fft.dir/fft_conv.cpp.o.d"
  "/root/repo/src/fft/fft_timing.cpp" "src/fft/CMakeFiles/m3xu_fft.dir/fft_timing.cpp.o" "gcc" "src/fft/CMakeFiles/m3xu_fft.dir/fft_timing.cpp.o.d"
  "/root/repo/src/fft/gemm_fft.cpp" "src/fft/CMakeFiles/m3xu_fft.dir/gemm_fft.cpp.o" "gcc" "src/fft/CMakeFiles/m3xu_fft.dir/gemm_fft.cpp.o.d"
  "/root/repo/src/fft/poly.cpp" "src/fft/CMakeFiles/m3xu_fft.dir/poly.cpp.o" "gcc" "src/fft/CMakeFiles/m3xu_fft.dir/poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m3xu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m3xu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/m3xu_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/m3xu_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
