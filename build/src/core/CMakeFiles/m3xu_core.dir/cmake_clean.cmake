file(REMOVE_RECURSE
  "CMakeFiles/m3xu_core.dir/data_assignment.cpp.o"
  "CMakeFiles/m3xu_core.dir/data_assignment.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/dp_unit.cpp.o"
  "CMakeFiles/m3xu_core.dir/dp_unit.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/fp128_mode.cpp.o"
  "CMakeFiles/m3xu_core.dir/fp128_mode.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/int_mode.cpp.o"
  "CMakeFiles/m3xu_core.dir/int_mode.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/lane_operand.cpp.o"
  "CMakeFiles/m3xu_core.dir/lane_operand.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/multi_part.cpp.o"
  "CMakeFiles/m3xu_core.dir/multi_part.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/mxu.cpp.o"
  "CMakeFiles/m3xu_core.dir/mxu.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/outer_product.cpp.o"
  "CMakeFiles/m3xu_core.dir/outer_product.cpp.o.d"
  "CMakeFiles/m3xu_core.dir/systolic.cpp.o"
  "CMakeFiles/m3xu_core.dir/systolic.cpp.o.d"
  "libm3xu_core.a"
  "libm3xu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
