
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_assignment.cpp" "src/core/CMakeFiles/m3xu_core.dir/data_assignment.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/data_assignment.cpp.o.d"
  "/root/repo/src/core/dp_unit.cpp" "src/core/CMakeFiles/m3xu_core.dir/dp_unit.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/dp_unit.cpp.o.d"
  "/root/repo/src/core/fp128_mode.cpp" "src/core/CMakeFiles/m3xu_core.dir/fp128_mode.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/fp128_mode.cpp.o.d"
  "/root/repo/src/core/int_mode.cpp" "src/core/CMakeFiles/m3xu_core.dir/int_mode.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/int_mode.cpp.o.d"
  "/root/repo/src/core/lane_operand.cpp" "src/core/CMakeFiles/m3xu_core.dir/lane_operand.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/lane_operand.cpp.o.d"
  "/root/repo/src/core/multi_part.cpp" "src/core/CMakeFiles/m3xu_core.dir/multi_part.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/multi_part.cpp.o.d"
  "/root/repo/src/core/mxu.cpp" "src/core/CMakeFiles/m3xu_core.dir/mxu.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/mxu.cpp.o.d"
  "/root/repo/src/core/outer_product.cpp" "src/core/CMakeFiles/m3xu_core.dir/outer_product.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/outer_product.cpp.o.d"
  "/root/repo/src/core/systolic.cpp" "src/core/CMakeFiles/m3xu_core.dir/systolic.cpp.o" "gcc" "src/core/CMakeFiles/m3xu_core.dir/systolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fp/CMakeFiles/m3xu_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
