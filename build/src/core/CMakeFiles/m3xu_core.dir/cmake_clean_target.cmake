file(REMOVE_RECURSE
  "libm3xu_core.a"
)
