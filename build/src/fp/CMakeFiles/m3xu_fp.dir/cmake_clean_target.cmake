file(REMOVE_RECURSE
  "libm3xu_fp.a"
)
