# Empty compiler generated dependencies file for m3xu_fp.
# This may be replaced when dependencies are built.
