file(REMOVE_RECURSE
  "CMakeFiles/m3xu_fp.dir/exact_accumulator.cpp.o"
  "CMakeFiles/m3xu_fp.dir/exact_accumulator.cpp.o.d"
  "CMakeFiles/m3xu_fp.dir/ext_float.cpp.o"
  "CMakeFiles/m3xu_fp.dir/ext_float.cpp.o.d"
  "CMakeFiles/m3xu_fp.dir/split.cpp.o"
  "CMakeFiles/m3xu_fp.dir/split.cpp.o.d"
  "CMakeFiles/m3xu_fp.dir/unpacked.cpp.o"
  "CMakeFiles/m3xu_fp.dir/unpacked.cpp.o.d"
  "libm3xu_fp.a"
  "libm3xu_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
