
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fp/exact_accumulator.cpp" "src/fp/CMakeFiles/m3xu_fp.dir/exact_accumulator.cpp.o" "gcc" "src/fp/CMakeFiles/m3xu_fp.dir/exact_accumulator.cpp.o.d"
  "/root/repo/src/fp/ext_float.cpp" "src/fp/CMakeFiles/m3xu_fp.dir/ext_float.cpp.o" "gcc" "src/fp/CMakeFiles/m3xu_fp.dir/ext_float.cpp.o.d"
  "/root/repo/src/fp/split.cpp" "src/fp/CMakeFiles/m3xu_fp.dir/split.cpp.o" "gcc" "src/fp/CMakeFiles/m3xu_fp.dir/split.cpp.o.d"
  "/root/repo/src/fp/unpacked.cpp" "src/fp/CMakeFiles/m3xu_fp.dir/unpacked.cpp.o" "gcc" "src/fp/CMakeFiles/m3xu_fp.dir/unpacked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
