# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fp")
subdirs("core")
subdirs("gemm")
subdirs("hwmodel")
subdirs("sim")
subdirs("fft")
subdirs("dnn")
subdirs("mrf")
subdirs("knn")
subdirs("qsim")
