file(REMOVE_RECURSE
  "libm3xu_mrf.a"
)
