# Empty compiler generated dependencies file for m3xu_mrf.
# This may be replaced when dependencies are built.
