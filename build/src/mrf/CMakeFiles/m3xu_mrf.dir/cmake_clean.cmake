file(REMOVE_RECURSE
  "CMakeFiles/m3xu_mrf.dir/dictionary.cpp.o"
  "CMakeFiles/m3xu_mrf.dir/dictionary.cpp.o.d"
  "CMakeFiles/m3xu_mrf.dir/mrf_timing.cpp.o"
  "CMakeFiles/m3xu_mrf.dir/mrf_timing.cpp.o.d"
  "libm3xu_mrf.a"
  "libm3xu_mrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_mrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
