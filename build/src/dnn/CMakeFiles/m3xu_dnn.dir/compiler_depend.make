# Empty compiler generated dependencies file for m3xu_dnn.
# This may be replaced when dependencies are built.
