file(REMOVE_RECURSE
  "libm3xu_dnn.a"
)
