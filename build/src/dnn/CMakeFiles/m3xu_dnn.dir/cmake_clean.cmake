file(REMOVE_RECURSE
  "CMakeFiles/m3xu_dnn.dir/conv.cpp.o"
  "CMakeFiles/m3xu_dnn.dir/conv.cpp.o.d"
  "CMakeFiles/m3xu_dnn.dir/network.cpp.o"
  "CMakeFiles/m3xu_dnn.dir/network.cpp.o.d"
  "CMakeFiles/m3xu_dnn.dir/training_time.cpp.o"
  "CMakeFiles/m3xu_dnn.dir/training_time.cpp.o.d"
  "libm3xu_dnn.a"
  "libm3xu_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
