file(REMOVE_RECURSE
  "CMakeFiles/m3xu_common.dir/cli.cpp.o"
  "CMakeFiles/m3xu_common.dir/cli.cpp.o.d"
  "CMakeFiles/m3xu_common.dir/stats.cpp.o"
  "CMakeFiles/m3xu_common.dir/stats.cpp.o.d"
  "CMakeFiles/m3xu_common.dir/table.cpp.o"
  "CMakeFiles/m3xu_common.dir/table.cpp.o.d"
  "CMakeFiles/m3xu_common.dir/thread_pool.cpp.o"
  "CMakeFiles/m3xu_common.dir/thread_pool.cpp.o.d"
  "libm3xu_common.a"
  "libm3xu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
