file(REMOVE_RECURSE
  "libm3xu_common.a"
)
