# Empty compiler generated dependencies file for m3xu_common.
# This may be replaced when dependencies are built.
