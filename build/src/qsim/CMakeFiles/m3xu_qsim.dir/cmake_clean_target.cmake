file(REMOVE_RECURSE
  "libm3xu_qsim.a"
)
