file(REMOVE_RECURSE
  "CMakeFiles/m3xu_qsim.dir/state_vector.cpp.o"
  "CMakeFiles/m3xu_qsim.dir/state_vector.cpp.o.d"
  "libm3xu_qsim.a"
  "libm3xu_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
