# Empty compiler generated dependencies file for m3xu_qsim.
# This may be replaced when dependencies are built.
