file(REMOVE_RECURSE
  "CMakeFiles/m3xu_knn.dir/knn.cpp.o"
  "CMakeFiles/m3xu_knn.dir/knn.cpp.o.d"
  "CMakeFiles/m3xu_knn.dir/knn_timing.cpp.o"
  "CMakeFiles/m3xu_knn.dir/knn_timing.cpp.o.d"
  "libm3xu_knn.a"
  "libm3xu_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
