file(REMOVE_RECURSE
  "libm3xu_knn.a"
)
