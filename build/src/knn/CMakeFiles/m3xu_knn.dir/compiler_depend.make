# Empty compiler generated dependencies file for m3xu_knn.
# This may be replaced when dependencies are built.
