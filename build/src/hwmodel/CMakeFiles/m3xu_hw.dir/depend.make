# Empty dependencies file for m3xu_hw.
# This may be replaced when dependencies are built.
