file(REMOVE_RECURSE
  "libm3xu_hw.a"
)
