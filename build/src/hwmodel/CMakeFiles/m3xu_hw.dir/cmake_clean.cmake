file(REMOVE_RECURSE
  "CMakeFiles/m3xu_hw.dir/cost_model.cpp.o"
  "CMakeFiles/m3xu_hw.dir/cost_model.cpp.o.d"
  "libm3xu_hw.a"
  "libm3xu_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
