
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemm/blas.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/blas.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/blas.cpp.o.d"
  "/root/repo/src/gemm/kernels.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/kernels.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/kernels.cpp.o.d"
  "/root/repo/src/gemm/matrix.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/matrix.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/matrix.cpp.o.d"
  "/root/repo/src/gemm/reference.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/reference.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/reference.cpp.o.d"
  "/root/repo/src/gemm/tiled_driver.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/tiled_driver.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/tiled_driver.cpp.o.d"
  "/root/repo/src/gemm/ulp.cpp" "src/gemm/CMakeFiles/m3xu_gemm.dir/ulp.cpp.o" "gcc" "src/gemm/CMakeFiles/m3xu_gemm.dir/ulp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m3xu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/m3xu_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
