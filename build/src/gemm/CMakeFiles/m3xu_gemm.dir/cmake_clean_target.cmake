file(REMOVE_RECURSE
  "libm3xu_gemm.a"
)
