file(REMOVE_RECURSE
  "CMakeFiles/m3xu_gemm.dir/blas.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/blas.cpp.o.d"
  "CMakeFiles/m3xu_gemm.dir/kernels.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/kernels.cpp.o.d"
  "CMakeFiles/m3xu_gemm.dir/matrix.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/matrix.cpp.o.d"
  "CMakeFiles/m3xu_gemm.dir/reference.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/reference.cpp.o.d"
  "CMakeFiles/m3xu_gemm.dir/tiled_driver.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/tiled_driver.cpp.o.d"
  "CMakeFiles/m3xu_gemm.dir/ulp.cpp.o"
  "CMakeFiles/m3xu_gemm.dir/ulp.cpp.o.d"
  "libm3xu_gemm.a"
  "libm3xu_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3xu_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
