# Empty dependencies file for m3xu_gemm.
# This may be replaced when dependencies are built.
