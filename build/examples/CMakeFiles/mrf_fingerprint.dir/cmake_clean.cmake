file(REMOVE_RECURSE
  "CMakeFiles/mrf_fingerprint.dir/mrf_fingerprint.cpp.o"
  "CMakeFiles/mrf_fingerprint.dir/mrf_fingerprint.cpp.o.d"
  "mrf_fingerprint"
  "mrf_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrf_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
