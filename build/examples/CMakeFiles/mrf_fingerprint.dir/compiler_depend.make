# Empty compiler generated dependencies file for mrf_fingerprint.
# This may be replaced when dependencies are built.
