# Empty compiler generated dependencies file for knn_classify.
# This may be replaced when dependencies are built.
