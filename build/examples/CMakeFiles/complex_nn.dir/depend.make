# Empty dependencies file for complex_nn.
# This may be replaced when dependencies are built.
