file(REMOVE_RECURSE
  "CMakeFiles/complex_nn.dir/complex_nn.cpp.o"
  "CMakeFiles/complex_nn.dir/complex_nn.cpp.o.d"
  "complex_nn"
  "complex_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
