# Empty dependencies file for mixed_precision_training.
# This may be replaced when dependencies are built.
