file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_training.dir/mixed_precision_training.cpp.o"
  "CMakeFiles/mixed_precision_training.dir/mixed_precision_training.cpp.o.d"
  "mixed_precision_training"
  "mixed_precision_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
