file(REMOVE_RECURSE
  "CMakeFiles/image_sharpen.dir/image_sharpen.cpp.o"
  "CMakeFiles/image_sharpen.dir/image_sharpen.cpp.o.d"
  "image_sharpen"
  "image_sharpen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_sharpen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
