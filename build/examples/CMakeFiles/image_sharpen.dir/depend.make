# Empty dependencies file for image_sharpen.
# This may be replaced when dependencies are built.
