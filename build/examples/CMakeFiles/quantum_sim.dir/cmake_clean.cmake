file(REMOVE_RECURSE
  "CMakeFiles/quantum_sim.dir/quantum_sim.cpp.o"
  "CMakeFiles/quantum_sim.dir/quantum_sim.cpp.o.d"
  "quantum_sim"
  "quantum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
