# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectral_filter "/root/repo/build/examples/spectral_filter")
set_tests_properties(example_spectral_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quantum_sim "/root/repo/build/examples/quantum_sim")
set_tests_properties(example_quantum_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_knn_classify "/root/repo/build/examples/knn_classify")
set_tests_properties(example_knn_classify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixed_precision_training "/root/repo/build/examples/mixed_precision_training")
set_tests_properties(example_mixed_precision_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_sharpen "/root/repo/build/examples/image_sharpen")
set_tests_properties(example_image_sharpen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mrf_fingerprint "/root/repo/build/examples/mrf_fingerprint")
set_tests_properties(example_mrf_fingerprint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_complex_nn "/root/repo/build/examples/complex_nn")
set_tests_properties(example_complex_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;m3xu_add_example;/root/repo/examples/CMakeLists.txt;0;")
