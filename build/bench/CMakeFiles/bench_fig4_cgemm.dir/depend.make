# Empty dependencies file for bench_fig4_cgemm.
# This may be replaced when dependencies are built.
