file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cgemm.dir/bench_fig4_cgemm.cpp.o"
  "CMakeFiles/bench_fig4_cgemm.dir/bench_fig4_cgemm.cpp.o.d"
  "bench_fig4_cgemm"
  "bench_fig4_cgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
