# Empty dependencies file for bench_fig6_fft.
# This may be replaced when dependencies are built.
