file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fft.dir/bench_fig6_fft.cpp.o"
  "CMakeFiles/bench_fig6_fft.dir/bench_fig6_fft.cpp.o.d"
  "bench_fig6_fft"
  "bench_fig6_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
