file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multipart.dir/bench_ablation_multipart.cpp.o"
  "CMakeFiles/bench_ablation_multipart.dir/bench_ablation_multipart.cpp.o.d"
  "bench_ablation_multipart"
  "bench_ablation_multipart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multipart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
