# Empty dependencies file for bench_ablation_multipart.
# This may be replaced when dependencies are built.
