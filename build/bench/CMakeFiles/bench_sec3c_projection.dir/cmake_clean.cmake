file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3c_projection.dir/bench_sec3c_projection.cpp.o"
  "CMakeFiles/bench_sec3c_projection.dir/bench_sec3c_projection.cpp.o.d"
  "bench_sec3c_projection"
  "bench_sec3c_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3c_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
