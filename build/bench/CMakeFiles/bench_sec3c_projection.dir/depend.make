# Empty dependencies file for bench_sec3c_projection.
# This may be replaced when dependencies are built.
