# Empty dependencies file for bench_fig5_peak.
# This may be replaced when dependencies are built.
