file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sgemm.dir/bench_fig4_sgemm.cpp.o"
  "CMakeFiles/bench_fig4_sgemm.dir/bench_fig4_sgemm.cpp.o.d"
  "bench_fig4_sgemm"
  "bench_fig4_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
