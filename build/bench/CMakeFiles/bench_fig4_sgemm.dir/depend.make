# Empty dependencies file for bench_fig4_sgemm.
# This may be replaced when dependencies are built.
