# Empty dependencies file for bench_precision_table.
# This may be replaced when dependencies are built.
