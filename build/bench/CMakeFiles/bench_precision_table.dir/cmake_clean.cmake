file(REMOVE_RECURSE
  "CMakeFiles/bench_precision_table.dir/bench_precision_table.cpp.o"
  "CMakeFiles/bench_precision_table.dir/bench_precision_table.cpp.o.d"
  "bench_precision_table"
  "bench_precision_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precision_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
