# Empty dependencies file for bench_fig7_dnn.
# This may be replaced when dependencies are built.
