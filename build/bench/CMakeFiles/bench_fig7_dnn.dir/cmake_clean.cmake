file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dnn.dir/bench_fig7_dnn.cpp.o"
  "CMakeFiles/bench_fig7_dnn.dir/bench_fig7_dnn.cpp.o.d"
  "bench_fig7_dnn"
  "bench_fig7_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
