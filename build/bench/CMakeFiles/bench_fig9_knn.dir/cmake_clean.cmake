file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_knn.dir/bench_fig9_knn.cpp.o"
  "CMakeFiles/bench_fig9_knn.dir/bench_fig9_knn.cpp.o.d"
  "bench_fig9_knn"
  "bench_fig9_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
