# Empty dependencies file for bench_fig8_mrf.
# This may be replaced when dependencies are built.
