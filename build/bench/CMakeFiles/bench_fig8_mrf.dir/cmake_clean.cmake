file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mrf.dir/bench_fig8_mrf.cpp.o"
  "CMakeFiles/bench_fig8_mrf.dir/bench_fig8_mrf.cpp.o.d"
  "bench_fig8_mrf"
  "bench_fig8_mrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
