file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_peaks.dir/bench_table1_peaks.cpp.o"
  "CMakeFiles/bench_table1_peaks.dir/bench_table1_peaks.cpp.o.d"
  "bench_table1_peaks"
  "bench_table1_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
