
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_kernels.cpp" "bench/CMakeFiles/bench_table2_kernels.dir/bench_table2_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_kernels.dir/bench_table2_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gemm/CMakeFiles/m3xu_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m3xu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m3xu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m3xu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/m3xu_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/m3xu_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
