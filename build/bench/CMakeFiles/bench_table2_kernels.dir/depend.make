# Empty dependencies file for bench_table2_kernels.
# This may be replaced when dependencies are built.
