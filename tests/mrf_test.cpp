// Tests for the MRF case study: signal-model physics, dictionary
// matching correctness through the M3XU CGEMM path, and Fig-8 timing
// bands.
#include <gtest/gtest.h>

#include <cmath>

#include "mrf/dictionary.hpp"
#include "mrf/mrf_timing.hpp"

namespace m3xu::mrf {
namespace {

TEST(SignalModel, NormalizedAndFinite) {
  const MrfConfig cfg = MrfConfig::small_grid();
  const auto sig = simulate_signal(800.0, 80.0, cfg);
  double energy = 0.0;
  for (const auto& v : sig) {
    EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
    energy += std::norm(v);
  }
  EXPECT_NEAR(energy, 1.0, 1e-9);
}

TEST(SignalModel, DistinguishesTissues) {
  const MrfConfig cfg = MrfConfig::small_grid();
  const auto a = simulate_signal(800.0, 80.0, cfg);
  const auto b = simulate_signal(1500.0, 40.0, cfg);
  std::complex<double> corr{};
  for (std::size_t t = 0; t < a.size(); ++t) corr += a[t] * std::conj(b[t]);
  // Different (T1,T2) must be separable (correlation well below 1).
  EXPECT_LT(std::abs(corr), 0.995);
}

TEST(SignalModel, DiscriminabilityGrowsWithParameterDistance) {
  // Fingerprints of nearby (T1,T2) pairs correlate more strongly than
  // distant ones - the property dictionary matching relies on.
  const MrfConfig cfg = MrfConfig::small_grid();
  auto corr = [&](double t2a, double t2b) {
    const auto a = simulate_signal(1000.0, t2a, cfg);
    const auto b = simulate_signal(1000.0, t2b, cfg);
    std::complex<double> c{};
    for (std::size_t t = 0; t < a.size(); ++t) c += a[t] * std::conj(b[t]);
    return std::abs(c);
  };
  EXPECT_GT(corr(40.0, 45.0), corr(40.0, 300.0));
  EXPECT_GT(corr(40.0, 45.0), 0.9);
}

TEST(Dictionary, CoversPhysicalGrid) {
  const MrfConfig cfg = MrfConfig::small_grid();
  const Dictionary dict = generate_dictionary(cfg);
  EXPECT_GT(dict.atoms(), 20);
  for (const auto& [t1, t2] : dict.params) EXPECT_LT(t2, t1);
}

TEST(Matching, RecoversKnownAtomThroughM3xuCgemm) {
  const MrfConfig cfg = MrfConfig::small_grid();
  const Dictionary dict = generate_dictionary(cfg);
  const core::M3xuEngine engine;
  const int rank = 96;
  const auto basis = compression_basis(rank, cfg.timepoints);
  const auto compressed =
      compress(dict, basis, gemm::CgemmKernel::kM3xu, engine);
  // Probe several atoms: the acquisition model (double precision) must
  // match back to the generating atom, or - for near-degenerate
  // neighbors on the 1.35x-spaced grid - to one within a single grid
  // step in both parameters.
  for (int a = 0; a < dict.atoms(); a += 7) {
    const auto sig = simulate_signal(dict.params[a].first,
                                     dict.params[a].second, cfg);
    const int found =
        match(compressed, basis, sig, gemm::CgemmKernel::kM3xu, engine);
    const double t1_ratio = dict.params[found].first / dict.params[a].first;
    const double t2_ratio =
        dict.params[found].second / dict.params[a].second;
    EXPECT_LT(std::max(t1_ratio, 1.0 / t1_ratio), 1.36) << a;
    EXPECT_LT(std::max(t2_ratio, 1.0 / t2_ratio), 1.36) << a;
  }
}

TEST(Matching, M3xuAndSimtKernelsAgree) {
  const MrfConfig cfg = MrfConfig::small_grid();
  const Dictionary dict = generate_dictionary(cfg);
  const core::M3xuEngine engine;
  const auto basis = compression_basis(32, cfg.timepoints);
  const auto c_m3xu =
      compress(dict, basis, gemm::CgemmKernel::kM3xu, engine);
  const auto c_simt =
      compress(dict, basis, gemm::CgemmKernel::kSimt, engine);
  const auto sig = simulate_signal(600.0, 60.0, cfg);
  EXPECT_EQ(match(c_m3xu, basis, sig, gemm::CgemmKernel::kM3xu, engine),
            match(c_simt, basis, sig, gemm::CgemmKernel::kSimt, engine));
}

TEST(CompressionBasis, RowsAreOrthonormal) {
  const auto basis = compression_basis(16, 128);
  for (int i = 0; i < basis.rows(); ++i) {
    for (int j = i; j < basis.rows(); ++j) {
      std::complex<double> dot{};
      for (int t = 0; t < basis.cols(); ++t) {
        dot += std::complex<double>(basis(i, t)) *
               std::conj(std::complex<double>(basis(j, t)));
      }
      EXPECT_NEAR(std::abs(dot), i == j ? 1.0 : 0.0, 1e-5) << i << "," << j;
    }
  }
}

TEST(Fig8, SpeedupBandsAndAmdahl) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const DictGenTime base =
      time_dictionary_generation(gpu, 1'000'000, 512, 64, false);
  const DictGenTime m3 =
      time_dictionary_generation(gpu, 1'000'000, 512, 64, true);
  const double speedup = base.seconds / m3.seconds;
  EXPECT_GT(speedup, 1.05);
  EXPECT_LT(speedup, 1.35);  // paper: up to 1.26x
  EXPECT_NEAR(base.cgemm_fraction(), 0.22, 0.06);  // paper: ~22%
  // Amdahl consistency: the non-CGEMM part is unchanged.
  EXPECT_NEAR(base.seconds - base.cgemm_seconds,
              m3.seconds - m3.cgemm_seconds,
              0.02 * base.seconds);
}

TEST(PatternMatching, M3xuAcceleratesTheCorrelationCgemm) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const DictGenTime base = time_pattern_matching(gpu, 100'000, 4096, 64,
                                                 false);
  const DictGenTime m3 = time_pattern_matching(gpu, 100'000, 4096, 64,
                                               true);
  EXPECT_LT(m3.cgemm_seconds, base.cgemm_seconds / 2.5);
  EXPECT_LT(m3.seconds, base.seconds);
  // The argmax pass is unchanged between variants.
  EXPECT_NEAR(base.seconds - base.cgemm_seconds,
              m3.seconds - m3.cgemm_seconds, 1e-9);
}

TEST(Fig8, SpeedupGrowsWithDictionarySize) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  auto speedup = [&](long atoms) {
    return time_dictionary_generation(gpu, atoms, 512, 64, false).seconds /
           time_dictionary_generation(gpu, atoms, 512, 64, true).seconds;
  };
  EXPECT_LT(speedup(10'000), speedup(1'000'000));
}

}  // namespace
}  // namespace m3xu::mrf
