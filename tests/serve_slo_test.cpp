// SloMonitor tests: windowed percentile math, shed/demotion/ABFT
// rates, threshold gating (min_requests, disabled sentinels),
// edge-triggered breach latching with re-arm, ring-buffer eviction,
// SDC-escape immediacy, JSON rendering, and the GemmServer
// integration (every terminal resolution feeds the monitor).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gemm/matrix.hpp"
#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "telemetry/json.hpp"

using namespace m3xu;
using serve::RequestStatus;
using serve::SloConfig;
using serve::SloMonitor;
using serve::SloReport;

namespace {

constexpr std::uint64_t kMs = 1'000'000;  // ns per ms

SloConfig manual_config() {
  SloConfig cfg;
  cfg.min_requests = 1;
  cfg.evaluate_every = 0;  // tests drive evaluation explicitly
  return cfg;
}

bool has_breach(const SloReport& report, const std::string& metric) {
  for (const serve::SloBreach& b : report.breaches) {
    if (metric == b.metric) return true;
  }
  return false;
}

}  // namespace

TEST(SloMonitor, PercentilesAreNearestRankOverExecuted) {
  SloMonitor mon(manual_config());
  for (int i = 1; i <= 100; ++i) {
    mon.record(RequestStatus::kOk, static_cast<std::uint64_t>(i) * kMs);
  }
  // Shed requests never ran; they must not dilute the percentiles.
  mon.record(RequestStatus::kShed, 0);
  const SloReport report = mon.evaluate();
  EXPECT_EQ(report.window_requests, 101u);
  EXPECT_EQ(report.executed_requests, 100u);
  EXPECT_NEAR(report.p50_ms, 50.0, 1.5);
  EXPECT_NEAR(report.p99_ms, 99.0, 1.5);
  EXPECT_NEAR(report.shed_rate, 1.0 / 101.0, 1e-9);
  EXPECT_TRUE(report.ok());  // default thresholds never breach
}

TEST(SloMonitor, RatesCountExecutedRequestsOnly) {
  SloMonitor mon(manual_config());
  mon.record(RequestStatus::kOk, kMs, /*demotions=*/2, /*abft_detected=*/1);
  mon.record(RequestStatus::kOk, kMs, 0, 1);
  mon.record(RequestStatus::kOk, kMs, 0, 0);
  mon.record(RequestStatus::kOk, kMs, 0, 0);
  const SloReport report = mon.evaluate();
  EXPECT_NEAR(report.demotion_rate, 0.25, 1e-9);
  EXPECT_NEAR(report.abft_recovery_rate, 0.5, 1e-9);
}

TEST(SloMonitor, WindowEvictsOldestSamples) {
  SloConfig cfg = manual_config();
  cfg.window = 4;
  SloMonitor mon(cfg);
  for (int i = 0; i < 4; ++i) mon.record(RequestStatus::kShed, 0);
  // Four fresh executed requests push every shed sample out.
  for (int i = 0; i < 4; ++i) mon.record(RequestStatus::kOk, 10 * kMs);
  const SloReport report = mon.evaluate();
  EXPECT_EQ(report.window_requests, 4u);
  EXPECT_EQ(report.executed_requests, 4u);
  EXPECT_NEAR(report.shed_rate, 0.0, 1e-9);
  EXPECT_EQ(mon.recorded(), 8u);
}

TEST(SloMonitor, ThresholdsGateOnMinRequests) {
  SloConfig cfg = manual_config();
  cfg.min_requests = 8;
  cfg.thresholds.p99_ms = 1.0;
  SloMonitor mon(cfg);
  for (int i = 0; i < 7; ++i) mon.record(RequestStatus::kOk, 100 * kMs);
  EXPECT_TRUE(mon.evaluate().ok());  // under min_requests: no verdict
  mon.record(RequestStatus::kOk, 100 * kMs);
  const SloReport report = mon.evaluate();
  EXPECT_TRUE(has_breach(report, "latency_p99_ms"));
}

TEST(SloMonitor, BreachesLatchEdgeTriggeredAndRearm) {
  SloConfig cfg;
  cfg.window = 4;
  cfg.min_requests = 1;
  cfg.evaluate_every = 1;  // evaluate on every record
  cfg.thresholds.p50_ms = 5.0;
  SloMonitor mon(cfg);
  // Four slow requests: the p50 threshold is crossed on the first
  // record and stays crossed - one breach event, not four.
  for (int i = 0; i < 4; ++i) mon.record(RequestStatus::kOk, 50 * kMs);
  EXPECT_EQ(mon.breach_log().size(), 1u);
  EXPECT_STREQ(mon.breach_log()[0].metric, "latency_p50_ms");
  EXPECT_NEAR(mon.breach_log()[0].observed, 50.0, 1.0);
  EXPECT_NEAR(mon.breach_log()[0].threshold, 5.0, 1e-9);
  // Recovery: fast requests wash the slow ones out of the window and
  // re-arm the latch ...
  for (int i = 0; i < 4; ++i) mon.record(RequestStatus::kOk, kMs);
  EXPECT_EQ(mon.breach_log().size(), 1u);
  // ... so the next crossing logs a second breach.
  for (int i = 0; i < 4; ++i) mon.record(RequestStatus::kOk, 50 * kMs);
  EXPECT_EQ(mon.breach_log().size(), 2u);
}

TEST(SloMonitor, SdcEscapeBreachesImmediately) {
  SloConfig cfg = manual_config();
  cfg.evaluate_every = 0;  // even with auto-evaluation off ...
  SloMonitor mon(cfg);
  mon.record_sdc_escape();  // ... an escape must not wait for a tick
  ASSERT_EQ(mon.breach_log().size(), 1u);
  EXPECT_STREQ(mon.breach_log()[0].metric, "sdc_escapes");
  const SloReport report = mon.evaluate();
  EXPECT_EQ(report.sdc_escapes, 1u);
  EXPECT_TRUE(has_breach(report, "sdc_escapes"));
}

TEST(SloMonitor, ShedRateThresholdBreaches) {
  SloConfig cfg = manual_config();
  cfg.thresholds.max_shed_rate = 0.25;
  SloMonitor mon(cfg);
  mon.record(RequestStatus::kOk, kMs);
  mon.record(RequestStatus::kShed, 0);
  const SloReport report = mon.evaluate();
  EXPECT_TRUE(has_breach(report, "shed_rate"));
}

TEST(SloMonitor, ReportRendersAsJson) {
  SloConfig cfg = manual_config();
  cfg.thresholds.p50_ms = 1.0;
  SloMonitor mon(cfg);
  mon.record(RequestStatus::kOk, 10 * kMs);
  const SloReport report = mon.evaluate();
  telemetry::JsonWriter w;
  SloMonitor::write_json(w, report);
  const auto doc = telemetry::JsonValue::parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("window_requests")->as_uint(), 1u);
  EXPECT_NEAR(doc->find("p50_ms")->as_double(), 10.0, 1.0);
  EXPECT_FALSE(doc->find("ok")->as_bool(true));
  const telemetry::JsonValue* breaches = doc->find("breaches");
  ASSERT_NE(breaches, nullptr);
  ASSERT_EQ(breaches->size(), 1u);
  EXPECT_EQ(breaches->at(0).find("metric")->as_string(), "latency_p50_ms");
}

TEST(SloMonitor, AutoEvaluationCadence) {
  SloConfig cfg = manual_config();
  cfg.evaluate_every = 4;
  SloMonitor mon(cfg);
  for (int i = 0; i < 8; ++i) mon.record(RequestStatus::kOk, kMs);
  EXPECT_EQ(mon.evaluations(), 2u);  // records 4 and 8
}

TEST(SloMonitorServer, TerminalResolutionsFeedTheMonitor) {
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.abft.enable = true;
  cfg.slo.min_requests = 1;
  cfg.slo.evaluate_every = 1;
  cfg.tile = gemm::TileConfig{32, 32, 32, 16, 16};
  serve::GemmServer server(cfg);

  const int kRequests = 6;
  Rng rng{0x510ull};
  std::vector<serve::RequestHandle> handles;
  for (int i = 0; i < kRequests; ++i) {
    gemm::Matrix<float> a(64, 32), b(32, 48), c(64, 48);
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(c, rng);
    handles.push_back(server.submit_sgemm(std::move(a), std::move(b),
                                          std::move(c)));
  }
  for (const serve::RequestHandle& h : handles) h->wait();
  // One invalid-shape submission also terminates (kFailed) and counts.
  server.submit_sgemm(gemm::Matrix<float>(4, 4), gemm::Matrix<float>(5, 4),
                      gemm::Matrix<float>(4, 4));
  EXPECT_EQ(server.slo().recorded(), static_cast<std::uint64_t>(kRequests) + 1);
  const SloReport report = server.slo().evaluate();
  EXPECT_EQ(report.window_requests, static_cast<std::uint64_t>(kRequests) + 1);
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_TRUE(report.ok());
  // External checkers report escapes straight into the server monitor.
  server.slo().record_sdc_escape();
  EXPECT_FALSE(server.slo().evaluate().ok());
  server.shutdown();
}
