// Tests for the ULP error-analysis utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "gemm/ulp.hpp"

namespace m3xu::gemm {
namespace {

TEST(UlpDistance, ZeroForCorrectlyRounded) {
  Rng rng(601);
  for (int i = 0; i < 200'000; ++i) {
    const double d = rng.next_double() * 200.0 - 100.0;
    EXPECT_EQ(ulp_distance(static_cast<float>(d), d), 0);
  }
}

TEST(UlpDistance, CountsNeighborSteps) {
  const float x = 1.0f;
  EXPECT_EQ(ulp_distance(std::nextafterf(x, 2.0f), 1.0), 1);
  EXPECT_EQ(ulp_distance(std::nextafterf(std::nextafterf(x, 2.0f), 2.0f),
                         1.0),
            2);
  EXPECT_EQ(ulp_distance(std::nextafterf(x, 0.0f), 1.0), 1);
}

TEST(UlpDistance, CrossesZeroContinuously) {
  // The ordered mapping makes -0/+0 adjacent-or-equal, so tiny sign
  // flips around zero count a handful of ULPs, not 2^31.
  const float tiny = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(ulp_distance(tiny, 0.0), 1);
  EXPECT_EQ(ulp_distance(-tiny, 0.0), 1);
  EXPECT_EQ(ulp_distance(tiny, -static_cast<double>(tiny)), 2);
}

TEST(UlpDistance, SpecialsMatchOrBlowUp) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ulp_distance(std::numeric_limits<float>::infinity(), inf), 0);
  EXPECT_GT(ulp_distance(1.0f, inf), 1'000'000);
  EXPECT_EQ(ulp_distance(std::numeric_limits<float>::quiet_NaN(),
                         std::nan("")),
            0);
  EXPECT_GT(ulp_distance(std::numeric_limits<float>::quiet_NaN(), 1.0),
            1'000'000);
}

TEST(UlpDistance, OverflowingReferenceRoundsToInf) {
  // 1e39 rounds to +inf in FP32; a float +inf is then exact.
  EXPECT_EQ(ulp_distance(std::numeric_limits<float>::infinity(), 1e39), 0);
  EXPECT_GT(ulp_distance(3e38f, 1e39), 1'000'000);
}

TEST(UlpHistogram, FractionsAndMax) {
  UlpHistogram h;
  h.add(1.0f, 1.0);                              // exact
  h.add(std::nextafterf(1.0f, 2.0f), 1.0);       // 1 ulp
  h.add(1.0f + 8 * std::ldexp(1.0f, -23), 1.0);  // 8 ulps
  EXPECT_EQ(h.total(), 3u);
  EXPECT_NEAR(h.exact_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.faithful_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(h.max_ulps(), 8);
  EXPECT_FALSE(h.summary().empty());
}

TEST(UlpHistogram, MatrixIngest) {
  Matrix<float> x(2, 2);
  Matrix<double> ref(2, 2);
  x.fill(2.0f);
  ref.fill(2.0);
  x(1, 1) = std::nextafterf(2.0f, 3.0f);
  UlpHistogram h;
  h.add_matrix(x, ref);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.exact_fraction(), 0.75, 1e-12);
}

}  // namespace
}  // namespace m3xu::gemm
